"""The ``numba`` backend: ``@njit`` kernels (optional extra).

Installed via ``pip install repro[native]``.  The module imports
lazily and cleanly degrades: :func:`numba_available` is False when
Numba is missing, the registry then never lists the backend, and the
package works end to end without it (a CI leg proves this).

Kernel structure mirrors :mod:`repro.backends.native` loop for loop —
per-row sequential accumulation, products rounded before adding, and
``fastmath=False`` everywhere so no reassociation or FMA contraction
breaks bitwise parity with the reference backend.  ``parallel=True``
with ``prange`` over rows is safe for the same reason as the C
backend's OpenMP loops: no output element's accumulation is split
across threads.
"""

from __future__ import annotations

import importlib.util

import numpy as np
import scipy.sparse as sp


def numba_available() -> bool:
    return importlib.util.find_spec("numba") is not None


_kernels = None


def _get_kernels():
    """Compile the njit kernel set once; raises ImportError without numba."""
    global _kernels
    if _kernels is not None:
        return _kernels
    from numba import njit, prange

    opts = dict(cache=True, fastmath=False, parallel=True)

    @njit(**opts)
    def csr_spmv(n, indptr, cols, vals, x):
        y = np.empty(n, dtype=np.float64)
        for i in prange(n):
            s = 0.0
            for jj in range(indptr[i], indptr[i + 1]):
                s += vals[jj] * x[cols[jj]]
            y[i] = s
        return y

    @njit(**opts)
    def csr_spmm(n, indptr, cols, vals, X):
        kr = X.shape[1]
        Y = np.zeros((n, kr), dtype=np.float64)
        for i in prange(n):
            for jj in range(indptr[i], indptr[i + 1]):
                a = vals[jj]
                c = cols[jj]
                for kk in range(kr):
                    Y[i, kk] += a * X[c, kk]
        return Y

    @njit(**opts)
    def ell_spmv(n, k, cols, vals, x):
        y = np.empty(n, dtype=np.float64)
        for i in prange(n):
            s = 0.0
            for c in range(k):
                col = cols[i, c]
                if col >= 0:
                    s += vals[i, c] * x[col]
            y[i] = s
        return y

    @njit(**opts)
    def ell_spmm(n, k, cols, vals, X):
        kr = X.shape[1]
        Y = np.zeros((n, kr), dtype=np.float64)
        for i in prange(n):
            for c in range(k):
                col = cols[i, c]
                if col >= 0:
                    a = vals[i, c]
                    for kk in range(kr):
                        Y[i, kk] += a * X[col, kk]
        return Y

    @njit(**opts)
    def ellr_spmv(n, k, cols, vals, rl, x):
        y = np.empty(n, dtype=np.float64)
        for i in prange(n):
            s = 0.0
            for c in range(rl[i]):
                s += vals[i, c] * x[cols[i, c]]
            y[i] = s
        return y

    @njit(**opts)
    def ellr_spmm(n, k, cols, vals, rl, X):
        kr = X.shape[1]
        Y = np.zeros((n, kr), dtype=np.float64)
        for i in prange(n):
            for c in range(rl[i]):
                a = vals[i, c]
                col = cols[i, c]
                for kk in range(kr):
                    Y[i, kk] += a * X[col, kk]
        return Y

    @njit(**opts)
    def sell_spmv(n_slices, slice_size, slice_ptr, slice_k, cols, vals, x):
        y = np.empty(n_slices * slice_size, dtype=np.float64)
        for s in prange(n_slices):
            base = slice_ptr[s]
            k = slice_k[s]
            for lane in range(slice_size):
                acc = 0.0
                for c in range(k):
                    flat = base + c * slice_size + lane
                    col = cols[flat]
                    if col >= 0:
                        acc += vals[flat] * x[col]
                y[s * slice_size + lane] = acc
        return y

    @njit(**opts)
    def sell_spmm(n_slices, slice_size, slice_ptr, slice_k, cols, vals, X):
        kr = X.shape[1]
        Y = np.zeros((n_slices * slice_size, kr), dtype=np.float64)
        for s in prange(n_slices):
            base = slice_ptr[s]
            k = slice_k[s]
            for lane in range(slice_size):
                row = s * slice_size + lane
                for c in range(k):
                    flat = base + c * slice_size + lane
                    col = cols[flat]
                    if col >= 0:
                        a = vals[flat]
                        for kk in range(kr):
                            Y[row, kk] += a * X[col, kk]
        return Y

    @njit(cache=True, fastmath=False)
    def dia_spmv(n_rows, n_cols, offsets, data, x):
        y = np.zeros(n_rows, dtype=np.float64)
        for d in range(offsets.shape[0]):
            off = offsets[d]
            lo = -off if off < 0 else 0
            hi = min(n_rows, n_cols - off)
            for i in range(lo, hi):
                y[i] += data[d, i] * x[i + off]
        return y

    @njit(cache=True, fastmath=False)
    def dia_spmm(n_rows, n_cols, offsets, data, X):
        kr = X.shape[1]
        Y = np.zeros((n_rows, kr), dtype=np.float64)
        for d in range(offsets.shape[0]):
            off = offsets[d]
            lo = -off if off < 0 else 0
            hi = min(n_rows, n_cols - off)
            for i in range(lo, hi):
                a = data[d, i]
                for kk in range(kr):
                    Y[i, kk] += a * X[i + off, kk]
        return Y

    @njit(**opts)
    def csr_jacobi_sweep(n, indptr, cols, vals, diag, X, damping, out):
        kr = X.shape[1]
        om = 1.0 - damping
        for i in prange(n):
            d = diag[i]
            for kk in range(kr):
                out[i, kk] = 0.0
            for jj in range(indptr[i], indptr[i + 1]):
                a = vals[jj]
                c = cols[jj]
                for kk in range(kr):
                    out[i, kk] += a * X[c, kk]
            if damping == 1.0:
                for kk in range(kr):
                    out[i, kk] = (d * X[i, kk] - out[i, kk]) / d
            else:
                for kk in range(kr):
                    t = (d * X[i, kk] - out[i, kk]) / d
                    out[i, kk] = om * X[i, kk] + damping * t
        return out

    @njit(**opts)
    def axpby(alpha, x, beta, y, out):
        if beta == 1.0:
            for i in prange(x.shape[0]):
                out[i] = alpha * x[i] + y[i]
        else:
            for i in prange(x.shape[0]):
                out[i] = alpha * x[i] + beta * y[i]
        return out

    @njit(cache=True, fastmath=False)
    def maxabs(v):
        m = 0.0
        for i in range(v.shape[0]):
            a = abs(v[i])
            if np.isnan(a):
                return a
            if a > m:
                m = a
        return m

    _kernels = {
        "csr_spmv": csr_spmv, "csr_spmm": csr_spmm,
        "ell_spmv": ell_spmv, "ell_spmm": ell_spmm,
        "ellr_spmv": ellr_spmv, "ellr_spmm": ellr_spmm,
        "sell_spmv": sell_spmv, "sell_spmm": sell_spmm,
        "dia_spmv": dia_spmv, "dia_spmm": dia_spmm,
        "csr_jacobi_sweep": csr_jacobi_sweep,
        "axpby": axpby, "maxabs": maxabs,
    }
    return _kernels


class NumbaBackend:
    """``@njit`` kernels behind the :class:`KernelBackend` protocol.

    Shares the native backend's prepared-array caches and composite
    (scatter/diagonal) wrappers — only the inner kernels differ.
    """

    name = "numba"
    is_reference = False

    _STRUCTURED = frozenset({"csr", "ell", "ellr", "sell",
                             "sell-c-sigma", "warped-ell",
                             "dia", "ell+dia"})
    _PRIMITIVES = frozenset({"jacobi_sweep", "axpy", "residual"})

    @staticmethod
    def available() -> bool:
        return numba_available()

    def supports(self, format_name: str, op: str) -> bool:
        if op in self._PRIMITIVES:
            return True
        if op in ("spmv", "spmm"):
            return format_name in self._STRUCTURED
        return False

    # -- products ---------------------------------------------------------

    def spmv(self, fmt, x: np.ndarray) -> np.ndarray:
        from repro.backends import native as nat
        k = _get_kernels()
        x = nat._f64(x)
        name = fmt.format_name
        if name == "csr":
            indptr, cols, vals = nat._csr_arrays(fmt)
            return k["csr_spmv"](fmt.shape[0], indptr, cols, vals, x)
        if name == "ell":
            vals, cols = nat._ell_arrays(fmt)
            return k["ell_spmv"](fmt.shape[0], fmt.k, cols, vals, x)
        if name == "ellr":
            vals, cols, rl = nat._ellr_arrays(fmt)
            return k["ellr_spmv"](fmt.shape[0], fmt.k, cols, vals, rl, x)
        if name == "dia":
            offsets, data = nat._dia_arrays(fmt)
            return k["dia_spmv"](fmt.shape[0], fmt.shape[1],
                                 offsets, data, x)
        if name == "ell+dia":
            return self.spmv(fmt.dia, x) + self.spmv(fmt.ell, x)
        # sliced family
        sptr, sk, cols, vals = nat._sell_arrays(fmt)
        y_storage = k["sell_spmv"](fmt.n_slices, fmt.slice_size,
                                   sptr, sk, cols, vals, x)[: fmt.shape[0]]
        if name == "sell":
            return y_storage
        diag = getattr(fmt, "diagonal_values", None)
        if diag is not None:
            y_storage = y_storage + diag * x[fmt.row_ids]
        y = np.empty(fmt.shape[0], dtype=np.float64)
        y[fmt.row_ids] = y_storage
        return y

    def spmm(self, fmt, X: np.ndarray) -> np.ndarray:
        from repro.backends import native as nat
        k = _get_kernels()
        X = nat._f64(X)
        name = fmt.format_name
        if name == "csr":
            indptr, cols, vals = nat._csr_arrays(fmt)
            return k["csr_spmm"](fmt.shape[0], indptr, cols, vals, X)
        if name == "ell":
            vals, cols = nat._ell_arrays(fmt)
            return k["ell_spmm"](fmt.shape[0], fmt.k, cols, vals, X)
        if name == "ellr":
            vals, cols, rl = nat._ellr_arrays(fmt)
            return k["ellr_spmm"](fmt.shape[0], fmt.k, cols, vals, rl, X)
        if name == "dia":
            offsets, data = nat._dia_arrays(fmt)
            return k["dia_spmm"](fmt.shape[0], fmt.shape[1],
                                 offsets, data, X)
        if name == "ell+dia":
            return self.spmm(fmt.dia, X) + self.spmm(fmt.ell, X)
        sptr, sk, cols, vals = nat._sell_arrays(fmt)
        Y_storage = k["sell_spmm"](fmt.n_slices, fmt.slice_size,
                                   sptr, sk, cols, vals, X)[: fmt.shape[0]]
        if name == "sell":
            return Y_storage
        diag = getattr(fmt, "diagonal_values", None)
        if diag is not None:
            Y_storage = Y_storage + diag[:, None] * X[fmt.row_ids, :]
        Y = np.empty((fmt.shape[0], X.shape[1]), dtype=np.float64)
        Y[fmt.row_ids] = Y_storage
        return Y

    # -- solver primitives ------------------------------------------------

    def jacobi_sweep(self, A, diag: np.ndarray, X: np.ndarray,
                     damping: float = 1.0,
                     out: np.ndarray | None = None) -> np.ndarray:
        from repro.backends import native as nat
        if not (sp.issparse(A) and A.format == "csr"):
            from repro.backends.reference import NumpyBackend
            return NumpyBackend().jacobi_sweep(A, diag, X, damping, out)
        k = _get_kernels()
        indptr, cols, vals = nat._csr_arrays(A)
        diag = nat._f64(diag)
        X = nat._f64(X)
        one_d = X.ndim == 1
        X2 = X[:, None] if one_d else X
        if out is None:
            out = np.empty_like(X)
        elif np.shares_memory(out, X):
            raise ValueError("jacobi_sweep out must not alias X")
        out2 = out[:, None] if one_d else out
        k["csr_jacobi_sweep"](A.shape[0], indptr, cols, vals, diag,
                              np.ascontiguousarray(X2),
                              float(damping), out2)
        return out

    def axpy(self, alpha: float, x: np.ndarray, y: np.ndarray,
             beta: float = 1.0,
             out: np.ndarray | None = None) -> np.ndarray:
        from repro.backends import native as nat
        k = _get_kernels()
        x = nat._f64(x)
        y = nat._f64(y)
        if out is None:
            out = np.empty_like(x)
        return k["axpby"](float(alpha), x, float(beta), y, out)

    def residual(self, y: np.ndarray,
                 x: np.ndarray) -> tuple[float, float]:
        from repro.backends import native as nat
        k = _get_kernels()
        y = nat._f64(y)
        x = nat._f64(x)
        y_norm = float(k["maxabs"](y)) if y.size else 0.0
        x_norm = float(k["maxabs"](x)) if x.size else 0.0
        return y_norm, x_norm
