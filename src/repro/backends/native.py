"""The ``native`` backend: JIT-compiled C kernels loaded via ctypes.

On first use the embedded C source below is compiled with the system C
compiler (``cc``/``gcc``/``clang``) into a shared library cached under
``~/.cache/repro-native`` (override with ``REPRO_NATIVE_CACHE``), keyed
by a hash of the source and flags so recompilation happens only when
the kernels change.  The library is position-independent plain C99 —
no Python API — and every call releases the GIL (ctypes ``CDLL``
semantics), so serve workers overlap kernels across threads.

Parity with the reference backend is structural, not accidental: each
kernel walks the format's storage in exactly the order the NumPy
reference does (per-row sequential accumulation for CSR, local-column
order for the ELL family, offsets order for DIA), products are rounded
before accumulation (``-ffp-contract=off`` forbids FMA contraction),
and ``-ffast-math`` is never passed.  The conformance suite asserts
bitwise agreement on every format.

OpenMP (``-fopenmp``) is attempted and silently dropped if the
toolchain lacks it; row-parallel loops do not change any per-element
accumulation order, so parallel execution preserves parity.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import shutil
import subprocess
import tempfile
import threading

import numpy as np
import scipy.sparse as sp

_C_SOURCE = r"""
#include <stdint.h>
#include <math.h>

/* Kernels mirror the NumPy reference implementations exactly:
 * per-output-element accumulation order is identical, every product is
 * rounded before it is added (compiled with -ffp-contract=off), and no
 * reassociation is permitted.  Row-parallel OpenMP loops never split a
 * single output element's accumulation, so parity survives threading. */

/* ---- CSR ------------------------------------------------------------ */

void csr_spmv(int64_t n, const int64_t *indptr, const int32_t *cols,
              const double *vals, const double *x, double *y)
{
    int64_t i;
    #pragma omp parallel for schedule(static)
    for (i = 0; i < n; ++i) {
        double sum = 0.0;
        int64_t jj;
        for (jj = indptr[i]; jj < indptr[i + 1]; ++jj)
            sum += vals[jj] * x[cols[jj]];
        y[i] = sum;
    }
}

void csr_spmm(int64_t n, int64_t kr, const int64_t *indptr,
              const int32_t *cols, const double *vals,
              const double *X, double *Y)
{
    int64_t i;
    #pragma omp parallel for schedule(static)
    for (i = 0; i < n; ++i) {
        double *yr = Y + i * kr;
        int64_t jj, kk;
        for (kk = 0; kk < kr; ++kk)
            yr[kk] = 0.0;
        for (jj = indptr[i]; jj < indptr[i + 1]; ++jj) {
            const double a = vals[jj];
            const double *xr = X + (int64_t)cols[jj] * kr;
            for (kk = 0; kk < kr; ++kk)
                yr[kk] += a * xr[kk];
        }
    }
}

/* ---- ELL / ELLR (row-major (n_padded, k) value/col arrays) ---------- */

void ell_spmv(int64_t n, int64_t k, const int32_t *cols,
              const double *vals, const double *x, double *y)
{
    int64_t i;
    #pragma omp parallel for schedule(static)
    for (i = 0; i < n; ++i) {
        const double *vrow = vals + i * k;
        const int32_t *crow = cols + i * k;
        double sum = 0.0;
        int64_t c;
        for (c = 0; c < k; ++c) {
            const int32_t col = crow[c];
            if (col >= 0)
                sum += vrow[c] * x[col];
        }
        y[i] = sum;
    }
}

void ell_spmm(int64_t n, int64_t k, int64_t kr, const int32_t *cols,
              const double *vals, const double *X, double *Y)
{
    int64_t i;
    #pragma omp parallel for schedule(static)
    for (i = 0; i < n; ++i) {
        const double *vrow = vals + i * k;
        const int32_t *crow = cols + i * k;
        double *yr = Y + i * kr;
        int64_t c, kk;
        for (kk = 0; kk < kr; ++kk)
            yr[kk] = 0.0;
        for (c = 0; c < k; ++c) {
            const int32_t col = crow[c];
            if (col >= 0) {
                const double a = vrow[c];
                const double *xr = X + (int64_t)col * kr;
                for (kk = 0; kk < kr; ++kk)
                    yr[kk] += a * xr[kk];
            }
        }
    }
}

void ellr_spmv(int64_t n, int64_t k, const int32_t *cols,
               const double *vals, const int32_t *rl,
               const double *x, double *y)
{
    int64_t i;
    #pragma omp parallel for schedule(static)
    for (i = 0; i < n; ++i) {
        const double *vrow = vals + i * k;
        const int32_t *crow = cols + i * k;
        const int64_t len = rl[i];
        double sum = 0.0;
        int64_t c;
        for (c = 0; c < len; ++c)
            sum += vrow[c] * x[crow[c]];
        y[i] = sum;
    }
}

void ellr_spmm(int64_t n, int64_t k, int64_t kr, const int32_t *cols,
               const double *vals, const int32_t *rl,
               const double *X, double *Y)
{
    int64_t i;
    #pragma omp parallel for schedule(static)
    for (i = 0; i < n; ++i) {
        const double *vrow = vals + i * k;
        const int32_t *crow = cols + i * k;
        const int64_t len = rl[i];
        double *yr = Y + i * kr;
        int64_t c, kk;
        for (kk = 0; kk < kr; ++kk)
            yr[kk] = 0.0;
        for (c = 0; c < len; ++c) {
            const double a = vrow[c];
            const double *xr = X + (int64_t)crow[c] * kr;
            for (kk = 0; kk < kr; ++kk)
                yr[kk] += a * xr[kk];
        }
    }
}

/* ---- Sliced ELL core (column-major local blocks, flat storage) ------ */

void sell_spmv(int64_t n_slices, int64_t slice_size,
               const int64_t *slice_ptr, const int64_t *slice_k,
               const int32_t *cols, const double *vals,
               const double *x, double *y)
{
    int64_t s;
    #pragma omp parallel for schedule(static)
    for (s = 0; s < n_slices; ++s) {
        const int64_t base = slice_ptr[s];
        const int64_t k = slice_k[s];
        int64_t lane, c;
        for (lane = 0; lane < slice_size; ++lane) {
            double sum = 0.0;
            for (c = 0; c < k; ++c) {
                const int64_t flat = base + c * slice_size + lane;
                const int32_t col = cols[flat];
                if (col >= 0)
                    sum += vals[flat] * x[col];
            }
            y[s * slice_size + lane] = sum;
        }
    }
}

void sell_spmm(int64_t n_slices, int64_t slice_size, int64_t kr,
               const int64_t *slice_ptr, const int64_t *slice_k,
               const int32_t *cols, const double *vals,
               const double *X, double *Y)
{
    int64_t s;
    #pragma omp parallel for schedule(static)
    for (s = 0; s < n_slices; ++s) {
        const int64_t base = slice_ptr[s];
        const int64_t k = slice_k[s];
        int64_t lane, c, kk;
        for (lane = 0; lane < slice_size; ++lane) {
            double *yr = Y + (s * slice_size + lane) * kr;
            for (kk = 0; kk < kr; ++kk)
                yr[kk] = 0.0;
            for (c = 0; c < k; ++c) {
                const int64_t flat = base + c * slice_size + lane;
                const int32_t col = cols[flat];
                if (col >= 0) {
                    const double a = vals[flat];
                    const double *xr = X + (int64_t)col * kr;
                    for (kk = 0; kk < kr; ++kk)
                        yr[kk] += a * xr[kk];
                }
            }
        }
    }
}

/* ---- DIA (row-aligned (ndiag, n_rows) data) ------------------------- */

void dia_spmv(int64_t n_rows, int64_t n_cols, int64_t ndiag,
              const int64_t *offsets, const double *data,
              const double *x, double *y)
{
    int64_t i, d;
    for (i = 0; i < n_rows; ++i)
        y[i] = 0.0;
    for (d = 0; d < ndiag; ++d) {
        const int64_t off = offsets[d];
        const int64_t lo = off < 0 ? -off : 0;
        int64_t hi = n_cols - off;
        const double *row = data + d * n_rows;
        if (hi > n_rows)
            hi = n_rows;
        #pragma omp parallel for schedule(static)
        for (i = lo; i < hi; ++i)
            y[i] += row[i] * x[i + off];
    }
}

void dia_spmm(int64_t n_rows, int64_t n_cols, int64_t ndiag, int64_t kr,
              const int64_t *offsets, const double *data,
              const double *X, double *Y)
{
    int64_t i, d;
    for (i = 0; i < n_rows * kr; ++i)
        Y[i] = 0.0;
    for (d = 0; d < ndiag; ++d) {
        const int64_t off = offsets[d];
        const int64_t lo = off < 0 ? -off : 0;
        int64_t hi = n_cols - off;
        const double *row = data + d * n_rows;
        if (hi > n_rows)
            hi = n_rows;
        #pragma omp parallel for schedule(static)
        for (i = lo; i < hi; ++i) {
            const double a = row[i];
            const double *xr = X + (i + off) * kr;
            double *yr = Y + i * kr;
            int64_t kk;
            for (kk = 0; kk < kr; ++kk)
                yr[kk] += a * xr[kk];
        }
    }
}

/* ---- fused Jacobi sweep on a CSR generator -------------------------- */

/* out = (1-damping)*X + damping * (D*X - A X) / D, column-wise over a
 * row-major (n, kr) block.  out must not alias X. */
void csr_jacobi_sweep(int64_t n, int64_t kr, const int64_t *indptr,
                      const int32_t *cols, const double *vals,
                      const double *diag, const double *X,
                      double damping, double *out)
{
    const double om = 1.0 - damping;
    int64_t i;
    /* kr == 1 is the serial-solver hot path; the dedicated scalar loop
     * (same accumulation order, so bit-identical) avoids the
     * variable-trip-count inner loops, which cost ~8x at kr = 1. */
    if (kr == 1) {
        #pragma omp parallel for schedule(static)
        for (i = 0; i < n; ++i) {
            double sum = 0.0;
            const double d = diag[i];
            int64_t jj;
            for (jj = indptr[i]; jj < indptr[i + 1]; ++jj)
                sum += vals[jj] * X[cols[jj]];
            if (damping == 1.0) {
                out[i] = (d * X[i] - sum) / d;
            } else {
                const double t = (d * X[i] - sum) / d;
                out[i] = om * X[i] + damping * t;
            }
        }
        return;
    }
    #pragma omp parallel for schedule(static)
    for (i = 0; i < n; ++i) {
        double *yr = out + i * kr;
        const double *xi = X + i * kr;
        const double d = diag[i];
        int64_t jj, kk;
        for (kk = 0; kk < kr; ++kk)
            yr[kk] = 0.0;
        for (jj = indptr[i]; jj < indptr[i + 1]; ++jj) {
            const double a = vals[jj];
            const double *xr = X + (int64_t)cols[jj] * kr;
            for (kk = 0; kk < kr; ++kk)
                yr[kk] += a * xr[kk];
        }
        if (damping == 1.0) {
            for (kk = 0; kk < kr; ++kk)
                yr[kk] = (d * xi[kk] - yr[kk]) / d;
        } else {
            for (kk = 0; kk < kr; ++kk) {
                const double t = (d * xi[kk] - yr[kk]) / d;
                yr[kk] = om * xi[kk] + damping * t;
            }
        }
    }
}

/* Row-block variant of the scalar sweep for the sharded solver: the
 * caller owns rows [row0, row0 + m) of the global system as a
 * rectangular (m, n) CSR slice and reads the full-length x.  Same
 * accumulation order and update expression as csr_jacobi_sweep's
 * kr == 1 path, so the owned block stays bitwise equal to the
 * corresponding slice of a whole-matrix sweep. */
void csr_jacobi_sweep_block(int64_t m, int64_t row0, const int64_t *indptr,
                            const int32_t *cols, const double *vals,
                            const double *diag, const double *x,
                            double damping, double *out)
{
    const double om = 1.0 - damping;
    int64_t i;
    #pragma omp parallel for schedule(static)
    for (i = 0; i < m; ++i) {
        double sum = 0.0;
        const double d = diag[i];
        const double xi = x[row0 + i];
        int64_t jj;
        for (jj = indptr[i]; jj < indptr[i + 1]; ++jj)
            sum += vals[jj] * x[cols[jj]];
        if (damping == 1.0) {
            out[i] = (d * xi - sum) / d;
        } else {
            const double t = (d * xi - sum) / d;
            out[i] = om * xi + damping * t;
        }
    }
}

/* Fused kernels over m stacked systems sharing one sparsity pattern
 * (same indptr/cols, different values) — the parameter-sweep workload.
 *
 * Systems in a sweep differ in a handful of rate constants, so most
 * matrix entries carry the SAME double in every system.  The values
 * are therefore stored as a compressed stream: entries whose value is
 * uniform across all m systems appear once; varying entries appear as
 * m interleaved doubles.  cols carries the tag in its sign bit (taken
 * negative = varying) and vofs[i] is the stream offset of row i's
 * first value, so rows decode independently.  For an 8-system sweep
 * where ~60% of entries are uniform this cuts sweep memory traffic by
 * ~40%.
 *
 * diag/X/out are (n, m) row-major — SYSTEM-INTERLEAVED: element i of
 * every system sits in one contiguous m-wide run.  Each matrix entry
 * then touches one cache line instead of m strided ones, and the
 * per-entry multiply-accumulate across systems becomes a unit-stride
 * SIMD operation.  The __AVX512F__/__AVX2__ paths below (enabled when
 * the library is compiled with -march=native) vectorize the m == 8
 * sweep lane-parallel: each lane performs the same round-to-nearest
 * multiply, then add, as the scalar loop, so results stay bitwise
 * identical — vectorizing across SYSTEMS never reassociates any
 * single system's accumulation.
 *
 * Per system the terms accumulate in column order with the exact
 * values the per-system matrices hold, so results are bit-identical
 * to m independent csr_jacobi_sweep / csr_spmv calls. */

#define REPRO_MAX_STACK 64

#if defined(__AVX512F__) || defined(__AVX2__)
#include <immintrin.h>
#endif

void csr_jacobi_sweep_stacked(int64_t n, int64_t m, const int64_t *indptr,
                              const int32_t *cols, const double *vstream,
                              const int64_t *vofs, const double *diag,
                              const double *X, double damping, double *out)
{
    const double om = 1.0 - damping;
    int64_t i;
#if defined(__AVX512F__)
    if (m == 8) {
        /* One zmm register holds all eight systems' lanes. */
        const __m512d vom = _mm512_set1_pd(om);
        const __m512d vdamp = _mm512_set1_pd(damping);
        #pragma omp parallel for schedule(static)
        for (i = 0; i < n; ++i) {
            __m512d sum = _mm512_setzero_pd();
            int64_t jj, vp = vofs[i];
            for (jj = indptr[i]; jj < indptr[i + 1]; ++jj) {
                const int32_t ct = cols[jj];
                __m512d v, x;
                if (ct >= 0) {
                    v = _mm512_set1_pd(vstream[vp++]);
                    x = _mm512_loadu_pd(X + (int64_t)ct * 8);
                } else {
                    v = _mm512_loadu_pd(vstream + vp);
                    x = _mm512_loadu_pd(X + (int64_t)(ct & 0x7fffffff) * 8);
                    vp += 8;
                }
                sum = _mm512_add_pd(sum, _mm512_mul_pd(v, x));
            }
            {
                const __m512d d = _mm512_loadu_pd(diag + i * 8);
                const __m512d xi = _mm512_loadu_pd(X + i * 8);
                __m512d t = _mm512_div_pd(
                    _mm512_sub_pd(_mm512_mul_pd(d, xi), sum), d);
                if (damping != 1.0)
                    t = _mm512_add_pd(_mm512_mul_pd(vom, xi),
                                      _mm512_mul_pd(vdamp, t));
                _mm512_storeu_pd(out + i * 8, t);
            }
        }
        return;
    }
#elif defined(__AVX2__)
    if (m == 8) {
        /* Two ymm registers cover the eight lanes. */
        const __m256d vom = _mm256_set1_pd(om);
        const __m256d vdamp = _mm256_set1_pd(damping);
        #pragma omp parallel for schedule(static)
        for (i = 0; i < n; ++i) {
            __m256d s0 = _mm256_setzero_pd();
            __m256d s1 = _mm256_setzero_pd();
            int64_t jj, vp = vofs[i];
            for (jj = indptr[i]; jj < indptr[i + 1]; ++jj) {
                const int32_t ct = cols[jj];
                __m256d v0, v1;
                const double *xc;
                if (ct >= 0) {
                    v0 = v1 = _mm256_set1_pd(vstream[vp++]);
                    xc = X + (int64_t)ct * 8;
                } else {
                    v0 = _mm256_loadu_pd(vstream + vp);
                    v1 = _mm256_loadu_pd(vstream + vp + 4);
                    xc = X + (int64_t)(ct & 0x7fffffff) * 8;
                    vp += 8;
                }
                s0 = _mm256_add_pd(s0, _mm256_mul_pd(v0, _mm256_loadu_pd(xc)));
                s1 = _mm256_add_pd(s1, _mm256_mul_pd(v1,
                                                     _mm256_loadu_pd(xc + 4)));
            }
            {
                const __m256d d0 = _mm256_loadu_pd(diag + i * 8);
                const __m256d d1 = _mm256_loadu_pd(diag + i * 8 + 4);
                const __m256d x0 = _mm256_loadu_pd(X + i * 8);
                const __m256d x1 = _mm256_loadu_pd(X + i * 8 + 4);
                __m256d t0 = _mm256_div_pd(
                    _mm256_sub_pd(_mm256_mul_pd(d0, x0), s0), d0);
                __m256d t1 = _mm256_div_pd(
                    _mm256_sub_pd(_mm256_mul_pd(d1, x1), s1), d1);
                if (damping != 1.0) {
                    t0 = _mm256_add_pd(_mm256_mul_pd(vom, x0),
                                       _mm256_mul_pd(vdamp, t0));
                    t1 = _mm256_add_pd(_mm256_mul_pd(vom, x1),
                                       _mm256_mul_pd(vdamp, t1));
                }
                _mm256_storeu_pd(out + i * 8, t0);
                _mm256_storeu_pd(out + i * 8 + 4, t1);
            }
        }
        return;
    }
#endif
    #pragma omp parallel for schedule(static)
    for (i = 0; i < n; ++i) {
        double sum[REPRO_MAX_STACK];
        int64_t jj, s, vp = vofs[i];
        for (s = 0; s < m; ++s)
            sum[s] = 0.0;
        for (jj = indptr[i]; jj < indptr[i + 1]; ++jj) {
            const int32_t ct = cols[jj];
            if (ct >= 0) {
                const double v = vstream[vp++];
                const double *xc = X + (int64_t)ct * m;
                for (s = 0; s < m; ++s)
                    sum[s] += v * xc[s];
            } else {
                const double *vr = vstream + vp;
                const double *xc = X + (int64_t)(ct & 0x7fffffff) * m;
                vp += m;
                for (s = 0; s < m; ++s)
                    sum[s] += vr[s] * xc[s];
            }
        }
        {
            const double *dr = diag + i * m;
            const double *xr = X + i * m;
            double *orow = out + i * m;
            for (s = 0; s < m; ++s) {
                const double t = (dr[s] * xr[s] - sum[s]) / dr[s];
                orow[s] = damping == 1.0 ? t : om * xr[s] + damping * t;
            }
        }
    }
}

void csr_spmv_stacked(int64_t n, int64_t m, const int64_t *indptr,
                      const int32_t *cols, const double *vstream,
                      const int64_t *vofs, const double *X, double *Y)
{
    int64_t i;
#if defined(__AVX512F__)
    if (m == 8) {
        #pragma omp parallel for schedule(static)
        for (i = 0; i < n; ++i) {
            __m512d sum = _mm512_setzero_pd();
            int64_t jj, vp = vofs[i];
            for (jj = indptr[i]; jj < indptr[i + 1]; ++jj) {
                const int32_t ct = cols[jj];
                __m512d v, x;
                if (ct >= 0) {
                    v = _mm512_set1_pd(vstream[vp++]);
                    x = _mm512_loadu_pd(X + (int64_t)ct * 8);
                } else {
                    v = _mm512_loadu_pd(vstream + vp);
                    x = _mm512_loadu_pd(X + (int64_t)(ct & 0x7fffffff) * 8);
                    vp += 8;
                }
                sum = _mm512_add_pd(sum, _mm512_mul_pd(v, x));
            }
            _mm512_storeu_pd(Y + i * 8, sum);
        }
        return;
    }
#elif defined(__AVX2__)
    if (m == 8) {
        #pragma omp parallel for schedule(static)
        for (i = 0; i < n; ++i) {
            __m256d s0 = _mm256_setzero_pd();
            __m256d s1 = _mm256_setzero_pd();
            int64_t jj, vp = vofs[i];
            for (jj = indptr[i]; jj < indptr[i + 1]; ++jj) {
                const int32_t ct = cols[jj];
                __m256d v0, v1;
                const double *xc;
                if (ct >= 0) {
                    v0 = v1 = _mm256_set1_pd(vstream[vp++]);
                    xc = X + (int64_t)ct * 8;
                } else {
                    v0 = _mm256_loadu_pd(vstream + vp);
                    v1 = _mm256_loadu_pd(vstream + vp + 4);
                    xc = X + (int64_t)(ct & 0x7fffffff) * 8;
                    vp += 8;
                }
                s0 = _mm256_add_pd(s0, _mm256_mul_pd(v0, _mm256_loadu_pd(xc)));
                s1 = _mm256_add_pd(s1, _mm256_mul_pd(v1,
                                                     _mm256_loadu_pd(xc + 4)));
            }
            _mm256_storeu_pd(Y + i * 8, s0);
            _mm256_storeu_pd(Y + i * 8 + 4, s1);
        }
        return;
    }
#endif
    #pragma omp parallel for schedule(static)
    for (i = 0; i < n; ++i) {
        double sum[REPRO_MAX_STACK];
        int64_t jj, s, vp = vofs[i];
        for (s = 0; s < m; ++s)
            sum[s] = 0.0;
        for (jj = indptr[i]; jj < indptr[i + 1]; ++jj) {
            const int32_t ct = cols[jj];
            if (ct >= 0) {
                const double v = vstream[vp++];
                const double *xc = X + (int64_t)ct * m;
                for (s = 0; s < m; ++s)
                    sum[s] += v * xc[s];
            } else {
                const double *vr = vstream + vp;
                const double *xc = X + (int64_t)(ct & 0x7fffffff) * m;
                vp += m;
                for (s = 0; s < m; ++s)
                    sum[s] += vr[s] * xc[s];
            }
        }
        {
            double *yr = Y + i * m;
            for (s = 0; s < m; ++s)
                yr[s] = sum[s];
        }
    }
}

/* ---- vector primitives ---------------------------------------------- */

void axpby(int64_t n, double alpha, const double *x,
           double beta, const double *y, double *out)
{
    int64_t i;
    if (beta == 1.0) {
        #pragma omp parallel for schedule(static)
        for (i = 0; i < n; ++i)
            out[i] = alpha * x[i] + y[i];
    } else {
        #pragma omp parallel for schedule(static)
        for (i = 0; i < n; ++i)
            out[i] = alpha * x[i] + beta * y[i];
    }
}

/* inf-norm with NaN propagation (fabs comparisons silently drop NaN). */
double maxabs(int64_t n, const double *v)
{
    double m = 0.0;
    int64_t i;
    for (i = 0; i < n; ++i) {
        const double a = fabs(v[i]);
        if (isnan(a))
            return a;
        if (a > m)
            m = a;
    }
    return m;
}
"""

#: Flags shared by every compile attempt.  ``-ffp-contract=off`` is the
#: load-bearing one: it forbids FMA contraction, which would otherwise
#: skip the per-product rounding the reference backend performs.
_BASE_FLAGS = ("-O3", "-shared", "-fPIC", "-std=c99",
               "-ffp-contract=off", "-fno-fast-math")

_lib = None
_lib_error: Exception | None = None
_lib_lock = threading.Lock()

_F64 = ctypes.POINTER(ctypes.c_double)
_I64 = ctypes.POINTER(ctypes.c_int64)
_I32 = ctypes.POINTER(ctypes.c_int32)


class NativeCompileError(RuntimeError):
    """Raised when the native kernel library cannot be built or loaded."""


def _find_compiler() -> str | None:
    for cand in (os.environ.get("CC"), "cc", "gcc", "clang"):
        if cand and shutil.which(cand):
            return cand
    return None


def _cache_dir() -> str:
    override = os.environ.get("REPRO_NATIVE_CACHE")
    if override:
        return override
    base = os.environ.get("XDG_CACHE_HOME") or os.path.join(
        os.path.expanduser("~"), ".cache")
    return os.path.join(base, "repro-native")


def _host_cpu_tag() -> str:
    """Fingerprint of the host CPU's ISA, for ``-march=native`` keys."""
    try:
        with open("/proc/cpuinfo") as fh:
            for line in fh:
                if line.startswith(("flags", "Features")):
                    return hashlib.sha256(line.encode()).hexdigest()[:8]
    except OSError:
        pass
    import platform
    probe = f"{platform.machine()}\x00{platform.processor()}"
    return hashlib.sha256(probe.encode()).hexdigest()[:8]


def _compile_library() -> str:
    cc = _find_compiler()
    if cc is None:
        raise NativeCompileError("no C compiler found (cc/gcc/clang)")
    cache = _cache_dir()
    # Preference order: host-tuned build first — the JIT compiles on the
    # machine it runs on, so -march=native is safe and unlocks the SIMD
    # paths guarded by __AVX512F__/__AVX2__ in the source (the cache key
    # carries a host-ISA fingerprint so a shared cache directory never
    # serves one machine's vectorized build to another) — then the
    # portable C99 build.  Parity is flag-independent: -ffp-contract=off
    # still forbids FMA contraction, and the SIMD paths round each
    # product before accumulating exactly like the scalar loops.
    variants = []
    for arch in (("-march=native",), ()):
        key = "\x00".join((_C_SOURCE,) + _BASE_FLAGS + arch)
        if arch:
            key += "\x00" + _host_cpu_tag()
        tag = hashlib.sha256(key.encode()).hexdigest()[:16]
        variants.append((arch, os.path.join(cache,
                                            f"repro_kernels_{tag}.so")))
    for _, sopath in variants:
        if os.path.exists(sopath):
            return sopath
    try:
        os.makedirs(cache, exist_ok=True)
    except OSError:
        cache = tempfile.mkdtemp(prefix="repro-native-")
        variants = [(arch, os.path.join(cache, os.path.basename(p)))
                    for arch, p in variants]
    with tempfile.TemporaryDirectory(dir=cache) as tmp:
        csrc = os.path.join(tmp, "kernels.c")
        with open(csrc, "w") as fh:
            fh.write(_C_SOURCE)
        tmpso = os.path.join(tmp, "kernels.so")
        last = None
        for arch, sopath in variants:
            # OpenMP first; fall back to a serial build on toolchains
            # without libgomp (the pragmas are then simply ignored).
            for extra in (("-fopenmp",), ()):
                cmd = [cc, *_BASE_FLAGS, *arch, *extra, csrc,
                       "-o", tmpso, "-lm"]
                proc = subprocess.run(cmd, capture_output=True, text=True)
                if proc.returncode == 0:
                    os.replace(tmpso, sopath)
                    return sopath
                last = proc.stderr.strip()
        raise NativeCompileError(
            f"kernel compilation failed with {cc}: {last}")


def _bind(lib) -> None:
    lib.csr_spmv.argtypes = [ctypes.c_int64, _I64, _I32, _F64, _F64, _F64]
    lib.csr_spmm.argtypes = [ctypes.c_int64, ctypes.c_int64, _I64, _I32,
                             _F64, _F64, _F64]
    lib.ell_spmv.argtypes = [ctypes.c_int64, ctypes.c_int64, _I32, _F64,
                             _F64, _F64]
    lib.ell_spmm.argtypes = [ctypes.c_int64, ctypes.c_int64, ctypes.c_int64,
                             _I32, _F64, _F64, _F64]
    lib.ellr_spmv.argtypes = [ctypes.c_int64, ctypes.c_int64, _I32, _F64,
                              _I32, _F64, _F64]
    lib.ellr_spmm.argtypes = [ctypes.c_int64, ctypes.c_int64, ctypes.c_int64,
                              _I32, _F64, _I32, _F64, _F64]
    lib.sell_spmv.argtypes = [ctypes.c_int64, ctypes.c_int64, _I64, _I64,
                              _I32, _F64, _F64, _F64]
    lib.sell_spmm.argtypes = [ctypes.c_int64, ctypes.c_int64, ctypes.c_int64,
                              _I64, _I64, _I32, _F64, _F64, _F64]
    lib.dia_spmv.argtypes = [ctypes.c_int64, ctypes.c_int64, ctypes.c_int64,
                             _I64, _F64, _F64, _F64]
    lib.dia_spmm.argtypes = [ctypes.c_int64, ctypes.c_int64, ctypes.c_int64,
                             ctypes.c_int64, _I64, _F64, _F64, _F64]
    lib.csr_jacobi_sweep.argtypes = [ctypes.c_int64, ctypes.c_int64, _I64,
                                     _I32, _F64, _F64, _F64,
                                     ctypes.c_double, _F64]
    lib.csr_jacobi_sweep_block.argtypes = [ctypes.c_int64, ctypes.c_int64,
                                           _I64, _I32, _F64, _F64, _F64,
                                           ctypes.c_double, _F64]
    lib.csr_jacobi_sweep_stacked.argtypes = [
        ctypes.c_int64, ctypes.c_int64, _I64, _I32, _F64, _I64, _F64,
        _F64, ctypes.c_double, _F64]
    lib.csr_spmv_stacked.argtypes = [
        ctypes.c_int64, ctypes.c_int64, _I64, _I32, _F64, _I64, _F64,
        _F64]
    lib.axpby.argtypes = [ctypes.c_int64, ctypes.c_double, _F64,
                          ctypes.c_double, _F64, _F64]
    lib.maxabs.argtypes = [ctypes.c_int64, _F64]
    lib.maxabs.restype = ctypes.c_double
    for name in ("csr_spmv", "csr_spmm", "ell_spmv", "ell_spmm",
                 "ellr_spmv", "ellr_spmm", "sell_spmv", "sell_spmm",
                 "dia_spmv", "dia_spmm", "csr_jacobi_sweep",
                 "csr_jacobi_sweep_block",
                 "csr_jacobi_sweep_stacked", "csr_spmv_stacked", "axpby"):
        getattr(lib, name).restype = None


def get_library():
    """Compile (once) and load the kernel library; raises on failure."""
    global _lib, _lib_error
    if _lib is not None:
        return _lib
    if _lib_error is not None:
        raise _lib_error
    with _lib_lock:
        if _lib is not None:
            return _lib
        if _lib_error is not None:
            raise _lib_error
        try:
            lib = ctypes.CDLL(_compile_library())
            _bind(lib)
        except (OSError, NativeCompileError) as exc:
            _lib_error = (exc if isinstance(exc, NativeCompileError)
                          else NativeCompileError(str(exc)))
            raise _lib_error
        _lib = lib
    return _lib


def _p64(a: np.ndarray):
    return a.ctypes.data_as(_F64)


def _pi64(a: np.ndarray):
    return a.ctypes.data_as(_I64)


def _pi32(a: np.ndarray):
    return a.ctypes.data_as(_I32)


def _f64(a: np.ndarray) -> np.ndarray:
    return np.ascontiguousarray(a, dtype=np.float64)


# Per-matrix cache of float64 vector pointers keyed by array identity.
# Solvers sweep back and forth between a small, stable set of buffers
# (iterate/scratch pairs, the diagonal), so after the first iteration
# every lookup hits.  Entries hold a strong reference to the array, so
# an ``id`` can never be recycled while its pointer is still cached —
# the ``is`` check below is therefore exact, not heuristic.

_PTRS_ATTR = "_repro_native_vec_ptrs"
_PTRS_MAX = 32


def _vec_ptr_cache(A):
    cache = getattr(A, _PTRS_ATTR, None)
    if cache is None:
        cache = {}
        try:
            setattr(A, _PTRS_ATTR, cache)
        except (AttributeError, TypeError):
            return None
    return cache


def _cached_p64(cache, a: np.ndarray):
    if cache is None:
        return _p64(a)
    hit = cache.get(id(a))
    if hit is not None and hit[0] is a:
        return hit[1]
    p = _p64(a)
    if len(cache) >= _PTRS_MAX:
        cache.clear()
    cache[id(a)] = (a, p)
    return p


# -- per-matrix prepared arrays -------------------------------------------
#
# Kernels take int64 row pointers and int32 column indices; the formats
# store a mix (CSRMatrix keeps an int64 indptr, ``as_csr`` produces
# int32).  Normalization is O(n) so it is done once and stashed on the
# matrix object — all formats in this codebase are immutable after
# construction, and SciPy matrices flowing through the solvers are
# treated as such.

_PREP_ATTR = "_repro_native_prep"


def _prep(obj, build):
    cached = getattr(obj, _PREP_ATTR, None)
    if cached is None:
        cached = build()
        try:
            setattr(obj, _PREP_ATTR, cached)
        except (AttributeError, TypeError):
            pass
    return cached


def _csr_arrays(A):
    """Prepared CSR triplet plus its ctypes pointers.

    Returns ``(indptr, cols, vals, p_indptr, p_cols, p_vals)``.  The
    pointers ride in the per-matrix cache because building one costs
    microseconds per call (``ndarray.ctypes`` allocates a fresh helper
    every access), which dominates small-system sweeps; the arrays are
    kept alongside so the buffers the pointers address stay alive.
    """
    def build():
        if sp.issparse(A):
            indptr, cols, vals = A.indptr, A.indices, A.data
        else:  # CSRMatrix
            indptr, cols, vals = A.indptr, A.col_indices, A.values
        indptr = np.ascontiguousarray(indptr, dtype=np.int64)
        cols = np.ascontiguousarray(cols, dtype=np.int32)
        vals = _f64(vals)
        return (indptr, cols, vals,
                _pi64(indptr), _pi32(cols), _p64(vals))
    return _prep(A, build)


# Stacked-system preparation for the fused multi-system sweep: checked
# shared structure plus the interleaved (nnz, m) value block, cached on
# the first system keyed by the identity of the whole list (the cache
# pins references to every system, so the ids cannot be recycled while
# the entry is alive).  A cached ``None`` payload records "this list
# does not share structure" so the check runs once, not per sweep.

_STACK_ATTR = "_repro_native_stacked"
_STACK_MAX = 64


def _stacked_arrays(systems):
    head = systems[0]
    cached = getattr(head, _STACK_ATTR, None)
    # Fast path: the exact list object we prepared for (callers hold a
    # stable list across a batch of sweeps and must not mutate it in
    # place — the contract documented on jacobi_sweep_many).
    if cached is not None and cached[3] is systems:
        return cached[1]
    key = tuple(map(id, systems))
    if cached is not None and cached[0] == key:
        try:    # re-pin the fast path to the caller's current list
            setattr(head, _STACK_ATTR, cached[:3] + (systems,))
        except (AttributeError, TypeError):
            pass
        return cached[1]
    payload = None
    if all(sp.issparse(A) and A.format == "csr" for A in systems):
        preps = [_csr_arrays(A) for A in systems]
        indptr, cols = preps[0][0], preps[0][1]
        if all(np.array_equal(p[0], indptr) and np.array_equal(p[1], cols)
               for p in preps[1:]):
            m = len(systems)
            nnz = cols.shape[0]
            V = np.empty((nnz, m), dtype=np.float64)
            for s, p in enumerate(preps):
                V[:, s] = p[2]
            # Compress: entries uniform across every system are stored
            # once in the stream, varying entries as m interleaved
            # doubles; the tag rides in the column index's sign bit.
            uni = np.all(V == V[:, :1], axis=1)
            sizes = np.where(uni, 1, m).astype(np.int64)
            starts = np.concatenate(([0], np.cumsum(sizes)))
            vstream = np.empty(starts[-1], dtype=np.float64)
            vstream[starts[:-1][uni]] = V[uni, 0]
            vary = np.flatnonzero(~uni)
            if vary.size:
                idx = starts[:-1][vary, None] + np.arange(m)
                vstream[idx] = V[vary]
            vofs = starts[indptr[:-1]]
            tagged = cols.copy()
            tagged[~uni] |= np.int32(-2147483648)
            payload = (indptr, tagged, vstream, vofs,
                       _pi64(indptr), _pi32(tagged), _p64(vstream),
                       _pi64(vofs))
    try:
        setattr(head, _STACK_ATTR, (key, payload, tuple(systems), systems))
    except (AttributeError, TypeError):
        pass
    return payload


def _ell_arrays(fmt):
    def build():
        return (np.ascontiguousarray(fmt.values, dtype=np.float64),
                np.ascontiguousarray(fmt.cols, dtype=np.int32))
    return _prep(fmt, build)


def _ellr_arrays(fmt):
    def build():
        return (np.ascontiguousarray(fmt.values, dtype=np.float64),
                np.ascontiguousarray(fmt.cols, dtype=np.int32),
                np.ascontiguousarray(fmt.rl, dtype=np.int32))
    return _prep(fmt, build)


def _sell_arrays(fmt):
    def build():
        return (np.ascontiguousarray(fmt.slice_ptr, dtype=np.int64),
                np.ascontiguousarray(fmt.slice_k, dtype=np.int64),
                np.ascontiguousarray(fmt.cols, dtype=np.int32),
                np.ascontiguousarray(fmt.values, dtype=np.float64))
    return _prep(fmt, build)


def _dia_arrays(fmt):
    def build():
        return (np.ascontiguousarray(fmt.offsets, dtype=np.int64),
                np.ascontiguousarray(fmt.data, dtype=np.float64))
    return _prep(fmt, build)


# -- kernel wrappers -------------------------------------------------------


def _csr_spmv(fmt, x):
    lib = get_library()
    _, _, _, pi, pc, pv = _csr_arrays(fmt)
    x = _f64(x)
    y = np.empty(fmt.shape[0], dtype=np.float64)
    lib.csr_spmv(fmt.shape[0], pi, pc, pv, _p64(x), _p64(y))
    return y


def _csr_spmm(fmt, X):
    lib = get_library()
    _, _, _, pi, pc, pv = _csr_arrays(fmt)
    X = _f64(X)
    Y = np.empty((fmt.shape[0], X.shape[1]), dtype=np.float64)
    lib.csr_spmm(fmt.shape[0], X.shape[1], pi, pc, pv, _p64(X), _p64(Y))
    return Y


def _ell_spmv(fmt, x):
    lib = get_library()
    vals, cols = _ell_arrays(fmt)
    x = _f64(x)
    y = np.empty(fmt.shape[0], dtype=np.float64)
    lib.ell_spmv(fmt.shape[0], fmt.k, _pi32(cols), _p64(vals),
                 _p64(x), _p64(y))
    return y


def _ell_spmm(fmt, X):
    lib = get_library()
    vals, cols = _ell_arrays(fmt)
    X = _f64(X)
    Y = np.empty((fmt.shape[0], X.shape[1]), dtype=np.float64)
    lib.ell_spmm(fmt.shape[0], fmt.k, X.shape[1], _pi32(cols), _p64(vals),
                 _p64(X), _p64(Y))
    return Y


def _ellr_spmv(fmt, x):
    lib = get_library()
    vals, cols, rl = _ellr_arrays(fmt)
    x = _f64(x)
    y = np.empty(fmt.shape[0], dtype=np.float64)
    lib.ellr_spmv(fmt.shape[0], fmt.k, _pi32(cols), _p64(vals), _pi32(rl),
                  _p64(x), _p64(y))
    return y


def _ellr_spmm(fmt, X):
    lib = get_library()
    vals, cols, rl = _ellr_arrays(fmt)
    X = _f64(X)
    Y = np.empty((fmt.shape[0], X.shape[1]), dtype=np.float64)
    lib.ellr_spmm(fmt.shape[0], fmt.k, X.shape[1], _pi32(cols), _p64(vals),
                  _pi32(rl), _p64(X), _p64(Y))
    return Y


def _sell_core_spmv(fmt, x):
    """Sliced product in *storage* row order, full padded length."""
    lib = get_library()
    slice_ptr, slice_k, cols, vals = _sell_arrays(fmt)
    x = _f64(x)
    y = np.empty(fmt.n_padded, dtype=np.float64)
    lib.sell_spmv(fmt.n_slices, fmt.slice_size, _pi64(slice_ptr),
                  _pi64(slice_k), _pi32(cols), _p64(vals), _p64(x), _p64(y))
    return y


def _sell_core_spmm(fmt, X):
    lib = get_library()
    slice_ptr, slice_k, cols, vals = _sell_arrays(fmt)
    X = _f64(X)
    Y = np.empty((fmt.n_padded, X.shape[1]), dtype=np.float64)
    lib.sell_spmm(fmt.n_slices, fmt.slice_size, X.shape[1],
                  _pi64(slice_ptr), _pi64(slice_k), _pi32(cols), _p64(vals),
                  _p64(X), _p64(Y))
    return Y


def _sell_spmv(fmt, x):
    return _sell_core_spmv(fmt, x)[: fmt.shape[0]]


def _sell_spmm(fmt, X):
    return _sell_core_spmm(fmt, X)[: fmt.shape[0]]


def _permuted_spmv(fmt, x):
    """sell-c-sigma / warped-ell: sliced core + scatter (+ diagonal)."""
    y_storage = _sell_core_spmv(fmt, x)[: fmt.shape[0]]
    diag = getattr(fmt, "diagonal_values", None)
    if diag is not None:
        y_storage = y_storage + diag * x[fmt.row_ids]
    y = np.empty(fmt.shape[0], dtype=np.float64)
    y[fmt.row_ids] = y_storage
    return y


def _permuted_spmm(fmt, X):
    Y_storage = _sell_core_spmm(fmt, X)[: fmt.shape[0]]
    diag = getattr(fmt, "diagonal_values", None)
    if diag is not None:
        Y_storage = Y_storage + diag[:, None] * X[fmt.row_ids, :]
    Y = np.empty((fmt.shape[0], X.shape[1]), dtype=np.float64)
    Y[fmt.row_ids] = Y_storage
    return Y


def _dia_spmv(fmt, x):
    lib = get_library()
    offsets, data = _dia_arrays(fmt)
    x = _f64(x)
    y = np.empty(fmt.shape[0], dtype=np.float64)
    lib.dia_spmv(fmt.shape[0], fmt.shape[1], offsets.shape[0],
                 _pi64(offsets), _p64(data), _p64(x), _p64(y))
    return y


def _dia_spmm(fmt, X):
    lib = get_library()
    offsets, data = _dia_arrays(fmt)
    X = _f64(X)
    Y = np.empty((fmt.shape[0], X.shape[1]), dtype=np.float64)
    lib.dia_spmm(fmt.shape[0], fmt.shape[1], offsets.shape[0], X.shape[1],
                 _pi64(offsets), _p64(data), _p64(X), _p64(Y))
    return Y


def _ell_dia_spmv(fmt, x):
    return _dia_spmv(fmt.dia, x) + _ell_spmv(fmt.ell, x)


def _ell_dia_spmm(fmt, X):
    return _dia_spmm(fmt.dia, X) + _ell_spmm(fmt.ell, X)


_SPMV = {
    "csr": _csr_spmv,
    "ell": _ell_spmv,
    "ellr": _ellr_spmv,
    "sell": _sell_spmv,
    "sell-c-sigma": _permuted_spmv,
    "warped-ell": _permuted_spmv,
    "dia": _dia_spmv,
    "ell+dia": _ell_dia_spmv,
}

_SPMM = {
    "csr": _csr_spmm,
    "ell": _ell_spmm,
    "ellr": _ellr_spmm,
    "sell": _sell_spmm,
    "sell-c-sigma": _permuted_spmm,
    "warped-ell": _permuted_spmm,
    "dia": _dia_spmm,
    "ell+dia": _ell_dia_spmm,
}

#: Format-independent solver primitives this backend provides.
_PRIMITIVES = frozenset({"jacobi_sweep", "axpy", "residual"})


class NativeBackend:
    """JIT-compiled C kernels behind the :class:`KernelBackend` protocol.

    COO is deliberately unsupported (its scatter-add reference has no
    deterministic per-row order to mirror), so it exercises the
    registry's reference-fallback path.
    """

    name = "native"
    is_reference = False

    @staticmethod
    def available() -> bool:
        """Whether the kernel library compiles and loads on this host."""
        try:
            get_library()
        except NativeCompileError:
            return False
        return True

    def supports(self, format_name: str, op: str) -> bool:
        if op in _PRIMITIVES:
            return True
        if op == "spmv":
            return format_name in _SPMV
        if op == "spmm":
            return format_name in _SPMM
        return False

    def spmv(self, fmt, x: np.ndarray) -> np.ndarray:
        return _SPMV[fmt.format_name](fmt, x)

    def spmm(self, fmt, X: np.ndarray) -> np.ndarray:
        return _SPMM[fmt.format_name](fmt, X)

    def jacobi_sweep(self, A, diag: np.ndarray, X: np.ndarray,
                     damping: float = 1.0,
                     out: np.ndarray | None = None) -> np.ndarray:
        if not (sp.issparse(A) and A.format == "csr"):
            # Non-CSR generators (dense test doubles, format objects)
            # take the reference formula; the protocol only promises
            # acceleration for the canonical CSR system matrix.
            from repro.backends.reference import NumpyBackend
            return NumpyBackend().jacobi_sweep(A, diag, X, damping, out)
        lib = get_library()
        _, _, _, pi, pc, pv = _csr_arrays(A)
        diag = _f64(diag)
        X = _f64(X)
        kr = 1 if X.ndim == 1 else X.shape[1]
        if out is None:
            out = np.empty_like(X)
        elif np.shares_memory(out, X):
            raise ValueError("jacobi_sweep out must not alias X")
        ptrs = _vec_ptr_cache(A)
        lib.csr_jacobi_sweep(A.shape[0], kr, pi, pc, pv,
                             _cached_p64(ptrs, diag),
                             _cached_p64(ptrs, X),
                             float(damping),
                             _cached_p64(ptrs, out))
        return out

    def jacobi_sweep_block(self, local, diag: np.ndarray, x: np.ndarray,
                           row_start: int,
                           damping: float = 1.0) -> np.ndarray:
        """Row-block sweep for the sharded solver (see the reference).

        *local* is the owned rows' rectangular ``(m, n)`` CSR slice,
        *x* the full-length iterate.  Falls back to the reference
        formula for non-CSR slices.  An extension method discovered
        via ``getattr`` (not part of the core protocol ops).
        """
        if not (sp.issparse(local) and local.format == "csr"):
            from repro.backends.reference import NumpyBackend
            return NumpyBackend().jacobi_sweep_block(
                local, diag, x, row_start, damping)
        lib = get_library()
        _, _, _, pi, pc, pv = _csr_arrays(local)
        diag = _f64(diag)
        x = _f64(x)
        out = np.empty(local.shape[0], dtype=np.float64)
        ptrs = _vec_ptr_cache(local)
        lib.csr_jacobi_sweep_block(local.shape[0], int(row_start),
                                   pi, pc, pv,
                                   _cached_p64(ptrs, diag),
                                   _cached_p64(ptrs, x),
                                   float(damping), _p64(out))
        return out

    def can_stack(self, systems) -> bool:
        """True when the fused stacked kernels apply to ``systems``.

        Lets callers pick the interleaved block layout up front instead
        of discovering mid-solve that the fused path does not apply.
        """
        return (1 <= len(systems) <= _STACK_MAX
                and _stacked_arrays(systems) is not None)

    def jacobi_sweep_many(self, systems, diag: np.ndarray, X: np.ndarray,
                          damping: float = 1.0,
                          out: np.ndarray | None = None):
        """Fused sweep over stacked systems with shared sparsity.

        ``diag``/``X``/``out`` are ``(n, m)`` system-interleaved blocks:
        column ``s`` belongs to ``systems[s]``, so element ``i`` of all
        ``m`` systems occupies one contiguous run — the layout the SIMD
        kernels vectorize across.  Returns ``out`` (bit-identical to
        ``m`` independent :meth:`jacobi_sweep` calls), or ``None`` when
        the fused path does not apply — systems that do not share one
        sparsity pattern, non-CSR inputs, or more than ``_STACK_MAX``
        systems.  Callers must treat ``None`` as "fall back to
        per-system sweeps", never as an error, and must not mutate the
        ``systems`` list in place between calls (pass a fresh list
        instead — preparation is cached against the list's contents).
        """
        m = len(systems)
        if not 1 <= m <= _STACK_MAX:
            return None
        prep = _stacked_arrays(systems)
        if prep is None:
            return None
        lib = get_library()
        pi, pc, pv, po = prep[4:]
        n = systems[0].shape[0]
        diag = _f64(diag)
        X = _f64(X)
        if diag.shape != (n, m) or X.shape != (n, m):
            return None
        if out is None:
            out = np.empty_like(X)
        elif (out.shape != X.shape or out.dtype != np.float64
                or not out.flags["C_CONTIGUOUS"]):
            return None
        elif np.shares_memory(out, X):
            raise ValueError("jacobi_sweep_many out must not alias X")
        ptrs = _vec_ptr_cache(systems[0])
        lib.csr_jacobi_sweep_stacked(n, m, pi, pc, pv, po,
                                     _cached_p64(ptrs, diag),
                                     _cached_p64(ptrs, X),
                                     float(damping),
                                     _cached_p64(ptrs, out))
        return out

    def spmv_many(self, systems, X: np.ndarray,
                  out: np.ndarray | None = None):
        """Stacked products ``Y[:, s] = systems[s] @ X[:, s]`` fused.

        Same contract as :meth:`jacobi_sweep_many`: ``(n, m)``
        system-interleaved blocks, ``None`` when the fused path does
        not apply, results bit-equal to per-system products (scipy's
        CSR accumulation order).
        """
        m = len(systems)
        if not 1 <= m <= _STACK_MAX:
            return None
        prep = _stacked_arrays(systems)
        if prep is None:
            return None
        lib = get_library()
        pi, pc, pv, po = prep[4:]
        n = systems[0].shape[0]
        X = _f64(X)
        if X.shape != (n, m):
            return None
        if out is None:
            out = np.empty_like(X)
        elif (out.shape != X.shape or out.dtype != np.float64
                or not out.flags["C_CONTIGUOUS"]):
            return None
        ptrs = _vec_ptr_cache(systems[0])
        lib.csr_spmv_stacked(n, m, pi, pc, pv, po,
                             _cached_p64(ptrs, X),
                             _cached_p64(ptrs, out))
        return out

    def axpy(self, alpha: float, x: np.ndarray, y: np.ndarray,
             beta: float = 1.0,
             out: np.ndarray | None = None) -> np.ndarray:
        lib = get_library()
        x = _f64(x)
        y = _f64(y)
        if out is None:
            out = np.empty_like(x)
        lib.axpby(x.shape[0], float(alpha), _p64(x), float(beta),
                  _p64(y), _p64(out))
        return out

    def residual(self, y: np.ndarray,
                 x: np.ndarray) -> tuple[float, float]:
        lib = get_library()
        y = _f64(y)
        x = _f64(x)
        y_norm = float(lib.maxabs(y.shape[0], _p64(y))) if y.size else 0.0
        x_norm = float(lib.maxabs(x.shape[0], _p64(x))) if x.size else 0.0
        return y_norm, x_norm
