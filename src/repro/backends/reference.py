"""The ``numpy`` reference backend.

This is the arithmetic ground truth of the kernel protocol: the exact
per-format NumPy kernels the sparse formats have always carried (each
format keeps its implementation as ``_reference_spmv``/``_reference_spmm``
— the moved inner loops), plus the solver primitives extracted from
:mod:`repro.solvers.jacobi` and :mod:`repro.solvers.batched`.

It supports every format and every op, which makes it the automatic
fallback whenever a faster backend lacks a kernel for a ``(format,
op)`` pair.  Other backends must match its traversal/accumulation
order bit for bit (see :mod:`repro.backends.protocol`).
"""

from __future__ import annotations

import numpy as np


class NumpyBackend:
    """Reference kernels: the formats' own NumPy inner loops."""

    name = "numpy"
    is_reference = True

    @staticmethod
    def available() -> bool:
        return True

    def supports(self, format_name: str, op: str) -> bool:
        # The reference implements every op for every format (the base
        # class supplies generic fallbacks where a format has none).
        return True

    # -- per-format products ---------------------------------------------

    def spmv(self, fmt, x: np.ndarray) -> np.ndarray:
        return fmt._reference_spmv(x)

    def spmm(self, fmt, X: np.ndarray) -> np.ndarray:
        return fmt._reference_spmm(X)

    # -- solver primitives -----------------------------------------------

    def jacobi_sweep(self, A, diag: np.ndarray, X: np.ndarray,
                     damping: float = 1.0,
                     out: np.ndarray | None = None) -> np.ndarray:
        """``X' = (D∘X - A X) / D``, optionally damping-blended.

        The 1-D path is :class:`~repro.solvers.jacobi.JacobiSolver`'s
        historical fast step (``-(y - d∘x)/d``); the 2-D path is the
        in-place ufunc chain from :mod:`repro.solvers.batched` —
        bitwise identical formulas (IEEE rounding is symmetric under
        the sign flip), one temporary instead of four.
        """
        Y = A @ X
        if X.ndim == 1:
            new = -(Y - diag * X) / diag
            if damping != 1.0:
                new = (1.0 - damping) * X + damping * new
            if out is not None:
                np.copyto(out, new)
                return out
            return new
        D = diag if diag.ndim == 2 else diag[:, None]
        S = np.empty_like(X) if out is None else out
        np.multiply(D, X, out=S)
        np.subtract(S, Y, out=S)
        np.divide(S, D, out=S)
        if damping != 1.0:
            B = np.multiply(X, 1.0 - damping)
            np.multiply(S, damping, out=S)
            np.add(B, S, out=S)
        return S

    def jacobi_sweep_block(self, local, diag: np.ndarray, x: np.ndarray,
                           row_start: int,
                           damping: float = 1.0) -> np.ndarray:
        """Row-block Jacobi sweep for the sharded solver.

        *local* is the rectangular ``(m, n)`` slice of the generator
        owning rows ``[row_start, row_start + m)``; *x* is the
        full-length iterate and *diag* the owned rows' diagonal.
        Returns the updated owned block.  Because elementwise ufuncs
        are value-wise, the result is bitwise equal to the owned slice
        of a full :meth:`jacobi_sweep` on the whole matrix — the
        property the barrier-mode parity guarantee rests on.
        """
        y = local @ x
        xb = x[row_start:row_start + diag.shape[0]]
        new = -(y - diag * xb) / diag
        if damping != 1.0:
            new = (1.0 - damping) * xb + damping * new
        return new

    def axpy(self, alpha: float, x: np.ndarray, y: np.ndarray,
             beta: float = 1.0,
             out: np.ndarray | None = None) -> np.ndarray:
        """``alpha*x + beta*y``, elementwise, in evaluation order
        ``(alpha*x_i) + (beta*y_i)``."""
        res = np.multiply(x, alpha, out=out)
        if beta == 1.0:
            np.add(res, y, out=res)
        else:
            np.add(res, beta * y, out=res)
        return res

    def residual(self, y: np.ndarray,
                 x: np.ndarray) -> tuple[float, float]:
        """``(||y||_inf, ||x||_inf)`` — the stopping-test reductions."""
        y_norm = float(np.abs(y).max()) if y.size else 0.0
        x_norm = float(np.abs(x).max()) if x.size else 0.0
        return y_norm, x_norm
