"""The :class:`KernelBackend` protocol — one seam per hot operation.

Every hot numeric operation in the reproduction (format-faithful SpMV,
multi-RHS SpMM, the fused Jacobi sweep, and the small vector primitives
the solver loop is made of) goes through a *kernel backend*.  A backend
is an object implementing this protocol; the package ships three:

``numpy``
    The reference backend (:mod:`repro.backends.reference`): the exact
    per-format NumPy kernels the formats have always used, extracted
    into one place.  It supports every format and op and is the
    fallback target whenever another backend lacks a kernel.
``native``
    A JIT-compiled C backend (:mod:`repro.backends.native`): the kernel
    source is compiled with the system C compiler on first use and
    loaded through :mod:`ctypes`.  Available wherever ``cc`` is.
``numba``
    ``@njit`` kernels (:mod:`repro.backends.numba_backend`); registered
    only when Numba is importable (the ``repro[native]`` extra).

Operations
----------

``spmv(fmt, x)`` / ``spmm(fmt, X)``
    The per-format products.  Arguments are already validated (dtype
    float64, contiguous, right shape) by the
    :class:`~repro.sparse.base.SparseFormat` entry points; backends may
    rely on that.
``jacobi_sweep(A, diag, X, damping=1.0, out=None)``
    One fused weighted-Jacobi sweep for ``A x = 0`` on a SciPy CSR
    generator: ``X' = (D∘X - A X) / D`` blended with ``damping``.
    ``X`` is ``(n,)`` or a C-contiguous ``(n, k)`` block (the batched
    multi-RHS path).  ``out``, when given, must not alias ``X``.
``axpy(alpha, x, y, beta=1.0, out=None)``
    The blend primitive ``alpha*x + beta*y`` (the damping update).
``residual(y, x)``
    ``(||y||_inf, ||x||_inf)`` in one pass — the two reductions of the
    paper's normalized stopping criterion.

Capability flags
----------------

:meth:`KernelBackend.supports` declares which ``(format_name, op)``
pairs a backend can serve.  The registry consults it on every dispatch
and silently falls back to the reference backend for unsupported pairs
(the fallback is recorded in the kernel telemetry counters, see
:func:`repro.backends.kernel_stats`).  Vector primitives
(``jacobi_sweep``/``axpy``/``residual``) are format-independent: a
backend either has them or not, signalled by ``supports("", op)``.

Numerical contract
------------------

Backends must reproduce the reference backend's per-element traversal
and accumulation order, so results agree bitwise (or within 1 ulp where
an optimizing compiler reassociates a fused multiply-add).  The
conformance suite (``tests/backends/test_conformance.py``) enforces
this on every registered backend × format pair.  ``fastmath``-style
reassociation is therefore forbidden in JIT backends.
"""

from __future__ import annotations

from typing import Protocol, runtime_checkable

import numpy as np

#: Every operation a backend may implement.
OPS = ("spmv", "spmm", "jacobi_sweep", "axpy", "residual")

#: Format keys (``SparseFormat.format_name``) a structured backend is
#: expected to cover to accelerate the whole paper pipeline.
CORE_FORMATS = ("csr", "ell", "ellr", "sell", "sell-c-sigma",
                "warped-ell", "ell+dia", "dia")


@runtime_checkable
class KernelBackend(Protocol):
    """Structural protocol of a compute-kernel backend."""

    #: Registry name (``"numpy"``, ``"native"``, ``"numba"``, ...).
    name: str

    #: True only for the reference backend — the fallback target.
    is_reference: bool

    def supports(self, format_name: str, op: str) -> bool:
        """Whether this backend has a kernel for ``(format_name, op)``."""
        ...

    def spmv(self, fmt, x: np.ndarray) -> np.ndarray: ...

    def spmm(self, fmt, X: np.ndarray) -> np.ndarray: ...

    def jacobi_sweep(self, A, diag: np.ndarray, X: np.ndarray,
                     damping: float = 1.0,
                     out: np.ndarray | None = None) -> np.ndarray: ...

    def axpy(self, alpha: float, x: np.ndarray, y: np.ndarray,
             beta: float = 1.0,
             out: np.ndarray | None = None) -> np.ndarray: ...

    def residual(self, y: np.ndarray,
                 x: np.ndarray) -> tuple[float, float]: ...
