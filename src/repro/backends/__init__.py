"""Pluggable kernel backends for the sparse/solver hot paths.

Every hot operation — per-format SpMV/SpMM, the fused Jacobi sweep,
and the solver's vector primitives — dispatches through a
:class:`~repro.backends.protocol.KernelBackend` selected here.

Selection precedence (first hit wins):

1. an explicit ``backend=`` argument on the format/solver call;
2. the innermost active :func:`use` context;
3. the ``REPRO_BACKEND`` environment variable;
4. the process default set by :func:`set_default`;
5. the ``numpy`` reference backend.

Explicit selections (1, 2) of an unknown or unavailable backend raise
:class:`~repro.errors.BackendError`; ambient selections (3, 4) warn
once and degrade to the reference backend, so e.g. inheriting
``REPRO_BACKEND=numba`` in an environment without Numba never breaks a
run.  When the selected backend lacks a kernel for a specific
``(format, op)`` pair the registry silently serves it from the
reference backend instead — recorded, like every dispatch, in the
telemetry counters exposed by :func:`kernel_stats`.

Shipped backends: ``numpy`` (reference, always available), ``native``
(JIT-compiled C via ctypes, available wherever a C compiler is), and
``numba`` (``@njit``, available when the optional ``repro[native]``
extra is installed).
"""

from __future__ import annotations

import contextlib
import contextvars
import os
import threading
import warnings
from collections import Counter

from repro.backends.protocol import CORE_FORMATS, OPS, KernelBackend
from repro.backends.reference import NumpyBackend
from repro.errors import BackendError

__all__ = [
    "CORE_FORMATS",
    "OPS",
    "KernelBackend",
    "available_backends",
    "get_backend",
    "kernel_stats",
    "list_backends",
    "register_backend",
    "reset_kernel_stats",
    "resolve",
    "serving",
    "set_default",
    "use",
]

#: Environment variable consulted on every resolve (read per call so
#: tests and CLI subprocesses can flip it without re-importing).
ENV_VAR = "REPRO_BACKEND"

#: Per-(backend, format, op) dispatch counters; the span annotations in
#: solvers/gpusim cover *where*, these cover *how often* and expose the
#: silent fallback volume.
_SERVED: Counter = Counter()
_SERVED_LOCK = threading.Lock()

_REGISTRY: dict[str, type] = {}
_INSTANCES: dict[str, KernelBackend] = {}
_INSTANCE_LOCK = threading.Lock()

_default_name: str | None = None
_active: contextvars.ContextVar[str | None] = contextvars.ContextVar(
    "repro_backend", default=None)

#: Ambient (env/default) selections that already warned about being
#: unavailable, so a long run logs each degradation once.
_WARNED: set[str] = set()


def register_backend(name: str, cls: type) -> None:
    """Register a backend class.

    ``cls`` must implement the :class:`KernelBackend` protocol and
    provide a static/class-level ``available() -> bool``; instances are
    created lazily, once, on first resolve.
    """
    _REGISTRY[name] = cls


def list_backends() -> tuple[str, ...]:
    """Names of all registered backends (available or not)."""
    return tuple(_REGISTRY)


def available_backends() -> tuple[str, ...]:
    """Names of backends that can actually serve on this host."""
    return tuple(n for n, cls in _REGISTRY.items() if cls.available())


def get_backend(name: str) -> KernelBackend:
    """The (singleton) backend instance for *name*.

    Raises :class:`BackendError` for unknown names and for registered
    backends whose dependency is missing on this host.
    """
    inst = _INSTANCES.get(name)
    if inst is not None:
        return inst
    cls = _REGISTRY.get(name)
    if cls is None:
        raise BackendError(
            f"unknown backend {name!r}; registered: {list_backends()}")
    if not cls.available():
        raise BackendError(
            f"backend {name!r} is not available on this host "
            f"(available: {available_backends()})")
    with _INSTANCE_LOCK:
        inst = _INSTANCES.get(name)
        if inst is None:
            inst = cls()
            _INSTANCES[name] = inst
    return inst


def set_default(name: str | None) -> None:
    """Set (or with ``None`` clear) the process-wide default backend.

    Validates eagerly: setting an unknown/unavailable default raises
    immediately rather than at the first kernel call.
    """
    global _default_name
    if name is not None:
        get_backend(name)
    _default_name = name


@contextlib.contextmanager
def use(name: str):
    """Context manager selecting *name* for all kernels in the block.

    Context-local (``contextvars``), so concurrent serve workers can
    pin different backends without interfering.
    """
    get_backend(name)  # explicit selection: validate eagerly, raise loudly
    token = _active.set(name)
    try:
        yield
    finally:
        _active.reset(token)


def _ambient(name: str, source: str) -> KernelBackend | None:
    """Resolve an env/default selection, degrading with a one-time warning."""
    try:
        return get_backend(name)
    except BackendError as exc:
        key = f"{source}:{name}"
        if key not in _WARNED:
            _WARNED.add(key)
            warnings.warn(
                f"{source} selects backend {name!r} but it is unavailable "
                f"({exc}); falling back to the reference backend",
                RuntimeWarning, stacklevel=3)
        return None


def resolve(backend=None) -> KernelBackend:
    """The backend the current call should use (see module docstring).

    *backend* may be ``None``, a backend name, or an already-resolved
    :class:`KernelBackend` instance (passed through unchanged).
    """
    if backend is not None:
        if isinstance(backend, str):
            return get_backend(backend)
        return backend
    ctx = _active.get()
    if ctx is not None:
        return get_backend(ctx)
    env = os.environ.get(ENV_VAR)
    if env:
        inst = _ambient(env, f"{ENV_VAR} environment variable")
        if inst is not None:
            return inst
    if _default_name is not None:
        inst = _ambient(_default_name, "the process default backend")
        if inst is not None:
            return inst
    return get_backend("numpy")


def serving(format_name: str, op: str, backend=None) -> KernelBackend:
    """Resolve and capability-check: the backend that will serve
    ``(format_name, op)``, falling back to the reference backend for
    unsupported pairs.  Every call increments the dispatch counters.
    """
    be = resolve(backend)
    if not be.is_reference and not be.supports(format_name, op):
        be = get_backend("numpy")
    with _SERVED_LOCK:
        _SERVED[(be.name, format_name, op)] += 1
    return be


def kernel_stats() -> dict[tuple[str, str, str], int]:
    """Dispatch counts keyed by ``(backend, format, op)``.

    A non-reference selection showing ``("numpy", fmt, op)`` entries
    reveals the silent-fallback volume for unsupported pairs.
    """
    with _SERVED_LOCK:
        return dict(_SERVED)


def reset_kernel_stats() -> None:
    """Zero the dispatch counters (bench/test isolation)."""
    with _SERVED_LOCK:
        _SERVED.clear()


def _register_builtin() -> None:
    register_backend("numpy", NumpyBackend)
    # Import errors here would take the whole package down; the heavy
    # backends are registered defensively and report availability lazily.
    try:
        from repro.backends.native import NativeBackend
        register_backend("native", NativeBackend)
    except Exception:  # pragma: no cover - defensive
        pass
    try:
        from repro.backends.numba_backend import NumbaBackend
        register_backend("numba", NumbaBackend)
    except Exception:  # pragma: no cover - defensive
        pass


_register_builtin()
