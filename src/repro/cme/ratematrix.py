"""Assembly of the sparse reaction-rate matrix ``A`` (Section II).

``A`` collects the microstate transition rates: for states ``j -> i``
connected by reaction ``k`` with propensity ``a = A_k(x_j)``,

* ``A[i, j] += a``                      (probability gain of ``i``), and
* ``A[j, j] -= a``                      (probability loss of ``j``),

so that ``dP/dt = A · P``.  Columns sum to zero (generator property), all
off-diagonal entries are non-negative, and the main diagonal is strictly
negative for every state with at least one outgoing reaction — which is
what makes the diagonal fully dense (Table I's ``d{0} = 1.00``).

Assembly is vectorized per reaction: propensities for all states at once,
successor lookup through the state space's mixed-radix key index.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.cme.statespace import StateSpace
from repro.errors import EnumerationError
from repro.sparse.base import as_csr


def build_rate_matrix(space: StateSpace) -> sp.csr_matrix:
    """Build the reaction-rate matrix of an enumerated state space.

    Returns the canonical CSR matrix ``A`` (``float64`` data, ``int32``
    indices) with ``dP/dt = A @ P``; states are indexed in the space's
    DFS order, which is what exposes the dense diagonal band.
    """
    network = space.network
    n = space.size
    states = space.states
    rows_parts: list[np.ndarray] = []
    cols_parts: list[np.ndarray] = []
    vals_parts: list[np.ndarray] = []
    diag = np.zeros(n, dtype=np.float64)

    for k in range(network.n_reactions):
        a = network.propensities.propensity(states, k)
        active = a > 0.0
        if not active.any():
            continue
        src = np.flatnonzero(active)
        targets = states[src] + network.stoichiometry[k]
        inside = np.all((targets >= 0) & (targets <= network.max_counts),
                        axis=1)
        src = src[inside]
        if src.size == 0:
            continue
        tgt = space.lookup(targets[inside])
        if np.any(tgt < 0):
            # The DFS explored every in-buffer transition, so an absent
            # successor means the space and network are inconsistent.
            raise EnumerationError(
                "state space is not closed under the network's reactions")
        rate = a[src]
        rows_parts.append(tgt)
        cols_parts.append(src)
        vals_parts.append(rate)
        np.subtract.at(diag, src, rate)

    rows_parts.append(np.arange(n, dtype=np.int64))
    cols_parts.append(np.arange(n, dtype=np.int64))
    vals_parts.append(diag)

    coo = sp.coo_matrix(
        (np.concatenate(vals_parts),
         (np.concatenate(rows_parts), np.concatenate(cols_parts))),
        shape=(n, n))
    return as_csr(coo)


def check_generator(A, *, atol: float = 1e-9) -> None:
    """Validate generator structure: columns sum to 0, off-diagonal >= 0.

    Raises :class:`~repro.errors.EnumerationError` on violation; used by
    tests and by :class:`repro.cme.master_equation.CMEOperator`.
    """
    csr = as_csr(A)
    col_sums = np.asarray(csr.sum(axis=0)).ravel()
    scale = max(1.0, float(np.abs(csr.data).max()) if csr.nnz else 1.0)
    if np.abs(col_sums).max() > atol * scale:
        raise EnumerationError(
            f"columns do not sum to zero (max |sum| = {np.abs(col_sums).max()})")
    diag = csr.diagonal()
    off_min = 0.0
    if csr.nnz:
        coo = csr.tocoo()
        off = coo.row != coo.col
        if off.any():
            off_min = float(coo.data[off].min())
    if off_min < -atol * scale:
        raise EnumerationError(
            f"negative off-diagonal rate found ({off_min})")
    if np.any(diag > atol * scale):
        raise EnumerationError("positive diagonal entry found")
