"""The Chemical Master Equation framework (Section II).

This subpackage models stochastic biochemical reaction networks:

* :class:`Species` / :class:`Reaction` / :class:`ReactionNetwork` — the
  discrete-state model with combinatorial mass-action propensities
  ``A_k(x) = r_k · Π_i C(x_i, c_i)``.
* :func:`enumerate_state_space` — the DFS optimal enumeration of the
  finitely-buffered reachable state space (Cao & Liang 2008), whose visit
  order exposes the dense diagonal band the ELL+DIA format exploits.
* :func:`build_rate_matrix` — assembly of the sparse reaction-rate matrix
  ``A`` with ``dP/dt = A·P``.
* :class:`ProjectionAssembler` / :func:`initial_projection` — incremental
  truncated-generator assembly over moving projections, the state-space
  side of adaptive FSP (:mod:`repro.fsp`).
* :class:`ProbabilityLandscape` — analysis of steady-state landscapes
  (marginals, modes, entropy; Figure 2).
* :mod:`repro.cme.models` — the four biological models of the paper and
  the seven-instance benchmark registry of Table I.
* :func:`repro.cme.ssa.simulate` — a Gillespie SSA cross-validator.
"""

from repro.cme.species import Species
from repro.cme.reaction import Reaction
from repro.cme.network import ReactionNetwork
from repro.cme.statespace import StateSpace, enumerate_state_space
from repro.cme.ratematrix import build_rate_matrix
from repro.cme.expansion import (
    Frontier,
    ProjectionAssembler,
    initial_projection,
)
from repro.cme.master_equation import CMEOperator
from repro.cme.landscape import ProbabilityLandscape

__all__ = [
    "Species",
    "Reaction",
    "ReactionNetwork",
    "StateSpace",
    "enumerate_state_space",
    "build_rate_matrix",
    "Frontier",
    "ProjectionAssembler",
    "initial_projection",
    "CMEOperator",
    "ProbabilityLandscape",
]
