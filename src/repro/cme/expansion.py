"""Incremental state-space projections for adaptive FSP.

The fixed-capacity pipeline enumerates the *whole* reachable space once
(:func:`~repro.cme.statespace.enumerate_state_space`) and assembles its
closed generator (:func:`~repro.cme.ratematrix.build_rate_matrix`).
Adaptive Finite State Projection (:mod:`repro.fsp`) instead works on a
small, moving window Ω of the space, which needs three things this
module provides:

* :func:`initial_projection` — a BFS ball of states around the initial
  microstate, the seed projection;
* :class:`ProjectionAssembler` — assembly of the **truncated** generator
  of any projection, *incremental* across projection changes: the
  propensities and successor keys of every state the assembler has ever
  seen are computed once and cached by state key, so a round that adds
  5% new frontier states pays propensity evaluation for exactly those
  5% (``states_evaluated`` counts the total for tests and telemetry);
* :meth:`ProjectionAssembler.frontier` — the one-step-outside boundary
  of a projection, with the per-state *inward* return rates (the
  quantity the truncation certificate needs) and optional influx
  weighting (the quantity the growth policy ranks by).

Truncated-generator semantics: species buffers are part of the model —
a buffer-blocked reaction is an absent edge, exactly as in the closed
enumeration — while a transition from ``j ∈ Ω`` to an in-buffer state
outside Ω is **outflow**: it is dropped from the off-diagonal gains but
kept in ``j``'s diagonal loss, so the assembled matrix is the exact
principal submatrix ``A[Ω, Ω]`` of the full generator and its column
sums equal ``-outflow``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp

from repro.cme.network import ReactionNetwork
from repro.cme.statespace import StateSpace
from repro.errors import (
    EnumerationError,
    StateSpaceOverflowError,
    ValidationError,
)
from repro.sparse.base import as_csr


def initial_projection(network: ReactionNetwork, *, size: int = 64,
                       initial_state=None) -> StateSpace:
    """A BFS ball of up to *size* states around the initial microstate.

    Breadth-first (rather than the enumerator's depth-first) order is
    the right seed for a projection: the window is a compact
    neighborhood of the initial condition instead of one long DFS chain
    along the first reaction.  The ball is closed under reachability
    only if the whole reachable space fits in *size*; otherwise the cut
    is exactly the open boundary the FSP loop grows.
    """
    if size <= 0:
        raise ValidationError(f"size must be positive, got {size}")
    m = network.n_species
    if initial_state is None:
        x0 = tuple(int(v) for v in network.initial_state)
    else:
        x0 = tuple(int(v) for v in np.asarray(initial_state).ravel())
        if len(x0) != m:
            raise ValidationError(
                f"initial_state must have {m} entries, got {len(x0)}")
    bounds = network.max_counts
    if any(not (0 <= x0[i] <= int(bounds[i])) for i in range(m)):
        raise ValidationError(
            f"initial state {x0} violates species buffers {tuple(bounds)}")

    seen = {x0}
    order = [x0]
    head = 0
    evaluator = network.propensities
    while head < len(order) and len(order) < size:
        state = order[head]
        head += 1
        arr = np.asarray(state)[None, :]
        for k in range(network.n_reactions):
            if evaluator.single(arr[0], k) <= 0.0:
                continue
            succ = tuple(int(v) for v in
                         (arr[0] + network.stoichiometry[k]))
            if any(v < 0 or v > int(bounds[i])
                   for i, v in enumerate(succ)):
                continue
            if succ not in seen:
                seen.add(succ)
                order.append(succ)
                if len(order) >= size:
                    break
    states = np.array(order[:size], dtype=np.int64)
    return StateSpace(network=network, states=states)


@dataclass
class Frontier:
    """The one-step-outside boundary of a projection.

    Attributes
    ----------
    states:
        ``(q, m)`` array of in-buffer states reachable in one reaction
        from Ω but not in Ω (empty when the projection is closed).
    inward_rates:
        Per-frontier-state total propensity of reactions leading
        directly back *into* Ω — the return rates the truncation
        certificate's floor is taken over.
    total_rates:
        Per-frontier-state total propensity over *all* its real edges
        (buffer-blocked reactions are absent edges and excluded).  The
        difference ``total_rates - inward_rates`` is the rate carrying
        mass *away* from Ω, which the certificate's geometric tail
        factor is built from.
    influx:
        Per-frontier-state total rate of arrival from Ω.  When the
        caller passes probability ``weights`` this is the stationary
        boundary flux into each frontier state; with no weights it is
        the unweighted rate sum.  Growth ranks on it.
    """

    states: np.ndarray
    inward_rates: np.ndarray
    total_rates: np.ndarray
    influx: np.ndarray

    @property
    def size(self) -> int:
        return int(self.states.shape[0])


class ProjectionAssembler:
    """Incremental truncated-generator assembly over moving projections.

    One assembler serves every round of an FSP loop on one (rate-fixed)
    network.  Per state ever presented it caches, keyed by the state's
    mixed-radix key:

    * the ``R`` reaction propensities,
    * the successor *key* per reaction (``-1`` where the reaction is
      inapplicable or buffer-blocked — i.e. no edge in the full model).

    :meth:`assemble` then reduces to a vectorized key lookup of cached
    successor keys against the current projection — no propensity is
    ever evaluated twice across grow/prune/permute rounds.
    """

    def __init__(self, network: ReactionNetwork):
        self.network = network
        levels = network.max_counts + 1
        radix = np.ones(levels.size, dtype=np.int64)
        radix[1:] = np.cumprod(levels[:-1])
        if levels.size and np.prod(levels.astype(np.float64)) >= 2.0 ** 62:
            raise EnumerationError(
                "state encoding exceeds 63-bit range; reduce buffers")
        self._radix = radix
        self._index: dict[int, int] = {}
        self._states = np.empty((0, network.n_species), dtype=np.int64)
        self._prop = np.empty((0, network.n_reactions), dtype=np.float64)
        self._succ = np.empty((0, network.n_reactions), dtype=np.int64)
        #: Total states whose propensities were computed (monotonic);
        #: the incremental-assembly tests pin this down.
        self.states_evaluated = 0

    # -- the per-state cache -------------------------------------------------

    def _encode(self, states: np.ndarray) -> np.ndarray:
        return np.asarray(states, dtype=np.int64) @ self._radix

    def _rows_for(self, states: np.ndarray) -> np.ndarray:
        """Cache rows for *states*, evaluating any not yet seen."""
        states = np.ascontiguousarray(states, dtype=np.int64)
        if states.ndim != 2 or states.shape[1] != self.network.n_species:
            raise ValidationError(
                f"states must have shape (n, {self.network.n_species})")
        keys = self._encode(states)
        rows = np.fromiter((self._index.get(int(k), -1) for k in keys),
                           count=keys.size, dtype=np.int64)
        missing = np.flatnonzero(rows < 0)
        if missing.size:
            # De-duplicate within the new batch while keeping first-seen
            # order, then evaluate all new states in one vectorized pass
            # per reaction.
            new_keys, first = np.unique(keys[missing], return_index=True)
            new_states = states[missing[np.sort(first)]]
            new_keys = keys[missing[np.sort(first)]]
            self._evaluate(new_states, new_keys)
            rows[missing] = [self._index[int(k)] for k in keys[missing]]
        return rows

    def _evaluate(self, states: np.ndarray, keys: np.ndarray) -> None:
        network = self.network
        n_new, R = states.shape[0], network.n_reactions
        prop = network.propensities.all_propensities(states)
        succ = np.full((n_new, R), -1, dtype=np.int64)
        for k in range(R):
            targets = states + network.stoichiometry[k]
            inside = np.all((targets >= 0) &
                            (targets <= network.max_counts), axis=1)
            edge = inside & (prop[:, k] > 0.0)
            if edge.any():
                succ[edge, k] = self._encode(targets[edge])
        base = self._states.shape[0]
        self._states = np.concatenate([self._states, states])
        self._prop = np.concatenate([self._prop, prop])
        self._succ = np.concatenate([self._succ, succ])
        for i, k in enumerate(keys):
            self._index[int(k)] = base + i
        self.states_evaluated += n_new

    # -- assembly ------------------------------------------------------------

    def assemble(self, space: StateSpace) -> tuple[sp.csr_matrix, np.ndarray]:
        """The truncated generator of *space* plus its outflow rates.

        Returns ``(A, outflow)`` where ``A`` is the principal submatrix
        of the full generator on the projection (CSR, ``dP/dt = A P``
        restricted to Ω, diagonal losses include transitions leaving Ω)
        and ``outflow[j]`` is the total rate from state ``j`` to
        in-buffer states outside Ω.  Column sums of ``A`` equal
        ``-outflow``; a closed projection reproduces
        :func:`~repro.cme.ratematrix.build_rate_matrix` exactly.
        """
        self._check_layout(space)
        n = space.size
        rows_store = self._rows_for(space.states)
        keys = self._encode(space.states)
        sorter = np.argsort(keys, kind="stable")
        sorted_keys = keys[sorter]

        prop = self._prop[rows_store]
        succ = self._succ[rows_store]

        rows_parts: list[np.ndarray] = []
        cols_parts: list[np.ndarray] = []
        vals_parts: list[np.ndarray] = []
        diag = np.zeros(n, dtype=np.float64)
        outflow = np.zeros(n, dtype=np.float64)

        for k in range(self.network.n_reactions):
            src = np.flatnonzero(succ[:, k] >= 0)
            if src.size == 0:
                continue
            rate = prop[src, k]
            tgt = _lookup_keys(sorted_keys, sorter, succ[src, k])
            inside = tgt >= 0
            np.subtract.at(diag, src, rate)
            if inside.any():
                rows_parts.append(tgt[inside])
                cols_parts.append(src[inside])
                vals_parts.append(rate[inside])
            if not inside.all():
                np.add.at(outflow, src[~inside], rate[~inside])

        rows_parts.append(np.arange(n, dtype=np.int64))
        cols_parts.append(np.arange(n, dtype=np.int64))
        vals_parts.append(diag)
        coo = sp.coo_matrix(
            (np.concatenate(vals_parts),
             (np.concatenate(rows_parts), np.concatenate(cols_parts))),
            shape=(n, n))
        return as_csr(coo), outflow

    # -- the boundary --------------------------------------------------------

    def frontier(self, space: StateSpace, weights=None) -> Frontier:
        """One-step-outside states of *space* with rates (see
        :class:`Frontier`).

        ``weights`` (a probability vector over the projection) turns
        ``influx`` into the stationary boundary flux per frontier
        state; rates and membership are unaffected.
        """
        self._check_layout(space)
        if weights is not None:
            weights = np.asarray(weights, dtype=np.float64)
            if weights.shape != (space.size,):
                raise ValidationError(
                    f"weights must have length {space.size}, "
                    f"got {weights.shape}")
        rows_store = self._rows_for(space.states)
        keys = self._encode(space.states)
        sorter = np.argsort(keys, kind="stable")
        sorted_keys = keys[sorter]
        prop = self._prop[rows_store]
        succ = self._succ[rows_store]

        out_keys_parts: list[np.ndarray] = []
        out_flux_parts: list[np.ndarray] = []
        out_state_parts: list[np.ndarray] = []
        for k in range(self.network.n_reactions):
            src = np.flatnonzero(succ[:, k] >= 0)
            if src.size == 0:
                continue
            tgt = _lookup_keys(sorted_keys, sorter, succ[src, k])
            leaving = src[tgt < 0]
            if leaving.size == 0:
                continue
            out_keys_parts.append(succ[leaving, k])
            flux = prop[leaving, k]
            if weights is not None:
                flux = flux * weights[leaving]
            out_flux_parts.append(flux)
            out_state_parts.append(
                space.states[leaving] + self.network.stoichiometry[k])

        m = self.network.n_species
        if not out_keys_parts:
            empty = np.empty(0, dtype=np.float64)
            return Frontier(states=np.empty((0, m), dtype=np.int64),
                            inward_rates=empty, total_rates=empty.copy(),
                            influx=empty.copy())

        all_keys = np.concatenate(out_keys_parts)
        all_flux = np.concatenate(out_flux_parts)
        all_states = np.concatenate(out_state_parts)
        uniq_keys, first, inverse = np.unique(
            all_keys, return_index=True, return_inverse=True)
        states = all_states[first]
        influx = np.zeros(uniq_keys.size, dtype=np.float64)
        np.add.at(influx, inverse, all_flux)

        # Inward return rates: total propensity of reactions from each
        # frontier state whose successor lands back inside Ω.  Frontier
        # states go through the same cache, so a later round that grows
        # onto them re-uses these evaluations.
        f_rows = self._rows_for(states)
        f_succ = self._succ[f_rows]
        f_prop = self._prop[f_rows]
        total = np.where(f_succ >= 0, f_prop, 0.0).sum(axis=1)
        back = np.zeros(uniq_keys.size, dtype=np.float64)
        for k in range(self.network.n_reactions):
            has_edge = f_succ[:, k] >= 0
            if not has_edge.any():
                continue
            tgt = _lookup_keys(sorted_keys, sorter, f_succ[has_edge, k])
            hit = tgt >= 0
            if hit.any():
                idx = np.flatnonzero(has_edge)[hit]
                back[idx] += f_prop[idx, k]
        return Frontier(states=states, inward_rates=back,
                        total_rates=total, influx=influx)

    # -- growth --------------------------------------------------------------

    def grow(self, space: StateSpace, *, depth: int = 1,
             weights=None, max_new_states: int | None = None,
             max_states: int = 5_000_000) -> tuple[StateSpace, int]:
        """Expand *space* by up to *depth* frontier layers.

        The first layer is ranked by ``influx`` (highest stationary
        boundary flux first, when ``weights`` is given) and truncated
        to ``max_new_states``; deeper layers expand unweighted.
        Returns ``(new_space, states_added)``; the projection is
        unchanged (``added == 0``) when it is already closed.
        """
        if depth <= 0:
            raise ValidationError(f"depth must be positive, got {depth}")
        added = 0
        current = space
        layer_weights = weights
        for _ in range(depth):
            fr = self.frontier(current, weights=layer_weights)
            layer_weights = None  # only the solved layer has weights
            if fr.size == 0:
                break
            new_states = fr.states
            if max_new_states is not None and fr.size > max_new_states:
                order = np.argsort(-fr.influx, kind="stable")
                new_states = fr.states[order[:max_new_states]]
            if current.size + new_states.shape[0] > max_states:
                raise StateSpaceOverflowError(max_states)
            current = StateSpace(
                network=current.network,
                states=np.concatenate([current.states, new_states]))
            added += int(new_states.shape[0])
        return current, added

    # -- guards --------------------------------------------------------------

    def _check_layout(self, space: StateSpace) -> None:
        if space.states.shape[1] != self.network.n_species or not \
                np.array_equal(space.network.max_counts,
                               self.network.max_counts):
            raise ValidationError(
                "projection's species layout disagrees with the "
                "assembler's network")


def _lookup_keys(sorted_keys: np.ndarray, sorter: np.ndarray,
                 keys: np.ndarray) -> np.ndarray:
    """Indices of *keys* in the projection; ``-1`` where absent."""
    pos = np.searchsorted(sorted_keys, keys)
    pos_clipped = np.minimum(pos, sorted_keys.size - 1)
    found = (sorted_keys.size > 0) & (sorted_keys[pos_clipped] == keys)
    return np.where(found, sorter[pos_clipped], -1).astype(np.int64)
