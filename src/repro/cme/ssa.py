"""Gillespie stochastic simulation (SSA) cross-validator.

The direct-method SSA samples exact trajectories of the same jump process
the CME describes.  Time-averaging a long trajectory therefore estimates
the steady-state landscape, giving an independent check of the linear-
algebra solution on small models (the two must agree up to Monte-Carlo
error — an invariant the integration tests exercise).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cme.network import ReactionNetwork
from repro.cme.statespace import StateSpace
from repro.errors import ValidationError


@dataclass(frozen=True)
class SSAResult:
    """Outcome of one SSA run."""

    #: Visited states, one row per jump (including the initial state).
    states: np.ndarray
    #: Sojourn time spent in each visited state.
    sojourn: np.ndarray
    #: Total simulated time.
    total_time: float
    #: Number of reaction firings.
    n_jumps: int


def simulate(network: ReactionNetwork, *, t_max: float,
             initial_state=None, seed: int | None = 0,
             burn_in: float = 0.0) -> SSAResult:
    """Run the direct-method SSA until *t_max* (after *burn_in*).

    Buffer-blocked reactions (successor outside a species' ``max_count``)
    are excluded from the firing propensities, mirroring exactly the
    finitely-buffered CME semantics, so the SSA and the rate matrix
    describe the same process.
    """
    if t_max <= 0:
        raise ValidationError(f"t_max must be positive, got {t_max}")
    if burn_in < 0:
        raise ValidationError(f"burn_in must be >= 0, got {burn_in}")
    rng = np.random.default_rng(seed)
    if initial_state is None:
        state = network.initial_state.copy()
    else:
        state = np.asarray(initial_state, dtype=np.int64).copy()
        if state.shape != (network.n_species,):
            raise ValidationError("initial_state has the wrong length")

    stoich = network.stoichiometry
    bounds = network.max_counts
    evaluator = network.propensities

    states: list[np.ndarray] = []
    sojourn: list[float] = []
    t = 0.0
    horizon = burn_in + t_max
    while t < horizon:
        batch = state[None, :]
        props = evaluator.all_propensities(batch)[0]
        # Block buffer-violating reactions.
        for k in range(network.n_reactions):
            if props[k] > 0.0:
                succ = state + stoich[k]
                if np.any(succ < 0) or np.any(succ > bounds):
                    props[k] = 0.0
        total = props.sum()
        if total <= 0.0:
            # Absorbing state: it holds all remaining time.
            dwell = horizon - t
            if t + dwell > burn_in:
                states.append(state.copy())
                sojourn.append(min(dwell, t + dwell - burn_in))
            t = horizon
            break
        dwell = rng.exponential(1.0 / total)
        effective_end = min(t + dwell, horizon)
        credited = effective_end - max(t, burn_in)
        if credited > 0:
            states.append(state.copy())
            sojourn.append(credited)
        t += dwell
        if t >= horizon:
            break
        k = int(rng.choice(network.n_reactions, p=props / total))
        state = state + stoich[k]

    return SSAResult(states=np.array(states, dtype=np.int64),
                     sojourn=np.array(sojourn, dtype=np.float64),
                     total_time=float(np.sum(sojourn)),
                     n_jumps=len(states) - 1 if states else 0)


def occupancy(result: SSAResult, space: StateSpace) -> np.ndarray:
    """Time-averaged occupancy of *result* over an enumerated space.

    Returns a probability vector aligned with the space's DFS order;
    visited states outside the space raise (they indicate a buffer
    mismatch between the SSA run and the enumeration).
    """
    if result.total_time <= 0:
        raise ValidationError("SSA result has no simulated time")
    idx = space.lookup(result.states)
    if np.any(idx < 0):
        raise ValidationError(
            "SSA visited states outside the enumerated space")
    p = np.zeros(space.size, dtype=np.float64)
    np.add.at(p, idx, result.sojourn)
    return p / p.sum()
