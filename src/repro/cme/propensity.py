"""Vectorized combinatorial mass-action propensity evaluation.

The propensity of reaction ``k`` in microstate ``x`` is
``A_k(x) = r_k · Π_i C(x_i, c_i)`` (Section II-A).  This module evaluates
it for whole batches of states at once — the hot path of rate-matrix
assembly — using an exact integer-combination table (copy numbers are
small, so ``C(x, c)`` fits comfortably in float64 without rounding).
"""

from __future__ import annotations

import numpy as np

from repro.errors import ValidationError


def binomial_table(max_n: int, max_c: int) -> np.ndarray:
    """Exact table ``T[n, c] = C(n, c)`` for ``0 <= n <= max_n``, ``c <= max_c``.

    Built by the Pascal recurrence in float64; exact as long as the
    entries stay below 2^53 (true for any realistic copy number /
    stoichiometry combination — validated).
    """
    if max_n < 0 or max_c < 0:
        raise ValidationError("table bounds must be non-negative")
    table = np.zeros((max_n + 1, max_c + 1), dtype=np.float64)
    table[:, 0] = 1.0
    for n in range(1, max_n + 1):
        upper = min(n, max_c)
        table[n, 1: upper + 1] = (table[n - 1, 1: upper + 1]
                                  + table[n - 1, 0: upper])
    if table.max() >= 2.0 ** 53:
        raise ValidationError(
            "binomial table exceeds exact float64 integer range; "
            "reduce copy-number bounds or stoichiometries")
    return table


def hill_repression(rate: float, repressor: str, K: float,
                    hill: float = 2.0):
    """A Hill-repressed synthesis propensity ``rate / (1 + (x_r/K)^h)``.

    The standard phenomenological form of transcriptional repression
    (Gardner et al.'s genetic toggle switch): synthesis proceeds at
    *rate* when the repressor is absent and falls off cooperatively
    (Hill coefficient *hill*) around the threshold *K*.  Strictly
    positive, so pass ``strictly_positive=True`` to the reaction.
    """
    if rate <= 0 or K <= 0 or hill <= 0:
        raise ValidationError("hill_repression needs positive rate, K, hill")

    def propensity(states: np.ndarray, species_index: dict) -> np.ndarray:
        x = states[:, species_index[repressor]].astype(np.float64)
        return rate / (1.0 + (x / K) ** hill)

    propensity.__name__ = f"hill_repression[{repressor}]"
    return propensity


class PropensityEvaluator:
    """Batch evaluator of all reaction propensities over state arrays.

    Parameters
    ----------
    reactant_counts:
        ``(R, m)`` integer array: ``c_{k,i}`` copies of species ``i``
        consumed by reaction ``k``.
    rates:
        ``(R,)`` intrinsic rate constants.
    max_counts:
        ``(m,)`` per-species buffer bounds (sizing the binomial table).
    custom_fns:
        Optional length-``R`` list; a non-``None`` entry replaces the
        mass-action expression of that reaction with
        ``fn(states, species_index)``.
    species_index:
        ``name -> column`` map handed to custom propensities.
    """

    def __init__(self, reactant_counts, rates, max_counts,
                 custom_fns=None, species_index=None):
        self.reactant_counts = np.asarray(reactant_counts, dtype=np.int64)
        if self.reactant_counts.ndim != 2:
            raise ValidationError("reactant_counts must be 2-D (R, m)")
        self.rates = np.asarray(rates, dtype=np.float64)
        if self.rates.shape != (self.reactant_counts.shape[0],):
            raise ValidationError("rates length must match reaction count")
        if self.rates.size and self.rates.min() <= 0:
            raise ValidationError("rates must be positive")
        max_counts = np.asarray(max_counts, dtype=np.int64)
        if max_counts.shape != (self.reactant_counts.shape[1],):
            raise ValidationError("max_counts length must match species count")
        max_c = int(self.reactant_counts.max()) if self.reactant_counts.size else 0
        max_n = int(max_counts.max()) if max_counts.size else 0
        self._table = binomial_table(max_n, max_c)
        # Cache, per reaction, the indices of species actually consumed —
        # the product loop then touches only those (2-3 species typically).
        self._involved = [np.flatnonzero(row) for row in self.reactant_counts]
        if custom_fns is None:
            custom_fns = [None] * self.n_reactions
        if len(custom_fns) != self.n_reactions:
            raise ValidationError("custom_fns length must match reactions")
        self.custom_fns = list(custom_fns)
        self.species_index = dict(species_index or {})

    @property
    def n_reactions(self) -> int:
        return self.reactant_counts.shape[0]

    @property
    def n_species(self) -> int:
        return self.reactant_counts.shape[1]

    def propensity(self, states: np.ndarray, k: int) -> np.ndarray:
        """Propensities ``A_k`` of reaction *k* for every row of *states*.

        ``states`` is an ``(n, m)`` integer array of microstates.
        """
        states = np.asarray(states)
        if states.ndim != 2 or states.shape[1] != self.n_species:
            raise ValidationError(
                f"states must have shape (n, {self.n_species})")
        fn = self.custom_fns[k]
        if fn is not None:
            a = np.asarray(fn(states, self.species_index), dtype=np.float64)
            if a.shape != (states.shape[0],):
                raise ValidationError(
                    f"custom propensity of reaction {k} returned shape "
                    f"{a.shape}, expected ({states.shape[0]},)")
            if a.size and a.min() < 0:
                raise ValidationError(
                    f"custom propensity of reaction {k} returned a "
                    f"negative rate")
            return a
        a = np.full(states.shape[0], self.rates[k], dtype=np.float64)
        for i in self._involved[k]:
            c = int(self.reactant_counts[k, i])
            a *= self._table[states[:, i], c]
        return a

    def all_propensities(self, states: np.ndarray) -> np.ndarray:
        """``(n, R)`` array of every reaction's propensity in every state."""
        states = np.asarray(states)
        out = np.empty((states.shape[0], self.n_reactions), dtype=np.float64)
        for k in range(self.n_reactions):
            out[:, k] = self.propensity(states, k)
        return out

    def single(self, state, k: int) -> float:
        """Propensity of reaction *k* in a single microstate."""
        return float(self.propensity(np.asarray(state)[None, :], k)[0])
