"""DFS enumeration of the reachable, finitely-buffered state space.

This is the optimal enumeration algorithm of Cao & Liang (2008) the paper
relies on (Section II-B): microstates are nodes, reactions are edges, and
a depth-first visit from the initial microstate produces the reachable
subspace together with a state *ordering*.

The DFS ordering matters beyond completeness (Section V): a DFS walks as
far as it can along the first applicable reaction, so chains of states
connected by reversible reactions receive **adjacent indices**, which
turns those transitions into the ``{-1, +1}`` diagonals of the rate
matrix — the structure the ELL+DIA format stores densely.

A reaction edge ``x -> x + s_k`` exists when the reactants are available
(``x_i >= c_{k,i}``, equivalently propensity > 0) and the successor stays
inside every species buffer.  Buffer-blocked reactions are simply absent
edges, so the enumerated space is closed and the rate matrix remains a
proper generator.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.cme.network import ReactionNetwork
from repro.errors import EnumerationError, StateSpaceOverflowError, ValidationError


@dataclass
class StateSpace:
    """An enumerated microstate space in DFS order.

    Attributes
    ----------
    network:
        The source reaction network.
    states:
        ``(n, m)`` integer array; row ``i`` is the ``i``-th microstate in
        DFS discovery order.
    """

    network: ReactionNetwork
    states: np.ndarray
    _key_radix: np.ndarray = field(init=False, repr=False)
    _sorted_keys: np.ndarray = field(init=False, repr=False)
    _sorter: np.ndarray = field(init=False, repr=False)

    def __post_init__(self) -> None:
        self.states = np.ascontiguousarray(self.states, dtype=np.int64)
        if self.states.ndim != 2 or self.states.shape[1] != self.network.n_species:
            raise ValidationError(
                f"states must have shape (n, {self.network.n_species})")
        # Mixed-radix encoding for O(log n) vectorized state lookup.
        levels = self.network.max_counts + 1
        radix = np.ones(levels.size, dtype=np.int64)
        radix[1:] = np.cumprod(levels[:-1])
        if levels.size and np.prod(levels.astype(np.float64)) >= 2.0 ** 62:
            raise EnumerationError(
                "state encoding exceeds 63-bit range; reduce buffers")
        self._key_radix = radix
        keys = self.encode(self.states)
        self._sorter = np.argsort(keys, kind="stable")
        self._sorted_keys = keys[self._sorter]
        if np.any(self._sorted_keys[1:] == self._sorted_keys[:-1]):
            raise EnumerationError("duplicate states in state space")

    # -- queries ------------------------------------------------------------

    @property
    def size(self) -> int:
        """Number of enumerated microstates ``n = |X|``."""
        return int(self.states.shape[0])

    def encode(self, states: np.ndarray) -> np.ndarray:
        """Mixed-radix scalar keys for an ``(n, m)`` batch of states."""
        states = np.asarray(states, dtype=np.int64)
        return states @ self._key_radix

    def lookup(self, states: np.ndarray) -> np.ndarray:
        """DFS indices of a batch of states; ``-1`` where not enumerated."""
        states = np.atleast_2d(np.asarray(states, dtype=np.int64))
        keys = self.encode(states)
        pos = np.searchsorted(self._sorted_keys, keys)
        pos_clipped = np.minimum(pos, self._sorted_keys.size - 1)
        found = (self._sorted_keys.size > 0) & \
                (self._sorted_keys[pos_clipped] == keys)
        out = np.where(found, self._sorter[pos_clipped], -1)
        return out.astype(np.int64)

    def index_of(self, state) -> int:
        """DFS index of one state (raises if absent)."""
        idx = int(self.lookup(np.asarray(state)[None, :])[0])
        if idx < 0:
            raise ValidationError(f"state {tuple(state)} not in the state space")
        return idx

    def contains(self, state) -> bool:
        """Whether a state was enumerated."""
        return int(self.lookup(np.asarray(state)[None, :])[0]) >= 0

    def species_column(self, name: str) -> np.ndarray:
        """Copy numbers of one species across all states, in DFS order."""
        return self.states[:, self.network.species_index(name)]


def enumerate_state_space(network: ReactionNetwork,
                          *, max_states: int = 5_000_000,
                          initial_state=None) -> StateSpace:
    """DFS-enumerate the reachable state space of *network*.

    Parameters
    ----------
    network:
        The reaction network (buffers come from its species).
    max_states:
        Hard cap; :class:`~repro.errors.StateSpaceOverflowError` beyond it.
    initial_state:
        Starting microstate (defaults to the species' initial counts).

    Returns
    -------
    StateSpace
        States in DFS preorder: a state's index is assigned at first
        discovery, and the subtree behind the first applicable reaction is
        fully explored before the second reaction is tried.
    """
    m = network.n_species
    R = network.n_reactions
    if initial_state is None:
        x0 = tuple(int(v) for v in network.initial_state)
    else:
        x0 = tuple(int(v) for v in np.asarray(initial_state).ravel())
        if len(x0) != m:
            raise ValidationError(
                f"initial_state must have {m} entries, got {len(x0)}")
    bounds = tuple(int(v) for v in network.max_counts)
    if any(not (0 <= x0[i] <= bounds[i]) for i in range(m)):
        raise ValidationError(
            f"initial state {x0} violates species buffers {bounds}")

    # Per-reaction compiled data for the inner loop: the stoichiometric
    # delta as a tuple and the (species, needed) reactant requirements.
    # A reaction with a custom propensity has an edge wherever the
    # propensity is positive: unconditionally for strictly-positive
    # functions, by evaluation otherwise.
    deltas: list[tuple[int, ...]] = []
    needs: list[tuple[tuple[int, int], ...]] = []
    custom_checks: list = []
    evaluator = network.propensities
    for k in range(R):
        deltas.append(tuple(int(v) for v in network.stoichiometry[k]))
        needs.append(tuple(
            (int(i), int(network.reactant_counts[k, i]))
            for i in np.flatnonzero(network.reactant_counts[k])))
        rxn = network.reactions[k]
        if rxn.propensity_fn is not None and not rxn.strictly_positive:
            custom_checks.append(k)
    custom_checks_set = frozenset(custom_checks)

    index: dict[tuple[int, ...], int] = {x0: 0}
    order: list[tuple[int, ...]] = [x0]
    # Each stack entry is [state, next_reaction_to_try].
    stack: list[list] = [[x0, 0]]
    while stack:
        top = stack[-1]
        state, k = top
        if k == R:
            stack.pop()
            continue
        top[1] = k + 1
        for i, c in needs[k]:
            if state[i] < c:
                break
        else:
            if (k in custom_checks_set
                    and evaluator.single(np.asarray(state), k) <= 0.0):
                continue
            succ = tuple(map(int.__add__, state, deltas[k]))
            ok = True
            for i in range(m):
                v = succ[i]
                if v < 0 or v > bounds[i]:
                    ok = False
                    break
            if ok and succ not in index:
                if len(order) >= max_states:
                    raise StateSpaceOverflowError(max_states)
                index[succ] = len(order)
                order.append(succ)
                stack.append([succ, 0])

    states = np.array(order, dtype=np.int64)
    return StateSpace(network=network, states=states)
