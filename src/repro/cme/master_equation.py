"""The CME operator: ``dP/dt = A · P`` and derived quantities.

:class:`CMEOperator` bundles the rate matrix with the state space and
provides the pieces the steady-state machinery needs: the residual
``A·p``, the matrix norms used in the paper's stopping criterion, the
uniformized stochastic matrix (for the Markov-model generalization and
the power-iteration solver), and a dense-eigen reference solution for
validation on small spaces.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.cme.ratematrix import build_rate_matrix, check_generator
from repro.cme.statespace import StateSpace
from repro.errors import ValidationError
from repro.sparse.base import as_csr


class CMEOperator:
    """The master-equation operator of an enumerated reaction network.

    Parameters
    ----------
    space:
        The enumerated state space.
    matrix:
        Optional pre-built rate matrix (assembled from *space* when
        omitted).
    validate:
        Check the generator structure on construction (cheap; default on).
    """

    def __init__(self, space: StateSpace, matrix=None, *, validate: bool = True):
        self.space = space
        self.A = as_csr(matrix) if matrix is not None else build_rate_matrix(space)
        if self.A.shape != (space.size, space.size):
            raise ValidationError(
                f"rate matrix shape {self.A.shape} does not match the "
                f"state space size {space.size}")
        if validate:
            check_generator(self.A)

    # -- basic quantities ----------------------------------------------------

    @property
    def n(self) -> int:
        return self.space.size

    @property
    def nnz(self) -> int:
        return int(self.A.nnz)

    def apply(self, p: np.ndarray) -> np.ndarray:
        """``dP/dt`` evaluated at the distribution *p* (i.e. ``A @ p``)."""
        p = np.asarray(p, dtype=np.float64)
        return self.A @ p

    def residual_norm(self, p: np.ndarray) -> float:
        """``||A p||_inf`` — raw steady-state residual."""
        return float(np.abs(self.apply(p)).max()) if self.n else 0.0

    def matrix_inf_norm(self) -> float:
        """``||A||_inf`` (max absolute row sum), used for normalization."""
        if self.A.nnz == 0:
            return 0.0
        return float(abs(self.A).sum(axis=1).max())

    def normalized_residual(self, p: np.ndarray) -> float:
        """The paper's convergence metric ``||Ap||_inf / (||A||_inf ||p||_inf)``."""
        denom = self.matrix_inf_norm() * float(np.abs(p).max())
        if denom == 0.0:
            return 0.0
        return self.residual_norm(p) / denom

    # -- derived operators -----------------------------------------------------

    def exit_rates(self) -> np.ndarray:
        """Total outgoing rate per state, ``-A[i,i]``."""
        return -self.A.diagonal()

    def uniformized(self, *, factor: float = 1.0001) -> sp.csr_matrix:
        """The uniformized stochastic matrix ``S = I + A / Lambda``.

        ``Lambda = factor * max_i(-A[ii])``.  ``S`` is column-stochastic
        with non-negative entries; its dominant eigenvector is the CME
        steady state.  This is the bridge to general Markov models the
        paper's conclusions mention, and the operator behind
        :class:`repro.solvers.power.PowerIterationSolver`.
        """
        if factor < 1.0:
            raise ValidationError(f"factor must be >= 1, got {factor}")
        lam = float(self.exit_rates().max())
        if lam <= 0.0:
            raise ValidationError("matrix has no outgoing transitions")
        lam *= factor
        S = sp.eye(self.n, format="csr") + self.A.multiply(1.0 / lam)
        return as_csr(S)

    # -- reference solutions ----------------------------------------------------

    def dense_nullspace_solution(self) -> np.ndarray:
        """Exact steady state via dense SVD null space (small spaces only).

        Intended for validation: O(n^3), guarded at n = 3000.
        """
        if self.n > 3000:
            raise ValidationError(
                f"dense reference solve is limited to n <= 3000 (n = {self.n})")
        dense = self.A.toarray()
        _, s, vt = np.linalg.svd(dense)
        null = vt[-1]
        # The generator's null vector has single sign; orient and normalize.
        if null.sum() < 0:
            null = -null
        null = np.clip(null, 0.0, None)
        total = null.sum()
        if total <= 0:
            raise ValidationError("null-space vector is degenerate")
        return null / total
