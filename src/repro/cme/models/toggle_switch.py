"""The genetic toggle switch (Gardner, Cantor & Collins 2000; Figure 1).

Two genes A and B in mutual inhibition: each protein cooperatively
represses the synthesis of the other.  Following the CME treatment the
paper builds on (Cao & Liang's framework admits arbitrary state-dependent
propensities), the model is the two-species birth-death lattice whose
landscape the paper plots over ``(nA, nB)`` in Figure 2:

======  ==============  ===================================================
name    reaction        propensity
======  ==============  ===================================================
synA    ∅ → A           ``basal + s / (1 + (nB/K)^h)``  (Hill repression)
degA    A → ∅           ``d · nA``
synB    ∅ → B           ``basal + s / (1 + (nA/K)^h)``
degB    B → ∅           ``d · nB``
bstA    ∅ → 2A          ``burst · [nB < T]`` (bursting off when repressed)
bstB    ∅ → 2B          ``burst · [nA < T]``
======  ==============  ===================================================

Six reactions give at most seven nonzeros per row; the burst pathway is
hard-repressed (exactly zero above the threshold ``T``), so a fraction of
the rows lack its transitions — reproducing Table I's toggle row-length
profile (mean 5.98, max 7, variability ~0.12) and the padding slack the
warp-grained format compacts.  The state space is the full
``(max_protein+1)²`` lattice; the DFS enumeration chains along the A axis
(the ±1 synthesis/degradation pair), exposing the dense diagonal band,
while the B transitions form two clean ±(max_protein+1)-offset diagonals
— the block-local structure that makes the toggle the *fastest* family in
the paper's SpMV tables.

With cooperative repression (``hill >= 2``) and synthesis well above the
repression threshold, the steady-state landscape is bimodal: probability
concentrates at (A high, B ≈ 0) and (B high, A ≈ 0) — Figure 2.
"""

from __future__ import annotations

import numpy as np

from repro.cme.network import ReactionNetwork
from repro.cme.propensity import hill_repression
from repro.cme.reaction import Reaction
from repro.cme.species import Species


def toggle_switch(*, max_protein: int = 60,
                  synthesis_rate: float = 30.0,
                  basal_rate: float = 0.5,
                  burst_rate: float = 0.2,
                  degradation_rate: float = 1.0,
                  repression_threshold: float = 8.0,
                  hill: float = 2.0,
                  burst_threshold_fraction: float = 0.45,
                  name: str = "toggle-switch") -> ReactionNetwork:
    """Build a genetic toggle switch network.

    Parameters
    ----------
    max_protein:
        Copy-number buffer for each protein; the state space is the full
        ``(max_protein + 1)²`` lattice.
    synthesis_rate:
        Maximum regulated synthesis rate; the "on" protein level sits
        near ``(synthesis_rate + basal_rate) / degradation_rate`` — keep
        it below ``max_protein``.
    basal_rate:
        Repression-independent basal synthesis folded into the regulated
        propensity.
    burst_rate:
        Bursty synthesis pathway producing two copies at once
        (translational bursting) — a distinct transition, giving the
        paper's 6-reaction / 7-nonzeros-per-row structure.
    degradation_rate:
        First-order degradation rate of both proteins.
    repression_threshold, hill:
        Hill parameters of the mutual repression; ``hill >= 2``
        (cooperativity) is required for bistability.
    burst_threshold_fraction:
        The burst pathway shuts off (exactly) once the repressor exceeds
        this fraction of ``max_protein``, thinning a fraction of the
        rows as in the paper's toggle matrices.
    """
    species = [
        Species("A", max_count=max_protein, initial_count=0),
        Species("B", max_count=max_protein, initial_count=0),
    ]
    burst_threshold = max(1, int(round(burst_threshold_fraction
                                       * max_protein)))

    def regulated(repressor: str):
        inner = hill_repression(synthesis_rate, repressor,
                                repression_threshold, hill)

        def propensity(states, species_index):
            return basal_rate + inner(states, species_index)

        propensity.__name__ = f"toggle_synthesis[{repressor}]"
        return propensity

    def bursty(repressor: str):
        def propensity(states, species_index):
            x = states[:, species_index[repressor]]
            return np.where(x < burst_threshold, burst_rate, 0.0)

        propensity.__name__ = f"toggle_burst[{repressor}]"
        return propensity

    reactions = [
        Reaction("synA", {}, {"A": 1}, synthesis_rate,
                 propensity_fn=regulated("B"), strictly_positive=True),
        Reaction("degA", {"A": 1}, {}, degradation_rate),
        Reaction("synB", {}, {"B": 1}, synthesis_rate,
                 propensity_fn=regulated("A"), strictly_positive=True),
        Reaction("degB", {"B": 1}, {}, degradation_rate),
        Reaction("bstA", {}, {"A": 2}, burst_rate,
                 propensity_fn=bursty("B")),
        Reaction("bstB", {}, {"B": 2}, burst_rate,
                 propensity_fn=bursty("A")),
    ]
    return ReactionNetwork(species, reactions, name=name)
