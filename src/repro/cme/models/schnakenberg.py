"""The Schnakenberg model (Cao & Liang 2010).

A minimal trimolecular oscillator with two dynamic species and six
reactions (the feed species are folded into the rates):

======  =====================  ==================================
name    reaction               role
======  =====================  ==================================
prodX   ∅ → X                  production of X (A → X)
decX    X → ∅                  removal of X (X → A backward)
prodY   ∅ → Y                  production of Y (B → Y)
decY    Y → ∅                  removal of Y
auto    2X + Y → 3X            trimolecular autocatalysis
rauto   3X → 2X + Y            reverse autocatalysis
======  =====================  ==================================

Six reactions give at most seven nonzeros per row, matching the paper's
Table I (mean 6.99, max 7, variability ≈ 0.02: another near-perfectly
regular ELL case with a fully dense diagonal band).
"""

from __future__ import annotations

from repro.cme.network import ReactionNetwork
from repro.cme.reaction import Reaction
from repro.cme.species import Species


def schnakenberg(*, max_x: int = 200, max_y: int = 100,
                 production_x: float | None = None,
                 decay_x: float = 1.0,
                 production_y: float | None = None,
                 decay_y: float = 0.4,
                 autocatalysis_rate: float | None = None,
                 reverse_autocatalysis_rate: float | None = None,
                 initial_x: int = 0, initial_y: int = 0,
                 name: str = "schnakenberg") -> ReactionNetwork:
    """Build a Schnakenberg network.

    Parameters
    ----------
    max_x, max_y:
        Copy-number buffers (state space ``n ≈ (max_x + 1) · (max_y + 1)``).
    production_x, decay_x, production_y, decay_y:
        Zeroth/first-order exchange rates for the two species; the
        production defaults scale with the buffers so the operating
        point sits well inside the lattice at any registry scale.
    autocatalysis_rate, reverse_autocatalysis_rate:
        The trimolecular pair ``2X + Y ⇌ 3X``; defaults scale inversely
        with the squared operating point (mass-action intensity is
        volume-dependent), keeping the dynamics in the fast-relaxing
        regime the paper's Schnakenberg shows (its fastest-converging
        benchmark at 18 300 iterations).
    """
    if production_x is None:
        production_x = 0.18 * max_x * decay_x
    if production_y is None:
        production_y = 0.25 * max_x * decay_y
    x_star = max(production_x / decay_x, 1.0)
    if autocatalysis_rate is None:
        autocatalysis_rate = 0.5 * decay_x / x_star ** 2
    if reverse_autocatalysis_rate is None:
        reverse_autocatalysis_rate = 0.25 * autocatalysis_rate
    species = [
        Species("X", max_count=max_x, initial_count=initial_x),
        Species("Y", max_count=max_y, initial_count=initial_y),
    ]
    reactions = [
        Reaction("prodX", {}, {"X": 1}, production_x),
        Reaction("decX", {"X": 1}, {}, decay_x),
        Reaction("prodY", {}, {"Y": 1}, production_y),
        Reaction("decY", {"Y": 1}, {}, decay_y),
        Reaction("auto", {"X": 2, "Y": 1}, {"X": 3}, autocatalysis_rate),
        Reaction("rauto", {"X": 3}, {"X": 2, "Y": 1},
                 reverse_autocatalysis_rate),
    ]
    return ReactionNetwork(species, reactions, name=name)
