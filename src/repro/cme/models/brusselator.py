"""The Brusselator (Nicolis & Prigogine 1977).

The canonical chemical oscillator, reduced to its two dynamic species
(the feed species A and B are held constant and folded into rates):

======  =====================  =================================
name    reaction               role
======  =====================  =================================
feed    ∅ → X                  constant production (A → X)
auto    2X + Y → 3X            trimolecular autocatalysis
conv    X → Y                  conversion (B + X → Y + D)
drain   X → ∅                  removal (X → E)
======  =====================  =================================

Four reactions give at most five nonzeros per row (four neighbors plus
the diagonal), matching the paper's Table I for this model (mean 4.99,
max 5, essentially zero variability: plain ELL is already near-optimal).
``feed``/``drain`` are a reversible net ±1 pair along the X axis, so the
DFS order produces a fully dense diagonal band (d{-1,0,+1} = 1.00 in
Table I).
"""

from __future__ import annotations

from repro.cme.network import ReactionNetwork
from repro.cme.reaction import Reaction
from repro.cme.species import Species


def brusselator(*, max_x: int = 200, max_y: int = 100,
                feed_rate: float | None = None,
                autocatalysis_rate: float | None = None,
                conversion_rate: float = 1.55,
                drain_rate: float = 1.0,
                initial_x: int = 0, initial_y: int = 0,
                name: str = "brusselator") -> ReactionNetwork:
    """Build a Brusselator network.

    Parameters
    ----------
    max_x, max_y:
        Copy-number buffers (state space ``n ≈ (max_x + 1) · (max_y + 1)``
        up to reachability).
    feed_rate, autocatalysis_rate, conversion_rate, drain_rate:
        Rate constants of the four reactions above.  The defaults scale
        with the buffers and sit *just inside* the stable (damped-spiral)
        regime — ``conversion < drain + autocatalysis · x*²`` — where the
        Jacobi iteration converges, slowly and oscillating, exactly the
        behavior of the paper's Brusselator (its slowest benchmark at
        125 800 iterations).  Raising ``conversion_rate`` past the
        threshold moves the model onto the limit cycle, where the
        iteration matrix develops unit-modulus eigenvalues and plain
        Jacobi stops converging (use the solver's ``damping``).
    """
    # Deterministic fixed point x* = feed/drain; defaults put it at
    # ~22% of the X buffer and keep y* = 2 x* inside the Y buffer.
    if feed_rate is None:
        feed_rate = 0.22 * max_x * drain_rate
    if autocatalysis_rate is None:
        x_star = feed_rate / drain_rate
        autocatalysis_rate = 0.85 * drain_rate / max(x_star, 1.0) ** 2
    species = [
        Species("X", max_count=max_x, initial_count=initial_x),
        Species("Y", max_count=max_y, initial_count=initial_y),
    ]
    reactions = [
        Reaction("feed", {}, {"X": 1}, feed_rate),
        Reaction("drain", {"X": 1}, {}, drain_rate),
        Reaction("auto", {"X": 2, "Y": 1}, {"X": 3}, autocatalysis_rate),
        Reaction("conv", {"X": 1}, {"Y": 1}, conversion_rate),
    ]
    return ReactionNetwork(species, reactions, name=name)
