"""The phage lambda lysogeny switch (after Cao, Lu & Liang, PNAS 2010).

The epigenetic switch between lysogeny (CI dominant) and lysis (Cro
dominant).  This reproduction keeps the mechanistically essential parts
of the PNAS model — dimerization of both repressors and their mutually
exclusive binding to the shared OR operator — with the operator reduced
to three states (free, CI2-bound, Cro2-bound):

=======  ==================================  ===========================
name     reaction                            role
=======  ==================================  ===========================
synCIb   ORfree → ORfree + CI                basal CI synthesis (PRM)
synCIa   ORci → ORci + CI                    activated CI synthesis
synCro   ORfree → ORfree + Cro               Cro synthesis (PR)
degCI    CI → ∅                              CI monomer degradation
degCro   Cro → ∅                             Cro monomer degradation
dimCI    2CI → CI2                           CI dimerization
udimCI   CI2 → 2CI                           CI2 dissociation
dimCro   2Cro → Cro2                         Cro dimerization
udimCro  Cro2 → 2Cro                         Cro2 dissociation
bindCI   ORfree + CI2 → ORci                 CI2 binds OR (represses PR)
ubindCI  ORci → ORfree + CI2                 CI2 unbinds
bindCro  ORfree + Cro2 → ORcro               Cro2 binds OR (represses PRM)
ubindCro ORcro → ORfree + Cro2               Cro2 unbinds
degCI2   CI2 → ∅                             dimer degradation
=======  ==================================  ===========================

Fourteen reactions give at most fifteen nonzeros per row, matching the
paper's phage-lambda rows of Table I (max 15).  Because most states lack
some reactant (zero monomers, operator occupied, dimer buffer full), the
row-length distribution is broad — variability ≈ 0.3 in the paper — which
is exactly the irregularity the warp-grained ELL format profits from.
"""

from __future__ import annotations

from repro.cme.network import ReactionNetwork
from repro.cme.reaction import Reaction
from repro.cme.species import Species


def phage_lambda(*, max_monomer: int = 15, max_dimer: int = 7,
                 basal_ci_rate: float = 2.0,
                 activated_ci_rate: float = 12.0,
                 cro_rate: float = 8.0,
                 deg_ci: float = 1.0,
                 deg_cro: float = 1.0,
                 dimerization: float = 0.2,
                 dissociation: float = 1.0,
                 binding: float = 1.0,
                 unbinding: float = 0.5,
                 deg_ci2: float = 0.2,
                 name: str = "phage-lambda") -> ReactionNetwork:
    """Build a phage lambda switch network.

    Parameters
    ----------
    max_monomer, max_dimer:
        Copy-number buffers for the monomers (CI, Cro) and dimers
        (CI2, Cro2).  State space
        ``n ≈ 3 · (max_monomer + 1)² · (max_dimer + 1)²`` up to
        reachability.
    basal_ci_rate, activated_ci_rate, cro_rate:
        Synthesis rates; ``activated_ci_rate > basal_ci_rate`` expresses
        the positive PRM feedback that stabilizes lysogeny.
    deg_ci, deg_cro, deg_ci2:
        Degradation rates.
    dimerization, dissociation, binding, unbinding:
        Dimer and operator kinetics.
    """
    species = [
        Species("CI", max_count=max_monomer, initial_count=0),
        Species("Cro", max_count=max_monomer, initial_count=0),
        Species("CI2", max_count=max_dimer, initial_count=0),
        Species("Cro2", max_count=max_dimer, initial_count=0),
        Species("ORfree", max_count=1, initial_count=1),
        Species("ORci", max_count=1, initial_count=0),
        Species("ORcro", max_count=1, initial_count=0),
    ]
    reactions = [
        Reaction("synCIb", {"ORfree": 1}, {"ORfree": 1, "CI": 1},
                 basal_ci_rate),
        Reaction("degCI", {"CI": 1}, {}, deg_ci),
        Reaction("synCro", {"ORfree": 1}, {"ORfree": 1, "Cro": 1},
                 cro_rate),
        Reaction("degCro", {"Cro": 1}, {}, deg_cro),
        Reaction("synCIa", {"ORci": 1}, {"ORci": 1, "CI": 1},
                 activated_ci_rate),
        Reaction("dimCI", {"CI": 2}, {"CI2": 1}, dimerization),
        Reaction("udimCI", {"CI2": 1}, {"CI": 2}, dissociation),
        Reaction("dimCro", {"Cro": 2}, {"Cro2": 1}, dimerization),
        Reaction("udimCro", {"Cro2": 1}, {"Cro": 2}, dissociation),
        Reaction("bindCI", {"ORfree": 1, "CI2": 1}, {"ORci": 1}, binding),
        Reaction("ubindCI", {"ORci": 1}, {"ORfree": 1, "CI2": 1}, unbinding),
        Reaction("bindCro", {"ORfree": 1, "Cro2": 1}, {"ORcro": 1}, binding),
        Reaction("ubindCro", {"ORcro": 1}, {"ORfree": 1, "Cro2": 1},
                 unbinding),
        Reaction("degCI2", {"CI2": 1}, {}, deg_ci2),
    ]
    return ReactionNetwork(species, reactions, name=name)
