"""The seven-instance benchmark registry of Table I.

The paper derives seven rate matrices from four biological models.  This
registry rebuilds all seven with the same models and the same *relative*
sizing (three phage-lambda sizes, two toggle-switch sizes, one each of
Brusselator and Schnakenberg), at buffer capacities scaled down to what a
single-core NumPy reproduction can enumerate and solve (DESIGN.md §2).

Each instance can be materialized at three scales:

``"tiny"``
    A few hundred states — unit/property tests.
``"small"``
    A few thousand states — integration tests and quick benchmarks.
``"bench"``
    Tens of thousands of states — the benchmark harness default.

Enumerated spaces and rate matrices are memoized per ``(name, scale)``;
benchmarks across tables share them.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass
from typing import Callable

import scipy.sparse as sp

from repro.cme.models.brusselator import brusselator
from repro.cme.models.phage_lambda import phage_lambda
from repro.cme.models.schnakenberg import schnakenberg
from repro.cme.models.toggle_switch import toggle_switch
from repro.cme.network import ReactionNetwork
from repro.cme.ratematrix import build_rate_matrix
from repro.cme.statespace import StateSpace, enumerate_state_space
from repro.errors import ValidationError

SCALES = ("tiny", "small", "bench")


@dataclass(frozen=True)
class BenchmarkInstance:
    """One Table I benchmark: a model builder at three scales.

    ``paper_n`` / ``paper_nnz`` record the original (full-scale) matrix
    size from Table I for the paper-vs-measured report.
    """

    name: str
    builders: dict  # scale -> Callable[[], ReactionNetwork]
    paper_n: int
    paper_nnz: int

    def build(self, scale: str = "bench") -> ReactionNetwork:
        if scale not in SCALES:
            raise ValidationError(
                f"unknown scale {scale!r}; expected one of {SCALES}")
        return self.builders[scale]()


def _toggle(mp: int, **kw) -> Callable[[], ReactionNetwork]:
    return lambda: toggle_switch(max_protein=mp, **kw)


def _bruss(mx: int, my: int) -> Callable[[], ReactionNetwork]:
    return lambda: brusselator(max_x=mx, max_y=my)


def _schnak(mx: int, my: int) -> Callable[[], ReactionNetwork]:
    return lambda: schnakenberg(max_x=mx, max_y=my)


def _lambda(mm: int, md: int) -> Callable[[], ReactionNetwork]:
    return lambda: phage_lambda(max_monomer=mm, max_dimer=md)


#: The seven Table I instances, in the paper's row order.
BENCHMARKS: dict[str, BenchmarkInstance] = {
    "toggle-switch-1": BenchmarkInstance(
        "toggle-switch-1",
        {"tiny": _toggle(12), "small": _toggle(45), "bench": _toggle(150)},
        paper_n=319_204, paper_nnz=1_908_834),
    "brusselator": BenchmarkInstance(
        "brusselator",
        {"tiny": _bruss(18, 8), "small": _bruss(70, 35),
         "bench": _bruss(220, 110)},
        paper_n=501_500, paper_nnz=2_501_500),
    "phage-lambda-1": BenchmarkInstance(
        "phage-lambda-1",
        {"tiny": _lambda(4, 2), "small": _lambda(8, 4),
         "bench": _lambda(12, 6)},
        paper_n=1_067_713, paper_nnz=10_058_061),
    "schnakenberg": BenchmarkInstance(
        "schnakenberg",
        {"tiny": _schnak(18, 8), "small": _schnak(75, 40),
         "bench": _schnak(260, 120)},
        paper_n=2_003_001, paper_nnz=14_001_003),
    "phage-lambda-2": BenchmarkInstance(
        "phage-lambda-2",
        {"tiny": _lambda(5, 2), "small": _lambda(9, 4),
         "bench": _lambda(14, 7)},
        paper_n=2_437_455, paper_nnz=25_948_259),
    "toggle-switch-2": BenchmarkInstance(
        "toggle-switch-2",
        {"tiny": _toggle(14), "small": _toggle(60), "bench": _toggle(256)},
        paper_n=4_425_151, paper_nnz=42_202_701),
    "phage-lambda-3": BenchmarkInstance(
        "phage-lambda-3",
        {"tiny": _lambda(6, 3), "small": _lambda(10, 5),
         "bench": _lambda(16, 8)},
        paper_n=9_980_913, paper_nnz=94_469_061),
}


def benchmark_names() -> list[str]:
    """The seven benchmark names in Table I row order."""
    return list(BENCHMARKS)


@functools.lru_cache(maxsize=32)
def load_benchmark(name: str, scale: str = "bench") \
        -> tuple[ReactionNetwork, StateSpace]:
    """Build and enumerate one benchmark (memoized)."""
    try:
        instance = BENCHMARKS[name]
    except KeyError:
        raise ValidationError(
            f"unknown benchmark {name!r}; known: {benchmark_names()}") from None
    network = instance.build(scale)
    space = enumerate_state_space(network)
    return network, space


@functools.lru_cache(maxsize=32)
def load_benchmark_matrix(name: str, scale: str = "bench") -> sp.csr_matrix:
    """The benchmark's rate matrix in canonical CSR (memoized)."""
    _, space = load_benchmark(name, scale)
    return build_rate_matrix(space)
