"""The paper's four biological models and the Table I benchmark registry.

Each model module exposes a builder returning a
:class:`~repro.cme.network.ReactionNetwork` with tunable copy-number
buffers and rate constants; :mod:`repro.cme.models.registry` instantiates
the seven benchmark matrices of Table I (at reduced buffer sizes — see
DESIGN.md's substitution table).
"""

from repro.cme.models.toggle_switch import toggle_switch
from repro.cme.models.brusselator import brusselator
from repro.cme.models.schnakenberg import schnakenberg
from repro.cme.models.phage_lambda import phage_lambda
from repro.cme.models.registry import (
    BENCHMARKS,
    BenchmarkInstance,
    benchmark_names,
    load_benchmark,
    load_benchmark_matrix,
)

__all__ = [
    "toggle_switch",
    "brusselator",
    "schnakenberg",
    "phage_lambda",
    "BENCHMARKS",
    "BenchmarkInstance",
    "benchmark_names",
    "load_benchmark",
    "load_benchmark_matrix",
]
