"""Reactions with combinatorial mass-action propensities.

A reaction ``k`` transforms ``c_i`` copies of each reactant species into
products at the intrinsic rate ``r_k``.  Its propensity in microstate
``x`` is the paper's Section II-A expression::

    A_k(x) = r_k · Π_i C(x_i, c_i)

i.e. the rate constant times the number of distinct reactant combinations
available.  ``C(x, 0) = 1``, so non-reactant species do not contribute;
``C(x, c) = 0`` whenever ``x < c``, which encodes "not enough molecules".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Mapping

from repro.errors import ValidationError


def _freeze(mapping: Mapping[str, int], what: str) -> dict[str, int]:
    out = {}
    for name, count in dict(mapping).items():
        count = int(count)
        if count <= 0:
            raise ValidationError(
                f"{what} count for species {name!r} must be positive, "
                f"got {count}")
        out[str(name)] = count
    return out


@dataclass(frozen=True)
class Reaction:
    """One elementary reaction.

    Parameters
    ----------
    name:
        Human-readable label (unique within a network).
    reactants:
        Mapping ``species name -> stoichiometric coefficient`` consumed.
        Empty mapping = a source reaction (``∅ → ...``).
    products:
        Mapping ``species name -> coefficient`` produced.
    rate:
        Intrinsic rate constant ``r_k`` (> 0).

    Examples
    --------
    >>> Reaction("dimerize", {"A": 2}, {"A2": 1}, rate=0.5)  # doctest: +ELLIPSIS
    Reaction(...)
    """

    name: str
    reactants: Mapping[str, int]
    products: Mapping[str, int]
    rate: float
    #: Optional custom propensity replacing the mass-action expression.
    #: Called as ``fn(states, species_index)`` with an ``(n, m)`` state
    #: batch and the ``name -> column`` map; must return ``(n,)`` rates.
    #: Used for regulated (e.g. Hill-type) synthesis, as in Cao & Liang's
    #: framework where propensities are arbitrary functions of the state.
    propensity_fn: Callable | None = None
    #: Declare a custom propensity as strictly positive on every state —
    #: lets the DFS enumeration treat the reaction as always applicable
    #: without evaluating the function state by state.
    strictly_positive: bool = False
    # Frozen copies with validated positive coefficients.
    _reactants: dict[str, int] = field(init=False, repr=False, compare=False)
    _products: dict[str, int] = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        if not self.name:
            raise ValidationError("reaction name must be non-empty")
        rate = float(self.rate)
        if not rate > 0.0:
            raise ValidationError(
                f"reaction {self.name!r}: rate must be positive, got {self.rate}")
        object.__setattr__(self, "rate", rate)
        object.__setattr__(self, "_reactants",
                           _freeze(self.reactants, f"reaction {self.name!r} reactant"))
        object.__setattr__(self, "_products",
                           _freeze(self.products, f"reaction {self.name!r} product"))
        object.__setattr__(self, "reactants", dict(self._reactants))
        object.__setattr__(self, "products", dict(self._products))
        if not self._reactants and not self._products:
            raise ValidationError(
                f"reaction {self.name!r} has neither reactants nor products")
        if self.strictly_positive and self.propensity_fn is None:
            raise ValidationError(
                f"reaction {self.name!r}: strictly_positive only applies "
                f"to a custom propensity_fn")
        if self.propensity_fn is not None and self._reactants:
            raise ValidationError(
                f"reaction {self.name!r}: a custom propensity_fn replaces "
                f"the mass-action expression entirely; model consumed "
                f"species through the net change (products/reactants) of a "
                f"mass-action reaction instead")

    def species_names(self) -> set[str]:
        """All species this reaction touches."""
        return set(self._reactants) | set(self._products)

    def net_change(self) -> dict[str, int]:
        """Net stoichiometric change per species (products - reactants)."""
        change: dict[str, int] = {}
        for name, c in self._products.items():
            change[name] = change.get(name, 0) + c
        for name, c in self._reactants.items():
            change[name] = change.get(name, 0) - c
        return {name: d for name, d in change.items() if d != 0}

    def is_reversible_pair(self, other: "Reaction") -> bool:
        """True when *other* exactly undoes this reaction's net change.

        Reversible pairs are what create the dense ``{-1, +1}`` diagonals
        under DFS enumeration (Section V): forward/backward reactions link
        DFS-adjacent microstates.
        """
        mine = self.net_change()
        theirs = other.net_change()
        return (set(mine) == set(theirs)
                and all(mine[k] == -theirs[k] for k in mine))
