"""Molecular species of a reaction network.

A species carries the finite buffer bound used by the optimal enumeration:
the CME state space is made finite by capping each copy number at
``max_count`` (Cao & Liang's finitely-buffered enumeration).  Reactions
that would push a species beyond its buffer are blocked, which keeps the
rate matrix a proper generator (columns still sum to zero).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ValidationError


@dataclass(frozen=True)
class Species:
    """One molecular species.

    Parameters
    ----------
    name:
        Unique identifier within the network.
    max_count:
        Buffer capacity: the largest copy number representable in the
        enumerated state space.
    initial_count:
        Copy number in the enumeration's initial microstate.
    """

    name: str
    max_count: int
    initial_count: int = 0

    def __post_init__(self) -> None:
        if not self.name:
            raise ValidationError("species name must be non-empty")
        if self.max_count < 0:
            raise ValidationError(
                f"species {self.name!r}: max_count must be >= 0, "
                f"got {self.max_count}")
        if not (0 <= self.initial_count <= self.max_count):
            raise ValidationError(
                f"species {self.name!r}: initial_count {self.initial_count} "
                f"outside [0, {self.max_count}]")

    @property
    def levels(self) -> int:
        """Number of representable copy-number levels (``max_count + 1``)."""
        return self.max_count + 1
