"""Steady-state probability landscape analysis (Figure 2).

The probability landscape is the steady-state distribution over
microstates.  Biological insight comes from projecting it onto one or two
species (marginals), locating its modes (the macrostates — e.g. the two
"on/off" corners of the genetic toggle switch) and summarizing it with
expectations and entropy.
"""

from __future__ import annotations

import numpy as np

from repro.cme.statespace import StateSpace
from repro.errors import ValidationError
from repro.utils.validation import check_probability_vector


class ProbabilityLandscape:
    """A probability distribution over an enumerated state space.

    Parameters
    ----------
    space:
        The state space the probabilities live on.
    p:
        Probability vector in the space's DFS order.
    """

    def __init__(self, space: StateSpace, p) -> None:
        self.space = space
        self.p = check_probability_vector(np.asarray(p, dtype=np.float64),
                                          "p", atol=1e-6)
        if self.p.shape[0] != space.size:
            raise ValidationError(
                f"p has length {self.p.shape[0]}, state space has "
                f"{space.size} states")
        # Clean tiny negatives from iterative solvers and renormalize.
        self.p = np.clip(self.p, 0.0, None)
        self.p /= self.p.sum()

    # -- projections ----------------------------------------------------------

    def marginal(self, species: str) -> np.ndarray:
        """1-D marginal over one species' copy number.

        Returns an array of length ``max_count + 1`` summing to 1.
        """
        idx = self.space.network.species_index(species)
        levels = int(self.space.network.max_counts[idx]) + 1
        out = np.zeros(levels, dtype=np.float64)
        np.add.at(out, self.space.states[:, idx], self.p)
        return out

    def marginal2d(self, species_a: str, species_b: str) -> np.ndarray:
        """2-D joint marginal grid ``P[n_a, n_b]`` over two species.

        This is the landscape surface of the paper's Figure 2.
        """
        ia = self.space.network.species_index(species_a)
        ib = self.space.network.species_index(species_b)
        if ia == ib:
            raise ValidationError("species must be distinct")
        la = int(self.space.network.max_counts[ia]) + 1
        lb = int(self.space.network.max_counts[ib]) + 1
        grid = np.zeros((la, lb), dtype=np.float64)
        np.add.at(grid, (self.space.states[:, ia], self.space.states[:, ib]),
                  self.p)
        return grid

    # -- summaries --------------------------------------------------------------

    def mean_counts(self) -> dict[str, float]:
        """Expected copy number of every species."""
        out = {}
        for i, s in enumerate(self.space.network.species):
            out[s.name] = float(self.space.states[:, i] @ self.p)
        return out

    def mode_state(self) -> np.ndarray:
        """The most probable microstate."""
        return self.space.states[int(np.argmax(self.p))].copy()

    def entropy(self) -> float:
        """Shannon entropy of the landscape, in nats."""
        nz = self.p[self.p > 0]
        return float(-(nz * np.log(nz)).sum())

    def top_states(self, count: int = 10) -> list[tuple[np.ndarray, float]]:
        """The *count* most probable microstates with their probabilities."""
        order = np.argsort(-self.p)[:count]
        return [(self.space.states[i].copy(), float(self.p[i])) for i in order]

    def grid_modes(self, species_a: str, species_b: str,
                   *, min_probability: float = 1e-6) -> list[tuple[int, int]]:
        """Local maxima of the 2-D marginal (the landscape's macrostates).

        A grid cell is a mode when it beats its 8-neighborhood and carries
        at least *min_probability* mass.  The toggle switch yields two:
        the (high A, low B) and (low A, high B) corners.
        """
        grid = self.marginal2d(species_a, species_b)
        padded = np.pad(grid, 1, mode="constant", constant_values=-np.inf)
        neighborhood = np.full(grid.shape, -np.inf)
        for di in (-1, 0, 1):
            for dj in (-1, 0, 1):
                if di == 0 and dj == 0:
                    continue
                window = padded[1 + di: 1 + di + grid.shape[0],
                                1 + dj: 1 + dj + grid.shape[1]]
                neighborhood = np.maximum(neighborhood, window)
        is_mode = (grid > neighborhood) & (grid >= min_probability)
        coords = np.argwhere(is_mode)
        # Strongest first.
        coords = coords[np.argsort(-grid[coords[:, 0], coords[:, 1]])]
        return [(int(i), int(j)) for i, j in coords]

    def ascii_heatmap(self, species_a: str, species_b: str,
                      *, width: int = 60, height: int = 24) -> str:
        """A terminal rendering of the 2-D landscape (Figure 2 stand-in).

        Rows = species_a (top = high count), columns = species_b; shading
        follows log-probability through a 10-character ramp.
        """
        grid = self.marginal2d(species_a, species_b)
        la, lb = grid.shape
        # Downsample to the requested character cell budget by box sums.
        rows = min(height, la)
        cols = min(width, lb)
        ri = np.minimum((np.arange(la) * rows) // la, rows - 1)
        ci = np.minimum((np.arange(lb) * cols) // lb, cols - 1)
        small = np.zeros((rows, cols))
        np.add.at(small, (ri[:, None].repeat(lb, axis=1),
                          ci[None, :].repeat(la, axis=0)), grid)
        ramp = " .:-=+*#%@"
        nz = small[small > 0]
        if nz.size == 0:
            return "\n".join(" " * cols for _ in range(rows))
        hi = np.log10(small.max())
        # Clamp to 8 decades: landscapes span hundreds of orders of
        # magnitude and an unclamped ramp washes out the modes.
        lo = max(np.log10(nz.min()), hi - 8.0)
        span = max(hi - lo, 1e-12)
        lines = []
        for r in range(rows - 1, -1, -1):
            chars = []
            for c in range(cols):
                v = small[r, c]
                if v <= 0:
                    chars.append(" ")
                else:
                    t = max(0.0, (np.log10(v) - lo) / span)
                    chars.append(ramp[min(int(t * (len(ramp) - 1) + 0.5),
                                          len(ramp) - 1)])
            lines.append("".join(chars))
        header = (f"{species_a} (up) vs {species_b} (right), "
                  f"log10 P in [{lo:.1f}, {hi:.1f}]")
        return header + "\n" + "\n".join(lines)
