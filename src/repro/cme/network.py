"""Reaction networks: species + reactions compiled to array form.

:class:`ReactionNetwork` is the user-facing model object.  It validates
the model (unique names, reactions referencing known species, buffers
large enough for every reaction's stoichiometry) and compiles it into the
integer arrays the enumerator and rate-matrix assembler consume:
``reactant_counts``, ``stoichiometry`` (net change) and ``rates``.
"""

from __future__ import annotations

import hashlib
import json
from typing import Iterable, Sequence

import numpy as np

from repro.cme.propensity import PropensityEvaluator
from repro.cme.reaction import Reaction
from repro.cme.species import Species
from repro.errors import ValidationError


class ReactionNetwork:
    """A validated biochemical reaction network.

    Parameters
    ----------
    species:
        Ordered species list; the order defines the microstate vector
        layout ``x = (x_1, ..., x_m)``.
    reactions:
        Ordered reaction list; the order is the DFS neighbor-expansion
        order of the enumeration, so putting forward/backward pairs of
        reversible reactions first yields the dense diagonal band the
        ELL+DIA format leverages.
    name:
        Optional model label used in tables.
    """

    def __init__(self, species: Sequence[Species],
                 reactions: Iterable[Reaction],
                 *, name: str = "network"):
        self.name = str(name)
        self.species = list(species)
        self.reactions = list(reactions)
        if not self.species:
            raise ValidationError("network needs at least one species")
        if not self.reactions:
            raise ValidationError("network needs at least one reaction")

        names = [s.name for s in self.species]
        if len(set(names)) != len(names):
            raise ValidationError(f"duplicate species names in {names}")
        rnames = [r.name for r in self.reactions]
        if len(set(rnames)) != len(rnames):
            raise ValidationError(f"duplicate reaction names in {rnames}")
        self._index = {n: i for i, n in enumerate(names)}

        m, R = len(self.species), len(self.reactions)
        self.reactant_counts = np.zeros((R, m), dtype=np.int64)
        self.product_counts = np.zeros((R, m), dtype=np.int64)
        for k, rxn in enumerate(self.reactions):
            unknown = rxn.species_names() - set(self._index)
            if unknown:
                raise ValidationError(
                    f"reaction {rxn.name!r} references unknown species "
                    f"{sorted(unknown)}")
            for sname, c in rxn.reactants.items():
                self.reactant_counts[k, self._index[sname]] = c
            for sname, c in rxn.products.items():
                self.product_counts[k, self._index[sname]] = c
        self.stoichiometry = self.product_counts - self.reactant_counts
        self.rates = np.array([r.rate for r in self.reactions], dtype=np.float64)
        self.max_counts = np.array([s.max_count for s in self.species],
                                   dtype=np.int64)
        self.initial_state = np.array([s.initial_count for s in self.species],
                                      dtype=np.int64)

        for k, rxn in enumerate(self.reactions):
            needed = self.reactant_counts[k]
            if np.any(needed > self.max_counts):
                raise ValidationError(
                    f"reaction {rxn.name!r} consumes more copies than a "
                    f"species buffer can ever hold")
            if np.all(self.stoichiometry[k] == 0):
                raise ValidationError(
                    f"reaction {rxn.name!r} has zero net effect; it cannot "
                    f"appear in the CME transition structure")

        self.propensities = PropensityEvaluator(
            self.reactant_counts, self.rates, self.max_counts,
            custom_fns=[r.propensity_fn for r in self.reactions],
            species_index=self._index)

    # -- queries ------------------------------------------------------------

    @property
    def n_species(self) -> int:
        return len(self.species)

    @property
    def n_reactions(self) -> int:
        return len(self.reactions)

    def species_index(self, name: str) -> int:
        """Position of species *name* in the microstate vector."""
        try:
            return self._index[name]
        except KeyError:
            raise ValidationError(f"unknown species {name!r}") from None

    def state_space_bound(self) -> int:
        """The crude bound ``|X| <= Π (max_i + 1)`` of Section II-B."""
        return int(np.prod(self.max_counts + 1))

    def reversible_pairs(self) -> list[tuple[int, int]]:
        """Indices ``(k, l)`` of reaction pairs that undo each other."""
        pairs = []
        for k in range(self.n_reactions):
            for l in range(k + 1, self.n_reactions):
                if self.reactions[k].is_reversible_pair(self.reactions[l]):
                    pairs.append((k, l))
        return pairs

    def with_rates(self, overrides: dict[str, float]) -> "ReactionNetwork":
        """A copy with some reaction rates replaced.

        This is the paper's motivating exploratory workload: the same
        network solved under many rate conditions (Section I).  Custom
        propensity functions are carried over unchanged, so a varied
        network keeps the exact dynamics of the base model except for
        the overridden mass-action rates.
        """
        new_reactions = []
        unknown = set(overrides) - {r.name for r in self.reactions}
        if unknown:
            raise ValidationError(f"unknown reactions {sorted(unknown)}")
        for rxn in self.reactions:
            rate = overrides.get(rxn.name, rxn.rate)
            new_reactions.append(Reaction(
                rxn.name, rxn.reactants, rxn.products, rate,
                propensity_fn=rxn.propensity_fn,
                strictly_positive=rxn.strictly_positive))
        return ReactionNetwork(self.species, new_reactions, name=self.name)

    # -- canonical identity --------------------------------------------------

    def canonical_payload(self) -> dict:
        """A deterministic, JSON-serializable description of the model.

        Species stay in declared order (the order *is* semantic: it
        defines the microstate vector layout and hence the meaning of
        any probability vector over the enumerated space).  Reactions
        are sorted by name because reaction order only permutes the DFS
        enumeration, never the distribution itself.  A custom
        propensity function is identified by its ``__name__`` (closures
        cannot be hashed structurally), so models that vary a parameter
        *inside* a custom propensity must encode it in the function
        name or the reaction rate to remain distinguishable.
        """
        species = [[s.name, int(s.max_count), int(s.initial_count)]
                   for s in self.species]
        reactions = []
        for r in sorted(self.reactions, key=lambda r: r.name):
            fn = (getattr(r.propensity_fn, "__name__", "custom")
                  if r.propensity_fn is not None else None)
            reactions.append([
                r.name,
                sorted((n, int(c)) for n, c in r.reactants.items()),
                sorted((n, int(c)) for n, c in r.products.items()),
                float(r.rate),
                fn,
                bool(r.strictly_positive),
            ])
        return {"species": species, "reactions": reactions}

    def canonical_signature(self) -> str:
        """A stable content hash of the model (cache-key basis).

        Invariant to reaction ordering and to dict insertion order in
        reactant/product maps; sensitive to every rate, stoichiometry,
        species buffer, initial count, and custom-propensity identity.
        The network ``name`` is a display label and does not
        participate.
        """
        payload = json.dumps(self.canonical_payload(), sort_keys=True,
                             separators=(",", ":"))
        return hashlib.sha256(payload.encode()).hexdigest()

    def describe(self) -> str:
        """Human-readable model summary (used by the examples)."""
        lines = [f"ReactionNetwork {self.name!r}: "
                 f"{self.n_species} species, {self.n_reactions} reactions"]
        for s in self.species:
            lines.append(f"  species {s.name}: 0..{s.max_count} "
                         f"(initial {s.initial_count})")
        for r in self.reactions:
            lhs = " + ".join(f"{c} {n}" for n, c in r.reactants.items()) or "∅"
            rhs = " + ".join(f"{c} {n}" for n, c in r.products.items()) or "∅"
            lines.append(f"  {r.name}: {lhs} -> {rhs}  (rate {r.rate:g})")
        return "\n".join(lines)
