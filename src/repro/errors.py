"""Exception hierarchy for the :mod:`repro` package.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything from this package with a single ``except`` clause while
still being able to discriminate between configuration problems, numerical
failures and format-construction errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` package."""


class ValidationError(ReproError, ValueError):
    """An argument failed validation (wrong shape, dtype, range, ...)."""


class IterateSizeError(ValidationError):
    """An iterate's length disagrees with the system dimension.

    Raised when a warm-start vector (``x0``/``x0s[j]``) does not match
    the matrix size ``n``.  The mismatch is carried structurally in
    ``expected`` and ``got`` so callers that *remap* iterates across
    changing state spaces (the adaptive FSP loop) can distinguish a
    remap bug from any other bad-argument failure.
    """

    def __init__(self, expected: int, got, *, name: str = "x0") -> None:
        self.expected = int(expected)
        self.got = got
        super().__init__(
            f"{name} must have length {expected}, got {got}")


class FormatError(ReproError):
    """A sparse-matrix format could not be constructed or is inconsistent."""


class BackendError(ReproError):
    """A kernel backend was unknown or explicitly requested but unavailable.

    Raised only for *explicit* selections (``backend=`` arguments and
    :func:`repro.backends.use`); environment-variable and default
    selections degrade to the reference backend with a warning instead,
    so a missing optional dependency never breaks a deployment that
    merely inherited ``REPRO_BACKEND`` from its environment.
    """


class EnumerationError(ReproError):
    """State-space enumeration failed (e.g. exceeded the state budget)."""


class StateSpaceOverflowError(EnumerationError):
    """The DFS enumeration hit the configured maximum number of states.

    The CME state space grows exponentially with the number of species; a
    hard cap protects against runaway enumerations.  The partially explored
    space is attached as the ``partial_states`` attribute for diagnostics.
    """

    def __init__(self, limit: int, message: str | None = None) -> None:
        self.limit = limit
        super().__init__(
            message or f"state-space enumeration exceeded the cap of {limit} states"
        )


class ConvergenceError(ReproError):
    """An iterative solver failed to converge within its iteration budget."""

    def __init__(self, message: str, iterations: int | None = None,
                 residual: float | None = None) -> None:
        self.iterations = iterations
        self.residual = residual
        super().__init__(message)


class SingularMatrixError(ReproError):
    """A matrix required to be invertible (e.g. the Jacobi diagonal) is not."""


class SingularSystemError(SingularMatrixError):
    """The steady-state system cannot be iterated on: a diagonal entry
    is exactly zero (an absorbing state under the splitting), so the
    Jacobi/Gauss-Seidel preconditioner does not exist.

    This is a property of the *system*, not of the attempt — retrying
    the same solve can never succeed, which is why the serving layer
    maps it to a terminal (non-retryable) job failure.  The offending
    row indices (capped at the first few) ride along in ``rows``.
    """

    def __init__(self, message: str, *, rows=None) -> None:
        self.rows = list(rows) if rows is not None else []
        super().__init__(message)


class DeviceModelError(ReproError):
    """The GPU/CPU performance model was configured inconsistently."""


class KernelLaunchError(ReproError):
    """A (simulated) GPU kernel launch failed.

    Raised by the :mod:`repro.gpusim` dispatch layer when an installed
    :class:`repro.resilience.faults.FaultInjector` fails a launch on
    schedule — the reproduction's stand-in for the transient launch
    and ECC errors a real device driver surfaces.  Launch failures are
    transient by definition, so the serving layer treats them as
    retryable.
    """


class FaultPlanError(ReproError):
    """A fault-injection plan was malformed (unknown site/kind, bad
    schedule, unparseable JSON)."""


class SolveJobError(ReproError):
    """A solve job failed in the serving layer (:mod:`repro.serve`).

    Carries the job's cache ``key``, the number of ``attempts``
    consumed, and an optional structured ``failure`` payload (e.g. the
    failing matrix signature for singular systems) so operators can
    correlate failures with metrics and cached artifacts.
    """

    def __init__(self, message: str, *, key: str | None = None,
                 attempts: int | None = None,
                 failure: dict | None = None) -> None:
        self.key = key
        self.attempts = attempts
        self.failure = dict(failure) if failure is not None else {}
        super().__init__(message)


class JobRejectedError(SolveJobError):
    """Backpressure: the bounded queue was full under the reject policy
    (or a blocking submit timed out waiting for space)."""


class JobTimeoutError(SolveJobError):
    """A solve attempt exceeded its per-job wall-clock budget (or its
    propagated submission deadline).

    ``iterations`` and ``residual`` carry the partial iterate's stats
    at expiry, so operators can tell a nearly-converged timeout from a
    hopeless one.
    """

    def __init__(self, message: str, *, key: str | None = None,
                 attempts: int | None = None, failure: dict | None = None,
                 iterations: int | None = None,
                 residual: float | None = None) -> None:
        self.iterations = iterations
        self.residual = residual
        super().__init__(message, key=key, attempts=attempts,
                         failure=failure)


class JobCancelledError(SolveJobError):
    """The job was cancelled before a worker completed it."""


class WorkerCrashError(SolveJobError):
    """A serve worker died (or was killed by a fault plan) mid-attempt.

    The crash is a property of the *attempt*, not of the job, so the
    scheduler counts it as retryable and re-runs the job — on another
    attempt, possibly another worker — under the backoff policy.
    """


class CircuitOpenError(SolveJobError):
    """The per-solver-method circuit breaker is open: recent attempts
    failed repeatedly and the service is shedding load on this method
    until the reset timeout elapses (terminal, not retryable — retrying
    immediately is exactly what the breaker exists to prevent)."""


class CheckpointError(ReproError):
    """A durable checkpoint could not be read back intact.

    Raised by :mod:`repro.durability` when a checkpoint file fails
    validation — bad magic, unsupported version, CRC mismatch (torn or
    bit-flipped write), truncated payload, or a signature that does not
    match the system being resumed.  The resume path catches this per
    file and falls back to the next-oldest checkpoint; it only escapes
    to callers reading a single explicit file.
    """


class JournalError(ReproError):
    """The serve write-ahead job journal is unusable (unwritable path,
    or a corrupt record encountered where strict parsing was requested).
    Torn tails and isolated corrupt records during replay are *not*
    errors — they are skipped with a warning and counted."""
