"""repro — GPU-based steady-state solution of the Chemical Master Equation.

A from-scratch reproduction of Maggioni, Berger-Wolf & Liang (IPPS
2013): the CME stochastic framework (reaction networks, DFS state-space
enumeration, rate-matrix assembly), the GPU-oriented sparse formats
(ELL, ELL+DIA, sliced ELL and the paper's warp-grained sliced ELL), the
Jacobi steady-state solver with the paper's stopping machinery, and — in
place of the GTX580 the paper measures on — a calibrated functional +
performance simulator of the Fermi architecture (see DESIGN.md).

Quickstart::

    from repro import toggle_switch, solve_steady_state

    network = toggle_switch(max_protein=40)
    landscape, result = solve_steady_state(network)
    print(landscape.ascii_heatmap("A", "B"))
"""

from repro.cme import (
    CMEOperator,
    ProbabilityLandscape,
    Reaction,
    ReactionNetwork,
    Species,
    StateSpace,
    build_rate_matrix,
    enumerate_state_space,
)
from repro.cme.models import (
    brusselator,
    phage_lambda,
    schnakenberg,
    toggle_switch,
)
from repro.solvers import JacobiSolver, PowerIterationSolver, SolverResult
from repro.sparse import (
    CSRMatrix,
    COOMatrix,
    DIAMatrix,
    ELLDIAMatrix,
    ELLMatrix,
    SlicedELLMatrix,
    WarpedELLMatrix,
)
from repro.gpusim import GTX580, DeviceSpec, jacobi_performance, spmv_performance

__version__ = "1.0.0"

__all__ = [
    "Species",
    "Reaction",
    "ReactionNetwork",
    "StateSpace",
    "enumerate_state_space",
    "build_rate_matrix",
    "CMEOperator",
    "ProbabilityLandscape",
    "toggle_switch",
    "brusselator",
    "schnakenberg",
    "phage_lambda",
    "JacobiSolver",
    "PowerIterationSolver",
    "SolverResult",
    "COOMatrix",
    "CSRMatrix",
    "DIAMatrix",
    "ELLMatrix",
    "ELLDIAMatrix",
    "SlicedELLMatrix",
    "WarpedELLMatrix",
    "DeviceSpec",
    "GTX580",
    "spmv_performance",
    "jacobi_performance",
    "solve_steady_state",
]


def solve_steady_state(network, *, tol: float = 1e-8,
                       max_iterations: int = 500_000,
                       solver_kwargs: dict | None = None,
                       max_states: int = 5_000_000):
    """Enumerate, assemble and solve a network's steady state in one call.

    Parameters
    ----------
    network:
        A :class:`ReactionNetwork`.
    tol, max_iterations:
        Jacobi stopping parameters (paper defaults scaled to typical
        reproduction sizes).
    solver_kwargs:
        Extra :class:`JacobiSolver` options (e.g. ``damping=0.7``).
    max_states:
        Enumeration safety cap.

    Returns
    -------
    (ProbabilityLandscape, SolverResult)
        The steady-state landscape and the solver diagnostics.
    """
    space = enumerate_state_space(network, max_states=max_states)
    A = build_rate_matrix(space)
    solver = JacobiSolver(A, tol=tol, max_iterations=max_iterations,
                          **(solver_kwargs or {}))
    result = solver.solve()
    return ProbabilityLandscape(space, result.x), result
