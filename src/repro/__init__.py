"""repro — GPU-based steady-state solution of the Chemical Master Equation.

A from-scratch reproduction of Maggioni, Berger-Wolf & Liang (IPPS
2013): the CME stochastic framework (reaction networks, DFS state-space
enumeration, rate-matrix assembly), the GPU-oriented sparse formats
(ELL, ELL+DIA, sliced ELL and the paper's warp-grained sliced ELL), the
Jacobi steady-state solver with the paper's stopping machinery, and — in
place of the GTX580 the paper measures on — a calibrated functional +
performance simulator of the Fermi architecture (see DESIGN.md).

Quickstart::

    from repro import toggle_switch, solve_steady_state

    network = toggle_switch(max_protein=40)
    landscape, result = solve_steady_state(network)
    print(landscape.ascii_heatmap("A", "B"))
"""

from repro.cme import (
    CMEOperator,
    ProbabilityLandscape,
    Reaction,
    ReactionNetwork,
    Species,
    StateSpace,
    build_rate_matrix,
    enumerate_state_space,
)
from repro.cme.models import (
    brusselator,
    phage_lambda,
    schnakenberg,
    toggle_switch,
)
from repro.errors import ValidationError
from repro.solvers import (
    GaussSeidelSolver,
    JacobiSolver,
    PowerIterationSolver,
    SolverResult,
    SteadyStateSolver,
    StopReason,
)
from repro.sparse import (
    CSRMatrix,
    COOMatrix,
    DIAMatrix,
    ELLDIAMatrix,
    ELLMatrix,
    SlicedELLMatrix,
    WarpedELLMatrix,
)
from repro.gpusim import GTX580, DeviceSpec, jacobi_performance, spmv_performance

__version__ = "1.0.0"

__all__ = [
    "Species",
    "Reaction",
    "ReactionNetwork",
    "StateSpace",
    "enumerate_state_space",
    "build_rate_matrix",
    "CMEOperator",
    "ProbabilityLandscape",
    "toggle_switch",
    "brusselator",
    "schnakenberg",
    "phage_lambda",
    "JacobiSolver",
    "GaussSeidelSolver",
    "PowerIterationSolver",
    "SteadyStateSolver",
    "SolverResult",
    "StopReason",
    "ValidationError",
    "COOMatrix",
    "CSRMatrix",
    "DIAMatrix",
    "ELLMatrix",
    "ELLDIAMatrix",
    "SlicedELLMatrix",
    "WarpedELLMatrix",
    "DeviceSpec",
    "GTX580",
    "spmv_performance",
    "jacobi_performance",
    "solve_steady_state",
]


#: Aliases accepted by :func:`solve_steady_state`'s ``format`` argument
#: on top of :data:`repro.sparse.conversion.FORMAT_REGISTRY` keys.
_FORMAT_ALIASES = {
    "sliced_ell": "sell",
    "sliced-ell": "sell",
    "ell_dia": "ell+dia",
    "ell-dia": "ell+dia",
    "warped_ell": "warped-ell",
    "sell_c_sigma": "sell-c-sigma",
}


#: Front-door methods whose solve loops accept a ``checkpointer=``
#: (the resilient fallback chain switches solvers mid-flight and has
#: no single loop state to snapshot).
_CHECKPOINTABLE_METHODS = ("jacobi", "gauss-seidel", "power", "sharded")


def solve_steady_state(network_or_matrix, method: str = "jacobi", *,
                       format: str | None = None,
                       tol: float = 1e-8,
                       max_iterations: int = 500_000,
                       x0=None,
                       time_budget_s: float | None = None,
                       hooks=None,
                       solver_kwargs: dict | None = None,
                       max_states: int = 5_000_000,
                       checkpoint=None,
                       resume: bool = False,
                       checkpoint_every: int | None = 1000,
                       checkpoint_seconds: float | None = None,
                       checkpoint_keep: int = 3,
                       **options) -> SolverResult:
    """The steady-state front door: one call from model to answer.

    Routes a :class:`ReactionNetwork` through enumeration, rate-matrix
    assembly and (optional) device-format conversion into the chosen
    solver — the pipeline the CLI, the examples and the serving layer
    all share instead of hand-rolling it.  A raw matrix (SciPy sparse,
    dense, or any :class:`repro.sparse.base.SparseFormat`) skips the
    CME stages and is solved directly.

    Every stage emits a tracing span when a recorder is installed
    (see :mod:`repro.telemetry`).

    Parameters
    ----------
    network_or_matrix:
        A :class:`ReactionNetwork`, or the generator matrix itself.
    method:
        ``"jacobi"`` (the paper's solver), ``"gauss-seidel"``,
        ``"power"``, ``"resilient"`` (the self-healing
        jacobi → gauss-seidel → gmres fallback chain) or ``"sharded"``
        (domain-decomposed Jacobi across a process pool; accepts
        ``shards=`` and ``sync="barrier"|"chaotic"`` via
        ``solver_kwargs``/``options``).
    format:
        Optional device sparse format to hold the system in before
        solving — any :data:`~repro.sparse.conversion.FORMAT_REGISTRY`
        key (``"ell"``, ``"sell"``, ``"warped-ell"``, ...) or alias
        (``"sliced_ell"``, ``"ell_dia"``).  ``None`` solves straight
        from CSR.
    tol, max_iterations:
        Stopping parameters (paper defaults scaled to typical
        reproduction sizes).
    x0, time_budget_s, hooks:
        Forwarded to :meth:`~repro.solvers.base.IterativeSolverBase.solve`
        — warm start, wall-clock budget, instrumentation hooks.
    solver_kwargs, **options:
        Extra solver-constructor options (e.g. ``damping=0.7``,
        ``uniformization_factor=1.1``, ``backend="native"`` to select
        the kernel backend — see :mod:`repro.backends`);
        ``solver_kwargs`` is the pre-1.1 spelling and is merged with
        ``options``.
    max_states:
        Enumeration safety cap.
    checkpoint:
        Optional directory for durable crash-safe checkpoints (see
        DESIGN.md §15).  The solve writes versioned, checksummed
        snapshot files there at residual-check boundaries; supported
        for methods ``"jacobi"``, ``"gauss-seidel"``, ``"power"`` and
        ``"sharded"``.
    resume:
        With ``checkpoint``, first look for the newest intact
        checkpoint matching this exact system/method/tolerance and
        continue from it (torn, corrupt or mismatched files are
        skipped with a warning).  A resumed Jacobi or barrier-sharded
        solve replays bitwise identically to the uninterrupted run.
    checkpoint_every, checkpoint_seconds, checkpoint_keep:
        Cadence (iterations and/or wall-clock seconds) and retention
        for the checkpoint directory —
        :class:`repro.durability.CheckpointPolicy`'s fields.

    Returns
    -------
    SolverResult
        The solver diagnostics; for network inputs,
        ``result.landscape`` carries the
        :class:`ProbabilityLandscape`.  (Unpacking the result as the
        pre-1.1 ``(landscape, result)`` pair still works but emits a
        :class:`DeprecationWarning`.)
    """
    from repro.solvers import SOLVER_REGISTRY
    from repro.sparse.conversion import FORMAT_REGISTRY, from_scipy
    from repro.telemetry import tracing

    method_key = str(method).lower().replace("_", "-")
    if method_key not in SOLVER_REGISTRY:
        raise ValidationError(
            f"unknown method {method!r}; expected one of "
            f"{sorted(SOLVER_REGISTRY)}")
    solver_cls = SOLVER_REGISTRY[method_key]
    if resume and checkpoint is None:
        raise ValidationError("resume=True needs a checkpoint directory")
    if checkpoint is not None and method_key not in _CHECKPOINTABLE_METHODS:
        raise ValidationError(
            f"method {method!r} does not support checkpointing; "
            f"expected one of {list(_CHECKPOINTABLE_METHODS)}")

    space = None
    with tracing.span("solve_steady_state", method=method_key):
        if isinstance(network_or_matrix, ReactionNetwork):
            with tracing.span("enumerate",
                              network=network_or_matrix.name) as sp:
                space = enumerate_state_space(network_or_matrix,
                                              max_states=max_states)
                sp.set_attribute("states", len(space.states))
            with tracing.span("assemble") as sp:
                A = build_rate_matrix(space)
                sp.set_attribute("nnz", int(A.nnz))
        else:
            A = network_or_matrix

        if format is not None:
            name = str(format).lower()
            name = _FORMAT_ALIASES.get(name, name)
            if name not in FORMAT_REGISTRY:
                raise ValidationError(
                    f"unknown format {format!r}; expected one of "
                    f"{sorted(FORMAT_REGISTRY)} or aliases "
                    f"{sorted(_FORMAT_ALIASES)}")
            with tracing.span("convert", format=name):
                from repro.sparse.conversion import to_scipy
                matrix = from_scipy(to_scipy(A), name)
                if solver_cls is not JacobiSolver:
                    # Only the Jacobi solver consumes device formats
                    # natively; the others iterate on CSR.
                    matrix = matrix.to_scipy()
        else:
            matrix = A

        checkpointer = None
        if checkpoint is not None:
            from repro.durability import (
                Checkpointer,
                CheckpointPolicy,
                system_signature,
            )
            from repro.sparse.base import as_csr
            from repro.sparse.conversion import to_scipy
            checkpointer = Checkpointer(
                checkpoint,
                signature=system_signature(as_csr(to_scipy(A)),
                                           method=method_key, tol=tol),
                policy=CheckpointPolicy(
                    every_iterations=checkpoint_every,
                    every_seconds=checkpoint_seconds,
                    keep_last=checkpoint_keep),
                resume=resume)

        merged = {**(solver_kwargs or {}), **options}
        solver = solver_cls(matrix, tol=tol, max_iterations=max_iterations,
                            **merged)
        solve_kwargs = {}
        if checkpointer is not None:
            solve_kwargs["checkpointer"] = checkpointer
        result = solver.solve(x0=x0, time_budget_s=time_budget_s,
                              hooks=hooks, **solve_kwargs)
    if space is not None:
        result.landscape = ProbabilityLandscape(space, result.x)
    return result
