"""Multi-GPU partitioned Jacobi (the paper's Section VIII outlook).

"We plan to extend our approach in order to overcome the current
limitation in terms of GPU memory by moving to GPU clusters."  This
subpackage models that extension: the state space is partitioned into
contiguous row blocks, each simulated GPU iterates its block with the
warp-grained ELL+DIA kernel, and between iterations the devices exchange
the halo entries of ``x`` their off-block columns reference.  The
performance model combines the per-device kernel estimate with the
measured halo volume over an interconnect bandwidth.

This subpackage *models* the decomposition; :mod:`repro.distributed`
*executes* it — the same :func:`partition_rows` blocks run in real
worker processes over shared memory (``method="sharded"``), with
barrier and chaotic sync modes (DESIGN.md §14).
"""

from repro.multigpu.partition import Partition, partition_rows
from repro.multigpu.cluster import ClusterEstimate, GPUCluster

__all__ = ["Partition", "partition_rows", "GPUCluster", "ClusterEstimate"]
