"""Row partitioning of a rate matrix across devices.

The DFS ordering that gives single-GPU kernels their diagonal band also
makes contiguous row blocks a good partition: most transitions stay
within a block, and the halo — the ``x`` entries a block's off-diagonal
columns reference on other devices — is small relative to the block.

Both consumers share this one partitioner: the :mod:`repro.multigpu`
cluster *model* and the :mod:`repro.distributed` sharded solver that
runs the blocks in real worker processes.  The latter leans on two
contracts verified in ``tests/multigpu/test_partition_edges.py``: no
block is ever empty (even under skewed nonzero distributions), and
``halo_columns`` is exactly the sorted set of out-of-block columns
regardless of row ordering.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
import scipy.sparse as sp

from repro.errors import ValidationError
from repro.sparse.base import as_csr


@dataclass
class Partition:
    """One device's share of the matrix.

    Attributes
    ----------
    device_index:
        Position in the cluster.
    row_start, row_stop:
        Owned (contiguous) row range.
    local:
        The ``(rows, n)`` CSR slice this device multiplies.
    halo_columns:
        Sorted column indices referenced outside the owned range — the
        entries that must arrive from other devices each iteration.
    """

    device_index: int
    row_start: int
    row_stop: int
    local: sp.csr_matrix
    halo_columns: np.ndarray = field(repr=False)

    @property
    def n_rows(self) -> int:
        return self.row_stop - self.row_start

    @property
    def halo_size(self) -> int:
        return int(self.halo_columns.size)

    @property
    def nnz(self) -> int:
        return int(self.local.nnz)


def partition_rows(A, n_devices: int) -> list[Partition]:
    """Split *A* into ``n_devices`` contiguous, balanced row blocks.

    Rows are balanced by nonzero count (the SpMV work), not by row
    count, via a prefix-sum split of the nnz distribution.
    """
    A = as_csr(A)
    n = A.shape[0]
    if n_devices <= 0:
        raise ValidationError(f"n_devices must be positive, got {n_devices}")
    if n_devices > n:
        raise ValidationError(
            f"cannot split {n} rows across {n_devices} devices")
    nnz_prefix = A.indptr.astype(np.int64)
    total = int(nnz_prefix[-1])
    cuts = [0]
    for d in range(1, n_devices):
        target = total * d // n_devices
        cuts.append(int(np.searchsorted(nnz_prefix, target)))
    cuts.append(n)
    # Guard degenerate empty blocks from skewed distributions: each cut
    # must leave at least one row behind it (a heavy *early* row pushes
    # cuts forward) and at least one row per remaining block ahead of
    # it (a heavy *late* row drags every prefix target to the end).
    for i in range(1, n_devices):
        cuts[i] = max(cuts[i], cuts[i - 1] + 1)
        cuts[i] = min(cuts[i], n - (n_devices - i))
    cuts[-1] = n

    parts = []
    for d in range(n_devices):
        lo, hi = cuts[d], cuts[d + 1]
        local = as_csr(A[lo:hi, :])
        cols = local.indices.astype(np.int64)
        outside = cols[(cols < lo) | (cols >= hi)]
        halo = np.unique(outside)
        parts.append(Partition(device_index=d, row_start=lo, row_stop=hi,
                               local=local, halo_columns=halo))
    return parts


def distributed_jacobi_step(parts: list[Partition], diagonal: np.ndarray,
                            x: np.ndarray) -> np.ndarray:
    """One Jacobi step executed partition by partition (functional check).

    Numerically identical to the single-device step; used by tests to
    verify the partitioning loses nothing.
    """
    x = np.asarray(x, dtype=np.float64)
    out = np.empty_like(x)
    for part in parts:
        lo, hi = part.row_start, part.row_stop
        y = part.local @ x
        d = diagonal[lo:hi]
        out[lo:hi] = -(y - d * x[lo:hi]) / d
    return out
