"""Cluster-level performance model for partitioned Jacobi.

Per iteration, each device runs the warp-grained ELL+DIA Jacobi kernel
on its row block, then the devices exchange halos.  The iteration time
is::

    t = max_d t_kernel(d)  +  max_d (halo_bytes(d) / interconnect_bw)
        + per-step latency

(the kernel phase is a barrier — everyone needs the new ``x`` — and the
exchange overlaps across device pairs but not with the compute that
depends on it).  Scaling saturates when the halo term catches up with
the shrinking kernel term, which for DFS-ordered CME matrices happens
late: the halo is a band fringe plus the few far reaction offsets.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ValidationError
from repro.gpusim.device import GTX580, DeviceSpec
from repro.gpusim.executor import jacobi_performance
from repro.multigpu.partition import Partition, partition_rows
from repro.sparse.base import as_csr
from repro.sparse.warped_ell import WarpedELLMatrix


@dataclass(frozen=True)
class ClusterEstimate:
    """Modeled per-iteration execution of a partitioned Jacobi step."""

    n_devices: int
    kernel_time_s: float
    exchange_time_s: float
    halo_bytes_total: float
    flops: float

    @property
    def time_s(self) -> float:
        return self.kernel_time_s + self.exchange_time_s

    @property
    def gflops(self) -> float:
        return self.flops / self.time_s / 1e9 if self.time_s > 0 else 0.0


class GPUCluster:
    """A homogeneous cluster of simulated GPUs.

    Parameters
    ----------
    device:
        The per-node GPU spec.
    interconnect_gbs:
        Sustained point-to-point exchange bandwidth (PCIe 2.0 x16 ~ 6
        GB/s in the paper's era).
    latency_us:
        Per-iteration synchronization/launch latency.
    """

    def __init__(self, device: DeviceSpec = GTX580, *,
                 interconnect_gbs: float = 6.0,
                 latency_us: float = 20.0):
        if interconnect_gbs <= 0 or latency_us < 0:
            raise ValidationError("invalid interconnect parameters")
        self.device = device
        self.interconnect_gbs = float(interconnect_gbs)
        self.latency_us = float(latency_us)

    def estimate(self, A, n_devices: int, *,
                 x_scale: float = 1.0) -> ClusterEstimate:
        """Model one distributed Jacobi iteration of *A*."""
        A = as_csr(A)
        parts = partition_rows(A, n_devices)
        kernel_times = []
        flops = 0.0
        for part in parts:
            # Each device holds its row block in Warp ELL+DIA form.  The
            # block is rectangular (rows x n); the kernel model needs the
            # square local structure, so estimate on the square block of
            # owned columns plus treat halo columns like local ones (the
            # gather pattern is identical once halo entries are resident).
            fmt = WarpedELLMatrix(_squareize(part), reorder="local",
                                  separate_diagonal=True)
            perf = jacobi_performance(fmt, self.device, x_scale=x_scale)
            kernel_times.append(perf.time_s)
            flops += perf.report.flops
        halo_bytes = float(sum(p.halo_size for p in parts)) * 8.0
        max_halo = max((p.halo_size for p in parts), default=0) * 8.0
        exchange = (max_halo / (self.interconnect_gbs * 1e9)
                    + self.latency_us * 1e-6)
        return ClusterEstimate(
            n_devices=n_devices,
            kernel_time_s=max(kernel_times),
            exchange_time_s=exchange if n_devices > 1 else 0.0,
            halo_bytes_total=halo_bytes,
            flops=flops,
        )

    def scaling_curve(self, A, device_counts, *,
                      x_scale: float = 1.0) -> list[ClusterEstimate]:
        """Strong-scaling estimates over a list of device counts."""
        return [self.estimate(A, int(g), x_scale=x_scale)
                for g in device_counts]


def _squareize(part: Partition):
    """The square sub-matrix a device's kernel effectively traverses.

    Owned columns keep their position; halo columns are compacted after
    them (the device stores received halo entries in a contiguous
    buffer), preserving per-row structure and thus padding/coalescing
    behavior.
    """
    local = part.local
    lo, hi = part.row_start, part.row_stop
    rows = hi - lo
    cols = local.indices.astype(np.int64)
    inside = (cols >= lo) & (cols < hi)
    remap = np.empty_like(cols)
    remap[inside] = cols[inside] - lo
    halo_index = {int(c): rows + i for i, c in enumerate(part.halo_columns)}
    outside_idx = np.flatnonzero(~inside)
    for i in outside_idx:
        remap[i] = halo_index[int(cols[i])]
    width = rows + part.halo_size
    import scipy.sparse as sp
    square = sp.csr_matrix(
        (local.data, remap.astype(np.int32),
         local.indptr.astype(np.int32)),
        shape=(rows, width))
    if width > rows:
        # Pad to square with empty rows so the Jacobi kernel (which
        # needs a diagonal per row) sees a consistent local system.
        pad = sp.csr_matrix((width - rows, width))
        square = sp.vstack([square, pad], format="csr")
    square = square.tolil()
    diag = square.diagonal()
    fix = np.flatnonzero(diag == 0)
    for i in fix:
        square[i, i] = -1.0
    return as_csr(square.tocsr())
