"""Transient CME dynamics (the paper's Section VIII outlook).

The paper closes with "we plan to further develop our GPU-based CME
stochastic framework by including transient dynamic calculation"; this
subpackage implements it via **uniformization** — the standard,
numerically robust way to evaluate ``P(t) = e^{At} P(0)`` for a
generator matrix using only the SpMV primitive the rest of the library
is built on.
"""

from repro.transient.uniformization import (
    TransientResult,
    transient_solve,
    transient_sweep,
)

__all__ = ["transient_solve", "transient_sweep", "TransientResult"]
