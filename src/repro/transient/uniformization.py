"""Uniformization: ``P(t) = e^{At} P(0)`` through SpMV only.

With ``Lambda >= max_i(-a_ii)`` and the column-stochastic
``S = I + A / Lambda``::

    P(t) = sum_{k >= 0} PoissonPMF(Lambda t; k) * S^k P(0)

Every term is non-negative and the weights sum to one, so the result is
a probability vector by construction — no negative intermediates, no
scaling-and-squaring, and the inner loop is exactly the SpMV primitive
the steady-state solver uses (which is what would make it GPU-ready in
the paper's setting).  The series is truncated once the accumulated
Poisson mass reaches ``1 - tol``; the left tail is skipped the same way
for large ``Lambda t``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ValidationError
from repro.solvers.normalization import renormalize
from repro.sparse.base import as_csr
import scipy.sparse as sp


@dataclass(frozen=True)
class TransientResult:
    """Outcome of one transient evaluation."""

    #: The distribution at the requested time.
    p: np.ndarray
    #: Uniformization rate used.
    lam: float
    #: Number of SpMV terms evaluated.
    terms: int
    #: Poisson mass left out by the truncation.
    truncation_error: float


def _poisson_weights(lam_t: float, tol: float) -> tuple[int, np.ndarray]:
    """Left-truncation point and normalized Poisson weights.

    Computed in log space for stability at large ``lam_t``; the window
    covers mass ``>= 1 - tol``.
    """
    if lam_t == 0.0:
        return 0, np.ones(1)
    # Conservative window around the mean: +- 8 standard deviations.
    mean = lam_t
    half = 8.0 * np.sqrt(lam_t) + 10.0
    lo = max(0, int(np.floor(mean - half)))
    hi = int(np.ceil(mean + half))
    ks = np.arange(lo, hi + 1, dtype=np.float64)
    from scipy.special import gammaln
    log_w = ks * np.log(lam_t) - lam_t - gammaln(ks + 1.0)
    w = np.exp(log_w)
    total = w.sum()
    if total <= 0:
        raise ValidationError("Poisson window underflowed; reduce t or rates")
    # Trim tails below tol/2 each.
    cum = np.cumsum(w) / total
    keep_lo = int(np.searchsorted(cum, tol / 2))
    keep_hi = int(np.searchsorted(cum, 1.0 - tol / 2)) + 1
    keep_hi = min(keep_hi, w.size)
    return lo + keep_lo, w[keep_lo:keep_hi] / total


def transient_solve(A, p0, t: float, *, tol: float = 1e-10,
                    uniformization_factor: float = 1.02) -> TransientResult:
    """Evaluate ``P(t) = e^{At} p0`` by uniformization.

    Parameters
    ----------
    A:
        The rate matrix (generator), anything convertible to CSR.
    p0:
        Initial probability vector.
    t:
        Target time (>= 0).
    tol:
        Poisson mass allowed outside the truncation window.
    uniformization_factor:
        ``Lambda = factor * max exit rate`` (> 1 improves conditioning).
    """
    A = as_csr(A)
    if A.shape[0] != A.shape[1]:
        raise ValidationError("transient solve needs a square matrix")
    if t < 0:
        raise ValidationError(f"t must be non-negative, got {t}")
    p = renormalize(np.asarray(p0, dtype=np.float64))
    if p.shape != (A.shape[0],):
        raise ValidationError(f"p0 must have length {A.shape[0]}")
    if t == 0.0:
        return TransientResult(p=p, lam=0.0, terms=0, truncation_error=0.0)

    exit_rates = -A.diagonal()
    lam = float(exit_rates.max()) * uniformization_factor
    if lam <= 0:
        return TransientResult(p=p, lam=0.0, terms=0, truncation_error=0.0)
    S = as_csr(sp.eye(A.shape[0], format="csr") + A.multiply(1.0 / lam))

    lo, weights = _poisson_weights(lam * t, tol)
    out = np.zeros_like(p)
    vec = p
    # Advance to the left truncation point without accumulating.
    for _ in range(lo):
        vec = S @ vec
    for w in weights:
        out += w * vec
        vec = S @ vec
    covered = float(weights.sum())
    return TransientResult(
        p=renormalize(out),
        lam=lam,
        terms=lo + weights.size,
        truncation_error=max(0.0, 1.0 - covered),
    )


def transient_sweep(A, p0, times, *, tol: float = 1e-10) -> list[TransientResult]:
    """Evaluate the distribution at several times (each from scratch).

    Times must be non-decreasing; useful for relaxation plots (how a
    landscape converges toward the steady state).
    """
    times = list(times)
    if any(b < a for a, b in zip(times, times[1:])):
        raise ValidationError("times must be non-decreasing")
    return [transient_solve(A, p0, float(t), tol=tol) for t in times]
