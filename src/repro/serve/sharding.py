"""Hash-sharded cache and warm-start index for many-worker services.

The solution cache and the warm-start index each guard their state
with one lock; with a handful of worker threads that lock is invisible
next to the solve, but a process-pool service dispatching from many
threads (and several services sharing one cache) turns every
completion into a serialization point.  Sharding by the content hash
of the cache key splits the structures into ``shards`` independently
locked instances, so concurrent completions contend only when they
land on the same shard (probability ``1/shards``).

Both wrappers are API-compatible with the singletons they shard
(:class:`~repro.serve.cache.SolutionCache`,
:class:`~repro.serve.warmstart.WarmStartIndex`), so the service code
does not branch on them.  Point lookups route to exactly one shard;
the warm-start *queries* (``suggest`` / ``select_donors``) fan out to
every shard and merge — nearest-neighbor answers must be global.
"""

from __future__ import annotations

import zlib
from pathlib import Path

import numpy as np

from repro.errors import ValidationError
from repro.serve.cache import CacheEntry, CacheStats, SolutionCache
from repro.serve.warmstart import (
    WarmStartHint,
    WarmStartIndex,
    centered_selection,
)

__all__ = ["ShardedSolutionCache", "ShardedWarmStartIndex", "shard_index"]


def shard_index(key: str, shards: int) -> int:
    """Stable shard assignment of a cache key (CRC32 of its bytes)."""
    return zlib.crc32(key.encode("utf-8")) % shards


class ShardedSolutionCache:
    """``shards`` independently locked :class:`SolutionCache` tiers.

    The byte budget is split evenly across shards; because keys are
    content hashes the split is balanced in expectation.  A shared
    ``disk_dir`` is safe: each key maps to exactly one shard, so no
    two shards ever touch the same ``.npz`` file.
    """

    def __init__(self, shards: int = 4, *,
                 max_bytes: int = 256 * 1024 * 1024,
                 disk_dir: str | Path | None = None):
        if shards < 1:
            raise ValidationError(
                f"shards must be >= 1, got {shards}")
        per_shard = max(1, int(max_bytes) // int(shards))
        self.max_bytes = per_shard * int(shards)
        self.shards = tuple(
            SolutionCache(per_shard, disk_dir) for _ in range(int(shards)))

    def _shard(self, key: str) -> SolutionCache:
        return self.shards[shard_index(key, len(self.shards))]

    def __len__(self) -> int:
        return sum(len(s) for s in self.shards)

    @property
    def current_bytes(self) -> int:
        return sum(s.current_bytes for s in self.shards)

    @property
    def stats(self) -> CacheStats:
        """Aggregated hit/miss accounting across all shards."""
        total = CacheStats()
        for s in self.shards:
            total.hits += s.stats.hits
            total.misses += s.stats.misses
            total.evictions += s.stats.evictions
            total.disk_hits += s.stats.disk_hits
            total.stores += s.stats.stores
            total.disk_corrupt += s.stats.disk_corrupt
        return total

    def get(self, key: str, *, layout: str | None = None) -> CacheEntry | None:
        return self._shard(key).get(key, layout=layout)

    def peek(self, key: str, *,
             layout: str | None = None) -> CacheEntry | None:
        return self._shard(key).peek(key, layout=layout)

    def put(self, entry: CacheEntry) -> None:
        self._shard(entry.key).put(entry)

    def clear(self) -> None:
        for s in self.shards:
            s.clear()


class ShardedWarmStartIndex:
    """``shards`` independently locked :class:`WarmStartIndex` slices.

    ``add`` routes by key hash (one lock); ``suggest`` and
    ``select_donors`` query every shard and merge, so donor answers
    are identical in *content* to the unsharded index — candidate
    pools may differ at the pool-size boundary, which only matters for
    the greedy stencil's tie-breaking.
    """

    def __init__(self, shards: int = 4, *, max_points: int = 10_000):
        if shards < 1:
            raise ValidationError(
                f"shards must be >= 1, got {shards}")
        per_shard = max(1, int(max_points) // int(shards))
        self.shards = tuple(
            WarmStartIndex(max_points=per_shard) for _ in range(int(shards)))

    def _shard(self, key: str) -> WarmStartIndex:
        return self.shards[shard_index(key, len(self.shards))]

    def __len__(self) -> int:
        return sum(len(s) for s in self.shards)

    def add(self, key: str, log_rates: np.ndarray, iterations: int) -> None:
        self._shard(key).add(key, log_rates, iterations)

    def coords_for(self, keys) -> dict[str, np.ndarray]:
        out: dict[str, np.ndarray] = {}
        for s in self.shards:
            out.update(s.coords_for(keys))
        return out

    def suggest(self, log_rates: np.ndarray, *, k: int = 1,
                exclude_key: str | None = None) -> list[WarmStartHint]:
        """Global k-nearest: per-shard top-k merged, closest first."""
        if k <= 0:
            raise ValidationError(f"k must be positive, got {k}")
        merged: list[WarmStartHint] = []
        for s in self.shards:
            merged.extend(s.suggest(log_rates, k=k,
                                    exclude_key=exclude_key))
        merged.sort(key=lambda h: h.distance)
        return merged[:k]

    def select_donors(self, log_rates: np.ndarray, *, k: int = 2,
                      exclude_key: str | None = None,
                      pool: int | None = None) -> list[WarmStartHint]:
        """Centered-stencil donors over a globally merged candidate pool."""
        if k <= 0:
            raise ValidationError(f"k must be positive, got {k}")
        pool = 4 * k if pool is None else pool
        hints = self.suggest(log_rates, k=max(pool, k),
                             exclude_key=exclude_key)
        if len(hints) <= 1 or k == 1:
            return hints[:k]
        query = np.asarray(log_rates, dtype=np.float64).ravel()
        coords = self.coords_for([h.key for h in hints])
        offsets = {h.key: coords[h.key] - query for h in hints
                   if h.key in coords}
        return centered_selection(hints, offsets, k)
