"""repro.serve — a concurrent steady-state solve service.

Turns the paper's exploratory workload (Section I: thousands of rate
conditions of one network) into a job-serving layer with
content-addressed caching, nearest-neighbor warm starting, and a
bounded, backpressured worker pool.  Production-traffic machinery —
an asyncio front door (:class:`AsyncSolveService`), a multi-process
solver pool (:class:`ProcessSolverPool`), weighted fair queuing and
token-bucket admission control (:mod:`repro.serve.fairness`), and
hash-sharded cache/warm-start state (:mod:`repro.serve.sharding`) —
layers on top of the same :class:`SolveService`.  See DESIGN.md §8
and §16 and :mod:`repro.serve.service` for the architecture.
"""

from repro.serve.async_service import AsyncSolveService
from repro.serve.cache import CacheEntry, SolutionCache, state_space_layout
from repro.serve.fairness import (
    AdmissionController,
    FairPriorityQueue,
    TokenBucket,
)
from repro.serve.jobs import (
    JobState,
    SolveJob,
    SolveOutcome,
    SolveRequest,
)
from repro.serve.metrics import ServiceMetrics
from repro.serve.pool import ProcessSolverPool
from repro.serve.scheduler import (
    BoundedPriorityQueue,
    QueuePolicy,
    SolveScheduler,
)
from repro.serve.service import SolveService
from repro.serve.sharding import ShardedSolutionCache, ShardedWarmStartIndex
from repro.serve.warmstart import WarmStartHint, WarmStartIndex

__all__ = [
    "AdmissionController",
    "AsyncSolveService",
    "BoundedPriorityQueue",
    "CacheEntry",
    "FairPriorityQueue",
    "JobState",
    "ProcessSolverPool",
    "QueuePolicy",
    "ServiceMetrics",
    "ShardedSolutionCache",
    "ShardedWarmStartIndex",
    "SolutionCache",
    "SolveJob",
    "SolveOutcome",
    "SolveRequest",
    "SolveScheduler",
    "SolveService",
    "TokenBucket",
    "WarmStartHint",
    "WarmStartIndex",
    "state_space_layout",
]
