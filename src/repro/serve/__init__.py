"""repro.serve — a concurrent steady-state solve service.

Turns the paper's exploratory workload (Section I: thousands of rate
conditions of one network) into a job-serving layer with
content-addressed caching, nearest-neighbor warm starting, and a
bounded, backpressured worker pool.  See DESIGN.md §8 and
:mod:`repro.serve.service` for the architecture.
"""

from repro.serve.cache import CacheEntry, SolutionCache, state_space_layout
from repro.serve.jobs import (
    JobState,
    SolveJob,
    SolveOutcome,
    SolveRequest,
)
from repro.serve.metrics import ServiceMetrics
from repro.serve.scheduler import (
    BoundedPriorityQueue,
    QueuePolicy,
    SolveScheduler,
)
from repro.serve.service import SolveService
from repro.serve.warmstart import WarmStartHint, WarmStartIndex

__all__ = [
    "BoundedPriorityQueue",
    "CacheEntry",
    "JobState",
    "QueuePolicy",
    "ServiceMetrics",
    "SolutionCache",
    "SolveJob",
    "SolveOutcome",
    "SolveRequest",
    "SolveScheduler",
    "SolveService",
    "WarmStartHint",
    "WarmStartIndex",
    "state_space_layout",
]
