"""Bounded priority scheduling with backpressure, timeouts and retries.

The queue is the service's admission-control point: it holds at most
``capacity`` pending jobs and applies one of two policies when full —

``reject``
    :func:`BoundedPriorityQueue.put` raises
    :class:`~repro.errors.JobRejectedError` immediately (load shedding;
    the caller sees the failure and can back off).
``block``
    The submitting thread waits for space (producer-side throttling),
    optionally bounded by ``put_timeout`` after which the submit is
    rejected anyway.

Workers pull the lowest-``priority`` job (FIFO within a priority) and
run it through the service's execute callable.  A *retryable* failure —
per-attempt timeout or a convergence failure — is re-attempted in place
up to the retry budget; the final failure surfaces to the job as a
:class:`~repro.errors.SolveJobError` with the original error chained.
"""

from __future__ import annotations

import enum
import heapq
import threading
import time

from repro.errors import (
    ConvergenceError,
    JobRejectedError,
    JobTimeoutError,
    KernelLaunchError,
    SolveJobError,
    ValidationError,
    WorkerCrashError,
)
from repro.serve.jobs import JobState, SolveJob, _QueueItem

#: Errors worth a second attempt; anything else fails the job at once.
#: Timeouts and convergence failures may clear with a warm(er) start;
#: worker crashes and kernel-launch failures are properties of the
#: *attempt* (the next worker/launch is healthy).  Singular systems,
#: validation errors and open circuit breakers are properties of the
#: job or the service and never retried.
RETRYABLE_ERRORS = (JobTimeoutError, ConvergenceError, WorkerCrashError,
                    KernelLaunchError)


class QueuePolicy(enum.Enum):
    """What a full queue does to new submissions."""

    REJECT = "reject"
    BLOCK = "block"


class BoundedPriorityQueue:
    """A thread-safe priority queue with a hard capacity."""

    def __init__(self, capacity: int = 1024,
                 policy: QueuePolicy | str = QueuePolicy.REJECT,
                 *, put_timeout: float | None = None):
        if capacity <= 0:
            raise ValidationError(
                f"queue capacity must be positive, got {capacity}")
        self.capacity = int(capacity)
        self.policy = QueuePolicy(policy)
        self.put_timeout = put_timeout
        self._heap: list[_QueueItem] = []
        self._seq = 0
        self._lock = threading.Lock()
        self._not_empty = threading.Condition(self._lock)
        self._not_full = threading.Condition(self._lock)
        self._closed = False

    def __len__(self) -> int:
        with self._lock:
            return len(self._heap)

    def put(self, job: SolveJob) -> None:
        """Enqueue *job*, applying the backpressure policy when full."""
        with self._lock:
            if self._closed:
                raise JobRejectedError("queue is closed", key=job.key)
            if len(self._heap) >= self.capacity:
                if self.policy is QueuePolicy.REJECT:
                    raise JobRejectedError(
                        f"queue full ({self.capacity} pending jobs)",
                        key=job.key)
                deadline = (None if self.put_timeout is None
                            else time.monotonic() + self.put_timeout)
                while len(self._heap) >= self.capacity and not self._closed:
                    remaining = (None if deadline is None
                                 else deadline - time.monotonic())
                    if remaining is not None and remaining <= 0:
                        raise JobRejectedError(
                            f"queue still full after {self.put_timeout}s",
                            key=job.key)
                    self._not_full.wait(remaining)
                if self._closed:
                    raise JobRejectedError("queue is closed", key=job.key)
            self._seq += 1
            heapq.heappush(self._heap,
                           _QueueItem(job.priority, self._seq, job))
            self._not_empty.notify()

    def get(self, timeout: float | None = None) -> SolveJob | None:
        """Pop the highest-priority job; ``None`` on timeout/closed-empty."""
        with self._lock:
            deadline = (None if timeout is None
                        else time.monotonic() + timeout)
            while not self._heap:
                if self._closed:
                    return None
                remaining = (None if deadline is None
                             else deadline - time.monotonic())
                if remaining is not None and remaining <= 0:
                    return None
                self._not_empty.wait(remaining)
            item = heapq.heappop(self._heap)
            self._not_full.notify()
            return item.job

    def drain_matching(self, predicate, limit: int) -> list[SolveJob]:
        """Atomically remove up to *limit* queued jobs passing *predicate*.

        Candidates are considered in priority/FIFO order (the order a
        worker would have served them), so batching never lets a
        low-priority match jump a high-priority one out of the queue.
        Non-matching jobs keep their positions.  Used by the service to
        coalesce compatible pending solves into one batched solve.
        """
        matched: list[SolveJob] = []
        if limit <= 0:
            return matched
        with self._lock:
            if not self._heap:
                return matched
            kept: list[_QueueItem] = []
            while self._heap and len(matched) < limit:
                item = heapq.heappop(self._heap)
                if (item.job.state is JobState.PENDING
                        and predicate(item.job)):
                    matched.append(item.job)
                else:
                    kept.append(item)
            for item in kept:
                heapq.heappush(self._heap, item)
            if matched:
                self._not_full.notify_all()
        return matched

    def close(self) -> None:
        """Stop accepting jobs and wake all waiters."""
        with self._lock:
            self._closed = True
            self._not_empty.notify_all()
            self._not_full.notify_all()


class SolveScheduler:
    """A worker pool draining a bounded priority queue.

    The queue is duck-typed: anything with the
    :class:`BoundedPriorityQueue` surface (``put`` / ``get`` /
    ``drain_matching`` / ``close`` / ``__len__``) works — the service
    substitutes a :class:`repro.serve.fairness.FairPriorityQueue` when
    tenant weights are configured.

    Parameters
    ----------
    execute:
        ``execute(job) -> SolveOutcome`` — provided by the service; runs
        one attempt and may raise.
    workers:
        Thread count.  With a thread executor these threads *run* the
        solves; with ``SolveService(executor="process")`` they only
        dispatch to the process pool and block on results, so the
        count should match the pool's worker-process count.
    retries:
        Extra attempts after the first, consumed only by
        :data:`RETRYABLE_ERRORS`.
    retry_policy:
        Optional :class:`repro.resilience.backoff.RetryPolicy`; when
        set, the worker sleeps ``retry_policy.delay(attempt)`` before
        each re-attempt (exponential backoff with jitter) instead of
        retrying immediately.  Shutdown interrupts the sleep.
    on_retry, on_done:
        Optional metrics hooks; ``on_done(job, error_or_None)`` fires
        exactly once per job after its terminal transition.
    """

    def __init__(self, execute, *, workers: int = 1,
                 queue=None,
                 retries: int = 0, retry_policy=None,
                 on_retry=None, on_done=None,
                 name: str = "solve"):
        if workers <= 0:
            raise ValidationError(f"workers must be positive, got {workers}")
        if retries < 0:
            raise ValidationError(f"retries must be >= 0, got {retries}")
        self.execute = execute
        self.queue = queue if queue is not None else BoundedPriorityQueue()
        self.retries = int(retries)
        self.retry_policy = retry_policy
        self.on_retry = on_retry
        self.on_done = on_done
        self._stop = threading.Event()
        self._threads = [
            threading.Thread(target=self._worker_loop, daemon=True,
                             name=f"{name}-worker-{i}")
            for i in range(int(workers))
        ]
        for t in self._threads:
            t.start()

    @property
    def queue_depth(self) -> int:
        return len(self.queue)

    def submit(self, job: SolveJob) -> None:
        """Admit *job* (may raise :class:`JobRejectedError`)."""
        job.submitted_at = time.perf_counter()
        self.queue.put(job)

    def close(self, *, wait: bool = True, timeout: float = 30.0) -> None:
        """Drain-free shutdown: stop workers, cancel whatever remains."""
        self._stop.set()
        self.queue.close()
        if wait:
            for t in self._threads:
                t.join(timeout)
        while True:
            job = self.queue.get(timeout=0)
            if job is None:
                break
            job.cancel()

    # -- worker internals ----------------------------------------------------

    def _worker_loop(self) -> None:
        while not self._stop.is_set():
            job = self.queue.get(timeout=0.1)
            if job is None:
                continue
            if job.state is JobState.CANCELLED:
                continue
            self._run_job(job)

    def _run_job(self, job: SolveJob) -> None:
        if not job.mark_running():
            return
        job.started_at = time.perf_counter()
        max_attempts = 1 + self.retries
        error: SolveJobError | None = None
        for attempt in range(1, max_attempts + 1):
            job.attempts = attempt
            try:
                outcome = self.execute(job)
            except RETRYABLE_ERRORS as exc:
                error = self._as_job_error(exc, job)
                if attempt < max_attempts:
                    if self.on_retry is not None:
                        self.on_retry(job, exc)
                    if self.retry_policy is not None:
                        # _stop.wait returns early on shutdown, so a
                        # long backoff never delays close().
                        self._stop.wait(self.retry_policy.delay(attempt))
                continue
            except Exception as exc:  # noqa: BLE001 - worker must survive
                error = self._as_job_error(exc, job)
                break
            job.finished_at = time.perf_counter()
            job.finish(outcome)
            if self.on_done is not None:
                self.on_done(job, None)
            return
        job.finished_at = time.perf_counter()
        assert error is not None
        job.fail(error)
        if self.on_done is not None:
            self.on_done(job, error)

    @staticmethod
    def _as_job_error(exc: Exception, job: SolveJob) -> SolveJobError:
        if isinstance(exc, SolveJobError):
            exc.key = exc.key or job.key
            exc.attempts = job.attempts
            return exc
        wrapped = SolveJobError(
            f"job {job.id} failed after {job.attempts} attempt(s): {exc}",
            key=job.key, attempts=job.attempts)
        wrapped.__cause__ = exc
        return wrapped
