"""Multi-tenant admission control and weighted fair queuing.

Two mechanisms sit in front of the scheduler when one service carries
traffic for several tenants:

*   :class:`AdmissionController` — per-tenant :class:`TokenBucket`
    rate limits at the front door.  A tenant over its configured rate
    sees :class:`~repro.errors.JobRejectedError` *before* any cache or
    queue work happens, so an abusive client cannot consume shared
    capacity it will be refused anyway.
*   :class:`FairPriorityQueue` — a drop-in replacement for
    :class:`~repro.serve.scheduler.BoundedPriorityQueue` running
    deficit round robin (DRR) across per-tenant priority heaps.  Jobs
    have unit cost (one solve), so DRR reduces to weighted round
    robin with per-tenant credit counters: each scheduling round a
    tenant may be served up to ``weight`` jobs, and the round
    replenishes only when every backlogged tenant has exhausted its
    credit.  A tenant with weight ``w`` therefore gets at least
    ``w / sum(weights of backlogged tenants)`` of the service no
    matter how much load its neighbors offer — the starvation bound
    the fairness tests assert.

Within a tenant, ordering is exactly the single-tenant queue's:
lowest ``priority`` first, FIFO within a priority.  Capacity and the
``reject``/``block`` backpressure policies are global (shared across
tenants), matching the bounded queue's semantics.
"""

from __future__ import annotations

import heapq
import threading
import time
from collections import OrderedDict
from typing import Mapping

from repro.errors import JobRejectedError, ValidationError
from repro.serve.jobs import JobState, SolveJob, _QueueItem
from repro.serve.scheduler import QueuePolicy

__all__ = ["AdmissionController", "FairPriorityQueue", "TokenBucket"]


class TokenBucket:
    """A thread-safe token bucket: ``rate`` tokens/s up to ``burst``.

    The bucket starts full, so a fresh tenant can burst immediately;
    refill is continuous (fractional tokens accumulate between
    acquisitions).
    """

    def __init__(self, rate: float, burst: float | None = None):
        if not rate > 0.0:
            raise ValidationError(f"rate must be positive, got {rate}")
        self.rate = float(rate)
        self.burst = float(burst) if burst is not None \
            else max(1.0, self.rate)
        if self.burst < 1.0:
            raise ValidationError(
                f"burst must admit at least one job, got {self.burst}")
        self._tokens = self.burst
        self._last = time.monotonic()
        self._lock = threading.Lock()

    def try_acquire(self, amount: float = 1.0) -> bool:
        """Take *amount* tokens if available; never blocks."""
        with self._lock:
            now = time.monotonic()
            self._tokens = min(self.burst,
                               self._tokens + (now - self._last) * self.rate)
            self._last = now
            if self._tokens >= amount:
                self._tokens -= amount
                return True
            return False

    @property
    def tokens(self) -> float:
        """Current (refilled) token balance — diagnostics only."""
        with self._lock:
            now = time.monotonic()
            return min(self.burst,
                       self._tokens + (now - self._last) * self.rate)


class AdmissionController:
    """Per-tenant token buckets gating submissions.

    ``limits`` maps a tenant id to a rate in jobs/s, or to a
    ``(rate, burst)`` pair.  The special tenant ``"*"`` sets the
    default for unlisted tenants (each unlisted tenant gets its *own*
    bucket at that limit); without a ``"*"`` entry, unlisted tenants
    are unthrottled.
    """

    def __init__(self, limits: Mapping):
        self._lock = threading.Lock()
        self._limits: dict[str, tuple[float, float | None]] = {}
        self._buckets: dict[str, TokenBucket] = {}
        for tenant, limit in dict(limits or {}).items():
            self._limits[str(tenant)] = self._parse(tenant, limit)
        # Fail fast on bad numbers (TokenBucket validates), tenant by
        # tenant, before any traffic arrives.
        for tenant, (rate, burst) in self._limits.items():
            if tenant != "*":
                self._buckets[tenant] = TokenBucket(rate, burst)
            else:
                TokenBucket(rate, burst)

    @staticmethod
    def _parse(tenant, limit) -> tuple[float, float | None]:
        if isinstance(limit, (tuple, list)):
            if len(limit) != 2:
                raise ValidationError(
                    f"admission limit for {tenant!r} must be a rate or "
                    f"a (rate, burst) pair, got {limit!r}")
            return float(limit[0]), float(limit[1])
        return float(limit), None

    def admit(self, tenant: str) -> bool:
        """Whether *tenant* may submit one more job right now."""
        tenant = str(tenant)
        with self._lock:
            bucket = self._buckets.get(tenant)
            if bucket is None:
                default = self._limits.get("*")
                if default is None:
                    return True
                bucket = TokenBucket(*default)
                self._buckets[tenant] = bucket
        return bucket.try_acquire()

    def snapshot(self) -> dict:
        """Per-tenant token balances (diagnostics)."""
        with self._lock:
            buckets = dict(self._buckets)
        return {tenant: round(b.tokens, 3) for tenant, b in buckets.items()}


class _TenantLane:
    """One tenant's backlog: a priority heap plus its DRR credit."""

    __slots__ = ("heap", "credit")

    def __init__(self) -> None:
        self.heap: list[_QueueItem] = []
        self.credit = 0


class FairPriorityQueue:
    """A bounded queue serving tenants by deficit round robin.

    Interface-compatible with
    :class:`~repro.serve.scheduler.BoundedPriorityQueue` (``put`` /
    ``get`` / ``drain_matching`` / ``close`` / ``len``), so the
    scheduler does not know it exists.  Jobs are routed to per-tenant
    heaps by ``job.tenant``; ``get`` serves lanes in round-robin order,
    up to ``weight`` jobs per lane per round (see module docstring).

    ``weights`` maps tenant ids to integer weights ``>= 1``; unlisted
    tenants get ``default_weight``.  Batch draining
    (:meth:`drain_matching`) charges no credit: the companions are
    answered by the primary's single solve, which already consumed one
    serve from its tenant's quantum.
    """

    def __init__(self, capacity: int = 1024,
                 policy: QueuePolicy | str = QueuePolicy.REJECT,
                 *, put_timeout: float | None = None,
                 weights: Mapping[str, int] | None = None,
                 default_weight: int = 1):
        if capacity <= 0:
            raise ValidationError(
                f"queue capacity must be positive, got {capacity}")
        self.capacity = int(capacity)
        self.policy = QueuePolicy(policy)
        self.put_timeout = put_timeout
        self.weights = {str(t): int(w) for t, w in dict(weights or {}).items()}
        for tenant, w in self.weights.items():
            if w < 1:
                raise ValidationError(
                    f"tenant weight for {tenant!r} must be >= 1, got {w}")
        if default_weight < 1:
            raise ValidationError(
                f"default_weight must be >= 1, got {default_weight}")
        self.default_weight = int(default_weight)
        self._lanes: OrderedDict[str, _TenantLane] = OrderedDict()
        self._order: list[str] = []
        self._cursor = 0
        self._size = 0
        self._seq = 0
        self._lock = threading.Lock()
        self._not_empty = threading.Condition(self._lock)
        self._not_full = threading.Condition(self._lock)
        self._closed = False

    def _weight(self, tenant: str) -> int:
        return self.weights.get(tenant, self.default_weight)

    def __len__(self) -> int:
        with self._lock:
            return self._size

    def depths(self) -> dict[str, int]:
        """Queued jobs per tenant (diagnostics/metrics)."""
        with self._lock:
            return {t: len(lane.heap) for t, lane in self._lanes.items()
                    if lane.heap}

    # -- producer side -------------------------------------------------------

    def put(self, job: SolveJob) -> None:
        """Enqueue *job* in its tenant's lane; global backpressure."""
        tenant = str(getattr(job, "tenant", "default") or "default")
        with self._lock:
            if self._closed:
                raise JobRejectedError("queue is closed", key=job.key)
            if self._size >= self.capacity:
                if self.policy is QueuePolicy.REJECT:
                    raise JobRejectedError(
                        f"queue full ({self.capacity} pending jobs)",
                        key=job.key)
                deadline = (None if self.put_timeout is None
                            else time.monotonic() + self.put_timeout)
                while self._size >= self.capacity and not self._closed:
                    remaining = (None if deadline is None
                                 else deadline - time.monotonic())
                    if remaining is not None and remaining <= 0:
                        raise JobRejectedError(
                            f"queue still full after {self.put_timeout}s",
                            key=job.key)
                    self._not_full.wait(remaining)
                if self._closed:
                    raise JobRejectedError("queue is closed", key=job.key)
            lane = self._lanes.get(tenant)
            if lane is None:
                lane = _TenantLane()
                lane.credit = self._weight(tenant)
                self._lanes[tenant] = lane
                self._order.append(tenant)
            self._seq += 1
            heapq.heappush(lane.heap,
                           _QueueItem(job.priority, self._seq, job))
            self._size += 1
            self._not_empty.notify()

    # -- consumer side -------------------------------------------------------

    def _pop_locked(self) -> SolveJob | None:
        """One DRR serve: next backlogged lane with credit, under lock."""
        while self._size:
            n = len(self._order)
            for step in range(n):
                i = (self._cursor + step) % n
                lane = self._lanes[self._order[i]]
                if not lane.heap or lane.credit <= 0:
                    continue
                lane.credit -= 1
                item = heapq.heappop(lane.heap)
                self._size -= 1
                # Serve a lane's whole quantum contiguously (DRR), then
                # move on; an exhausted or drained lane yields the turn.
                self._cursor = i if (lane.credit > 0 and lane.heap) \
                    else (i + 1) % n
                return item.job
            # Every backlogged lane is out of credit: a new DRR round.
            for tenant, lane in self._lanes.items():
                lane.credit = self._weight(tenant)
        return None

    def get(self, timeout: float | None = None) -> SolveJob | None:
        """Pop per DRR order; ``None`` on timeout or closed-and-empty."""
        with self._lock:
            deadline = (None if timeout is None
                        else time.monotonic() + timeout)
            while not self._size:
                if self._closed:
                    return None
                remaining = (None if deadline is None
                             else deadline - time.monotonic())
                if remaining is not None and remaining <= 0:
                    return None
                self._not_empty.wait(remaining)
            job = self._pop_locked()
            if job is not None:
                self._not_full.notify()
            return job

    def drain_matching(self, predicate, limit: int) -> list[SolveJob]:
        """Atomically remove up to *limit* queued jobs passing *predicate*.

        Lanes are scanned in the current round-robin order, each in
        its own priority/FIFO order, so batching respects the order a
        worker would have served.  No DRR credit is charged — the
        drained companions ride the primary's single solve.
        """
        matched: list[SolveJob] = []
        if limit <= 0:
            return matched
        with self._lock:
            if not self._size:
                return matched
            n = len(self._order)
            for step in range(n):
                if len(matched) >= limit:
                    break
                lane = self._lanes[self._order[(self._cursor + step) % n]]
                kept: list[_QueueItem] = []
                while lane.heap and len(matched) < limit:
                    item = heapq.heappop(lane.heap)
                    if (item.job.state is JobState.PENDING
                            and predicate(item.job)):
                        matched.append(item.job)
                    else:
                        kept.append(item)
                for item in kept:
                    heapq.heappush(lane.heap, item)
            if matched:
                self._size -= len(matched)
                self._not_full.notify_all()
        return matched

    def close(self) -> None:
        """Stop accepting jobs and wake all waiters."""
        with self._lock:
            self._closed = True
            self._not_empty.notify_all()
            self._not_full.notify_all()
