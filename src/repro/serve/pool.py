"""A multi-process solver pool: K workers, K truly parallel solves.

The thread scheduler overlaps solves only while NumPy holds the GIL
released; every Python-level step (assembly bookkeeping, convergence
checks, small models where kernel time does not dominate) serializes.
:class:`ProcessSolverPool` moves the *solve itself* into worker
processes — the service keeps its thread scheduler, retry budget,
circuit breaker and journal exactly as before, but each worker thread
dispatches the inner solve to a dedicated process over a duplex pipe
and blocks for the reply.

Design points, mirroring :mod:`repro.distributed`:

*   **Start method.**  ``fork`` where available and safe; ``spawn``
    whenever the workers will run a native (OpenMP) backend, because
    libgomp state does not survive a fork.  Override with the
    ``REPRO_POOL_START`` environment variable or the ``start_method``
    argument.
*   **Systems shipped by signature.**  A worker receives the CSR
    arrays of a linear system *once* per
    :meth:`~repro.serve.jobs.SolveRequest.matrix_key` and memoizes the
    rebuilt matrix (LRU, :data:`WORKER_SYSTEM_MEMO` entries); repeat
    submissions and retries send only the key.  If a worker evicted
    (or, fresh from a respawn, never saw) a system it answers
    ``need-system`` and the parent re-ships — at most one round trip.
*   **Crash containment.**  A dead worker (injected ``serve.pool``
    kill, OOM, segfault in a native kernel) surfaces as
    :class:`~repro.errors.WorkerCrashError` — already retryable in the
    scheduler — and the pool respawns the process before the retry can
    land on it.  Fault directives travel *inside the task* (the
    process-global injector does not cross process boundaries): the
    parent consumes the schedule via
    :meth:`~repro.resilience.faults.FaultInjector.scheduled`, so
    one-shot kills do not refire after a respawn.
*   **One OpenMP thread per worker** (``REPRO_POOL_OMP_THREADS`` to
    override): the pool already runs one process per slot, and nested
    OMP teams would thrash an oversubscribed host.

A pool may be **shared across services** (e.g. one service per model,
one pool per host): dispatch is thread-safe, workers are checked out
of an idle queue, and systems are memoized per worker regardless of
which service shipped them.
"""

from __future__ import annotations

import contextlib
import multiprocessing
import os
import queue
import threading
import time
from collections import OrderedDict

import numpy as np

from repro import backends
from repro.errors import (
    SingularSystemError,
    SolveJobError,
    ValidationError,
    WorkerCrashError,
)
from repro.resilience.faults import active_injector
from repro.solvers.result import SolverResult, StopReason

__all__ = ["ProcessSolverPool", "worker_main"]

#: Environment override for the worker start method ("fork"/"spawn").
START_ENV_VAR = "REPRO_POOL_START"

#: Rebuilt systems memoized per worker process (matches the parent's
#: matrix memo, so steady-state traffic never re-ships).
WORKER_SYSTEM_MEMO = 64


def _result_payload(result) -> dict:
    """A :class:`SolverResult` flattened for the pipe (history dropped —
    it can be large and nothing on the serve path reads it)."""
    return {
        "x": np.asarray(result.x),
        "iterations": int(result.iterations),
        "residual": float(result.residual),
        "stop_reason": result.stop_reason.value,
        "runtime_s": float(result.runtime_s),
    }


def worker_main(conn, backend_name: str | None, parent_pid: int) -> None:
    """Entry point of one pool worker process (module-level: picklable
    under both fork and spawn)."""
    # Pin before any kernel library loads (effective under spawn; under
    # fork the parent's runtime is inherited, which is why the pool
    # spawns whenever a native backend is in play).
    os.environ["OMP_NUM_THREADS"] = os.environ.get(
        "REPRO_POOL_OMP_THREADS", "1")
    import scipy.sparse as sp

    from repro.solvers import SOLVER_REGISTRY, BatchedJacobiSolver

    systems: OrderedDict[str, object] = OrderedDict()
    while True:
        try:
            if not conn.poll(0.2):
                if os.getppid() != parent_pid:
                    os._exit(2)  # orphaned: the parent died
                continue
            msg = conn.recv()
        except (EOFError, OSError):
            os._exit(0)
        op = msg[0]
        if op == "stop":
            conn.close()
            os._exit(0)
        if op == "system":
            _, key, shape, indptr, indices, data = msg
            systems[key] = sp.csr_matrix((data, indices, indptr),
                                         shape=shape)
            systems.move_to_end(key)
            while len(systems) > WORKER_SYSTEM_MEMO:
                systems.popitem(last=False)
            continue
        if op != "solve":  # pragma: no cover - protocol defensive
            conn.send(("error", {"error": "ProtocolError",
                                 "message": f"unknown op {op!r}"}))
            continue
        payload = msg[1]
        fault = payload.get("fault")
        if fault is not None:
            if fault.get("kind") == "kill":
                os._exit(1)
            time.sleep(float(fault.get("delay_s", 0.0)))
        key = payload["system"]
        A = systems.get(key)
        if A is None:
            conn.send(("need-system", key))
            continue
        systems.move_to_end(key)
        options = dict(payload["options"])
        if backend_name is not None:
            options.setdefault("backend", backend_name)
        try:
            if payload.get("batch"):
                solver = BatchedJacobiSolver(
                    A, tol=payload["tol"],
                    max_iterations=payload["max_iterations"],
                    **{k: v for k, v in options.items() if k != "step"})
                x0 = payload.get("x0")
                k = int(payload["k"])
                x0s = None if x0 is None else [x0] * k
                results = solver.solve_many(
                    x0s, k=k, tols=payload["tols"],
                    time_budget_s=payload.get("time_budget_s"))
                conn.send(("ok", [_result_payload(r) for r in results]))
            else:
                solver_cls = SOLVER_REGISTRY[payload["method"]]
                solver = solver_cls(
                    A, tol=payload["tol"],
                    max_iterations=payload["max_iterations"], **options)
                result = solver.solve(
                    x0=payload.get("x0"),
                    time_budget_s=payload.get("time_budget_s"))
                conn.send(("ok", _result_payload(result)))
        except Exception as exc:  # noqa: BLE001 - marshalled to parent
            err = {"error": type(exc).__name__, "message": str(exc)}
            rows = getattr(exc, "rows", None)
            if rows is not None:
                err["rows"] = list(rows)
            try:
                conn.send(("error", err))
            except (OSError, BrokenPipeError):
                os._exit(0)


class _WorkerHandle:
    """Parent-side view of one worker: process, pipe, shipped systems."""

    __slots__ = ("idx", "proc", "conn", "shipped")

    def __init__(self, idx: int):
        self.idx = idx
        self.proc = None
        self.conn = None
        self.shipped: set[str] = set()


class ProcessSolverPool:
    """K solver worker processes behind an idle-checkout queue.

    Parameters
    ----------
    workers:
        Process count.
    backend:
        Kernel backend the workers will run (drives the fork/spawn
        choice and is folded into each task's solver options as the
        default).  ``None`` resolves the ambient default.
    start_method:
        ``"fork"``/``"spawn"`` override (else :data:`START_ENV_VAR`,
        else the backend-aware default).
    on_respawn:
        Optional hook fired after a dead worker is replaced (the
        service counts these as ``pool_respawns``).
    """

    def __init__(self, workers: int = 2, *, backend: str | None = None,
                 start_method: str | None = None,
                 name: str = "serve-pool", on_respawn=None):
        if workers <= 0:
            raise ValidationError(
                f"workers must be positive, got {workers}")
        self.name = str(name)
        self.on_respawn = on_respawn
        resolved = backends.resolve(backend)
        self.backend_name = resolved.name
        method = start_method or os.environ.get(START_ENV_VAR)
        if method is None:
            # fork is cheap, but forking a live OpenMP runtime (libgomp
            # state does not survive fork) can deadlock — so spawn
            # whenever the workers will run a native backend.
            if not resolved.is_reference:
                method = "spawn"
            elif "fork" in multiprocessing.get_all_start_methods():
                method = "fork"
            else:
                method = "spawn"
        self.start_method = method
        self._ctx = multiprocessing.get_context(method)
        self.workers = int(workers)
        self.respawns = 0
        self.dispatches = 0
        self.systems_shipped = 0
        self._lock = threading.Lock()
        self._closed = False
        self._handles = [_WorkerHandle(i) for i in range(self.workers)]
        for handle in self._handles:
            self._start_worker(handle)
        self._idle: "queue.Queue[_WorkerHandle]" = queue.Queue()
        for handle in self._handles:
            self._idle.put(handle)

    # -- lifecycle ----------------------------------------------------------

    def __enter__(self) -> "ProcessSolverPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _start_worker(self, handle: _WorkerHandle) -> None:
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        proc = self._ctx.Process(
            target=worker_main,
            args=(child_conn, self.backend_name, os.getpid()),
            daemon=True, name=f"{self.name}-{handle.idx}")
        proc.start()
        child_conn.close()  # our copy of the child end; EOF must propagate
        handle.proc = proc
        handle.conn = parent_conn
        handle.shipped = set()

    def _respawn(self, handle: _WorkerHandle) -> None:
        proc = handle.proc
        if proc.is_alive():  # pragma: no cover - defensive
            proc.terminate()
        proc.join(timeout=2.0)
        with contextlib.suppress(OSError):
            handle.conn.close()
        self._start_worker(handle)
        with self._lock:
            self.respawns += 1
        if self.on_respawn is not None:
            self.on_respawn()

    def close(self) -> None:
        """Stop every worker (idempotent)."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
        for handle in self._handles:
            with contextlib.suppress(OSError):
                handle.conn.send(("stop",))
        for handle in self._handles:
            handle.proc.join(timeout=2.0)
            if handle.proc.is_alive():
                handle.proc.terminate()
                handle.proc.join(timeout=2.0)
            with contextlib.suppress(OSError):
                handle.conn.close()

    @property
    def stats(self) -> dict:
        with self._lock:
            return {"workers": self.workers,
                    "start_method": self.start_method,
                    "dispatches": self.dispatches,
                    "systems_shipped": self.systems_shipped,
                    "respawns": self.respawns}

    # -- dispatch ------------------------------------------------------------

    def solve(self, *, system_key: str, matrix, method: str, tol: float,
              max_iterations: int, options, x0=None,
              time_budget_s: float | None = None) -> SolverResult:
        """Run one solve on a pool worker; blocks for the result.

        Raises :class:`WorkerCrashError` if the worker dies mid-solve
        (after respawning it) and reconstructs solver-side exceptions
        (:class:`SingularSystemError` with its rows, validation
        errors) in the parent.
        """
        payload = {
            "system": system_key, "batch": False, "method": method,
            "tol": float(tol), "max_iterations": int(max_iterations),
            "options": dict(options), "x0": x0,
            "time_budget_s": time_budget_s,
        }
        return self._to_result(self._dispatch(system_key, matrix, payload))

    def solve_batched(self, *, system_key: str, matrix, tol: float,
                      max_iterations: int, options, tols, x0=None,
                      k: int = 1,
                      time_budget_s: float | None = None
                      ) -> list[SolverResult]:
        """Run one multi-RHS batched solve on a pool worker."""
        payload = {
            "system": system_key, "batch": True,
            "tol": float(tol), "max_iterations": int(max_iterations),
            "options": dict(options), "x0": x0, "k": int(k),
            "tols": [float(t) for t in tols],
            "time_budget_s": time_budget_s,
        }
        replies = self._dispatch(system_key, matrix, payload)
        return [self._to_result(r) for r in replies]

    def _checkout(self) -> _WorkerHandle:
        while True:
            if self._closed:
                raise SolveJobError("solver pool is closed")
            try:
                return self._idle.get(timeout=0.2)
            except queue.Empty:
                continue

    def _dispatch(self, system_key: str, matrix, payload: dict):
        handle = self._checkout()
        try:
            with self._lock:
                self.dispatches += 1
            injector = active_injector()
            if injector is not None and injector.active_for("serve.pool"):
                spec = injector.scheduled(
                    "serve.pool", detail=f"worker {handle.idx}")
                if spec is not None:
                    payload = dict(payload)
                    payload["fault"] = {"kind": spec.kind,
                                        "delay_s": spec.delay_s}
            for _attempt in range(2):  # one re-ship round trip at most
                try:
                    if system_key not in handle.shipped:
                        handle.conn.send(self._system_message(
                            system_key, matrix))
                        handle.shipped.add(system_key)
                        with self._lock:
                            self.systems_shipped += 1
                    handle.conn.send(("solve", payload))
                    reply = self._recv(handle)
                except (EOFError, OSError, BrokenPipeError) as exc:
                    pid = handle.proc.pid
                    self._respawn(handle)
                    raise WorkerCrashError(
                        f"pool worker {handle.idx} (pid {pid}) died "
                        f"mid-solve") from exc
                if reply[0] == "need-system":
                    # The worker evicted (or never saw) the system —
                    # e.g. it is fresh from a respawn; re-ship and retry.
                    handle.shipped.discard(system_key)
                    continue
                if reply[0] == "error":
                    self._raise_worker_error(reply[1])
                return reply[1]
            raise WorkerCrashError(
                f"pool worker {handle.idx} kept rejecting system "
                f"{system_key[:12]} after a re-ship")
        finally:
            self._idle.put(handle)

    def _recv(self, handle: _WorkerHandle):
        """Wait for a reply, detecting worker death while waiting."""
        while True:
            if handle.conn.poll(0.1):
                return handle.conn.recv()  # EOFError on a torn pipe
            if not handle.proc.is_alive():
                if handle.conn.poll(0):
                    return handle.conn.recv()
                raise EOFError("worker exited without replying")

    @staticmethod
    def _system_message(key: str, matrix):
        return ("system", key, tuple(matrix.shape),
                np.asarray(matrix.indptr), np.asarray(matrix.indices),
                np.asarray(matrix.data))

    @staticmethod
    def _to_result(payload: dict) -> SolverResult:
        return SolverResult(
            x=payload["x"], iterations=payload["iterations"],
            residual=payload["residual"],
            stop_reason=StopReason(payload["stop_reason"]),
            residual_history=[], runtime_s=payload["runtime_s"])

    @staticmethod
    def _raise_worker_error(payload: dict) -> None:
        import repro.errors as errors_mod

        name = payload.get("error", "")
        message = payload.get("message", "pool worker error")
        if name == "SingularSystemError":
            raise SingularSystemError(message, rows=payload.get("rows"))
        cls = getattr(errors_mod, name, None)
        if isinstance(cls, type) and issubclass(cls, Exception):
            try:
                exc = cls(message)
            except TypeError:  # pragma: no cover - exotic signature
                exc = None
            if exc is not None:
                raise exc
        raise SolveJobError(f"pool worker error ({name}): {message}")
