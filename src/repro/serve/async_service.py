"""Asyncio front door over :class:`~repro.serve.service.SolveService`.

The sync service is thread-based end to end: ``submit`` can block on
admission (a BLOCK-policy queue), ``result`` blocks on a
``threading.Event``.  An asyncio application — a gRPC/HTTP serving
process multiplexing thousands of client connections on one event
loop — must never call either on the loop thread.
:class:`AsyncSolveService` bridges the two worlds without forking the
service's logic:

*   :meth:`AsyncSolveService.submit` runs the (potentially blocking)
    sync ``submit`` in the loop's default thread-pool executor and
    returns the :class:`~repro.serve.jobs.SolveJob` unchanged, so
    every sync admission behavior — cache hits, single-flight
    coalescing, admission control, backpressure, degraded answers —
    is preserved bit for bit.
*   Completion crosses back into the loop via
    :meth:`SolveJob.add_done_callback` +
    ``loop.call_soon_threadsafe``: no polling thread, no busy loop —
    one callback per job, fired by whichever worker completes it.
*   :meth:`solve` / :meth:`map` are the awaitable analogues of the
    sync convenience wrappers.

The façade either *wraps* an existing service (``service=...`` —
e.g. one constructed with a process pool and tenant weights and shared
with sync callers) or constructs one from the same keyword arguments
:class:`SolveService` takes.  It owns — and closes — only what it
created.

Example
-------
>>> async def sweep(network, conditions):              # doctest: +SKIP
...     async with AsyncSolveService(network, workers=4,
...                                  executor="process") as svc:
...         return await svc.map(conditions)
"""

from __future__ import annotations

import asyncio
import functools
from typing import Iterable, Mapping

from repro.cme.network import ReactionNetwork
from repro.errors import SolveJobError
from repro.serve.jobs import SolveJob, SolveOutcome
from repro.serve.service import SolveService

__all__ = ["AsyncSolveService"]


class AsyncSolveService:
    """Awaitable submission and completion over a sync solve service.

    Parameters
    ----------
    network:
        The base reaction network (ignored when ``service`` is given).
    service:
        An existing :class:`SolveService` to wrap instead of
        constructing one; the caller keeps ownership (``close`` will
        not shut it down).
    **service_kwargs:
        Forwarded verbatim to :class:`SolveService` when constructing.
    """

    def __init__(self, network: ReactionNetwork | None = None, *,
                 service: SolveService | None = None, **service_kwargs):
        if service is not None:
            self._service = service
            self._owned = False
        else:
            if network is None:
                raise SolveJobError(
                    "AsyncSolveService needs a network or a service")
            self._service = SolveService(network, **service_kwargs)
            self._owned = True

    @property
    def service(self) -> SolveService:
        """The wrapped sync service (for metrics, snapshots, ...)."""
        return self._service

    # -- lifecycle ----------------------------------------------------------

    async def __aenter__(self) -> "AsyncSolveService":
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.close()

    async def close(self, *, wait: bool = True) -> None:
        """Close an *owned* service without blocking the event loop."""
        if not self._owned:
            return
        loop = asyncio.get_running_loop()
        await loop.run_in_executor(
            None, functools.partial(self._service.close, wait=wait))

    async def drain(self, *, timeout_s: float | None = None) -> bool:
        """Awaitable :meth:`SolveService.drain` (runs in the executor)."""
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(
            None, functools.partial(self._service.drain,
                                    timeout_s=timeout_s))

    # -- submission ---------------------------------------------------------

    async def submit(self, overrides: Mapping[str, float] | None = None,
                     **kwargs) -> SolveJob:
        """Admit one solve; same semantics/raises as the sync ``submit``.

        Runs the sync admission path in the loop's executor because a
        BLOCK-policy queue may park the submitter; rejections
        (:class:`~repro.errors.JobRejectedError`) propagate to the
        awaiter unchanged.
        """
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(
            None,
            functools.partial(self._service.submit, overrides, **kwargs))

    async def result(self, job: SolveJob) -> SolveOutcome:
        """Await a job's outcome without blocking the loop.

        Bridges the job's thread-side completion into an
        ``asyncio.Future`` via ``call_soon_threadsafe``; raises the
        job's :class:`~repro.errors.SolveJobError` on failure, exactly
        like the sync ``job.result()``.
        """
        loop = asyncio.get_running_loop()
        future: asyncio.Future = loop.create_future()

        def _resolve(j: SolveJob) -> None:
            if future.cancelled():
                return
            error = j.exception()
            if error is not None:
                future.set_exception(error)
            else:
                future.set_result(j.result(timeout=0))

        def _bridge(j: SolveJob) -> None:
            # Fired on a worker thread (or synchronously, for jobs
            # already terminal); hop onto the loop before touching the
            # future.  A closed loop means the awaiter is gone.
            try:
                loop.call_soon_threadsafe(_resolve, j)
            except RuntimeError:
                pass

        job.add_done_callback(_bridge)
        return await future

    async def solve(self, overrides: Mapping[str, float] | None = None,
                    **kwargs) -> SolveOutcome:
        """Submit and await the outcome (awaitable ``service.solve``)."""
        job = await self.submit(overrides, **kwargs)
        return await self.result(job)

    async def map(self, conditions: Iterable[Mapping[str, float]],
                  *, tenant: str = "default") -> list[SolveOutcome]:
        """Solve many conditions concurrently; outcomes in input order.

        All jobs are admitted up front (subject to backpressure) and
        gathered together — the awaitable analogue of the sync
        ``service.map``.
        """
        jobs = [await self.submit(cond, tenant=tenant)
                for cond in conditions]
        return list(await asyncio.gather(
            *(self.result(job) for job in jobs)))
