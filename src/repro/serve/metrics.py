"""Service observability — a façade over :mod:`repro.telemetry`.

:class:`ServiceMetrics` keeps its pre-1.1 surface (``incr`` /
``observe_latency`` / ``snapshot`` / ``render``) but every update now
lands in a :class:`repro.telemetry.metrics.MetricsRegistry`: counters
become ``serve_<name>_total``, latencies the
``serve_latency_seconds`` histogram, queue depth a bound gauge, and
the per-stage timings (queue wait / solve / cache) the
``serve_stage_<stage>_seconds`` histograms.  Pass a shared registry to
co-locate service metrics with solver/gpusim telemetry in one
Prometheus exposition (:meth:`ServiceMetrics.render_prometheus`);
by default each service gets its own registry so instances stay
independent.
"""

from __future__ import annotations

import re
import threading

from repro.telemetry.metrics import (
    DEFAULT_BUCKETS,
    MetricsRegistry,
    percentile as percentile,
)
# Pre-1.1 alias: the bounded percentile window now lives in telemetry.
from repro.telemetry.metrics import SAMPLE_WINDOW as LATENCY_WINDOW
from repro.utils.tables import Table

__all__ = ["COUNTER_NAMES", "LATENCY_WINDOW", "SOLVE_LATENCY_BUCKETS",
           "STAGE_NAMES", "ServiceMetrics", "percentile"]

#: Fixed bucket bounds of the ``solve_latency_seconds`` histogram
#: (end-to-end submit→terminal).  Finer than :data:`DEFAULT_BUCKETS`
#: in the serving sweet spot (1 ms – 1 s) so bucket-derived p50/p99
#: stay meaningful for interactive workloads; Prometheus-compatible
#: (cumulative ``le`` buckets, implicit ``+Inf``).
SOLVE_LATENCY_BUCKETS = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5,
    1.0, 2.5, 5.0, 10.0, 30.0, 60.0)

COUNTER_NAMES = (
    "submitted",        # jobs admitted (including coalesced + cache hits)
    "cache_hits",       # served directly from the cache at submit time
    "coalesced",        # deduplicated onto an in-flight job (single-flight)
    "scheduled",        # actually enqueued for a worker
    "completed",        # solved by a worker
    "failed",           # terminal failures after the retry budget
    "rejected",         # backpressure rejections
    "retried",          # retry attempts consumed
    "batched",          # companion jobs coalesced into a batched solve
    "warm_started",     # solves seeded from a neighbor
    "cold_started",     # solves from the uniform vector
    "degraded",         # approximate answers served under load shedding
    "breaker_open",     # attempts shed by the open circuit breaker
    "deadline_expired", # jobs whose propagated deadline lapsed pre/mid-solve
    "worker_faults",    # injected worker kills/stalls observed
    "fsp_solved",       # adaptive-FSP jobs answered with a certificate
    "cache_faults",     # injected cache misses observed
    "journal_replayed", # accepted-but-unfinished jobs replayed on restart
    "admission_rejected",  # submissions refused by the token buckets
    "pool_respawns",    # dead pool worker processes replaced
)

#: Pipeline stages timed per job (see :class:`SolveService`).
STAGE_NAMES = ("queue", "solve", "cache")


class ServiceMetrics:
    """Thread-safe counters, gauges and histograms for a solve service.

    Parameters
    ----------
    registry:
        The :class:`MetricsRegistry` to register instruments in; a
        fresh private registry by default.  Sharing one registry across
        services (or with solver/gpusim telemetry) merges everything
        into a single exposition.
    prefix:
        Metric-name prefix (``serve`` → ``serve_submitted_total`` ...).
    """

    def __init__(self, registry: MetricsRegistry | None = None, *,
                 prefix: str = "serve") -> None:
        self.registry = registry if registry is not None \
            else MetricsRegistry()
        self.prefix = prefix
        self._counters = {
            name: self.registry.counter(f"{prefix}_{name}_total",
                                        f"serve jobs {name}")
            for name in COUNTER_NAMES
        }
        self._latency = self.registry.histogram(
            f"{prefix}_latency_seconds",
            "job latency from worker start to finish")
        # Deliberately unprefixed: services sharing one registry (one
        # service per model behind one pool) aggregate into a single
        # end-to-end latency distribution, which is what a load test
        # and an operator dashboard both want.
        self._solve_latency = self.registry.histogram(
            "solve_latency_seconds",
            "end-to-end job latency from submission to terminal state",
            buckets=SOLVE_LATENCY_BUCKETS)
        self._tenant_lock = threading.Lock()
        self._tenant_counters: dict[tuple[str, str], object] = {}
        self._stages = {
            stage: self.registry.histogram(
                f"{prefix}_stage_{stage}_seconds",
                f"time spent in the {stage} stage",
                buckets=DEFAULT_BUCKETS)
            for stage in STAGE_NAMES
        }
        self._queue_depth = self.registry.gauge(
            f"{prefix}_queue_depth", "jobs waiting for a worker")
        self._warm_audits = self.registry.counter(
            f"{prefix}_warm_start_audits_total",
            "measured warm-vs-cold comparisons")
        self._warm_saved = self.registry.gauge(
            f"{prefix}_warm_start_iterations_saved",
            "net iterations saved by warm starting (audited sample)")

    # -- updates ------------------------------------------------------------

    def incr(self, name: str, amount: int = 1) -> None:
        """Increment one of :data:`COUNTER_NAMES` (KeyError otherwise)."""
        self._counters[name].inc(amount)

    def observe_latency(self, seconds: float) -> None:
        self._latency.observe(seconds)

    def observe_solve_latency(self, seconds: float) -> None:
        """Record one end-to-end (submit → terminal) job latency."""
        self._solve_latency.observe(seconds)

    def incr_tenant(self, tenant: str, name: str, amount: int = 1) -> None:
        """Increment a per-tenant counter (created lazily).

        Counters register as
        ``<prefix>_tenant_<sanitized tenant>_<name>_total``; tenant
        ids are sanitized to ``[A-Za-z0-9_]`` for the metric name but
        the snapshot keys keep the original id.
        """
        key = (str(tenant), str(name))
        counter = self._tenant_counters.get(key)
        if counter is None:
            with self._tenant_lock:
                counter = self._tenant_counters.get(key)
                if counter is None:
                    safe = re.sub(r"[^A-Za-z0-9_]", "_", key[0]) or "default"
                    counter = self.registry.counter(
                        f"{self.prefix}_tenant_{safe}_{key[1]}_total",
                        f"serve jobs {key[1]} for tenant {key[0]}")
                    self._tenant_counters[key] = counter
        counter.inc(amount)

    def tenant_snapshot(self) -> dict:
        """``{tenant: {counter: value}}`` for every tenant seen so far."""
        with self._tenant_lock:
            items = list(self._tenant_counters.items())
        out: dict[str, dict[str, int]] = {}
        for (tenant, name), counter in items:
            out.setdefault(tenant, {})[name] = counter.value
        return out

    def observe_stage(self, stage: str, seconds: float) -> None:
        """Record one *stage* duration (a key of :data:`STAGE_NAMES`)."""
        self._stages[stage].observe(seconds)

    def record_warm_audit(self, *, cold_iterations: int,
                          warm_iterations: int) -> None:
        """Record one measured warm-vs-cold comparison (may be negative)."""
        self._warm_audits.inc()
        self._warm_saved.inc(cold_iterations - warm_iterations)

    def bind_queue_depth(self, fn) -> None:
        """Attach a live queue-depth gauge (called at snapshot time)."""
        self._queue_depth.set_function(fn)

    # -- reads --------------------------------------------------------------

    def snapshot(self, *, cache_stats=None, breaker=None,
                 journal=None) -> dict:
        """A point-in-time dict of every counter, gauge and percentile.

        ``breaker`` merges a :meth:`CircuitBreaker.snapshot` dict as
        ``breaker_state`` / ``breaker_failures`` / ``breaker_opened``;
        ``journal`` merges a :class:`repro.durability.JobJournal`'s
        append/corruption counters.
        """
        out = {name: c.value for name, c in self._counters.items()}
        out["warm_start_audits"] = self._warm_audits.value
        out["warm_start_iterations_saved"] = self._warm_saved.value
        out["queue_depth"] = self._queue_depth.value
        out["latency_count"] = self._latency.count
        for name, q in (("latency_p50_s", 0.50), ("latency_p90_s", 0.90),
                        ("latency_p99_s", 0.99)):
            out[name] = self._latency.quantile(q)
        # End-to-end percentiles derived from the fixed cumulative
        # buckets (not the bounded sample window), exactly as a
        # Prometheus histogram_quantile() over the exposition would
        # compute them.
        out["solve_latency_count"] = self._solve_latency.count
        out["solve_latency_p50_s"] = self._solve_latency.bucket_quantile(0.50)
        out["solve_latency_p99_s"] = self._solve_latency.bucket_quantile(0.99)
        for stage, hist in self._stages.items():
            out[f"stage_{stage}_p50_s"] = hist.quantile(0.50)
            out[f"stage_{stage}_count"] = hist.count
        if cache_stats is not None:
            out["cache_lookup_hits"] = cache_stats.hits
            out["cache_lookup_misses"] = cache_stats.misses
            out["cache_evictions"] = cache_stats.evictions
            out["cache_disk_hits"] = cache_stats.disk_hits
            out["cache_disk_corrupt"] = cache_stats.disk_corrupt
            out["cache_hit_rate"] = round(cache_stats.hit_rate, 4)
        if breaker is not None:
            out["breaker_state"] = breaker.get("state")
            out["breaker_failures"] = breaker.get("failures", 0)
            out["breaker_opened"] = breaker.get("opened_count", 0)
        if journal is not None:
            out["journal_appended"] = journal.appended
            out["journal_corrupt_skipped"] = journal.corrupt_skipped
        return out

    def render(self, *, cache_stats=None, breaker=None, journal=None,
               title: str = "serve metrics") -> str:
        """The snapshot as a printable two-column table."""
        snap = self.snapshot(cache_stats=cache_stats, breaker=breaker,
                             journal=journal)
        table = Table(["metric", "value"], title=title)
        for name in COUNTER_NAMES:
            table.add_row([name, snap[name]])
        table.add_row(["queue_depth", snap["queue_depth"]])
        table.add_row(["warm_start_iterations_saved",
                       snap["warm_start_iterations_saved"]])
        for name in ("latency_p50_s", "latency_p90_s", "latency_p99_s"):
            table.add_row([name, f"{snap[name]:.4f}"])
        for stage in STAGE_NAMES:
            table.add_row([f"stage_{stage}_p50_s",
                           f"{snap[f'stage_{stage}_p50_s']:.4f}"])
        if cache_stats is not None:
            table.add_row(["cache_hit_rate", snap["cache_hit_rate"]])
            table.add_row(["cache_evictions", snap["cache_evictions"]])
            table.add_row(["cache_disk_corrupt",
                           snap["cache_disk_corrupt"]])
        if breaker is not None:
            table.add_row(["breaker_state", snap["breaker_state"]])
            table.add_row(["breaker_opened", snap["breaker_opened"]])
        if journal is not None:
            table.add_row(["journal_appended", snap["journal_appended"]])
            table.add_row(["journal_corrupt_skipped",
                           snap["journal_corrupt_skipped"]])
        return table.render()

    def render_prometheus(self) -> str:
        """Prometheus text exposition of the backing registry."""
        return self.registry.render_prometheus()
