"""Service observability: counters, latency percentiles, savings.

One :class:`ServiceMetrics` instance per service, updated from submit
paths and worker threads under a single lock (every update is a handful
of scalar ops — contention is negligible next to a solve).  The
:meth:`~ServiceMetrics.snapshot` is a plain dict suitable for logging
or assertions; :meth:`~ServiceMetrics.render` produces the CLI table.
"""

from __future__ import annotations

import threading
from collections import deque

from repro.utils.tables import Table

#: Retain at most this many recent latency samples for percentiles.
LATENCY_WINDOW = 4096

COUNTER_NAMES = (
    "submitted",        # jobs admitted (including coalesced + cache hits)
    "cache_hits",       # served directly from the cache at submit time
    "coalesced",        # deduplicated onto an in-flight job (single-flight)
    "scheduled",        # actually enqueued for a worker
    "completed",        # solved by a worker
    "failed",           # terminal failures after the retry budget
    "rejected",         # backpressure rejections
    "retried",          # retry attempts consumed
    "warm_started",     # solves seeded from a neighbor
    "cold_started",     # solves from the uniform vector
)


def percentile(sorted_values: list[float], q: float) -> float:
    """Linear-interpolated percentile of an already-sorted list."""
    if not sorted_values:
        return 0.0
    if len(sorted_values) == 1:
        return sorted_values[0]
    pos = (len(sorted_values) - 1) * q
    lo = int(pos)
    hi = min(lo + 1, len(sorted_values) - 1)
    frac = pos - lo
    return sorted_values[lo] * (1.0 - frac) + sorted_values[hi] * frac


class ServiceMetrics:
    """Thread-safe counters and histograms for a solve service."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters = {name: 0 for name in COUNTER_NAMES}
        self._latencies: deque[float] = deque(maxlen=LATENCY_WINDOW)
        self._warm_audits = 0
        self._warm_iterations_saved = 0
        self._queue_depth_fn = None

    # -- updates ------------------------------------------------------------

    def incr(self, name: str, amount: int = 1) -> None:
        with self._lock:
            self._counters[name] += amount

    def observe_latency(self, seconds: float) -> None:
        with self._lock:
            self._latencies.append(float(seconds))

    def record_warm_audit(self, *, cold_iterations: int,
                          warm_iterations: int) -> None:
        """Record one measured warm-vs-cold comparison (may be negative)."""
        with self._lock:
            self._warm_audits += 1
            self._warm_iterations_saved += cold_iterations - warm_iterations

    def bind_queue_depth(self, fn) -> None:
        """Attach a live queue-depth gauge (called at snapshot time)."""
        self._queue_depth_fn = fn

    # -- reads --------------------------------------------------------------

    def snapshot(self, *, cache_stats=None) -> dict:
        """A point-in-time dict of every counter, gauge and percentile."""
        with self._lock:
            out = dict(self._counters)
            latencies = sorted(self._latencies)
            out["warm_start_audits"] = self._warm_audits
            out["warm_start_iterations_saved"] = self._warm_iterations_saved
        out["queue_depth"] = (self._queue_depth_fn()
                              if self._queue_depth_fn is not None else 0)
        out["latency_count"] = len(latencies)
        for name, q in (("latency_p50_s", 0.50), ("latency_p90_s", 0.90),
                        ("latency_p99_s", 0.99)):
            out[name] = percentile(latencies, q)
        if cache_stats is not None:
            out["cache_lookup_hits"] = cache_stats.hits
            out["cache_lookup_misses"] = cache_stats.misses
            out["cache_evictions"] = cache_stats.evictions
            out["cache_disk_hits"] = cache_stats.disk_hits
            out["cache_hit_rate"] = round(cache_stats.hit_rate, 4)
        return out

    def render(self, *, cache_stats=None, title: str = "serve metrics") -> str:
        """The snapshot as a printable two-column table."""
        snap = self.snapshot(cache_stats=cache_stats)
        table = Table(["metric", "value"], title=title)
        for name in COUNTER_NAMES:
            table.add_row([name, snap[name]])
        table.add_row(["queue_depth", snap["queue_depth"]])
        table.add_row(["warm_start_iterations_saved",
                       snap["warm_start_iterations_saved"]])
        for name in ("latency_p50_s", "latency_p90_s", "latency_p99_s"):
            table.add_row([name, f"{snap[name]:.4f}"])
        if cache_stats is not None:
            table.add_row(["cache_hit_rate", snap["cache_hit_rate"]])
            table.add_row(["cache_evictions", snap["cache_evictions"]])
        return table.render()
