"""Solve requests and jobs: the unit of work of the serving layer.

A :class:`SolveRequest` pins down *everything* that determines a
steady-state answer — the reaction network (via its canonical
signature), the rate overrides, the state-space bounds (baked into the
network's species buffers) and the solver options — and derives a
stable, content-addressed :meth:`~SolveRequest.cache_key` from it.  Two
requests with the same key are guaranteed to describe the same linear
system solved the same way, which is what makes the cache and
single-flight deduplication sound.

A :class:`SolveJob` is one submitted request flowing through the
scheduler: a tiny future with a priority, timestamps and an attempt
counter.  Jobs are created by :class:`repro.serve.service.SolveService`;
callers block on :meth:`SolveJob.result`.
"""

from __future__ import annotations

import enum
import hashlib
import json
import threading
from dataclasses import dataclass, field
from typing import Mapping

import numpy as np

from repro.cme.landscape import ProbabilityLandscape
from repro.cme.network import ReactionNetwork
from repro.errors import JobCancelledError, SolveJobError, ValidationError
from repro.solvers.result import SolverResult

#: Solver options a request may carry; anything else is rejected early
#: so typos do not silently fork the cache-key space.
SOLVER_OPTION_KEYS = frozenset({
    "damping", "check_interval", "normalize_interval", "stagnation_tol",
    "step", "backend",
    # method="sharded" knobs, rejected by the other solvers' ctors only
    # if actually passed — the service forwards options verbatim.
    "shards", "sync",
})


def matrix_signature(A) -> str:
    """A short content hash of an assembled rate matrix.

    Recorded in a job's ``failure`` payload when the *system* is at
    fault (e.g. :class:`~repro.errors.SingularSystemError`), so the
    exact offending matrix can be correlated across logs, retries and
    cache artifacts without shipping the matrix itself.
    """
    h = hashlib.sha256()
    h.update(repr(A.shape).encode())
    h.update(str(A.nnz).encode())
    for part in (A.indptr, A.indices, A.data):
        h.update(np.ascontiguousarray(part).tobytes())
    return h.hexdigest()[:16]


class SolveRequest:
    """An immutable description of one steady-state solve.

    Parameters
    ----------
    network:
        The base reaction network.
    overrides:
        Optional ``reaction name -> rate`` overrides applied through
        :meth:`ReactionNetwork.with_rates`.
    tol, max_iterations:
        Jacobi stopping parameters.
    solver_options:
        Extra :class:`~repro.solvers.jacobi.JacobiSolver` keyword
        options (restricted to :data:`SOLVER_OPTION_KEYS`).
    """

    def __init__(self, network: ReactionNetwork,
                 overrides: Mapping[str, float] | None = None, *,
                 tol: float = 1e-8, max_iterations: int = 200_000,
                 solver_options: Mapping | None = None):
        if not isinstance(network, ReactionNetwork):
            raise ValidationError("network must be a ReactionNetwork")
        overrides = dict(overrides or {})
        known = {r.name for r in network.reactions}
        unknown = set(overrides) - known
        if unknown:
            raise ValidationError(
                f"overrides reference unknown reactions {sorted(unknown)}")
        for name, rate in overrides.items():
            if not float(rate) > 0.0:
                raise ValidationError(
                    f"override for {name!r} must be positive, got {rate}")
        if not float(tol) > 0.0:
            raise ValidationError(f"tol must be positive, got {tol}")
        if int(max_iterations) <= 0:
            raise ValidationError("max_iterations must be positive")
        options = dict(solver_options or {})
        bad = set(options) - SOLVER_OPTION_KEYS
        if bad:
            raise ValidationError(
                f"unknown solver options {sorted(bad)}; "
                f"expected a subset of {sorted(SOLVER_OPTION_KEYS)}")
        self.network = network
        self.overrides = {name: float(overrides[name])
                          for name in sorted(overrides)}
        self.tol = float(tol)
        self.max_iterations = int(max_iterations)
        self.solver_options = {k: options[k] for k in sorted(options)}
        self._key: str | None = None
        self._matrix_key: str | None = None

    def varied_network(self) -> ReactionNetwork:
        """The network with the overrides applied."""
        if not self.overrides:
            return self.network
        return self.network.with_rates(self.overrides)

    def rate_vector(self) -> np.ndarray:
        """Effective rates in base reaction order (warm-start coordinates)."""
        rates = self.network.rates.copy()
        for i, rxn in enumerate(self.network.reactions):
            if rxn.name in self.overrides:
                rates[i] = self.overrides[rxn.name]
        return rates

    def log_rate_vector(self) -> np.ndarray:
        """``log`` of :meth:`rate_vector` — distances in fold-change space."""
        return np.log(self.rate_vector())

    def cache_key(self) -> str:
        """Stable content hash identifying this request's answer.

        Built from the network's canonical signature (invariant to
        reaction/dict ordering), the sorted overrides and the sorted
        solver options, so equivalent requests written differently
        collide onto one cache line.
        """
        if self._key is None:
            payload = json.dumps({
                "network": self.network.canonical_signature(),
                "overrides": sorted(self.overrides.items()),
                "tol": self.tol,
                "max_iterations": self.max_iterations,
                "solver_options": sorted(
                    (k, repr(v)) for k, v in self.solver_options.items()),
            }, sort_keys=True, separators=(",", ":"))
            self._key = hashlib.sha256(payload.encode()).hexdigest()
        return self._key

    def matrix_key(self) -> str:
        """Content hash of the assembled *system* alone.

        Unlike :meth:`cache_key` this excludes tolerances, iteration
        caps and solver options: two requests with equal matrix keys
        describe the **same linear system** (network + overrides) and
        can therefore share one assembled matrix — and, when their loop
        parameters agree, one batched multi-RHS solve.
        """
        if self._matrix_key is None:
            payload = json.dumps({
                "network": self.network.canonical_signature(),
                "overrides": sorted(self.overrides.items()),
            }, sort_keys=True, separators=(",", ":"))
            self._matrix_key = hashlib.sha256(payload.encode()).hexdigest()
        return self._matrix_key

    def __repr__(self) -> str:  # pragma: no cover - debug convenience
        return (f"SolveRequest({self.network.name!r}, "
                f"overrides={self.overrides}, key={self.cache_key()[:12]})")


class JobState(enum.Enum):
    """Lifecycle of a :class:`SolveJob`."""

    PENDING = "pending"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"
    CANCELLED = "cancelled"


@dataclass
class SolveOutcome:
    """What a finished job hands back to the caller.

    ``degraded=True`` marks an *approximate* answer served from a
    nearby cached solution under load shedding (saturated queue or an
    open circuit breaker) — callers needing the exact steady state must
    resubmit once the service recovers.

    Adaptive-FSP answers (``method="fsp"``) additionally carry their
    certificate: ``truncation_mass`` is the certified upper bound on
    the stationary probability outside the answer's projection, and
    ``fsp`` is the :meth:`repro.fsp.FspResult.payload` dict (projection
    size trajectory, per-round bounds, states added/pruned).  Both stay
    ``None`` for fixed-capacity answers, whose landscape covers the
    whole enumerated space.
    """

    result: SolverResult
    landscape: ProbabilityLandscape
    key: str
    cached: bool = False
    warm_started: bool = False
    solve_seconds: float = 0.0
    degraded: bool = False
    truncation_mass: float | None = None
    fsp: dict | None = None


class SolveJob:
    """A submitted request: a small thread-safe future.

    Lower ``priority`` values are served first; ties break by
    submission order (FIFO).  ``tenant`` identifies the submitter for
    admission control and weighted fair queuing; it never participates
    in the cache key (two tenants asking the same question share one
    answer).
    """

    def __init__(self, request: SolveRequest, *, job_id: int,
                 priority: int = 0, tenant: str = "default"):
        self.request = request
        self.id = int(job_id)
        self.priority = int(priority)
        self.tenant = str(tenant) or "default"
        self.key = request.cache_key()
        self.attempts = 0
        self.submitted_at: float | None = None
        self.started_at: float | None = None
        self.finished_at: float | None = None
        #: Absolute ``time.perf_counter()`` deadline propagated from
        #: ``SolveService.submit(deadline_s=...)``; workers clamp the
        #: solver's ``time_budget_s`` to whatever remains of it.
        self.deadline_at: float | None = None
        self._lock = threading.Lock()
        self._done = threading.Event()
        self._state = JobState.PENDING
        self._outcome: SolveOutcome | None = None
        self._error: SolveJobError | None = None
        self._callbacks: list = []

    # -- queries ------------------------------------------------------------

    @property
    def state(self) -> JobState:
        return self._state

    def done(self) -> bool:
        """Whether the job reached a terminal state."""
        return self._done.is_set()

    def result(self, timeout: float | None = None) -> SolveOutcome:
        """Block for the outcome; raises the job's error on failure."""
        if not self._done.wait(timeout):
            raise SolveJobError(
                f"job {self.id} not finished within {timeout}s wait",
                key=self.key, attempts=self.attempts)
        if self._error is not None:
            raise self._error
        assert self._outcome is not None
        return self._outcome

    def exception(self) -> SolveJobError | None:
        """The terminal error, if the job failed (None otherwise)."""
        return self._error

    @property
    def failure(self) -> dict:
        """The structured failure payload of a failed job ({} otherwise)."""
        return dict(self._error.failure) if self._error is not None else {}

    def add_done_callback(self, fn) -> None:
        """Run ``fn(job)`` once the job reaches a terminal state.

        Fires immediately (on the calling thread) when already
        terminal; otherwise on whichever thread completes the job — a
        worker thread, or the submitter for cache hits and
        cancellations.  Callbacks must be cheap and never block; the
        asyncio façade bridges into the event loop with
        ``loop.call_soon_threadsafe``.  Callback exceptions are
        swallowed so one bad observer cannot fail the completion path.
        """
        with self._lock:
            if not self._done.is_set():
                self._callbacks.append(fn)
                return
        self._invoke(fn)

    def _invoke(self, fn) -> None:
        try:
            fn(self)
        except Exception:  # noqa: BLE001 - observer must not break completion
            pass

    def _fire_callbacks(self) -> None:
        """Drain and invoke callbacks (call *without* the lock held)."""
        with self._lock:
            callbacks, self._callbacks = self._callbacks, []
        for fn in callbacks:
            self._invoke(fn)

    # -- transitions (scheduler/service only) --------------------------------

    def cancel(self) -> bool:
        """Cancel if still pending; returns whether it took effect."""
        with self._lock:
            if self._state is not JobState.PENDING:
                return False
            self._state = JobState.CANCELLED
            self._error = JobCancelledError(
                f"job {self.id} cancelled before execution",
                key=self.key, attempts=self.attempts)
            self._done.set()
        self._fire_callbacks()
        return True

    def mark_running(self) -> bool:
        with self._lock:
            if self._state is not JobState.PENDING:
                return False
            self._state = JobState.RUNNING
            return True

    def requeue(self) -> bool:
        """Return a running job to PENDING (batched → solo fallback).

        A companion drained into a batched solve that could not be
        answered there (batch failure, per-column timeout) goes back
        through the queue for an individual attempt; the transition is
        refused once the job is done.
        """
        with self._lock:
            if self._state is not JobState.RUNNING or self._done.is_set():
                return False
            self._state = JobState.PENDING
            return True

    def finish(self, outcome: SolveOutcome) -> None:
        with self._lock:
            if self._done.is_set():
                return
            self._state = JobState.DONE
            self._outcome = outcome
            self._done.set()
        self._fire_callbacks()

    def fail(self, error: SolveJobError) -> None:
        with self._lock:
            if self._done.is_set():
                return
            self._state = JobState.FAILED
            self._error = error
            self._done.set()
        self._fire_callbacks()

    def __repr__(self) -> str:  # pragma: no cover - debug convenience
        return (f"SolveJob(id={self.id}, state={self._state.value}, "
                f"key={self.key[:12]})")


@dataclass(order=True)
class _QueueItem:
    """Heap entry: (priority, FIFO sequence) ordering, job excluded."""

    priority: int
    seq: int
    job: SolveJob = field(compare=False)
