"""The solve service façade: cache + warm start + scheduler in one.

:class:`SolveService` turns the repo's one-shot ``solve_steady_state``
into a job-serving layer for the paper's exploratory workload — many
rate conditions of one network:

*   The state space is enumerated **once** per service (rate changes
    never alter reachability for strictly-positive propensities, the
    same structure-reuse the serial sweep exploits) and shared across
    all worker threads; assembled rate matrices are memoized per rate
    condition so retries and repeated conditions skip assembly.
*   Submissions are **content-addressed**: a request's cache key is
    checked first (hit → the job completes synchronously, no queue
    space consumed), then deduplicated onto any in-flight job with the
    same key (**single-flight** — concurrent identical submits solve
    once), and only then admitted to the bounded queue.
*   Completed solves feed the :class:`~repro.serve.cache.SolutionCache`
    and the :class:`~repro.serve.warmstart.WarmStartIndex`, so later
    neighbors start from a converged nearby landscape instead of the
    uniform vector.

Example
-------
>>> from repro import toggle_switch
>>> from repro.serve import SolveService
>>> with SolveService(toggle_switch(max_protein=12), workers=4,
...                   warm_start=True) as svc:          # doctest: +SKIP
...     jobs = [svc.submit({"degA": d}) for d in (0.5, 1.0, 2.0)]
...     outcomes = [j.result() for j in jobs]
"""

from __future__ import annotations

import contextlib
import functools
import itertools
import logging
import signal
import threading
import time
from collections import OrderedDict
from pathlib import Path
from typing import Iterable, Mapping

from repro.cme.landscape import ProbabilityLandscape
from repro.durability.journal import JobJournal
from repro.cme.network import ReactionNetwork
from repro.cme.ratematrix import build_rate_matrix
from repro.cme.statespace import StateSpace, enumerate_state_space
from repro.errors import (
    CircuitOpenError,
    JobRejectedError,
    JobTimeoutError,
    SingularSystemError,
    SolveJobError,
    ValidationError,
    WorkerCrashError,
)
from repro.resilience.backoff import RetryPolicy
from repro.resilience.circuit import CircuitBreaker
from repro.resilience.faults import active_injector
from repro.serve.cache import CacheEntry, SolutionCache, state_space_layout
from repro.serve.fairness import AdmissionController, FairPriorityQueue
from repro.serve.jobs import (
    SolveJob,
    SolveOutcome,
    SolveRequest,
    matrix_signature,
)
from repro.serve.metrics import ServiceMetrics
from repro.serve.pool import ProcessSolverPool
from repro.serve.scheduler import (
    BoundedPriorityQueue,
    QueuePolicy,
    SolveScheduler,
)
from repro.serve.sharding import ShardedSolutionCache, ShardedWarmStartIndex
from repro.serve.warmstart import WarmStartIndex, blend_donors
from repro.solvers import (
    SOLVER_REGISTRY,
    BatchedJacobiSolver,
)
from repro.solvers.result import StopReason
from repro.telemetry import tracing

log = logging.getLogger("repro.serve")

#: Assembled matrices memoized per service (CSR of a small sweep point
#: is a few MB; 64 conditions bound the worst case while covering any
#: realistic retry/duplicate pattern).
MATRIX_MEMO_ENTRIES = 64

#: Options ``SolveService(method="fsp", fsp_options=...)`` accepts —
#: the :class:`repro.fsp.AdaptiveFspController` knobs that are not
#: already carried per-request (tol, max_iterations, solver_options).
FSP_OPTION_KEYS = frozenset({
    "fsp_tol", "initial_size", "max_rounds", "prune_mass", "safety",
    "expand_depth", "max_new_states", "max_states", "method",
})


class _Workspace:
    """Per-service shared solve state: state space + matrix memo."""

    def __init__(self, network: ReactionNetwork, *, reuse_state_space: bool,
                 max_states: int):
        self.network = network
        self.reuse_state_space = reuse_state_space
        self.max_states = max_states
        self._lock = threading.Lock()
        self._space: StateSpace | None = None
        self._layout: str | None = None
        self._matrices: OrderedDict[str, object] = OrderedDict()

    def space(self) -> StateSpace:
        """The base network's state space, enumerated once."""
        with self._lock:
            if self._space is None:
                self._space = enumerate_state_space(
                    self.network, max_states=self.max_states)
                self._layout = state_space_layout(self._space.states)
            return self._space

    def layout(self) -> str:
        self.space()
        assert self._layout is not None
        return self._layout

    def space_for(self, request: SolveRequest) -> StateSpace:
        """The (possibly rebound) state space for one request.

        With ``reuse_state_space`` the shared DFS state list is rebound
        to the varied network so propensities use the new rates over
        identical state indices — bitwise the same construction as the
        serial sweep.  Without it, each condition enumerates afresh.
        """
        varied = request.varied_network()
        if not self.reuse_state_space:
            return enumerate_state_space(varied, max_states=self.max_states)
        base = self.space()
        if not request.overrides:
            return base
        return StateSpace(network=varied, states=base.states)

    def matrix(self, request: SolveRequest):
        """The assembled rate matrix for one request (memoized).

        Keyed by :meth:`SolveRequest.matrix_key`, so requests differing
        only in tolerance or solver options share one assembly — and
        batched companions are guaranteed the identical matrix object.
        """
        memo_key = request.matrix_key()
        with self._lock:
            A = self._matrices.get(memo_key)
            if A is not None:
                self._matrices.move_to_end(memo_key)
                return A
        A = build_rate_matrix(self.space_for(request))
        with self._lock:
            self._matrices[memo_key] = A
            while len(self._matrices) > MATRIX_MEMO_ENTRIES:
                self._matrices.popitem(last=False)
        return A


class SolveService:
    """Concurrent, cached, warm-starting steady-state solve service.

    Parameters
    ----------
    network:
        The base reaction network every request varies.
    workers:
        Worker-thread count (NumPy/SciPy release the GIL inside the
        SpMV kernels, so threads overlap the hot loop).
    cache:
        ``True`` (default) for an in-memory cache, ``False``/``None``
        to disable, or a preconfigured :class:`SolutionCache` (e.g.
        with a disk directory) to share across services/runs.
    warm_start:
        Seed each solve from the inverse-distance-weighted blend of the
        ``warm_neighbors`` nearest already-solved rate points.
    warm_neighbors:
        Donor count for the blend.  More than one matters for bistable
        networks, where a single asymmetric donor excites the slow
        switching mode (see :mod:`repro.serve.warmstart`).
    queue_capacity, queue_policy, put_timeout:
        Backpressure configuration (see :mod:`repro.serve.scheduler`).
    timeout_s:
        Optional per-attempt wall-clock budget; an expired attempt
        raises :class:`~repro.errors.JobTimeoutError` and consumes a
        retry.
    retries:
        Extra attempts per job after the first.
    retry_policy:
        Backoff between retry attempts.  ``None`` (default) applies
        :class:`repro.resilience.backoff.RetryPolicy`'s exponential
        backoff with jitter; pass ``False`` for the legacy immediate
        retry, or a configured policy.
    method:
        Solver method (a :data:`repro.solvers.SOLVER_REGISTRY` key:
        ``"jacobi"``, ``"gauss-seidel"``, ``"power"``, ``"resilient"``
        or ``"sharded"``, the domain-decomposed process-pool Jacobi) —
        or ``"fsp"`` for adaptive Finite State Projection.  FSP jobs never enumerate the full buffered space:
        each runs the :class:`repro.fsp.AdaptiveFspController`
        projection loop and answers with a landscape over the final
        projection plus a certified ``truncation_mass``; the full-space
        cache, warm-start index and batching do not apply.
    fsp_options:
        Controller knobs for ``method="fsp"`` (a subset of
        :data:`FSP_OPTION_KEYS`: ``fsp_tol``, ``initial_size``,
        ``max_rounds``, ``prune_mass``, ``safety``, ``expand_depth``,
        ``max_new_states``, ``max_states``, and the inner solver
        ``method``).  Rejected for fixed-capacity methods.
    breaker_threshold, breaker_reset_s:
        Circuit breaker for the solve path: after
        ``breaker_threshold`` consecutive attempt failures the service
        sheds further attempts (fail-fast
        :class:`~repro.errors.CircuitOpenError`, or degraded answers)
        until ``breaker_reset_s`` elapses and a probe succeeds.
        ``breaker_threshold=0`` disables the breaker.
    degraded_mode:
        When the queue is saturated or the breaker is open, serve the
        nearest already-solved neighbor's landscape (requires
        ``warm_start``) as an *approximate* answer flagged
        ``degraded=True`` instead of failing the submission.
    warm_audit_interval:
        Every Nth warm-started solve is *audited*: the uniform-start
        solve runs alongside on the same system and the measured
        iteration difference feeds the
        ``warm_start_iterations_saved`` metric.  Audits cost one extra
        solve each, so the default samples 1 in 8; set ``1`` to audit
        every warm start, ``0`` to disable auditing.
    batch_max:
        When > 1 (and ``method="jacobi"`` with the fast step backend), a
        worker picking up a job also *drains* up to ``batch_max - 1``
        queued jobs describing the same linear system
        (:meth:`SolveRequest.matrix_key`) with the same loop parameters
        (only ``tol`` may differ) and answers them all in one
        :class:`~repro.solvers.batched.BatchedJacobiSolver` multi-RHS
        solve — one fused product per sweep instead of one solve per
        job.  Companions that cannot be answered by the batch (a
        per-column timeout, a batch failure) go back through the queue
        for an individual attempt.  ``1`` (default) disables batching.
    tol, max_iterations, solver_options:
        Request defaults (overridable per submit).
    backend:
        Kernel backend name folded into the default ``solver_options``
        (``solver_options={"backend": ...}`` spelled out); an explicit
        ``backend`` key in *solver_options* wins.
    reuse_state_space, max_states:
        State-space handling, as in :class:`repro.sweep.ParameterSweep`.
    journal:
        Optional write-ahead job journal (a
        :class:`repro.durability.JobJournal` or a path to create one
        at).  Every admitted job is durably recorded *before* it enters
        the scheduler and marked off when it completes, fails or is
        cancelled; a service constructed over an existing journal
        **replays** the accepted-but-unfinished entries exactly once
        per key, so a crash between acceptance and completion cannot
        silently drop work (see DESIGN.md §15).
    metrics_registry:
        Optional shared :class:`repro.telemetry.MetricsRegistry` to
        register the service's counters/histograms in (one exposition
        across services and solver/gpusim telemetry); a private
        registry by default.
    executor:
        ``"thread"`` (default) runs solves on the scheduler's worker
        threads; ``"process"`` dispatches each solve to a
        :class:`~repro.serve.pool.ProcessSolverPool` of ``workers``
        worker *processes*, so K workers run K native solve loops with
        no shared GIL.  Matrices ship to a worker once per linear
        system (content-keyed) and stay resident, so repeated
        conditions pay no re-pickling.  ``"process"`` does not combine
        with ``method="fsp"`` (the projection loop is not
        pool-shippable) or ``method="sharded"`` (itself a process
        pool).
    pool:
        A preconstructed (possibly shared) pool to dispatch to;
        implies ``executor="process"``.  The service never closes a
        pool it did not create, so several services (one per model)
        can serve through one pool.
    pool_start:
        Multiprocessing start method for a service-owned pool
        (``"fork"``/``"spawn"``/``"forkserver"``); default per
        :class:`~repro.serve.pool.ProcessSolverPool` (spawn under
        native/OpenMP backends).
    tenant_weights:
        ``tenant -> weight`` map enabling weighted fair queuing: the
        bounded priority queue becomes a
        :class:`~repro.serve.fairness.FairPriorityQueue` running
        deficit round robin over per-tenant lanes, so a heavy tenant
        cannot starve a light one regardless of arrival rates.
        Unlisted tenants queue at weight 1.
    admission:
        Per-tenant token-bucket admission control: an
        :class:`~repro.serve.fairness.AdmissionController`, or its
        ``limits`` mapping (``tenant -> rate`` or ``tenant -> (rate,
        burst)``; key ``"*"`` sets the default for unlisted tenants).
        Over-rate submissions raise
        :class:`~repro.errors.JobRejectedError` at the front door —
        before the cache, the journal and the queue.
    cache_shards:
        When > 1, the solution cache (if service-created) and the
        warm-start index are hash-sharded into this many independently
        locked slices (see :mod:`repro.serve.sharding`), removing the
        single cache lock as a completion-path serialization point
        under many workers.
    default_damping:
        Serve-level Jacobi damping applied when a request does not
        spell out ``damping`` itself (``None`` disables).  Undamped
        Jacobi stagnates on bipartite-structured systems — the toggle
        switch at symmetric rate points oscillates between its two
        modes for >100k iterations where ``damping=0.9`` converges in
        a few hundred — which made ``toggle_switch`` the serve
        latency outlier.  Only applies to ``method="jacobi"`` /
        ``"sharded"``; explicit ``damping`` (including ``1.0``) always
        wins.
    """

    def __init__(self, network: ReactionNetwork, *, workers: int = 1,
                 cache: SolutionCache | bool | None = True,
                 warm_start: bool = False,
                 warm_neighbors: int = 2,
                 queue_capacity: int = 1024,
                 queue_policy: QueuePolicy | str = QueuePolicy.REJECT,
                 put_timeout: float | None = None,
                 timeout_s: float | None = None,
                 retries: int = 0,
                 retry_policy: RetryPolicy | bool | None = None,
                 method: str = "jacobi",
                 breaker_threshold: int = 5,
                 breaker_reset_s: float = 30.0,
                 degraded_mode: bool = False,
                 warm_audit_interval: int = 8,
                 batch_max: int = 1,
                 tol: float = 1e-8, max_iterations: int = 200_000,
                 solver_options: Mapping | None = None,
                 backend: str | None = None,
                 fsp_options: Mapping | None = None,
                 reuse_state_space: bool = True,
                 max_states: int = 5_000_000,
                 journal: JobJournal | str | Path | None = None,
                 metrics_registry=None,
                 executor: str = "thread",
                 pool: ProcessSolverPool | None = None,
                 pool_start: str | None = None,
                 tenant_weights: Mapping[str, int] | None = None,
                 admission: AdmissionController | Mapping | None = None,
                 cache_shards: int = 1,
                 default_damping: float | None = 0.9):
        if timeout_s is not None and timeout_s <= 0:
            raise ValidationError("timeout_s must be positive")
        self.network = network
        if cache_shards < 1:
            raise ValidationError(
                f"cache_shards must be >= 1, got {cache_shards}")
        self.cache_shards = int(cache_shards)
        if cache is None or cache is False:
            self.cache = None
        elif cache is True:
            self.cache = (ShardedSolutionCache(self.cache_shards)
                          if self.cache_shards > 1 else SolutionCache())
        else:
            # Any cache-shaped object (SolutionCache,
            # ShardedSolutionCache, or a compatible wrapper) is used
            # as-is — sharding a caller-provided cache is the caller's
            # decision.  Identity checks, not truthiness: an *empty*
            # cache instance is len()==0 and must still count.
            self.cache = cache
        self.warm_start = bool(warm_start)
        if self.warm_start and self.cache is None:
            raise ValidationError(
                "warm_start needs the solution cache for donor vectors")
        if warm_neighbors <= 0:
            raise ValidationError("warm_neighbors must be positive")
        self.warm_neighbors = int(warm_neighbors)
        if warm_audit_interval < 0:
            raise ValidationError("warm_audit_interval must be >= 0")
        self.warm_audit_interval = int(warm_audit_interval)
        if batch_max < 1:
            raise ValidationError(
                f"batch_max must be >= 1, got {batch_max}")
        self.batch_max = int(batch_max)
        self._warm_count = itertools.count()
        self.timeout_s = timeout_s
        self.method = str(method).lower().replace("_", "-")
        if self.method == "fsp":
            # Adaptive FSP is a *projection loop*, not a registry
            # solver: its answers live on per-job projections, so the
            # full-space machinery (cache lines keyed to the enumerated
            # layout, warm-start donors, batching) cannot apply.
            self._solver_cls = None
            if self.warm_start:
                raise ValidationError(
                    "warm_start does not combine with method='fsp': warm "
                    "starting is internal to the projection loop")
            if batch_max > 1:
                raise ValidationError(
                    "batch_max does not combine with method='fsp'")
            bad = set(fsp_options or {}) - FSP_OPTION_KEYS
            if bad:
                raise ValidationError(
                    f"unknown fsp options {sorted(bad)}; expected a "
                    f"subset of {sorted(FSP_OPTION_KEYS)}")
        elif self.method in SOLVER_REGISTRY:
            self._solver_cls = SOLVER_REGISTRY[self.method]
            if fsp_options:
                raise ValidationError(
                    "fsp_options only apply to method='fsp'")
        else:
            raise ValidationError(
                f"unknown solver method {method!r}; expected 'fsp' or "
                f"one of {sorted(SOLVER_REGISTRY)}")
        self.fsp_options = dict(fsp_options or {})
        executor = str(executor).lower()
        if executor not in ("thread", "process"):
            raise ValidationError(
                f"executor must be 'thread' or 'process', got {executor!r}")
        if pool is not None:
            executor = "process"
        if executor == "process" and self.method in ("fsp", "sharded"):
            raise ValidationError(
                f"executor='process' does not combine with "
                f"method={self.method!r}: FSP's projection loop is not "
                f"pool-shippable and the sharded solver is itself a "
                f"process pool")
        self.executor = executor
        if default_damping is not None:
            default_damping = float(default_damping)
            if not 0.0 < default_damping <= 1.0:
                raise ValidationError(
                    f"default_damping must be in (0, 1], "
                    f"got {default_damping}")
        self.default_damping = default_damping
        if breaker_threshold < 0:
            raise ValidationError("breaker_threshold must be >= 0")
        self._breaker = None if breaker_threshold == 0 else CircuitBreaker(
            failure_threshold=breaker_threshold,
            reset_timeout_s=breaker_reset_s,
            name=f"solve.{self.method}")
        self.degraded_mode = bool(degraded_mode)
        if self.degraded_mode and not warm_start:
            raise ValidationError(
                "degraded_mode needs warm_start for nearest-neighbor "
                "donor answers")
        if retry_policy is None:
            retry_policy = RetryPolicy()
        elif retry_policy is False:
            retry_policy = None
        self.tol = float(tol)
        self.max_iterations = int(max_iterations)
        self.solver_options = dict(solver_options or {})
        if backend is not None:
            # Convenience spelling: fold the kernel-backend selection
            # into the default solver options every request inherits.
            self.solver_options.setdefault("backend", backend)
        self.metrics = ServiceMetrics(metrics_registry)
        self._workspace = _Workspace(network,
                                     reuse_state_space=reuse_state_space,
                                     max_states=max_states)
        if not self.warm_start:
            self._warm_index = None
        elif self.cache_shards > 1:
            self._warm_index = ShardedWarmStartIndex(self.cache_shards)
        else:
            self._warm_index = WarmStartIndex()
        if admission is None or isinstance(admission, AdmissionController):
            self._admission = admission
        else:
            self._admission = AdmissionController(admission)
        self._own_pool = False
        self._pool = pool
        if self.executor == "process" and self._pool is None:
            self._pool = ProcessSolverPool(
                workers=workers,
                backend=self.solver_options.get("backend"),
                start_method=pool_start,
                name=f"serve-{network.name}",
                on_respawn=lambda: self.metrics.incr("pool_respawns"))
            self._own_pool = True
        self.tenant_weights = dict(tenant_weights or {})
        self._inflight: dict[str, SolveJob] = {}
        self._lock = threading.Lock()
        self._job_seq = itertools.count(1)
        self._closed = False
        if isinstance(journal, (str, Path)):
            journal = JobJournal(journal)
        self.journal = journal
        if self.tenant_weights:
            queue = FairPriorityQueue(queue_capacity, queue_policy,
                                      put_timeout=put_timeout,
                                      weights=self.tenant_weights)
        else:
            queue = BoundedPriorityQueue(queue_capacity, queue_policy,
                                         put_timeout=put_timeout)
        self._scheduler = SolveScheduler(
            self._execute, workers=workers, queue=queue, retries=retries,
            retry_policy=retry_policy,
            on_retry=lambda job, exc: self.metrics.incr("retried"),
            on_done=self._on_done)
        self.metrics.bind_queue_depth(lambda: self._scheduler.queue_depth)
        if self.journal is not None:
            self._replay_journal()

    # -- lifecycle ----------------------------------------------------------

    def __enter__(self) -> "SolveService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def close(self, *, wait: bool = True) -> None:
        """Stop workers; pending jobs are cancelled.

        Cancelled-but-accepted jobs keep their journal entries open,
        so a journal-backed service replays them on the next start —
        use :meth:`drain` for a clean shutdown that finishes them.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
        self._scheduler.close(wait=wait)
        if self._own_pool and self._pool is not None:
            self._pool.close()
        if self.journal is not None:
            self.journal.close()

    def drain(self, *, timeout_s: float | None = None) -> bool:
        """Stop accepting work and wait for in-flight jobs to finish.

        Returns ``True`` when every in-flight job reached a terminal
        state inside the budget (a *clean* drain — the journal
        compacts to empty), ``False`` when ``timeout_s`` expired
        first; whatever did not finish stays open in the journal and
        is replayed by the next process.
        """
        with self._lock:
            if self._closed:
                return True
            self._closed = True
            pending = list(self._inflight.values())
        deadline = (None if timeout_s is None
                    else time.perf_counter() + timeout_s)
        clean = True
        for job in pending:
            remaining = None
            if deadline is not None:
                remaining = max(0.0, deadline - time.perf_counter())
            with contextlib.suppress(SolveJobError):
                job.result(timeout=remaining)
            if not job.done():
                clean = False
        self._scheduler.close(wait=True)
        if self._own_pool and self._pool is not None:
            self._pool.close()
        if self.journal is not None:
            self.journal.compact()
            self.journal.close()
        return clean

    def install_sigterm_handler(self, *,
                                timeout_s: float | None = None):
        """Drain gracefully when the process receives ``SIGTERM``.

        Main-thread only (the interpreter's signal rule).  The
        previously-installed handler is chained after the drain and
        also returned, so callers can restore it.
        """
        if threading.current_thread() is not threading.main_thread():
            raise ValidationError(
                "install_sigterm_handler must run on the main thread")
        previous = signal.getsignal(signal.SIGTERM)

        def _handler(signum, frame):
            log.info("SIGTERM received: draining solve service")
            self.drain(timeout_s=timeout_s)
            if callable(previous):
                previous(signum, frame)

        signal.signal(signal.SIGTERM, _handler)
        return previous

    # -- submission ---------------------------------------------------------

    def request(self, overrides: Mapping[str, float] | None = None, *,
                tol: float | None = None, max_iterations: int | None = None,
                solver_options: Mapping | None = None) -> SolveRequest:
        """Build a request with this service's defaults filled in.

        ``default_damping`` is folded in here — *only* when the
        effective solver options do not carry a ``damping`` of their
        own — so it participates in the cache key like any other
        option and identical requests keep colliding onto one line.
        """
        options = dict(self.solver_options if solver_options is None
                       else solver_options)
        if (self.default_damping is not None
                and self.method in ("jacobi", "sharded")
                and "damping" not in options):
            options["damping"] = self.default_damping
        return SolveRequest(
            self.network, overrides,
            tol=self.tol if tol is None else tol,
            max_iterations=(self.max_iterations if max_iterations is None
                            else max_iterations),
            solver_options=options)

    def submit(self, overrides: Mapping[str, float] | None = None, *,
               priority: int = 0, tol: float | None = None,
               max_iterations: int | None = None,
               solver_options: Mapping | None = None,
               deadline_s: float | None = None,
               tenant: str = "default") -> SolveJob:
        """Admit one solve; returns a job to block on.

        Cache hits complete the returned job synchronously; a submit
        whose key matches an in-flight job returns *that* job
        (single-flight).  A full queue raises
        :class:`~repro.errors.JobRejectedError` (or blocks, per
        policy) — unless ``degraded_mode`` can serve a nearby
        approximate answer instead.  ``deadline_s`` propagates an
        end-to-end deadline into the worker: whatever remains of it
        when an attempt starts caps the solver's ``time_budget_s``.

        ``tenant`` identifies the submitter for admission control and
        fair queuing; an over-rate tenant is refused at the front door
        (before the cache and the journal) with
        :class:`~repro.errors.JobRejectedError`, never served a
        degraded answer.  The tenant does not participate in the cache
        key, so tenants asking the same question share one answer.
        """
        if self._closed:
            raise SolveJobError("service is closed")
        if deadline_s is not None and deadline_s <= 0:
            raise ValidationError(
                f"deadline_s must be positive, got {deadline_s}")
        tenant = str(tenant) or "default"
        injector = active_injector()
        forced = (injector is not None
                  and injector.active_for("serve.admission")
                  and injector.maybe_fail(
                      "serve.admission", detail=tenant) is not None)
        if forced or (self._admission is not None
                      and not self._admission.admit(tenant)):
            self.metrics.incr("admission_rejected")
            self.metrics.incr("rejected")
            self.metrics.incr_tenant(tenant, "admission_rejected")
            raise JobRejectedError(
                f"tenant {tenant!r} refused admission"
                + (" (injected fault)" if forced
                   else ": token bucket empty"),
                failure={"tenant": tenant, "reason": "admission"})
        req = self.request(overrides, tol=tol, max_iterations=max_iterations,
                           solver_options=solver_options)
        key = req.cache_key()
        self.metrics.incr("submitted")

        # FSP answers are projection-shaped; the cache is keyed to the
        # full enumerated layout (and the lookup would *trigger* that
        # enumeration), so FSP submissions go straight to single-flight.
        if self.cache is not None and self.method != "fsp":
            injector = active_injector()
            if injector is not None \
                    and injector.active_for("serve.cache") \
                    and injector.maybe_fail(
                        "serve.cache", detail=key[:12]) is not None:
                # An injected cache fault: skip the lookup, forcing the
                # cold path this submission.
                self.metrics.incr("cache_faults")
            else:
                entry = self.cache.get(key, layout=self._workspace.layout())
                if entry is not None:
                    job = self._new_job(req, priority, tenant)
                    job.finish(self._outcome_from_entry(req, entry))
                    self.metrics.incr("cache_hits")
                    self.metrics.observe_latency(0.0)
                    self.metrics.observe_solve_latency(0.0)
                    self.metrics.incr_tenant(tenant, "completed")
                    return job

        with self._lock:
            inflight = self._inflight.get(key)
            if inflight is not None and not inflight.done():
                self.metrics.incr("coalesced")
                return inflight
            job = self._new_job(req, priority, tenant)
            if deadline_s is not None:
                job.deadline_at = time.perf_counter() + deadline_s
            self._inflight[key] = job
        if self.journal is not None:
            # Write-ahead: the accept record is durable *before* the
            # job can enter the scheduler, so a crash at any later
            # point leaves an open entry the next process replays.
            self.journal.accepted(
                key, self._journal_payload(req, priority, tenant))
        try:
            self._scheduler.submit(job)
        except SolveJobError:
            with self._lock:
                if self._inflight.get(key) is job:
                    del self._inflight[key]
            self.metrics.incr("rejected")
            if self.degraded_mode:
                outcome = self._degraded_outcome(job)
                if outcome is not None:
                    self.metrics.incr("degraded")
                    job.finish(outcome)
                    self.metrics.observe_solve_latency(0.0)
                    self.metrics.incr_tenant(tenant, "completed")
                    if self.journal is not None:
                        self.journal.completed(key)
                    return job
            if self.journal is not None:
                self.journal.cancelled(key)
            job.cancel()
            raise
        self.metrics.incr("scheduled")
        return job

    def solve(self, overrides: Mapping[str, float] | None = None,
              **kwargs) -> SolveOutcome:
        """Submit and block for the outcome (convenience wrapper)."""
        return self.submit(overrides, **kwargs).result()

    def map(self, conditions: Iterable[Mapping[str, float]],
            *, progress=None) -> list[SolveOutcome]:
        """Solve many conditions; outcomes come back in input order.

        Jobs are all admitted up front (subject to backpressure) and
        gathered in order, so workers overlap while callers still see
        deterministic, input-ordered results.  ``progress(outcome)``
        fires per condition in input order.
        """
        jobs = [self.submit(cond) for cond in conditions]
        outcomes = []
        for job in jobs:
            outcome = job.result()
            outcomes.append(outcome)
            if progress is not None:
                progress(outcome)
        return outcomes

    # -- execution (worker threads) ------------------------------------------

    def _execute(self, job: SolveJob) -> SolveOutcome:
        """One attempt: fault sites and the breaker around the solve."""
        injector = active_injector()
        if injector is not None and injector.active_for("serve.worker"):
            try:
                # kind "kill" raises WorkerCrashError (retryable);
                # kind "stall" sleeps for the spec's delay.
                injector.maybe_fail("serve.worker", detail=f"job {job.id}")
            except WorkerCrashError:
                self.metrics.incr("worker_faults")
                raise
        if self._breaker is not None and not self._breaker.allow():
            self.metrics.incr("breaker_open")
            if self.degraded_mode:
                outcome = self._degraded_outcome(job)
                if outcome is not None:
                    self.metrics.incr("degraded")
                    return outcome
            raise CircuitOpenError(
                f"job {job.id} shed: {self._breaker.name} breaker open "
                f"after repeated failures", key=job.key,
                failure={"breaker": self._breaker.snapshot()})
        try:
            outcome = self._execute_solve(job)
        except Exception:
            if self._breaker is not None:
                self._breaker.record_failure()
            raise
        if self._breaker is not None:
            self._breaker.record_success()
        return outcome

    def _attempt_budget(self, job: SolveJob) -> float | None:
        """The per-attempt time budget: timeout clamped to the deadline."""
        budget = self.timeout_s
        if job.deadline_at is not None:
            remaining = job.deadline_at - time.perf_counter()
            if remaining <= 0:
                self.metrics.incr("deadline_expired")
                raise JobTimeoutError(
                    f"job {job.id} deadline expired before attempt "
                    f"{job.attempts}", key=job.key,
                    failure={"reason": "deadline-expired"})
            budget = remaining if budget is None else min(budget, remaining)
        return budget

    def _execute_solve(self, job: SolveJob) -> SolveOutcome:
        if self.method == "fsp":
            return self._execute_fsp(job)
        req = job.request
        t0 = time.perf_counter()
        time_budget_s = self._attempt_budget(job)
        with tracing.span("serve.execute", job=job.id,
                          key=job.key[:12]) as ex_span:
            with tracing.span("serve.assemble"):
                A = self._workspace.matrix(req)
                space = self._workspace.space_for(req)

            x0 = None
            warm = False
            if self._warm_index is not None and self.cache is not None:
                hints = self._warm_index.select_donors(
                    req.log_rate_vector(), k=self.warm_neighbors,
                    exclude_key=job.key)
                donors, distances = [], []
                for hint in hints:
                    entry = self.cache.peek(hint.key,
                                            layout=self._workspace.layout())
                    if entry is not None:
                        donors.append(entry.p)
                        distances.append(hint.distance)
                if donors:
                    x0 = blend_donors(donors, distances)
                    warm = True

            if (self.batch_max > 1 and self.method == "jacobi"
                    and req.solver_options.get("step", "fast") == "fast"):
                companions = self._drain_companions(job)
                if companions:
                    return self._execute_batched(
                        job, companions, A, space, x0, warm,
                        time_budget_s, t0, ex_span)

            # A zero diagonal or all-zero row is a property of the
            # system, not of this attempt — surface it as a terminal
            # SolveJobError (with the offending matrix's signature in
            # the failure payload) so the scheduler never burns retries
            # on it.  The pool raises the same SingularSystemError from
            # the worker-side solver construction.
            try:
                if self._pool is not None:
                    solve_t0 = time.perf_counter()
                    with tracing.span("serve.solve", warm=warm,
                                      executor="process"):
                        result = self._pool.solve(
                            system_key=req.matrix_key(), matrix=A,
                            method=self.method, tol=req.tol,
                            max_iterations=req.max_iterations,
                            options=req.solver_options, x0=x0,
                            time_budget_s=time_budget_s)
                    cold_solve = functools.partial(
                        self._pool.solve, system_key=req.matrix_key(),
                        matrix=A, method=self.method, tol=req.tol,
                        max_iterations=req.max_iterations,
                        options=req.solver_options,
                        time_budget_s=self.timeout_s)
                else:
                    solver = self._solver_cls(
                        A, tol=req.tol,
                        max_iterations=req.max_iterations,
                        **req.solver_options)
                    solve_t0 = time.perf_counter()
                    with tracing.span("serve.solve", warm=warm):
                        result = solver.solve(x0=x0,
                                              time_budget_s=time_budget_s)
                    cold_solve = functools.partial(
                        solver.solve, time_budget_s=self.timeout_s)
            except SingularSystemError as exc:
                raise SolveJobError(
                    f"job {job.id} is unsolvable: {exc}",
                    key=job.key,
                    failure={"error": "singular-system",
                             "rows": list(exc.rows),
                             "matrix_signature": matrix_signature(A)},
                ) from exc
            self.metrics.observe_stage(
                "solve", time.perf_counter() - solve_t0)
            ex_span.set_attribute("iterations", result.iterations)
            ex_span.set_attribute("stop_reason", result.stop_reason.value)
            if result.stop_reason is StopReason.TIMED_OUT:
                raise JobTimeoutError(
                    f"job {job.id} exceeded its {time_budget_s:.3g}s budget "
                    f"after {result.iterations} iterations", key=job.key,
                    iterations=result.iterations, residual=result.residual)

            if warm:
                self.metrics.incr("warm_started")
                self._maybe_audit(cold_solve, result)
            else:
                self.metrics.incr("cold_started")

            layout = self._workspace.layout()
            cache_t0 = time.perf_counter()
            with tracing.span("serve.cache_put"):
                if self.cache is not None:
                    self.cache.put(CacheEntry(
                        key=job.key, p=result.x,
                        iterations=result.iterations,
                        residual=result.residual,
                        stop_reason=result.stop_reason.value,
                        runtime_s=result.runtime_s, layout=layout))
            self.metrics.observe_stage(
                "cache", time.perf_counter() - cache_t0)
            if self._warm_index is not None:
                self._warm_index.add(job.key, req.log_rate_vector(),
                                     result.iterations)

            return SolveOutcome(
                result=result,
                landscape=ProbabilityLandscape(space, result.x),
                key=job.key, cached=False, warm_started=warm,
                solve_seconds=time.perf_counter() - t0)

    # -- adaptive FSP execution ----------------------------------------------

    def _execute_fsp(self, job: SolveJob) -> SolveOutcome:
        """One adaptive-FSP attempt: the projection loop as a job.

        The answer's landscape lives on the loop's final projection
        (typically a strict subset of the buffered space) and the
        outcome carries the certified ``truncation_mass`` plus the
        round trajectory.  An expired budget surfaces as the same
        :class:`~repro.errors.JobTimeoutError` the fixed-capacity path
        raises, so retry and breaker handling are identical.
        """
        from repro.fsp import AdaptiveFspController

        req = job.request
        t0 = time.perf_counter()
        time_budget_s = self._attempt_budget(job)
        with tracing.span("serve.execute_fsp", job=job.id,
                          key=job.key[:12]) as ex_span:
            opts = dict(self.fsp_options)
            inner_method = opts.pop("method", "jacobi")
            controller = AdaptiveFspController(
                req.varied_network(), tol=req.tol,
                max_iterations=req.max_iterations,
                method=inner_method,
                solver_options=req.solver_options, **opts)
            solve_t0 = time.perf_counter()
            fsp = controller.solve(time_budget_s=time_budget_s)
            self.metrics.observe_stage(
                "solve", time.perf_counter() - solve_t0)
            result = fsp.to_solver_result()
            ex_span.set_attribute("rounds", len(fsp.rounds))
            ex_span.set_attribute("final_states", fsp.space.size)
            ex_span.set_attribute("truncation_mass", fsp.truncation_mass)
            if fsp.reason == "timed_out":
                raise JobTimeoutError(
                    f"job {job.id} exceeded its {time_budget_s:.3g}s budget "
                    f"after {len(fsp.rounds)} FSP rounds", key=job.key,
                    iterations=result.iterations, residual=result.residual)
            self.metrics.incr("fsp_solved")
            self.metrics.incr("cold_started")
            return SolveOutcome(
                result=result,
                landscape=ProbabilityLandscape(fsp.space, fsp.x),
                key=job.key, cached=False, warm_started=False,
                solve_seconds=time.perf_counter() - t0,
                truncation_mass=fsp.truncation_mass,
                fsp=fsp.payload())

    # -- batched execution ---------------------------------------------------

    def _drain_companions(self, primary: SolveJob) -> list[SolveJob]:
        """Pull queued jobs that can share *primary*'s batched solve.

        Compatible means: the identical linear system (matrix key) with
        identical loop parameters — only the tolerance may differ per
        column.  Jobs carrying a deadline stay solo so their budget
        arithmetic is never entangled with a batch.
        """
        req = primary.request

        def compatible(other: SolveJob) -> bool:
            r = other.request
            return (other.deadline_at is None
                    and r.matrix_key() == req.matrix_key()
                    and r.solver_options == req.solver_options
                    and r.max_iterations == req.max_iterations)

        drained = self._scheduler.queue.drain_matching(
            compatible, self.batch_max - 1)
        companions = []
        for j in drained:
            if j.mark_running():
                j.started_at = time.perf_counter()
                companions.append(j)
        return companions

    def _execute_batched(self, job: SolveJob, companions: list[SolveJob],
                         A, space, x0, warm: bool,
                         time_budget_s: float | None, t0: float,
                         ex_span) -> SolveOutcome:
        """Answer the primary and its companions in one multi-RHS solve.

        Companions are finished (or re-queued) here directly — the
        scheduler only knows about the primary.  The primary's outcome
        (or timeout) is returned/raised exactly as in the solo path, so
        its retry/breaker handling is unchanged.
        """
        req = job.request
        jobs = [job] + companions
        self.metrics.incr("batched", len(companions))
        try:
            tols = [j.request.tol for j in jobs]
            if self._pool is not None:
                solve_t0 = time.perf_counter()
                with tracing.span("serve.solve_batched", k=len(jobs),
                                  warm=warm, executor="process"):
                    results = self._pool.solve_batched(
                        system_key=req.matrix_key(), matrix=A,
                        tol=req.tol, max_iterations=req.max_iterations,
                        options=req.solver_options, tols=tols,
                        x0=x0, k=len(jobs),
                        time_budget_s=time_budget_s)
            else:
                solver = BatchedJacobiSolver(
                    A, tol=req.tol, max_iterations=req.max_iterations,
                    **{k: v for k, v in req.solver_options.items()
                       if k != "step"})
                x0s = None if x0 is None else [x0] * len(jobs)
                solve_t0 = time.perf_counter()
                with tracing.span("serve.solve_batched", k=len(jobs),
                                  warm=warm):
                    results = solver.solve_many(x0s, k=len(jobs), tols=tols,
                                                time_budget_s=time_budget_s)
        except Exception:
            # The batch never produced answers: release the companions
            # back to the queue for individual attempts, then let the
            # primary's error flow through the normal retry path.
            self._requeue_solo(companions)
            raise
        self.metrics.observe_stage("solve",
                                   time.perf_counter() - solve_t0)
        ex_span.set_attribute("batched", len(jobs))
        primary_outcome: SolveOutcome | None = None
        primary_timeout: JobTimeoutError | None = None
        for j, result in zip(jobs, results):
            if result.stop_reason is StopReason.TIMED_OUT:
                if j is job:
                    primary_timeout = JobTimeoutError(
                        f"job {j.id} exceeded its {time_budget_s:.3g}s "
                        f"budget after {result.iterations} iterations",
                        key=j.key, iterations=result.iterations,
                        residual=result.residual)
                else:
                    self._requeue_solo([j])
                continue
            self.metrics.incr("warm_started" if warm else "cold_started")
            if self.cache is not None:
                self.cache.put(CacheEntry(
                    key=j.key, p=result.x, iterations=result.iterations,
                    residual=result.residual,
                    stop_reason=result.stop_reason.value,
                    runtime_s=result.runtime_s,
                    layout=self._workspace.layout()))
            if self._warm_index is not None:
                self._warm_index.add(j.key, j.request.log_rate_vector(),
                                     result.iterations)
            outcome = SolveOutcome(
                result=result,
                landscape=ProbabilityLandscape(space, result.x),
                key=j.key, cached=False, warm_started=warm,
                solve_seconds=time.perf_counter() - t0)
            if j is job:
                primary_outcome = outcome
            else:
                j.finished_at = time.perf_counter()
                j.finish(outcome)
                self._on_done(j, None)
        if primary_timeout is not None:
            raise primary_timeout
        assert primary_outcome is not None
        return primary_outcome

    def _requeue_solo(self, companions: list[SolveJob]) -> None:
        """Send batch companions back through the queue, one by one."""
        for j in companions:
            if not j.requeue():
                continue  # already terminal (e.g. cancelled meanwhile)
            try:
                self._scheduler.queue.put(j)
            except SolveJobError as exc:
                error = SolveJobError(
                    f"job {j.id} could not return to the queue after its "
                    f"batch: {exc}", key=j.key, attempts=j.attempts)
                error.__cause__ = exc
                j.finished_at = time.perf_counter()
                j.fail(error)
                self._on_done(j, error)

    def _maybe_audit(self, cold_solve, warm_result) -> None:
        """Measure one warm start against the uniform start, sampled.

        ``cold_solve()`` runs the uniform-start solve on the *same*
        system (locally, or on the process pool when one is attached)
        and the observed iteration difference is recorded — a
        measurement, not a model, so the savings metric stays honest
        even though cold cost varies across the grid.  The audit
        result is discarded and an audit failure swallowed; neither
        can affect the job's answer.
        """
        if self.warm_audit_interval == 0:
            return
        if next(self._warm_count) % self.warm_audit_interval != 0:
            return
        try:
            cold = cold_solve()
        except SolveJobError:
            return
        if cold.stop_reason is StopReason.TIMED_OUT:
            return
        self.metrics.record_warm_audit(
            cold_iterations=cold.iterations,
            warm_iterations=warm_result.iterations)

    def _on_done(self, job: SolveJob, error: SolveJobError | None) -> None:
        with self._lock:
            if self._inflight.get(job.key) is job:
                del self._inflight[job.key]
        if self.journal is not None:
            # Terminal record: pairs with the job's (possibly
            # previous-process) accept, closing the journal entry.
            (self.journal.failed if error is not None
             else self.journal.completed)(job.key)
        self.metrics.incr("failed" if error is not None else "completed")
        self.metrics.incr_tenant(
            job.tenant, "failed" if error is not None else "completed")
        if job.started_at is not None and job.submitted_at is not None:
            self.metrics.observe_stage(
                "queue", job.started_at - job.submitted_at)
        if job.started_at is not None and job.finished_at is not None:
            self.metrics.observe_latency(job.finished_at - job.started_at)
        if job.submitted_at is not None and job.finished_at is not None:
            # End-to-end: queue wait + every attempt, the latency a
            # caller actually experiences (solve_latency_seconds).
            self.metrics.observe_solve_latency(
                job.finished_at - job.submitted_at)

    # -- journal replay ------------------------------------------------------

    def _journal_payload(self, req: SolveRequest, priority: int,
                         tenant: str = "default") -> dict:
        """Everything needed to rebuild *req* in a fresh process."""
        return {
            "network": self.network.canonical_signature(),
            "overrides": dict(req.overrides),
            "tol": req.tol,
            "max_iterations": req.max_iterations,
            "solver_options": dict(req.solver_options),
            "priority": int(priority),
            "tenant": str(tenant),
        }

    def _replay_journal(self) -> None:
        """Re-admit accepted-but-unfinished jobs from a prior process.

        Replayed jobs are scheduled **without** a new accept record:
        the original durable accept pairs with the job's eventual
        terminal record, keeping the open/closed bookkeeping exact.
        Entries answered by the (disk-backed) cache are closed as
        ``completed`` without a solve; entries that no longer make
        sense — a different network, an unparseable payload, a key the
        rebuilt request no longer reproduces — are closed as
        ``cancelled`` with a logged warning.
        """
        assert self.journal is not None
        entries = self.journal.open_entries()
        if not entries:
            return
        net_sig = self.network.canonical_signature()
        replayed = 0
        for record in entries:
            key = record.get("key", "")
            payload = record.get("payload") or {}
            if payload.get("network") != net_sig:
                log.warning(
                    "journal entry %s was accepted for a different "
                    "network; cancelling instead of replaying", key[:12])
                self.journal.cancelled(key)
                continue
            try:
                req = self.request(
                    payload.get("overrides") or None,
                    tol=payload.get("tol"),
                    max_iterations=payload.get("max_iterations"),
                    solver_options=payload.get("solver_options"))
            except ValidationError as exc:
                log.warning("journal entry %s is not replayable (%s); "
                            "cancelling", key[:12], exc)
                self.journal.cancelled(key)
                continue
            priority = int(payload.get("priority", 0))
            tenant = str(payload.get("tenant", "default"))
            if req.cache_key() != key:
                # The payload no longer reproduces the accepted key
                # (request hashing changed between versions): close
                # the stale entry and re-admit under the new key.
                log.warning("journal entry %s rebuilds under a "
                            "different key; re-admitting as a fresh "
                            "submission", key[:12])
                self.journal.cancelled(key)
                with contextlib.suppress(SolveJobError):
                    self.submit(payload.get("overrides") or None,
                                priority=priority,
                                tol=payload.get("tol"),
                                max_iterations=payload.get(
                                    "max_iterations"),
                                solver_options=payload.get(
                                    "solver_options"),
                                tenant=tenant)
                continue
            if self.cache is not None and self.method != "fsp":
                entry = self.cache.get(key,
                                       layout=self._workspace.layout())
                if entry is not None:
                    # The previous process (or its disk cache) already
                    # holds the answer: the promise is kept without a
                    # new solve.
                    self.journal.completed(key)
                    replayed += 1
                    continue
            with self._lock:
                if key in self._inflight:
                    continue
                job = self._new_job(req, priority, tenant)
                self._inflight[key] = job
            try:
                self._scheduler.submit(job)
            except SolveJobError as exc:
                with self._lock:
                    if self._inflight.get(key) is job:
                        del self._inflight[key]
                log.warning("journal entry %s could not be re-admitted "
                            "(%s); cancelling", key[:12], exc)
                self.journal.cancelled(key)
                job.cancel()
                continue
            replayed += 1
        if replayed:
            self.metrics.incr("journal_replayed", replayed)
            log.info("replayed %d accepted-but-unfinished journal "
                     "entries", replayed)
        self.journal.compact()

    # -- helpers -------------------------------------------------------------

    def _new_job(self, req: SolveRequest, priority: int,
                 tenant: str = "default") -> SolveJob:
        # next() on itertools.count is atomic in CPython, so this is
        # safe to call both with and without the service lock held.
        return SolveJob(req, job_id=next(self._job_seq), priority=priority,
                        tenant=tenant)

    def _outcome_from_entry(self, req: SolveRequest,
                            entry: CacheEntry) -> SolveOutcome:
        result = entry.to_result()
        space = self._workspace.space_for(req)
        return SolveOutcome(
            result=result,
            landscape=ProbabilityLandscape(space, result.x),
            key=entry.key, cached=True, warm_started=False,
            solve_seconds=0.0)

    def _degraded_outcome(self, job: SolveJob) -> SolveOutcome | None:
        """The nearest solved neighbor's landscape as an approximate
        answer (``degraded=True``), or ``None`` when no donor exists.

        The outcome keeps the *donor's* key so callers can tell which
        cached solution actually answered, while the job retains the
        requested key.
        """
        if self._warm_index is None or self.cache is None:
            return None
        hints = self._warm_index.select_donors(
            job.request.log_rate_vector(), k=1, exclude_key=job.key)
        for hint in hints:
            entry = self.cache.peek(hint.key,
                                    layout=self._workspace.layout())
            if entry is None:
                continue
            result = entry.to_result()
            space = self._workspace.space_for(job.request)
            return SolveOutcome(
                result=result,
                landscape=ProbabilityLandscape(space, result.x),
                key=entry.key, cached=True, warm_started=False,
                solve_seconds=0.0, degraded=True)
        return None

    def snapshot(self) -> dict:
        """Metrics snapshot with cache, breaker and journal merged in.

        Services running concurrency machinery get extra sections:
        ``pool`` (dispatch/respawn accounting), ``admission``
        (per-tenant token-bucket levels) and ``tenants`` (per-tenant
        completion counters) appear when configured.
        """
        out = self.metrics.snapshot(
            cache_stats=self.cache.stats if self.cache is not None else None,
            breaker=(self._breaker.snapshot()
                     if self._breaker is not None else None),
            journal=self.journal)
        if self._pool is not None:
            out["pool"] = self._pool.stats
        if self._admission is not None:
            out["admission"] = self._admission.snapshot()
        tenants = self.metrics.tenant_snapshot()
        if tenants:
            out["tenants"] = tenants
        return out

    def render_metrics(self) -> str:
        """Printable metrics table (the CLI's ``serve`` output)."""
        return self.metrics.render(
            cache_stats=self.cache.stats if self.cache is not None else None,
            breaker=(self._breaker.snapshot()
                     if self._breaker is not None else None),
            journal=self.journal,
            title=f"serve metrics · {self.network.name}")
