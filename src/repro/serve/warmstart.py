"""Nearest-neighbor warm starting in rate-parameter space.

Steady-state landscapes vary smoothly with the reaction rates on the
dense grids bioscientists sweep (Section I of the paper), so converged
distributions at *nearby* rate points are a far better Jacobi seed
than the uniform vector.  The index records, per completed solve, the
point's log-rate coordinates (fold changes, not absolute rates); a new
request asks for its ``k`` nearest recorded points and seeds
``JacobiSolver.solve`` with their inverse-distance-weighted average.

Blending more than one donor is not a luxury: for bistable networks
like the toggle switch, a *single* asymmetric donor injects error
along the slow antisymmetric switching mode — the one eigendirection
the symmetric uniform start never excites — and can make the warm
start *slower* than cold at symmetric grid points.  Averaging donors
on both sides cancels that component (measured on the 13²-state
toggle: cold 560 iterations, 1-NN 700, 2-NN average 480).

Because cold-solve cost varies strongly across a grid, iteration
savings are *measured*, not inferred: the service periodically audits a
warm-started job by also running the uniform-start solve on the same
system and recording the observed difference (see
``SolveService(warm_audit_interval=...)``).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

import numpy as np

from repro.errors import ValidationError


@dataclass
class WarmStartHint:
    """A donor suggestion: which cached solution to seed from."""

    key: str
    distance: float
    donor_iterations: int


@dataclass
class _IndexEntry:
    key: str
    log_rates: np.ndarray
    iterations: int


class WarmStartIndex:
    """Brute-force nearest-neighbor index over solved rate points.

    Grid sweeps are small (tens to thousands of points) and each query
    is a vectorized distance computation over one matrix, so a k-d tree
    would be overkill; the index is O(points) per query with a
    ``max_points`` FIFO bound as a safety valve.
    """

    def __init__(self, *, max_points: int = 10_000):
        if max_points <= 0:
            raise ValidationError("max_points must be positive")
        self.max_points = int(max_points)
        self._lock = threading.Lock()
        self._entries: list[_IndexEntry] = []
        self._keys: set[str] = set()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def add(self, key: str, log_rates: np.ndarray,
            iterations: int) -> None:
        """Record a completed solve at the given log-rate coordinates."""
        log_rates = np.asarray(log_rates, dtype=np.float64).ravel()
        with self._lock:
            if key in self._keys:
                return
            self._entries.append(_IndexEntry(
                key=key, log_rates=log_rates,
                iterations=int(iterations)))
            self._keys.add(key)
            if len(self._entries) > self.max_points:
                dropped = self._entries.pop(0)
                self._keys.discard(dropped.key)

    def coords_for(self, keys) -> dict[str, np.ndarray]:
        """Recorded log-rate coordinates for *keys* (absent keys skipped).

        Used by the sharded wrapper to run the centered-stencil
        selection over candidates merged from several shards.
        """
        wanted = set(keys)
        with self._lock:
            return {e.key: e.log_rates for e in self._entries
                    if e.key in wanted}

    def suggest(self, log_rates: np.ndarray, *, k: int = 1,
                exclude_key: str | None = None) -> list[WarmStartHint]:
        """Up to *k* nearest recorded points, closest first."""
        if k <= 0:
            raise ValidationError(f"k must be positive, got {k}")
        query = np.asarray(log_rates, dtype=np.float64).ravel()
        with self._lock:
            candidates = [e for e in self._entries
                          if e.key != exclude_key
                          and e.log_rates.shape == query.shape]
            if not candidates:
                return []
            coords = np.stack([e.log_rates for e in candidates])
            distances = np.linalg.norm(coords - query[None, :], axis=1)
            order = np.argsort(distances, kind="stable")[:k]
            return [WarmStartHint(
                        key=candidates[i].key,
                        distance=float(distances[i]),
                        donor_iterations=candidates[i].iterations)
                    for i in map(int, order)]

    def select_donors(self, log_rates: np.ndarray, *, k: int = 2,
                      exclude_key: str | None = None,
                      pool: int | None = None) -> list[WarmStartHint]:
        """Choose *k* donors forming a *centered* stencil around the query.

        Plain k-nearest selection fails when all completed neighbors
        lie on one side of the query in rate space (routine under
        concurrency): the one-sided blend is a biased interpolant and,
        near a model's symmetry manifold, excites slow modes the cold
        start avoids.  This picks the nearest donor, then greedily adds
        candidates (from a pool of the ``pool`` nearest, default
        ``4 k``) minimizing the inverse-distance-weighted centroid's
        offset from the query — the same weights the blend uses — with
        distance as the tie-breaker.
        """
        if k <= 0:
            raise ValidationError(f"k must be positive, got {k}")
        pool = 4 * k if pool is None else pool
        hints = self.suggest(log_rates, k=max(pool, k),
                             exclude_key=exclude_key)
        if len(hints) <= 1 or k == 1:
            return hints[:k]
        query = np.asarray(log_rates, dtype=np.float64).ravel()
        coords = self.coords_for([h.key for h in hints])
        offsets = {h.key: coords[h.key] - query for h in hints
                   if h.key in coords}
        return centered_selection(hints, offsets, k)


def centered_selection(hints: list[WarmStartHint],
                       offsets: dict[str, np.ndarray],
                       k: int) -> list[WarmStartHint]:
    """Greedy centered-stencil donor choice over candidate *hints*.

    The selection step of :meth:`WarmStartIndex.select_donors`, shared
    with the sharded index (which merges candidate pools across
    shards): pick the nearest donor, then add candidates minimizing
    the inverse-distance-weighted centroid's offset from the query
    (``offsets`` maps a hint key to ``coords - query``), distance as
    the tie-breaker.  Hints without an offset entry are dropped.
    """
    hints = [h for h in hints if h.key in offsets]
    if len(hints) <= 1 or k == 1:
        return hints[:k]

    def centroid_offset(selection: list[WarmStartHint]) -> float:
        weights = 1.0 / (np.array([h.distance for h in selection])
                         + 1e-12)
        weights /= weights.sum()
        centroid = sum(w * offsets[h.key]
                       for w, h in zip(weights, selection))
        return float(np.linalg.norm(centroid))

    chosen = [hints[0]]
    remaining = hints[1:]
    while len(chosen) < k and remaining:
        scored = [(centroid_offset(chosen + [h]), h.distance, i)
                  for i, h in enumerate(remaining)]
        _, _, best = min(scored)
        chosen.append(remaining.pop(best))
    return chosen


def blend_donors(donors: list[np.ndarray], distances: list[float]) -> np.ndarray:
    """Inverse-distance-weighted average of donor distributions.

    A zero-distance donor (identical rate point under different solver
    options, say) dominates via the regularization floor; exact ties
    share weight equally.  The result is a convex combination of
    probability vectors, so it is itself a valid (unnormalized-by-eps)
    initial guess.
    """
    if not donors:
        raise ValidationError("blend_donors needs at least one donor")
    if len(donors) != len(distances):
        raise ValidationError("donors and distances must pair up")
    weights = 1.0 / (np.asarray(distances, dtype=np.float64) + 1e-12)
    weights /= weights.sum()
    out = np.zeros_like(np.asarray(donors[0], dtype=np.float64))
    for w, p in zip(weights, donors):
        out += w * np.asarray(p, dtype=np.float64)
    return out
