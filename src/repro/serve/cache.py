"""Content-addressed steady-state solution cache.

Entries are keyed by :meth:`repro.serve.jobs.SolveRequest.cache_key`
and hold the converged probability vector plus the solver diagnostics
needed to reconstruct a :class:`~repro.solvers.result.SolverResult`.

Two safety properties matter more than raw hit rate:

*   **Byte-budgeted LRU.**  Probability vectors over CME state spaces
    are large (``8 * |X|`` bytes each); the cache accounts actual array
    sizes and evicts least-recently-used entries to stay under
    ``max_bytes``, so a long sweep cannot grow memory without bound.

*   **Layout guarding.**  A cached vector is only meaningful in the DFS
    state ordering it was solved in.  Every entry records a ``layout``
    tag (a hash of the enumerated state array); readers pass their own
    layout and mismatching entries are treated as misses.  This is what
    makes *disk* persistence safe across processes that may enumerate
    in a different reaction order.
"""

from __future__ import annotations

import json
import logging
import threading
import zipfile
import zlib
from collections import OrderedDict
from contextlib import suppress
from dataclasses import dataclass
from pathlib import Path

import numpy as np

log = logging.getLogger("repro.serve")

from repro.errors import ValidationError
from repro.solvers.result import SolverResult, StopReason

#: Fixed per-entry overhead charged on top of the vector bytes.
ENTRY_OVERHEAD_BYTES = 512


@dataclass
class CacheEntry:
    """One cached steady-state solution."""

    key: str
    p: np.ndarray
    iterations: int
    residual: float
    stop_reason: str
    runtime_s: float
    layout: str

    def __post_init__(self) -> None:
        self.p = np.asarray(self.p, dtype=np.float64)
        self.p.setflags(write=False)

    @property
    def nbytes(self) -> int:
        return int(self.p.nbytes) + ENTRY_OVERHEAD_BYTES

    def to_result(self) -> SolverResult:
        """Reconstruct solver diagnostics for a cache hit."""
        return SolverResult(
            x=self.p.copy(), iterations=self.iterations,
            residual=self.residual,
            stop_reason=StopReason(self.stop_reason),
            residual_history=[], runtime_s=self.runtime_s)


@dataclass
class CacheStats:
    """Hit/miss/eviction accounting (monotonic counters)."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    disk_hits: int = 0
    stores: int = 0
    disk_corrupt: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class SolutionCache:
    """In-memory LRU of solutions with optional on-disk persistence.

    Parameters
    ----------
    max_bytes:
        Byte budget for the in-memory tier (vectors + fixed overhead).
    disk_dir:
        Optional directory for write-through persistence.  Entries are
        stored one ``.npz`` per key and consulted on memory misses, so
        a repeated sweep survives process restarts.
    """

    def __init__(self, max_bytes: int = 256 * 1024 * 1024,
                 disk_dir: str | Path | None = None):
        if max_bytes <= 0:
            raise ValidationError("max_bytes must be positive")
        self.max_bytes = int(max_bytes)
        self.disk_dir = Path(disk_dir) if disk_dir is not None else None
        if self.disk_dir is not None:
            self.disk_dir.mkdir(parents=True, exist_ok=True)
        self._lock = threading.RLock()
        self._entries: OrderedDict[str, CacheEntry] = OrderedDict()
        self._bytes = 0
        self.stats = CacheStats()

    # -- queries ------------------------------------------------------------

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    @property
    def current_bytes(self) -> int:
        with self._lock:
            return self._bytes

    def get(self, key: str, *, layout: str | None = None) -> CacheEntry | None:
        """Look up *key*, falling back to disk; counts a hit or miss.

        A ``layout`` mismatch is a miss: the stored vector indexes a
        different DFS ordering and must not be served.
        """
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None and (layout is None
                                      or entry.layout == layout):
                self._entries.move_to_end(key)
                self.stats.hits += 1
                return entry
            entry = self._load_disk(key)
            if entry is not None and (layout is None
                                      or entry.layout == layout):
                self.stats.hits += 1
                self.stats.disk_hits += 1
                self._insert(entry)
                return entry
            self.stats.misses += 1
            return None

    def peek(self, key: str, *, layout: str | None = None) -> CacheEntry | None:
        """Like :meth:`get` but without touching hit/miss accounting.

        Used by the warm-start index, whose donor lookups should not
        masquerade as request traffic.
        """
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None and (layout is None
                                      or entry.layout == layout):
                return entry
            return None

    # -- updates ------------------------------------------------------------

    def put(self, entry: CacheEntry) -> None:
        """Insert (or refresh) an entry; evicts LRU items over budget."""
        with self._lock:
            self.stats.stores += 1
            self._insert(entry)
            if self.disk_dir is not None:
                self._store_disk(entry)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self._bytes = 0

    # -- internals ----------------------------------------------------------

    def _insert(self, entry: CacheEntry) -> None:
        old = self._entries.pop(entry.key, None)
        if old is not None:
            self._bytes -= old.nbytes
        self._entries[entry.key] = entry
        self._bytes += entry.nbytes
        while self._bytes > self.max_bytes and len(self._entries) > 1:
            _, evicted = self._entries.popitem(last=False)
            self._bytes -= evicted.nbytes
            self.stats.evictions += 1

    def _path(self, key: str) -> Path:
        assert self.disk_dir is not None
        return self.disk_dir / f"{key}.npz"

    @staticmethod
    def _checksum(p: np.ndarray) -> int:
        return zlib.crc32(np.ascontiguousarray(p).tobytes()) & 0xFFFFFFFF

    def _store_disk(self, entry: CacheEntry) -> None:
        meta = json.dumps({
            "key": entry.key,
            "iterations": entry.iterations,
            "residual": entry.residual,
            "stop_reason": entry.stop_reason,
            "runtime_s": entry.runtime_s,
            "layout": entry.layout,
            "crc32": self._checksum(entry.p),
        })
        path = self._path(entry.key)
        tmp = path.with_suffix(".tmp.npz")
        with open(tmp, "wb") as fh:
            np.savez(fh, p=entry.p, meta=np.array(meta))
        tmp.replace(path)

    def _load_disk(self, key: str) -> CacheEntry | None:
        """Read a persisted entry, validating its content checksum.

        A vector whose bytes no longer match the stored CRC32 (torn
        write, disk corruption, manual truncation) is *evicted* — the
        file is deleted so the damage cannot be re-read — and the
        lookup falls through to a miss.
        """
        if self.disk_dir is None:
            return None
        path = self._path(key)
        if not path.exists():
            return None
        try:
            with np.load(path, allow_pickle=False) as data:
                meta = json.loads(str(data["meta"]))
                p = np.asarray(data["p"], dtype=np.float64)
            stored = meta.get("crc32")
            if stored is not None and int(stored) != self._checksum(p):
                raise ValueError("checksum mismatch")
        except (OSError, EOFError, KeyError, ValueError,
                json.JSONDecodeError, zipfile.BadZipFile) as exc:
            log.warning("evicting corrupt cache file %s (%s)",
                        path.name, exc)
            self.stats.disk_corrupt += 1
            with suppress(OSError):
                path.unlink()
            return None
        return CacheEntry(
            key=key, p=p, iterations=int(meta["iterations"]),
            residual=float(meta["residual"]),
            stop_reason=str(meta["stop_reason"]),
            runtime_s=float(meta["runtime_s"]),
            layout=str(meta["layout"]))


def state_space_layout(states: np.ndarray) -> str:
    """Layout tag of an enumerated state array (see module docstring)."""
    import hashlib
    states = np.ascontiguousarray(states, dtype=np.int64)
    digest = hashlib.sha256()
    digest.update(str(states.shape).encode())
    digest.update(states.tobytes())
    return digest.hexdigest()
