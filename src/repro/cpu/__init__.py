"""The multicore CPU baseline (Section VII-D).

The paper's Jacobi baseline is an Intel-MKL-derived CSR+DIA
implementation on a quad-socket 64-core AMD Opteron 6274.  This
subpackage reproduces it as :class:`CSRDIABaseline` — a functional
NumPy executor over the CSR remainder + DIA band split — paired with an
LLC-aware roofline model (:class:`CPUSpec`) calibrated to the paper's
measured 0.646-1.399 GFLOPS range (DESIGN.md §2).
"""

from repro.cpu.machine import OPTERON_6274_QUAD, CPUSpec
from repro.cpu.baseline import CPUPerfEstimate, CSRDIABaseline

__all__ = [
    "CPUSpec",
    "OPTERON_6274_QUAD",
    "CSRDIABaseline",
    "CPUPerfEstimate",
]
