"""CPU specifications for the baseline performance model.

:data:`OPTERON_6274_QUAD` is the paper's host platform (Section VII-A):
four 16-core AMD Opteron 6274 sockets with 128 GB of DDR3.

Sparse Jacobi iteration on such a machine is memory-bound and — as the
paper's own Table IV shows (0.65-1.4 GFLOPS out of a >200 GFLOPS
nominal-flop machine) — far below the aggregate DRAM bandwidth too:
NUMA-unaware MKL allocation, TLB pressure and per-core request
concurrency cap the *useful* bandwidth at a level that improves when the
working set starts fitting the combined last-level caches (hence small
matrices like toggle-switch-1 run about twice as fast as the
multi-gigabyte phage-lambda-3).

The model is a two-parameter bandwidth curve::

    fit = llc / (llc + working_set)
    effective_bw = base_bandwidth * (1 + cache_boost * fit)

with ``base_bandwidth`` the sustained NUMA-limited DRAM rate and
``cache_boost`` the gain when everything is LLC-resident; both are
calibration constants fitted to Table IV's CPU column (DESIGN.md §7).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import DeviceModelError


@dataclass(frozen=True)
class CPUSpec:
    """A multicore host for the baseline model."""

    name: str
    sockets: int
    cores_per_socket: int
    llc_mb_per_socket: float
    #: Sustained NUMA-limited useful DRAM bandwidth of the sparse solver.
    base_bandwidth_gbs: float
    #: Relative bandwidth gain when the working set is LLC-resident.
    cache_boost: float
    #: Aggregate double-precision peak (never binding for SpMV, kept for
    #: roofline completeness).
    dp_peak_gflops: float

    def __post_init__(self) -> None:
        if self.sockets <= 0 or self.cores_per_socket <= 0:
            raise DeviceModelError("core counts must be positive")
        if self.base_bandwidth_gbs <= 0 or self.cache_boost < 0:
            raise DeviceModelError("bandwidth parameters must be positive")

    @property
    def total_cores(self) -> int:
        return self.sockets * self.cores_per_socket

    @property
    def llc_bytes(self) -> float:
        """Combined last-level cache of all sockets."""
        return self.sockets * self.llc_mb_per_socket * 1024.0 * 1024.0

    def effective_bandwidth_gbs(self, working_set_bytes: float) -> float:
        """LLC-aware useful bandwidth for a given working-set size."""
        if working_set_bytes < 0:
            raise DeviceModelError("working set must be non-negative")
        fit = self.llc_bytes / (self.llc_bytes + working_set_bytes)
        return self.base_bandwidth_gbs * (1.0 + self.cache_boost * fit)


#: The paper's quad-socket Opteron host (Section VII-A), calibrated to
#: Table IV's CSR+DIA column.
OPTERON_6274_QUAD = CPUSpec(
    name="4x AMD Opteron 6274",
    sockets=4,
    cores_per_socket=16,
    llc_mb_per_socket=16.0,
    base_bandwidth_gbs=6.3,
    cache_boost=1.6,
    dp_peak_gflops=282.0,
)
