"""The MKL-like CSR+DIA Jacobi baseline (Table IV's CPU column).

The paper's baseline stores the dense ``{-1, 0, +1}`` band in DIA and
the remainder in CSR ("in practice CSR+DIA"), then runs the same Jacobi
iteration as the GPU.  :class:`CSRDIABaseline` is a faithful functional
implementation plus the per-iteration traffic/roofline estimate against
a :class:`~repro.cpu.machine.CPUSpec`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cpu.machine import OPTERON_6274_QUAD, CPUSpec
from repro.errors import FormatError, SingularMatrixError
from repro.sparse.base import VALUE_BYTES, as_csr
from repro.sparse.csr import CSRMatrix
from repro.sparse.dia import DIAMatrix
from repro.sparse.ell_dia import select_band_offsets


@dataclass(frozen=True)
class CPUPerfEstimate:
    """Modeled CPU performance of one Jacobi iteration."""

    bytes_per_iteration: float
    flops_per_iteration: float
    effective_bandwidth_gbs: float
    time_s: float

    @property
    def gflops(self) -> float:
        return (self.flops_per_iteration / self.time_s / 1e9
                if self.time_s > 0 else 0.0)


class CSRDIABaseline:
    """CSR+DIA split of a rate matrix with a Jacobi step, CPU-style.

    Parameters
    ----------
    matrix:
        Anything convertible to canonical CSR (square).
    offsets:
        Band diagonals to peel into DIA; auto-selected from
        ``{-1, 0, +1}`` by the 8/12 density rule when omitted (the main
        diagonal is always peeled — the Jacobi divisor).
    """

    def __init__(self, matrix, *, offsets=None):
        csr = as_csr(matrix)
        if csr.shape[0] != csr.shape[1]:
            raise FormatError("the Jacobi baseline needs a square matrix")
        self.shape = csr.shape
        if offsets is None:
            offsets = select_band_offsets(csr)
        self.dia = DIAMatrix.from_scipy(csr, offsets=offsets)
        self.csr = CSRMatrix(as_csr((csr - self.dia.to_scipy()).tocsr()))
        self.diagonal = self.dia.main_diagonal()
        if np.any(self.diagonal == 0.0):
            raise SingularMatrixError(
                "Jacobi baseline requires a nonzero diagonal")

    # -- functional execution -----------------------------------------------

    @property
    def nnz(self) -> int:
        return self.dia.nnz + self.csr.nnz

    def spmv(self, x: np.ndarray) -> np.ndarray:
        """Full product ``A @ x`` (band + remainder)."""
        return self.dia.spmv(x) + self.csr.spmv(x)

    def matvec(self, x: np.ndarray) -> np.ndarray:
        """Fast product path used by solver inner loops.

        Routes the CSR remainder through the ``matvec`` alias (cached
        SciPy product under the reference backend, the dispatched
        ``spmv`` kernel otherwise — see ``repro.sparse.base``).
        """
        return self.dia.spmv(x) + self.csr.matvec(x)

    def jacobi_step(self, x: np.ndarray) -> np.ndarray:
        """One Jacobi iteration ``x' = -D^{-1}(A - D) x`` for ``A x = 0``."""
        off_band = self.dia.spmv(x) - self.diagonal * x
        return -(off_band + self.csr.matvec(x)) / self.diagonal

    def footprint(self) -> int:
        """Host memory of the data structures, in bytes."""
        return self.dia.footprint() + self.csr.footprint()

    # -- performance model ----------------------------------------------------

    def traffic_per_iteration(self) -> tuple[float, float]:
        """(bytes, flops) of one Jacobi iteration.

        One full sweep of the matrix structures plus three vector
        streams (read ``x``, write ``x'``, and the gathered ``x``
        accesses of the CSR part folded into the structure sweep by the
        LLC model).
        """
        n = self.shape[0]
        matrix_bytes = float(self.footprint())
        vector_bytes = float(3 * n * VALUE_BYTES)
        flops = 2.0 * self.nnz + float(n)   # FMAs plus the division
        return matrix_bytes + vector_bytes, flops

    def performance(self, machine: CPUSpec = OPTERON_6274_QUAD, *,
                    working_set_scale: float = 1.0) -> CPUPerfEstimate:
        """Roofline estimate of one Jacobi iteration on *machine*.

        ``working_set_scale`` plays the role of the GPU model's
        ``x_scale``: pass ``paper_n / n`` so a scaled-down matrix is
        judged against the LLC as its full-size original would be.
        """
        if working_set_scale < 1.0:
            raise FormatError("working_set_scale must be >= 1")
        bytes_iter, flops = self.traffic_per_iteration()
        bw = machine.effective_bandwidth_gbs(bytes_iter * working_set_scale)
        t_mem = bytes_iter / (bw * 1e9)
        t_cpu = flops / (machine.dp_peak_gflops * 1e9)
        return CPUPerfEstimate(
            bytes_per_iteration=bytes_iter,
            flops_per_iteration=flops,
            effective_bandwidth_gbs=bw,
            time_s=max(t_mem, t_cpu),
        )
