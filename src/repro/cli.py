"""Command-line interface: ``python -m repro.cli <command>``.

Commands
--------
``solve``
    Enumerate a model and compute its steady-state landscape.
``fsp``
    Solve a model by adaptive Finite State Projection: grow a small
    projection until the certified truncation bound meets ``--fsp-tol``
    (no full enumeration), reporting the per-round trajectory.
``stats``
    Table I-style structure statistics of a benchmark or ``.mtx`` file.
``spmv``
    Modeled GTX580 SpMV performance of a matrix in a chosen format.
``export``
    Write a benchmark rate matrix to a Matrix Market file.
``sweep``
    Grid-sweep reaction rates and solve each condition (the paper's
    motivating exploratory workload); ``--workers`` routes it through
    the solve service with caching and warm starting.
``serve``
    Exercise :mod:`repro.serve` directly: run a rate grid through the
    concurrent solve service and report cache hit rates, warm-start
    iteration savings, and latency percentiles.
``profile``
    Trace one full solve pipeline (enumeration, assembly, format
    conversion, modeled GPU kernels, solver iterations) to
    Chrome-trace JSON plus a Prometheus-style metrics report.
``experiments``
    Run the full table/figure harness (see
    :mod:`repro.experiments.runner`).
"""

from __future__ import annotations

import argparse
import sys

MODELS = ("toggle-switch", "brusselator", "schnakenberg", "phage-lambda")
FORMATS = ("csr", "ell", "ellr", "ell+dia", "sell", "warped-ell")


def build_model(args):
    from repro.cme.models import (
        brusselator,
        phage_lambda,
        schnakenberg,
        toggle_switch,
    )
    if args.model == "toggle-switch":
        return toggle_switch(max_protein=args.max_protein)
    if args.model == "brusselator":
        return brusselator(max_x=args.max_x, max_y=args.max_y)
    if args.model == "schnakenberg":
        return schnakenberg(max_x=args.max_x, max_y=args.max_y)
    return phage_lambda(max_monomer=args.max_monomer,
                        max_dimer=args.max_dimer)


def load_matrix(args):
    """Resolve --benchmark/--mtx arguments to a CSR matrix."""
    if getattr(args, "mtx", None):
        from repro.sparse.mmio import read_matrix_market
        return read_matrix_market(args.mtx)
    from repro.cme.models import load_benchmark_matrix
    return load_benchmark_matrix(args.benchmark, args.scale)


def cmd_solve(args) -> int:
    import contextlib

    from repro import solve_steady_state
    network = build_model(args)
    print(network.describe())
    kwargs = {}
    if args.damping is not None:
        kwargs["damping"] = args.damping
    if args.method == "sharded":
        kwargs["shards"] = args.shards if args.shards is not None else 2
        kwargs["sync"] = args.sync if args.sync is not None else "barrier"
    elif args.shards is not None or args.sync is not None:
        print("note: --shards/--sync only apply to --method sharded")

    chaos = contextlib.nullcontext()
    if args.inject_faults:
        from repro.resilience import FaultPlan, injecting
        plan = FaultPlan.load(args.inject_faults)
        if args.fault_seed is not None:
            plan = FaultPlan(plan.specs, seed=args.fault_seed,
                             name=plan.name)
        print(f"injecting faults: plan {plan.name!r} "
              f"({len(plan.specs)} spec(s), seed {plan.seed})")
        chaos = injecting(plan)

    if args.checkpoint:
        kwargs["checkpoint"] = args.checkpoint
        kwargs["resume"] = args.resume
        kwargs["checkpoint_every"] = args.checkpoint_every
    elif args.resume:
        print("--resume needs --checkpoint DIR", file=sys.stderr)
        return 2

    with chaos:
        result = solve_steady_state(
            network, args.method, tol=args.tol,
            max_iterations=args.max_iterations, **kwargs)
    landscape = result.landscape
    print(f"\n{result.stop_reason.value} after {result.iterations} "
          f"iterations (residual {result.residual:.3e}, "
          f"{result.runtime_s:.2f}s)")
    if result.recovery is not None:
        rep = result.recovery
        print(f"recovery: {rep.faults_seen} fault(s) seen, "
              f"{rep.rollbacks} rollback(s), "
              f"fallbacks {rep.fallback_chain or ['none']}")
    if args.recovery_report:
        import json
        payload = (result.recovery.to_dict() if result.recovery is not None
                   else {"events": [], "checkpoints": 0, "rollbacks": 0,
                         "faults_seen": 0, "fallback_chain": [],
                         "degraded": False, "recovered": False})
        payload["stop_reason"] = result.stop_reason.value
        payload["iterations"] = result.iterations
        payload["residual"] = result.residual
        with open(args.recovery_report, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=2)
        print(f"recovery report written to {args.recovery_report}")
    means = {k: round(v, 2) for k, v in landscape.mean_counts().items()}
    print(f"mean copy numbers: {means}")
    if network.n_species == 2:
        a, b = (s.name for s in network.species)
        print(f"modes: {landscape.grid_modes(a, b)}")
        if not args.no_heatmap:
            print(landscape.ascii_heatmap(a, b))
    return 0 if result.residual < 1e-3 else 1


def cmd_fsp(args) -> int:
    import json

    from repro.fsp import AdaptiveFspController
    from repro.utils.tables import Table

    network = build_model(args)
    print(network.describe())
    print(f"buffered state-space bound: {network.state_space_bound()}")
    solver_options = ({"damping": args.damping}
                      if args.damping is not None else {})
    checkpointer = None
    if args.checkpoint:
        from repro.durability import (
            Checkpointer,
            CheckpointPolicy,
            network_signature,
        )
        checkpointer = Checkpointer(
            args.checkpoint,
            signature=network_signature(
                network, extra=f"fsp|{args.fsp_tol}|{args.tol}"),
            policy=CheckpointPolicy(keep_last=3),
            resume=args.resume)
    elif args.resume:
        print("--resume needs --checkpoint DIR", file=sys.stderr)
        return 2
    controller = AdaptiveFspController(
        network, fsp_tol=args.fsp_tol, tol=args.tol,
        max_iterations=args.max_iterations, method=args.method,
        solver_options=solver_options, initial_size=args.initial_size,
        max_rounds=args.max_rounds, prune_mass=args.prune_mass,
        safety=args.safety, expand_depth=args.expand_depth,
        max_new_states=args.max_new_states)
    result = controller.solve(time_budget_s=args.timeout,
                              checkpointer=checkpointer)

    table = Table(["round", "states", "added", "pruned", "iters",
                   "residual", "outflux", "bound"],
                  title=f"adaptive FSP · {network.name}")
    for r in result.rounds:
        table.add_row([r.round, r.states, r.added, r.pruned, r.iterations,
                       f"{r.residual:.2e}", f"{r.outflow_flux:.2e}",
                       f"{r.bound:.2e}"])
    print(table.render())
    status = "certified" if result.converged else "NOT certified"
    print(f"\n{status} ({result.reason}): truncation_mass "
          f"{result.truncation_mass:.3e} (target {args.fsp_tol:.1e}) on "
          f"{result.space.size} states after {len(result.rounds)} rounds, "
          f"{result.iterations} solver iterations, {result.runtime_s:.2f}s")
    if args.compare_full:
        from repro.cme import enumerate_state_space
        full = enumerate_state_space(network)
        pct = 100.0 * result.space.size / full.size
        print(f"full enumeration: {full.size} states "
              f"(projection is {pct:.1f}%)")
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            json.dump(result.payload(), fh, indent=2)
        print(f"wrote {args.out}")
    return 0 if result.converged else 1


def cmd_stats(args) -> int:
    from repro.sparse.stats import matrix_stats
    from repro.utils.tables import Table
    A = load_matrix(args)
    st = matrix_stats(A)
    table = Table(["metric", "value"], title="Matrix structure (Table I)")
    table.add_row(["n", st.n])
    table.add_row(["nnz", st.nnz])
    table.add_row(["Matrix Market size (MB)", round(st.disk_megabytes, 2)])
    table.add_row(["nnz/row min / mean / max",
                   f"{st.min_nnz_row} / {st.mean_nnz_row:.2f} / "
                   f"{st.max_nnz_row}"])
    table.add_row(["variability sigma/mu", round(st.variability, 3)])
    table.add_row(["skew (max-mu)/mu", round(st.skew, 3)])
    table.add_row(["d{0}", round(st.diag_density, 3)])
    table.add_row(["d{-1,0,+1}", round(st.band_density, 3)])
    table.add_row(["ELL efficiency", round(st.ell_efficiency, 3)])
    print(table.render())
    return 0


def cmd_spmv(args) -> int:
    from repro.gpusim import GTX580, spmv_performance
    from repro.sparse.conversion import from_scipy
    from repro.utils.tables import Table
    A = load_matrix(args)
    table = Table(["format", "GFLOPS", "limiting", "footprint MB"],
                  title=f"Modeled {GTX580.name} SpMV")
    formats = FORMATS if args.format == "all" else (args.format,)
    for name in formats:
        fmt = from_scipy(A, name)
        perf = spmv_performance(fmt, GTX580, x_scale=args.x_scale)
        table.add_row([name, round(perf.gflops, 3),
                       perf.limiting_resource,
                       round(fmt.footprint() / 1e6, 2)])
    print(table.render())
    return 0


def cmd_export(args) -> int:
    from repro.sparse.mmio import write_matrix_market
    A = load_matrix(args)
    n_bytes = write_matrix_market(A, args.out)
    print(f"wrote {args.out}: {A.shape[0]}x{A.shape[1]}, "
          f"{A.nnz} nonzeros, {n_bytes / 1e6:.2f} MB")
    return 0


def parse_grid(specs) -> dict | None:
    """``name=v1,v2,...`` specs to a sweep grid (None on a bad spec)."""
    grid = {}
    for spec in specs:
        name, _, values = spec.partition("=")
        if not values:
            print(f"bad --vary spec {spec!r}; expected name=v1,v2,...",
                  file=sys.stderr)
            return None
        grid[name] = [float(v) for v in values.split(",")]
    return grid


def cmd_sweep(args) -> int:
    from repro.sweep import ParameterSweep
    network = build_model(args)
    grid = parse_grid(args.vary)
    if grid is None:
        return 2
    sweep = ParameterSweep(network, grid)
    kwargs = {"damping": args.damping} if args.damping is not None else {}
    sweep.run(tol=args.tol, max_iterations=args.max_iterations,
              solver_kwargs=kwargs, workers=args.workers,
              cache=not args.no_cache, warm_start=args.warm_start)
    print(sweep.table().render())
    print(f"{len(sweep.points)} conditions in "
          f"{sweep.total_solve_seconds():.2f}s")
    if sweep.service_report is not None:
        print()
        print(sweep.service_report)
    return 0


def cmd_serve(args) -> int:
    from repro.serve import SolutionCache, SolveService
    from repro.sweep import ParameterSweep
    network = build_model(args)
    grid = parse_grid(args.vary)
    if grid is None:
        return 2
    kwargs = {"damping": args.damping} if args.damping is not None else {}
    cache = (SolutionCache(disk_dir=args.cache_dir)
             if args.cache_dir else True)
    if args.processes:
        executor, workers = "process", args.processes
    else:
        executor, workers = "thread", args.workers
    service = SolveService(
        network, workers=workers, executor=executor, cache=cache,
        warm_start=not args.cold, warm_audit_interval=args.audit_interval,
        queue_capacity=args.queue_capacity, timeout_s=args.timeout,
        retries=args.retries, tol=args.tol,
        max_iterations=args.max_iterations, solver_options=kwargs,
        journal=args.journal)
    if args.journal:
        service.install_sigterm_handler(timeout_s=args.timeout)
        replayed = service.snapshot()["journal_replayed"]
        if replayed:
            print(f"replayed {replayed} accepted-but-unfinished "
                  f"journal entries")
    try:
        for pass_no in range(1, args.passes + 1):
            sweep = ParameterSweep(network, grid)
            sweep.run(tol=args.tol, max_iterations=args.max_iterations,
                      solver_kwargs=kwargs, service=service)
            print(f"pass {pass_no}: {len(sweep.points)} conditions in "
                  f"{sweep.total_solve_seconds():.2f}s solve time")
        print()
        print(service.render_metrics())
    finally:
        service.close()
    return 0


def cmd_profile(args) -> int:
    import os

    from repro import solve_steady_state
    from repro.cme.ratematrix import build_rate_matrix
    from repro.cme.statespace import enumerate_state_space
    from repro.errors import FormatError
    from repro.gpusim import GTX580, jacobi_performance, spmv_performance
    from repro.sparse.conversion import from_scipy
    from repro.telemetry import (
        MetricsRegistry,
        MultiHooks,
        RecordingHooks,
        TelemetryHooks,
        TraceRecorder,
        tracing,
    )

    network = build_model(args)
    recorder = TraceRecorder()
    registry = MetricsRegistry()
    recording = RecordingHooks()
    # Damping is a Jacobi-only knob (the default tames the toggle
    # switch's bipartite oscillation).
    kwargs = ({"damping": args.damping}
              if args.method == "jacobi" and args.damping is not None
              else {})

    with tracing.recording(recorder):
        with tracing.span("profile", model=args.model, method=args.method):
            with tracing.span("enumerate", network=network.name) as sp:
                space = enumerate_state_space(network)
                sp.set_attribute("states", len(space.states))
            with tracing.span("assemble") as sp:
                A = build_rate_matrix(space)
                sp.set_attribute("nnz", int(A.nnz))
            with tracing.span("convert", format=args.format):
                fmt = from_scipy(A, args.format)
            spmv_performance(fmt, GTX580)
            try:
                jacobi_performance(fmt, GTX580,
                                   check_interval=50, normalize_interval=10)
            except FormatError:
                # The fused Jacobi kernel only models ELL+DIA-style
                # layouts; profile it on that conversion instead.
                jacobi_performance(from_scipy(A, "ell+dia"), GTX580,
                                   check_interval=50, normalize_interval=10)
            hooks = MultiHooks(
                recording,
                TelemetryHooks(recorder, registry,
                               prefix=args.method.replace("-", "_"),
                               trace_every=args.trace_every))
            result = solve_steady_state(
                A, method=args.method, tol=args.tol,
                max_iterations=args.max_iterations, hooks=hooks, **kwargs)
            if args.serve_sample:
                # Route a few jobs through the serve layer on the same
                # registry so the exported metrics include the
                # end-to-end solve_latency_seconds histogram (and its
                # derivable p50/p99), not just solver-loop counters.
                from repro.serve import SolveService
                rxn = network.reactions[0]
                with tracing.span("serve-sample", jobs=args.serve_sample):
                    with SolveService(
                            network, workers=1, tol=args.tol,
                            max_iterations=args.max_iterations,
                            solver_options=kwargs,
                            metrics_registry=registry) as sample:
                        for i in range(args.serve_sample):
                            sample.submit(
                                {rxn.name: rxn.rate * (1.0 + 0.05 * i)}
                            ).result(timeout=600)

    os.makedirs(args.out, exist_ok=True)
    trace_path = os.path.join(args.out, "trace.json")
    metrics_path = os.path.join(args.out, "metrics.prom")
    recorder.write(trace_path)
    with open(metrics_path, "w", encoding="utf-8") as fh:
        fh.write(registry.render_prometheus())
        # The process-wide default registry carries the cross-cutting
        # counters (durability checkpoint/journal, shard respawns,
        # injected faults) that never see the profile's private
        # registry — append them so one .prom file tells the whole
        # story.
        from repro.telemetry.metrics import get_registry
        default = get_registry().render_prometheus()
        if default.strip():
            fh.write("\n")
            fh.write(default)

    print(f"{network.name}: {len(space.states)} states, {A.nnz} nonzeros")
    print(f"{result.stop_reason.value} after {result.iterations} "
          f"iterations (residual {result.residual:.3e}, "
          f"{result.runtime_s:.2f}s)")
    if recording.iterations:
        per_it = recording.total_seconds() / recording.iterations
        print(f"measured {per_it * 1e6:.1f} us/iteration over "
              f"{recording.iterations} hooked iterations")
    print(f"wrote {trace_path} ({len(recorder)} spans; open in "
          f"chrome://tracing or ui.perfetto.dev)")
    print(f"wrote {metrics_path}")
    return 0


def cmd_experiments(args) -> int:
    from repro.experiments.runner import run_all, write_markdown
    results = run_all(args.scale)
    if args.out:
        write_markdown(results, args.out)
        print(f"wrote {args.out}")
    return 0


def _add_matrix_source(parser, benchmarks) -> None:
    parser.add_argument("--benchmark", choices=benchmarks,
                        default="toggle-switch-1")
    parser.add_argument("--scale", choices=("tiny", "small", "bench"),
                        default="small")
    parser.add_argument("--mtx", help="read a Matrix Market file instead")


def make_parser() -> argparse.ArgumentParser:
    from repro.cme.models import benchmark_names
    parser = argparse.ArgumentParser(
        prog="repro", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument(
        "--backend", default=None, metavar="NAME",
        help="kernel backend for sparse/solver hot paths (e.g. numpy, "
             "native, numba); becomes the process default, overriding "
             "REPRO_BACKEND.  Must precede the subcommand.")
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("solve", help="solve a model's steady state")
    p.add_argument("--model", choices=MODELS, default="toggle-switch")
    p.add_argument("--max-protein", type=int, default=40)
    p.add_argument("--max-x", type=int, default=60)
    p.add_argument("--max-y", type=int, default=30)
    p.add_argument("--max-monomer", type=int, default=8)
    p.add_argument("--max-dimer", type=int, default=4)
    p.add_argument("--tol", type=float, default=1e-8)
    p.add_argument("--max-iterations", type=int, default=200_000)
    p.add_argument("--damping", type=float, default=None)
    p.add_argument("--method", default="jacobi",
                   choices=["jacobi", "gauss-seidel", "power", "resilient",
                            "sharded"],
                   help="solver method (resilient = jacobi -> gauss-seidel "
                        "-> gmres fallback chain; sharded = "
                        "domain-decomposed Jacobi across a process pool)")
    p.add_argument("--shards", type=int, default=None,
                   help="worker count for --method sharded (default 2)")
    p.add_argument("--sync", choices=["barrier", "chaotic"], default=None,
                   help="sharded sync mode: barrier is bitwise-equal to "
                        "serial jacobi, chaotic relaxes asynchronously "
                        "(default barrier)")
    p.add_argument("--inject-faults", metavar="PLAN.json", default=None,
                   help="run the solve under a seeded fault-injection plan")
    p.add_argument("--fault-seed", type=int, default=None,
                   help="override the fault plan's seed")
    p.add_argument("--checkpoint", metavar="DIR", default=None,
                   help="write durable checkpoints to DIR during the "
                        "solve (see DESIGN.md §15)")
    p.add_argument("--resume", action="store_true",
                   help="resume from the newest intact checkpoint in "
                        "--checkpoint DIR")
    p.add_argument("--checkpoint-every", type=int, default=1000,
                   help="checkpoint cadence in iterations")
    p.add_argument("--recovery-report", metavar="PATH", default=None,
                   help="write the solve's RecoveryReport JSON here")
    p.add_argument("--no-heatmap", action="store_true")
    p.set_defaults(func=cmd_solve)

    p = sub.add_parser("fsp",
                       help="adaptive FSP solve with a certified "
                            "truncation bound")
    p.add_argument("--model", choices=MODELS, default="phage-lambda")
    p.add_argument("--max-protein", type=int, default=40)
    p.add_argument("--max-x", type=int, default=60)
    p.add_argument("--max-y", type=int, default=30)
    p.add_argument("--max-monomer", type=int, default=8)
    p.add_argument("--max-dimer", type=int, default=4)
    p.add_argument("--fsp-tol", type=float, default=1e-6,
                   help="target certified truncation mass")
    p.add_argument("--tol", type=float, default=1e-8,
                   help="inner solver residual tolerance")
    p.add_argument("--max-iterations", type=int, default=1_000_000,
                   help="inner solver iteration cap per round")
    p.add_argument("--method", default="jacobi",
                   choices=["jacobi", "gauss-seidel", "power", "resilient"],
                   help="inner steady-state solver")
    p.add_argument("--damping", type=float, default=None)
    p.add_argument("--initial-size", type=int, default=64,
                   help="seed projection size (BFS ball)")
    p.add_argument("--max-rounds", type=int, default=40)
    p.add_argument("--prune-mass", type=float, default=None,
                   help="stationary mass the per-round prune may drop "
                        "(default fsp_tol/100; 0 disables)")
    p.add_argument("--safety", type=float, default=4.0,
                   help="certificate cushion multiplier")
    p.add_argument("--expand-depth", type=int, default=2,
                   help="frontier layers grown per round")
    p.add_argument("--checkpoint", metavar="DIR", default=None,
                   help="durable per-round checkpoints to DIR")
    p.add_argument("--resume", action="store_true",
                   help="resume the projection loop from the newest "
                        "intact round checkpoint in --checkpoint DIR")
    p.add_argument("--max-new-states", type=int, default=None,
                   help="cap on flux-ranked growth per round")
    p.add_argument("--timeout", type=float, default=None,
                   help="wall-clock budget in seconds")
    p.add_argument("--compare-full", action="store_true",
                   help="also enumerate the full space and report the "
                        "projection's size advantage")
    p.add_argument("--out", default=None,
                   help="write the FSP payload JSON here")
    p.set_defaults(func=cmd_fsp)

    p = sub.add_parser("sweep", help="grid-sweep reaction rates")
    p.add_argument("--model", choices=MODELS, default="toggle-switch")
    p.add_argument("--max-protein", type=int, default=20)
    p.add_argument("--max-x", type=int, default=40)
    p.add_argument("--max-y", type=int, default=20)
    p.add_argument("--max-monomer", type=int, default=6)
    p.add_argument("--max-dimer", type=int, default=3)
    p.add_argument("--vary", action="append", required=True,
                   metavar="REACTION=V1,V2,...",
                   help="rate grid, repeatable")
    p.add_argument("--tol", type=float, default=1e-8)
    p.add_argument("--max-iterations", type=int, default=200_000)
    p.add_argument("--damping", type=float, default=None)
    p.add_argument("--workers", type=int, default=None,
                   help="route through the solve service with N workers")
    p.add_argument("--no-cache", action="store_true",
                   help="disable the solution cache (served runs)")
    p.add_argument("--warm-start", action="store_true",
                   help="seed each solve from nearby conditions "
                        "(served runs)")
    p.set_defaults(func=cmd_sweep)

    p = sub.add_parser("serve", help="run a grid through the solve service")
    p.add_argument("--model", choices=MODELS, default="toggle-switch")
    p.add_argument("--max-protein", type=int, default=20)
    p.add_argument("--max-x", type=int, default=40)
    p.add_argument("--max-y", type=int, default=20)
    p.add_argument("--max-monomer", type=int, default=6)
    p.add_argument("--max-dimer", type=int, default=3)
    p.add_argument("--vary", action="append", required=True,
                   metavar="REACTION=V1,V2,...",
                   help="rate grid, repeatable")
    p.add_argument("--tol", type=float, default=1e-8)
    p.add_argument("--max-iterations", type=int, default=200_000)
    p.add_argument("--damping", type=float, default=None)
    p.add_argument("--workers", type=int, default=4)
    p.add_argument("--processes", type=int, default=None, metavar="N",
                   help="dispatch solves to a pool of N worker "
                        "processes instead of threads (true multi-core "
                        "parallelism for native solves)")
    p.add_argument("--cold", action="store_true",
                   help="disable warm starting")
    p.add_argument("--audit-interval", type=int, default=8,
                   help="audit every Nth warm start against a cold "
                        "solve (0 disables)")
    p.add_argument("--passes", type=int, default=2,
                   help="sweep the grid this many times (later passes "
                        "exercise the cache)")
    p.add_argument("--journal", metavar="PATH", default=None,
                   help="write-ahead job journal: accepted jobs are "
                        "durably recorded and replayed on restart")
    p.add_argument("--cache-dir", default=None,
                   help="persist solutions to this directory")
    p.add_argument("--queue-capacity", type=int, default=1024)
    p.add_argument("--timeout", type=float, default=None,
                   help="per-attempt solve budget in seconds")
    p.add_argument("--retries", type=int, default=0)
    p.set_defaults(func=cmd_serve)

    p = sub.add_parser("stats", help="matrix structure statistics")
    _add_matrix_source(p, benchmark_names())
    p.set_defaults(func=cmd_stats)

    p = sub.add_parser("spmv", help="modeled GTX580 SpMV performance")
    _add_matrix_source(p, benchmark_names())
    p.add_argument("--format", choices=FORMATS + ("all",), default="all")
    p.add_argument("--x-scale", type=float, default=1.0,
                   help="problem-size normalization (paper_n / n)")
    p.set_defaults(func=cmd_spmv)

    p = sub.add_parser("export", help="write a benchmark to .mtx")
    _add_matrix_source(p, benchmark_names())
    p.add_argument("--out", required=True)
    p.set_defaults(func=cmd_export)

    p = sub.add_parser("profile",
                       help="trace a full solve pipeline to Chrome-trace "
                            "JSON plus a metrics report")
    p.add_argument("--model", choices=MODELS, default="toggle-switch")
    p.add_argument("--max-protein", type=int, default=16)
    p.add_argument("--max-x", type=int, default=40)
    p.add_argument("--max-y", type=int, default=20)
    p.add_argument("--max-monomer", type=int, default=6)
    p.add_argument("--max-dimer", type=int, default=3)
    p.add_argument("--method", choices=("jacobi", "gauss-seidel", "power"),
                   default="jacobi")
    p.add_argument("--format", choices=FORMATS[1:], default="warped-ell",
                   help="device format profiled by the kernel models")
    p.add_argument("--tol", type=float, default=1e-8)
    p.add_argument("--max-iterations", type=int, default=200_000)
    p.add_argument("--damping", type=float, default=0.8)
    p.add_argument("--trace-every", type=int, default=25,
                   help="emit a solver-iteration span every N iterations")
    p.add_argument("--serve-sample", type=int, default=1, metavar="N",
                   help="also serve N jobs through SolveService on the "
                        "same registry so metrics.prom carries the "
                        "solve_latency_seconds histogram (0 disables)")
    p.add_argument("--out", default="profile-out",
                   help="directory for trace.json and metrics.prom")
    p.set_defaults(func=cmd_profile)

    p = sub.add_parser("experiments", help="run the table/figure harness")
    p.add_argument("--scale", choices=("tiny", "small", "bench"),
                   default="small")
    p.add_argument("--out", default=None)
    p.set_defaults(func=cmd_experiments)
    return parser


def main(argv=None) -> int:
    args = make_parser().parse_args(argv)
    if args.backend is not None:
        from repro import backends
        from repro.errors import BackendError
        try:
            backends.set_default(args.backend)
        except BackendError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
