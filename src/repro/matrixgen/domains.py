"""UF-collection domain stand-ins for Figure 5 (DESIGN.md §2).

Figure 5 averages, per application domain, the SpMV improvement of the
warp-grained sliced ELL over the original sliced ELL.  That improvement
is governed by the *within-block variability* of row lengths (what the
finer slices and the local rearrangement compact) and by the column
locality (what bounds how much rearrangement can hurt).  Each
:class:`DomainSpec` encodes the characteristic profile of one domain:

================== ============================================ =========
domain              row-length profile                          pattern
================== ============================================ =========
quantum chemistry   heavy lognormal tail (Gaussian-basis Fock    clustered
                    rows range from a handful to hundreds)
circuit simulation  power-law (netlist hubs)                     clustered
web graph           power-law, heavier                           random
linear programming  bimodal constraint rows                      random
structural (FEM)    narrow Gaussian around the element valence   banded
CFD                 nearly constant stencil                      banded
power network       very short rows, small spread                clustered
economics           moderate lognormal                           random
semiconductor       stencil with periodic long rows              banded
epidemiology        short rows, occasional hubs                  clustered
================== ============================================ =========

The regular stencil domains leave the warp-grained format nothing to
compact (small gains, as in the figure), while the heavy-tailed
interleaved domains — quantum chemistry above all — show the large
improvements the paper reports (avg +12.6%, max +48%).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp

from repro.errors import ValidationError
from repro.matrixgen.random_sparse import synthesize_csr


@dataclass(frozen=True)
class DomainSpec:
    """Row-length and column-pattern profile of one UF domain."""

    name: str
    #: ``("lognormal", mean, sigma)``, ``("powerlaw", alpha, kmin, kmax)``,
    #: ``("gaussian", mean, std)``, ``("constant", k)`` or
    #: ``("bimodal", k1, k2, fraction_of_k2)``.
    length_model: tuple
    pattern: str
    bandwidth: int = 64
    far_fraction: float = 0.1
    #: Period of injected long rows (0 = none) — semiconductor style.
    long_row_period: int = 0
    long_row_length: int = 0
    #: Spatial correlation: row lengths come in runs of this many
    #: consecutive rows (real matrices order related unknowns together).
    run_length: int = 1

    def sample_lengths(self, n: int, rng) -> np.ndarray:
        kind = self.length_model[0]
        if kind == "lognormal":
            _, mean, sigma = self.length_model
            lengths = rng.lognormal(np.log(mean), sigma, size=n)
        elif kind == "powerlaw":
            _, alpha, kmin, kmax = self.length_model
            u = rng.uniform(size=n)
            # Inverse-CDF sampling of a bounded power law.
            a = 1.0 - alpha
            lengths = ((kmax ** a - kmin ** a) * u + kmin ** a) ** (1.0 / a)
        elif kind == "gaussian":
            _, mean, std = self.length_model
            lengths = rng.normal(mean, std, size=n)
        elif kind == "constant":
            lengths = np.full(n, float(self.length_model[1]))
        elif kind == "bimodal":
            _, k1, k2, frac = self.length_model
            lengths = np.where(rng.uniform(size=n) < frac, k2, k1).astype(float)
        else:
            raise ValidationError(f"unknown length model {kind!r}")
        lengths = np.clip(np.round(lengths), 1, None).astype(np.int64)
        if self.run_length > 1:
            reps = -(-n // self.run_length)
            lengths = np.repeat(lengths[:reps], self.run_length)[:n]
        if self.long_row_period > 0:
            lengths[:: self.long_row_period] = self.long_row_length
        return lengths


#: The Figure 5 domain registry.
DOMAINS: dict[str, DomainSpec] = {
    "quantum-chemistry": DomainSpec(
        "quantum-chemistry", ("lognormal", 20, 0.75), "clustered",
        bandwidth=256, far_fraction=0.15, run_length=12),
    "circuit-simulation": DomainSpec(
        "circuit-simulation", ("powerlaw", 2.8, 3, 48), "clustered",
        bandwidth=96, far_fraction=0.2, run_length=16),
    "web-graph": DomainSpec(
        "web-graph", ("powerlaw", 2.6, 3, 64), "random", run_length=8),
    "linear-programming": DomainSpec(
        "linear-programming", ("bimodal", 4, 24, 0.15), "random",
        run_length=16),
    "structural-fem": DomainSpec(
        "structural-fem", ("gaussian", 24, 2), "banded", bandwidth=96,
        run_length=64),
    "cfd": DomainSpec(
        "cfd", ("constant", 7), "banded", bandwidth=80),
    "power-network": DomainSpec(
        "power-network", ("gaussian", 4, 1.2), "clustered",
        bandwidth=48, far_fraction=0.1, run_length=16),
    "economics": DomainSpec(
        "economics", ("lognormal", 8, 0.7), "random", run_length=4),
    "semiconductor": DomainSpec(
        "semiconductor", ("gaussian", 7, 0.8), "banded", bandwidth=80,
        long_row_period=512, long_row_length=12),
    "epidemiology": DomainSpec(
        "epidemiology", ("lognormal", 4, 0.45), "clustered",
        bandwidth=64, far_fraction=0.05, run_length=32),
}


def generate_domain(name: str, *, n: int = 12_000,
                    seed: int = 0) -> sp.csr_matrix:
    """Generate one synthetic matrix of the given domain profile."""
    try:
        spec = DOMAINS[name]
    except KeyError:
        raise ValidationError(
            f"unknown domain {name!r}; known: {sorted(DOMAINS)}") from None
    rng = np.random.default_rng(seed)
    lengths = spec.sample_lengths(n, rng)
    return synthesize_csr(lengths, pattern=spec.pattern,
                          bandwidth=spec.bandwidth,
                          far_fraction=spec.far_fraction, rng=rng)
