"""Synthetic sparse-matrix generators.

:mod:`repro.matrixgen.domains` stands in for the University of Florida
sparse matrix collection used in Figure 5 (DESIGN.md §2): each generator
produces matrices with the row-length statistics and column-locality
profile characteristic of one application domain, which is exactly what
determines the sliced-ELL -> warp-grained-ELL improvement the figure
reports.  :mod:`repro.matrixgen.random_sparse` provides the generic
randomized builders the tests use.
"""

from repro.matrixgen.random_sparse import (
    banded_matrix,
    random_cme_like,
    synthesize_csr,
)
from repro.matrixgen.domains import DOMAINS, DomainSpec, generate_domain

__all__ = [
    "synthesize_csr",
    "banded_matrix",
    "random_cme_like",
    "DOMAINS",
    "DomainSpec",
    "generate_domain",
]
