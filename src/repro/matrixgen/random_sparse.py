"""Randomized sparse-matrix builders.

The core entry point, :func:`synthesize_csr`, assembles a canonical CSR
matrix from two orthogonal ingredients:

* a **row-length vector** (how many nonzeros each row holds), and
* a **column pattern** deciding where those nonzeros sit: ``"banded"``
  (within a bandwidth of the diagonal — FEM/CFD style), ``"random"``
  (uniform columns — graph style), or ``"clustered"`` (mostly local with
  a configurable fraction of far references — circuit/quantum style).

This separation mirrors what drives the GPU formats: row-length
statistics set the ELL-family padding, the column pattern sets the
``x``-gather locality.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.errors import ValidationError
from repro.sparse.base import as_csr

COLUMN_PATTERNS = ("banded", "random", "clustered")


def synthesize_csr(row_lengths, *, n_cols: int | None = None,
                   pattern: str = "banded", bandwidth: int = 64,
                   far_fraction: float = 0.1,
                   include_diagonal: bool = True,
                   rng=None) -> sp.csr_matrix:
    """Build a CSR matrix with the given row lengths and column pattern.

    Parameters
    ----------
    row_lengths:
        Desired stored nonzeros per row (clipped to ``n_cols``).
    n_cols:
        Column count (defaults to square).
    pattern:
        One of :data:`COLUMN_PATTERNS`.
    bandwidth:
        Half-width of the local window for ``"banded"``/``"clustered"``.
    far_fraction:
        For ``"clustered"``: fraction of each row's entries placed
        uniformly at random instead of inside the window.
    include_diagonal:
        Force a nonzero diagonal (needed by Jacobi-style consumers).
    rng:
        ``numpy.random.Generator`` or seed.
    """
    lengths = np.asarray(row_lengths, dtype=np.int64)
    if lengths.ndim != 1 or (lengths.size and lengths.min() < 0):
        raise ValidationError("row_lengths must be 1-D and non-negative")
    if pattern not in COLUMN_PATTERNS:
        raise ValidationError(
            f"unknown pattern {pattern!r}; expected {COLUMN_PATTERNS}")
    n = lengths.size
    m = int(n_cols) if n_cols is not None else n
    if m <= 0 or n == 0:
        raise ValidationError("matrix must be non-empty")
    rng = np.random.default_rng(rng)
    lengths = np.minimum(lengths, m)
    if include_diagonal and m >= n:
        lengths = np.maximum(lengths, 1)

    rows_list, cols_list = [], []
    for r in range(n):
        want = int(lengths[r])
        if want == 0:
            continue
        if pattern == "random":
            cols = rng.choice(m, size=min(want, m), replace=False)
        else:
            lo = max(0, r - bandwidth)
            hi = min(m, r + bandwidth + 1)
            window = hi - lo
            n_far = (int(round(want * far_fraction))
                     if pattern == "clustered" else 0)
            n_local = min(want - n_far, window)
            n_far = want - n_local
            local = lo + rng.choice(window, size=n_local, replace=False)
            far = (rng.choice(m, size=min(n_far, m), replace=False)
                   if n_far else np.zeros(0, dtype=np.int64))
            cols = np.concatenate([local, far])
        if include_diagonal and r < m and r not in cols:
            cols[0] = r
        cols = np.unique(cols)
        rows_list.append(np.full(cols.size, r, dtype=np.int64))
        cols_list.append(cols.astype(np.int64))

    rows = np.concatenate(rows_list) if rows_list else np.zeros(0, np.int64)
    cols = np.concatenate(cols_list) if cols_list else np.zeros(0, np.int64)
    vals = rng.uniform(0.5, 1.5, size=rows.size)
    return as_csr(sp.coo_matrix((vals, (rows, cols)), shape=(n, m)))


def banded_matrix(n: int, *, bandwidth: int = 2, rng=None) -> sp.csr_matrix:
    """A dense-band test matrix (every in-band entry nonzero)."""
    if n <= 0 or bandwidth < 0:
        raise ValidationError("need n > 0 and bandwidth >= 0")
    rng = np.random.default_rng(rng)
    offsets = range(-bandwidth, bandwidth + 1)
    diags = [rng.uniform(0.5, 1.5, size=n) for _ in offsets]
    return as_csr(sp.diags(diags, list(offsets), shape=(n, n), format="csr"))


def random_cme_like(n: int, *, reactions: int = 6, jump: int = 50,
                    rng=None) -> sp.csr_matrix:
    """A generator-structured random matrix (CME-shaped, for tests).

    Columns sum to zero, off-diagonals are non-negative, and transitions
    sit at ±1 and ±``jump`` offsets like a two-species lattice.
    """
    if n <= 2 or reactions < 2:
        raise ValidationError("need n > 2 and reactions >= 2")
    rng = np.random.default_rng(rng)
    offsets = [-jump, -1, 1, jump][: reactions]
    rows_list, cols_list, vals_list = [], [], []
    for off in offsets:
        src = np.arange(n)
        tgt = src + off
        ok = (tgt >= 0) & (tgt < n)
        src, tgt = src[ok], tgt[ok]
        rate = rng.uniform(0.1, 2.0, size=src.size)
        rows_list += [tgt, src]
        cols_list += [src, src]
        vals_list += [rate, -rate]
    A = sp.coo_matrix(
        (np.concatenate(vals_list),
         (np.concatenate(rows_list), np.concatenate(cols_list))),
        shape=(n, n))
    return as_csr(A)
