"""Parameter sweeps: the paper's motivating exploratory workload.

Section I: "bioscientists usually study a reaction network under
different conditions.  Considering that each combination of the
parameters generates a different linear system, the total amount of
computation may become excruciatingly large."  This module packages
that workload: a grid of rate overrides, one steady-state solve per
condition, and a summary row per condition — the unit of work whose
throughput the paper's GPU solver multiplies.

With ``workers``, the sweep runs through :class:`repro.serve.SolveService`
instead of the serial loop: conditions are submitted level by level in
*coarse-to-fine* order (the dyadic sub-grids of the rate grid), so every
fine point is solved after the coarser points that surround it.  That
ordering is what makes warm starting safe under concurrency — donors
always bracket the query instead of all lying on one side (see
:mod:`repro.serve.warmstart` for why one-sided blends can be slower
than a cold start).

Example
-------
>>> from repro import toggle_switch
>>> from repro.sweep import ParameterSweep
>>> sweep = ParameterSweep(toggle_switch(max_protein=30),
...                        {"synA": [10.0, 30.0], "degA": [0.5, 1.0]})
>>> results = sweep.run(tol=1e-8)          # doctest: +SKIP
>>> parallel = sweep.run(workers=4, warm_start=True)  # doctest: +SKIP
>>> len(results)                           # doctest: +SKIP
4
"""

from __future__ import annotations

import itertools
import time
from dataclasses import dataclass, field


from repro.cme.landscape import ProbabilityLandscape
from repro.cme.network import ReactionNetwork
from repro.cme.ratematrix import build_rate_matrix
from repro.cme.statespace import enumerate_state_space
from repro.errors import ValidationError
from repro.solvers import JacobiSolver
from repro.solvers.result import SolverResult
from repro.utils.tables import Table


def axis_refinement_depths(n: int) -> list[int]:
    """Dyadic refinement depth of each index on an *n*-point axis.

    The endpoints are depth 0, each interval's midpoint is one deeper,
    recursively — the 1-D multigrid hierarchy.  ``n = 5`` gives
    ``[0, 2, 1, 2, 0]``.
    """
    if n <= 0:
        raise ValidationError(f"axis length must be positive, got {n}")
    depths = [0] * n
    stack = [(0, n - 1, 1)]
    while stack:
        lo, hi, depth = stack.pop()
        if hi - lo < 2:
            continue
        mid = (lo + hi) // 2
        depths[mid] = depth
        stack.append((lo, mid, depth + 1))
        stack.append((mid, hi, depth + 1))
    return depths


def coarse_to_fine_levels(shape: tuple[int, ...]) -> list[list[int]]:
    """Flat grid indices (C order) grouped coarsest-level first.

    A point's level is the *max* of its per-axis refinement depths, so
    level ``L`` is exactly the dyadic sub-grid of spacing ``2^-L`` minus
    all coarser points.  Sweeping the levels in order with a barrier in
    between guarantees every point's neighborhood of coarser points is
    solved before the point itself — the warm-start donor stencils are
    then centered and deterministic, independent of worker timing.
    """
    if not shape:
        raise ValidationError("shape must not be empty")
    axis_depths = [axis_refinement_depths(n) for n in shape]
    levels: dict[int, list[int]] = {}
    for flat, idx in enumerate(itertools.product(*(range(n) for n in shape))):
        level = max(d[i] for d, i in zip(axis_depths, idx))
        levels.setdefault(level, []).append(flat)
    return [levels[level] for level in sorted(levels)]


@dataclass
class SweepPoint:
    """One condition's outcome."""

    overrides: dict
    result: SolverResult
    landscape: ProbabilityLandscape
    solve_seconds: float

    def summary(self) -> dict:
        """Scalar descriptors of this condition's steady state."""
        means = self.landscape.mean_counts()
        out = {f"rate:{k}": v for k, v in self.overrides.items()}
        out.update({f"mean:{k}": round(v, 3) for k, v in means.items()})
        out["entropy"] = round(self.landscape.entropy(), 3)
        out["iterations"] = self.result.iterations
        out["residual"] = self.result.residual
        out["stop"] = self.result.stop_reason.value
        return out


@dataclass
class ParameterSweep:
    """A grid sweep over reaction-rate overrides.

    Parameters
    ----------
    network:
        The base network; each grid point is solved on
        ``network.with_rates(...)``.
    grid:
        Mapping ``reaction name -> list of rates``; the sweep runs the
        full Cartesian product.
    reuse_state_space:
        Rate changes never alter *reachability* for strictly-positive
        propensities, so by default the state space is enumerated once
        and only the matrix is reassembled per point — the exact
        structure-reuse opportunity the paper's one-time GPU format
        transfer exploits.  Disable for custom propensities whose
        support depends on the swept rates.
    """

    network: ReactionNetwork
    grid: dict
    reuse_state_space: bool = True
    points: list = field(default_factory=list, init=False)
    #: Metrics from the last served run (None after a serial run).
    service_snapshot: dict | None = field(default=None, init=False)
    service_report: str | None = field(default=None, init=False)

    def __post_init__(self) -> None:
        if not self.grid:
            raise ValidationError("sweep grid must not be empty")
        unknown = set(self.grid) - {r.name for r in self.network.reactions}
        if unknown:
            raise ValidationError(
                f"grid references unknown reactions {sorted(unknown)}")
        for name, values in self.grid.items():
            if not list(values):
                raise ValidationError(f"empty value list for {name!r}")

    def conditions(self) -> list[dict]:
        """The Cartesian product of the grid, as override dicts."""
        names = sorted(self.grid)
        combos = itertools.product(*(list(self.grid[n]) for n in names))
        return [dict(zip(names, combo)) for combo in combos]

    def run(self, *, tol: float = 1e-8, max_iterations: int = 200_000,
            solver_kwargs: dict | None = None,
            workers: int | None = None,
            cache: bool = True,
            warm_start: bool = False,
            service=None,
            batch: int | None = None,
            progress=None) -> list[SweepPoint]:
        """Solve every condition; returns (and stores) the sweep points.

        The default is the plain serial loop.  Passing ``workers`` (or a
        prebuilt :class:`repro.serve.SolveService` via ``service``)
        routes the sweep through the solve service: a worker pool over a
        shared state space, content-addressed caching (``cache``), and
        nearest-neighbor warm starting (``warm_start``).  Passing
        ``batch=K`` instead runs the serial path through
        :class:`~repro.solvers.batched.BatchedJacobiSolver`: conditions
        are grouped K at a time onto a stacked block diagonal and
        advanced together, one fused product per sweep.  Points come
        back in the same canonical condition order on every path, and
        the solved systems are constructed identically, so the paths
        agree on the results.
        """
        if service is not None or (workers is not None and workers != 1):
            return self._run_served(
                tol=tol, max_iterations=max_iterations,
                solver_kwargs=solver_kwargs, workers=workers or 1,
                cache=cache, warm_start=warm_start, service=service,
                progress=progress)
        if batch is not None:
            return self._run_batched(
                tol=tol, max_iterations=max_iterations,
                solver_kwargs=solver_kwargs, batch=batch,
                progress=progress)
        self.service_snapshot = None
        self.service_report = None
        base_space = (enumerate_state_space(self.network)
                      if self.reuse_state_space else None)
        self.points = []
        for overrides in self.conditions():
            varied = self.network.with_rates(overrides)
            t0 = time.perf_counter()
            space = self._space_for(varied, base_space)
            A = build_rate_matrix(space)
            solver = JacobiSolver(A, tol=tol,
                                  max_iterations=max_iterations,
                                  **(solver_kwargs or {}))
            result = solver.solve()
            elapsed = time.perf_counter() - t0
            point = SweepPoint(
                overrides=overrides,
                result=result,
                landscape=ProbabilityLandscape(space, result.x),
                solve_seconds=elapsed,
            )
            self.points.append(point)
            if progress is not None:
                progress(point)
        return self.points

    def _space_for(self, varied, base_space):
        """The (possibly shared) state space bound to *varied*'s rates."""
        if base_space is None:
            return enumerate_state_space(varied)
        # Rebind the varied network so propensities use the new rates
        # over the shared state list.
        from repro.cme.statespace import StateSpace
        return StateSpace(network=varied, states=base_space.states)

    def _run_batched(self, *, tol, max_iterations, solver_kwargs, batch,
                     progress) -> list[SweepPoint]:
        """The stacked-batch sweep: K conditions per fused Jacobi solve.

        Each chunk's conditions are mounted on one block diagonal and
        iterated in lockstep (see
        :class:`~repro.solvers.batched.BatchedJacobiSolver`); a
        condition that converges retires early, so slow conditions never
        hold finished ones hostage.  Per-point ``solve_seconds`` is the
        chunk's wall time amortized over its conditions.
        """
        from repro.solvers import BatchedJacobiSolver

        if batch <= 0:
            raise ValidationError(f"batch must be positive, got {batch}")
        kwargs = dict(solver_kwargs or {})
        unsupported = set(kwargs) - {"damping", "check_interval",
                                     "normalize_interval", "stagnation_tol"}
        if unsupported:
            raise ValidationError(
                f"batched sweep does not support solver options "
                f"{sorted(unsupported)}; run serially for those")
        self.service_snapshot = None
        self.service_report = None
        base_space = (enumerate_state_space(self.network)
                      if self.reuse_state_space else None)
        conditions = self.conditions()
        self.points = []
        for lo in range(0, len(conditions), batch):
            chunk = conditions[lo:lo + batch]
            t0 = time.perf_counter()
            spaces, matrices = [], []
            for overrides in chunk:
                space = self._space_for(self.network.with_rates(overrides),
                                        base_space)
                spaces.append(space)
                matrices.append(build_rate_matrix(space))
            solver = BatchedJacobiSolver.stacked(
                matrices, tol=tol, max_iterations=max_iterations, **kwargs)
            results = solver.solve_many()
            elapsed = (time.perf_counter() - t0) / len(chunk)
            for overrides, space, result in zip(chunk, spaces, results):
                point = SweepPoint(
                    overrides=overrides,
                    result=result,
                    landscape=ProbabilityLandscape(space, result.x),
                    solve_seconds=elapsed,
                )
                self.points.append(point)
                if progress is not None:
                    progress(point)
        return self.points

    def _run_served(self, *, tol, max_iterations, solver_kwargs, workers,
                    cache, warm_start, service, progress) -> list[SweepPoint]:
        """The service-backed sweep: coarse-to-fine levels with barriers.

        Each dyadic level of the grid is submitted as a batch and fully
        gathered before the next level starts.  The barrier costs a
        little tail latency per level but buys a *deterministic* donor
        pool: when warm starting, every point's donors come from the
        completed coarser levels that bracket it, never from a racing
        same-level neighbor on one side.
        """
        from repro.serve import SolveService

        conditions = self.conditions()
        names = sorted(self.grid)
        shape = tuple(len(list(self.grid[n])) for n in names)
        owns_service = service is None
        svc = service if service is not None else SolveService(
            self.network, workers=workers, cache=cache,
            warm_start=warm_start, tol=tol, max_iterations=max_iterations,
            solver_options=solver_kwargs or {},
            reuse_state_space=self.reuse_state_space)
        outcomes: list = [None] * len(conditions)
        try:
            for depth, level in enumerate(coarse_to_fine_levels(shape)):
                jobs = [(i, svc.submit(conditions[i], priority=depth))
                        for i in level]
                for i, job in jobs:
                    outcomes[i] = job.result()
            self.service_snapshot = svc.snapshot()
            self.service_report = svc.render_metrics()
        finally:
            if owns_service:
                svc.close()
        self.points = []
        for overrides, outcome in zip(conditions, outcomes):
            point = SweepPoint(
                overrides=overrides,
                result=outcome.result,
                landscape=outcome.landscape,
                solve_seconds=outcome.solve_seconds,
            )
            self.points.append(point)
            if progress is not None:
                progress(point)
        return self.points

    def table(self) -> Table:
        """All conditions' summaries as one table."""
        if not self.points:
            raise ValidationError("run() the sweep first")
        headers = list(self.points[0].summary())
        table = Table(headers, title=f"Sweep of {self.network.name!r} "
                                     f"({len(self.points)} conditions)")
        for point in self.points:
            summary = point.summary()
            table.add_row([summary[h] for h in headers])
        return table

    def total_solve_seconds(self) -> float:
        return sum(p.solve_seconds for p in self.points)
