"""Parameter sweeps: the paper's motivating exploratory workload.

Section I: "bioscientists usually study a reaction network under
different conditions.  Considering that each combination of the
parameters generates a different linear system, the total amount of
computation may become excruciatingly large."  This module packages
that workload: a grid of rate overrides, one steady-state solve per
condition, and a summary row per condition — the unit of work whose
throughput the paper's GPU solver multiplies.

Example
-------
>>> from repro import toggle_switch
>>> from repro.sweep import ParameterSweep
>>> sweep = ParameterSweep(toggle_switch(max_protein=30),
...                        {"synA": [10.0, 30.0], "degA": [0.5, 1.0]})
>>> results = sweep.run(tol=1e-8)          # doctest: +SKIP
>>> len(results)                           # doctest: +SKIP
4
"""

from __future__ import annotations

import itertools
import time
from dataclasses import dataclass, field


from repro.cme.landscape import ProbabilityLandscape
from repro.cme.network import ReactionNetwork
from repro.cme.ratematrix import build_rate_matrix
from repro.cme.statespace import enumerate_state_space
from repro.errors import ValidationError
from repro.solvers import JacobiSolver
from repro.solvers.result import SolverResult
from repro.utils.tables import Table


@dataclass
class SweepPoint:
    """One condition's outcome."""

    overrides: dict
    result: SolverResult
    landscape: ProbabilityLandscape
    solve_seconds: float

    def summary(self) -> dict:
        """Scalar descriptors of this condition's steady state."""
        means = self.landscape.mean_counts()
        out = {f"rate:{k}": v for k, v in self.overrides.items()}
        out.update({f"mean:{k}": round(v, 3) for k, v in means.items()})
        out["entropy"] = round(self.landscape.entropy(), 3)
        out["iterations"] = self.result.iterations
        out["residual"] = self.result.residual
        out["stop"] = self.result.stop_reason.value
        return out


@dataclass
class ParameterSweep:
    """A grid sweep over reaction-rate overrides.

    Parameters
    ----------
    network:
        The base network; each grid point is solved on
        ``network.with_rates(...)``.
    grid:
        Mapping ``reaction name -> list of rates``; the sweep runs the
        full Cartesian product.
    reuse_state_space:
        Rate changes never alter *reachability* for strictly-positive
        propensities, so by default the state space is enumerated once
        and only the matrix is reassembled per point — the exact
        structure-reuse opportunity the paper's one-time GPU format
        transfer exploits.  Disable for custom propensities whose
        support depends on the swept rates.
    """

    network: ReactionNetwork
    grid: dict
    reuse_state_space: bool = True
    points: list = field(default_factory=list, init=False)

    def __post_init__(self) -> None:
        if not self.grid:
            raise ValidationError("sweep grid must not be empty")
        unknown = set(self.grid) - {r.name for r in self.network.reactions}
        if unknown:
            raise ValidationError(
                f"grid references unknown reactions {sorted(unknown)}")
        for name, values in self.grid.items():
            if not list(values):
                raise ValidationError(f"empty value list for {name!r}")

    def conditions(self) -> list[dict]:
        """The Cartesian product of the grid, as override dicts."""
        names = sorted(self.grid)
        combos = itertools.product(*(list(self.grid[n]) for n in names))
        return [dict(zip(names, combo)) for combo in combos]

    def run(self, *, tol: float = 1e-8, max_iterations: int = 200_000,
            solver_kwargs: dict | None = None,
            progress=None) -> list[SweepPoint]:
        """Solve every condition; returns (and stores) the sweep points."""
        base_space = (enumerate_state_space(self.network)
                      if self.reuse_state_space else None)
        self.points = []
        for overrides in self.conditions():
            varied = self.network.with_rates(overrides)
            t0 = time.perf_counter()
            space = (enumerate_state_space(varied)
                     if base_space is None else base_space)
            if base_space is not None:
                # Rebind the varied network so propensities use the new
                # rates over the shared state list.
                from repro.cme.statespace import StateSpace
                space = StateSpace(network=varied,
                                   states=base_space.states)
            A = build_rate_matrix(space)
            solver = JacobiSolver(A, tol=tol,
                                  max_iterations=max_iterations,
                                  **(solver_kwargs or {}))
            result = solver.solve()
            elapsed = time.perf_counter() - t0
            point = SweepPoint(
                overrides=overrides,
                result=result,
                landscape=ProbabilityLandscape(space, result.x),
                solve_seconds=elapsed,
            )
            self.points.append(point)
            if progress is not None:
                progress(point)
        return self.points

    def table(self) -> Table:
        """All conditions' summaries as one table."""
        if not self.points:
            raise ValidationError("run() the sweep first")
        headers = list(self.points[0].summary())
        table = Table(headers, title=f"Sweep of {self.network.name!r} "
                                     f"({len(self.points)} conditions)")
        for point in self.points:
            summary = point.summary()
            table.add_row([summary[h] for h in headers])
        return table

    def total_solve_seconds(self) -> float:
        return sum(p.solve_seconds for p in self.points)
