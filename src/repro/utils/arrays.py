"""Array helpers shared across the sparse formats and the GPU simulator.

These are the small alignment/padding primitives that the ELL-family
formats are built from: the paper pads the ELL row dimension to a multiple
of the warp size for 128-byte-aligned, coalesced accesses.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ValidationError


def ceil_div(a: int, b: int) -> int:
    """Integer ceiling division ``ceil(a / b)`` for non-negative ``a``, positive ``b``."""
    if b <= 0:
        raise ValidationError(f"divisor must be positive, got {b}")
    if a < 0:
        raise ValidationError(f"numerator must be non-negative, got {a}")
    return -(-a // b)


def round_up(a: int, multiple: int) -> int:
    """Round *a* up to the next multiple of *multiple*."""
    return ceil_div(a, multiple) * multiple


def pad_rows(a: np.ndarray, n_padded: int, fill=0) -> np.ndarray:
    """Pad a 2-D array with *fill* rows up to ``n_padded`` rows.

    Returns the input unchanged when no padding is needed.
    """
    n, k = a.shape
    if n_padded < n:
        raise ValidationError(f"cannot pad {n} rows down to {n_padded}")
    if n_padded == n:
        return a
    out = np.full((n_padded, k), fill, dtype=a.dtype)
    out[:n] = a
    return out


def column_major_flatten(a: np.ndarray) -> np.ndarray:
    """Flatten a 2-D array in column-major (Fortran) order.

    ELL-family formats store their dense ``n' x k`` blocks column-major so
    that the 32 threads of a warp touch 32 consecutive elements — one
    128-byte transaction for doubles split over two lines, a single one for
    4-byte column indices.
    """
    if a.ndim != 2:
        raise ValidationError(f"expected 2-D array, got ndim={a.ndim}")
    return np.asfortranarray(a).reshape(-1, order="F")


def segment_maxima(values: np.ndarray, segment: int) -> np.ndarray:
    """Maximum of *values* over consecutive segments of length *segment*.

    The tail segment may be shorter.  Used to compute per-slice ``k_i``
    (the local maximum row length) for the sliced-ELL family.
    """
    values = np.asarray(values)
    if values.ndim != 1:
        raise ValidationError("values must be 1-D")
    if segment <= 0:
        raise ValidationError(f"segment must be positive, got {segment}")
    n = values.shape[0]
    if n == 0:
        return np.zeros(0, dtype=values.dtype)
    n_seg = ceil_div(n, segment)
    padded = np.full(n_seg * segment, np.iinfo(values.dtype).min
                     if np.issubdtype(values.dtype, np.integer) else -np.inf,
                     dtype=values.dtype)
    padded[:n] = values
    return padded.reshape(n_seg, segment).max(axis=1)


def segment_sums(values: np.ndarray, segment: int) -> np.ndarray:
    """Sum of *values* over consecutive segments of length *segment*."""
    values = np.asarray(values)
    if values.ndim != 1:
        raise ValidationError("values must be 1-D")
    if segment <= 0:
        raise ValidationError(f"segment must be positive, got {segment}")
    n = values.shape[0]
    n_seg = ceil_div(n, segment)
    padded = np.zeros(n_seg * segment, dtype=values.dtype)
    padded[:n] = values
    return padded.reshape(n_seg, segment).sum(axis=1)


def inverse_permutation(perm: np.ndarray) -> np.ndarray:
    """Return the inverse of a permutation array.

    ``inv[perm[i]] = i``; applying ``perm`` then indexing with ``inv``
    restores the original order.
    """
    perm = np.asarray(perm)
    n = perm.shape[0]
    if n and (perm.min() != 0 or perm.max() != n - 1 or
              np.unique(perm).size != n):
        raise ValidationError("perm is not a permutation of 0..n-1")
    inv = np.empty(n, dtype=np.int64)
    inv[perm] = np.arange(n, dtype=np.int64)
    return inv
