"""Shared low-level helpers: validation, array utilities, table rendering."""

from repro.utils.validation import (
    check_1d,
    check_2d,
    check_dtype,
    check_nonnegative,
    check_positive,
    check_probability_vector,
    check_square,
)
from repro.utils.arrays import (
    ceil_div,
    round_up,
    pad_rows,
    column_major_flatten,
    segment_maxima,
)
from repro.utils.tables import Table, format_si_bytes

__all__ = [
    "check_1d",
    "check_2d",
    "check_dtype",
    "check_nonnegative",
    "check_positive",
    "check_probability_vector",
    "check_square",
    "ceil_div",
    "round_up",
    "pad_rows",
    "column_major_flatten",
    "segment_maxima",
    "Table",
    "format_si_bytes",
]
