"""Plain-text table rendering for the experiment harness.

Every experiment module prints a paper-style table (same rows and columns
as the corresponding table/figure in the paper) through :class:`Table`,
so the benchmark output can be diffed against the paper by eye.
"""

from __future__ import annotations

from typing import Any, Iterable, Sequence


def format_si_bytes(num_bytes: float) -> str:
    """Format a byte count using binary prefixes (B, KiB, MiB, GiB)."""
    value = float(num_bytes)
    for unit in ("B", "KiB", "MiB", "GiB", "TiB"):
        if abs(value) < 1024.0 or unit == "TiB":
            if unit == "B":
                return f"{value:.0f} {unit}"
            return f"{value:.2f} {unit}"
        value /= 1024.0
    raise AssertionError("unreachable")


def _fmt_cell(v: Any) -> str:
    if isinstance(v, float):
        if v == 0:
            return "0"
        if abs(v) >= 1e5 or abs(v) < 1e-3:
            return f"{v:.3e}"
        return f"{v:.3f}"
    return str(v)


class Table:
    """A minimal fixed-width text table.

    Parameters
    ----------
    headers:
        Column titles.
    title:
        Optional table caption printed above the header row.

    Examples
    --------
    >>> t = Table(["model", "GFLOPS"], title="Table II")
    >>> t.add_row(["brusselator", 19.308])
    >>> print(t.render())  # doctest: +SKIP
    """

    def __init__(self, headers: Sequence[str], title: str | None = None) -> None:
        self.headers = [str(h) for h in headers]
        self.title = title
        self.rows: list[list[str]] = []

    def add_row(self, row: Iterable[Any]) -> None:
        """Append one row; cells are stringified with sensible float formats."""
        cells = [_fmt_cell(c) for c in row]
        if len(cells) != len(self.headers):
            raise ValueError(
                f"row has {len(cells)} cells, table has {len(self.headers)} columns")
        self.rows.append(cells)

    def render(self) -> str:
        """Render the table to a string."""
        widths = [len(h) for h in self.headers]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))

        def line(cells: Sequence[str]) -> str:
            return "| " + " | ".join(
                c.ljust(widths[i]) for i, c in enumerate(cells)) + " |"

        sep = "+-" + "-+-".join("-" * w for w in widths) + "-+"
        out = []
        if self.title:
            out.append(self.title)
        out.append(sep)
        out.append(line(self.headers))
        out.append(sep)
        for row in self.rows:
            out.append(line(row))
        out.append(sep)
        return "\n".join(out)

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.render()
