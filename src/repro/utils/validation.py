"""Argument-validation helpers.

Every public entry point of the library validates its inputs through these
helpers so error messages are uniform and informative.  All of them raise
:class:`repro.errors.ValidationError` on failure and return the (possibly
converted) value on success, which lets callers write::

    x = check_1d(x, "x", n=self.n)
"""

from __future__ import annotations

import numpy as np

from repro.errors import ValidationError


def check_1d(a, name: str, *, n: int | None = None,
             dtype=None) -> np.ndarray:
    """Validate that *a* is a one-dimensional array.

    Parameters
    ----------
    a:
        Array-like input.
    name:
        Parameter name used in error messages.
    n:
        If given, the required length.
    dtype:
        If given, the array is converted to this dtype (no copy when
        already correct).
    """
    arr = np.asarray(a)
    if arr.ndim != 1:
        raise ValidationError(f"{name} must be 1-D, got ndim={arr.ndim}")
    if n is not None and arr.shape[0] != n:
        raise ValidationError(
            f"{name} must have length {n}, got {arr.shape[0]}")
    if dtype is not None:
        arr = np.ascontiguousarray(arr, dtype=dtype)
    return arr


def check_2d(a, name: str, *, shape: tuple[int, int] | None = None,
             dtype=None) -> np.ndarray:
    """Validate that *a* is a two-dimensional array (optionally of *shape*)."""
    arr = np.asarray(a)
    if arr.ndim != 2:
        raise ValidationError(f"{name} must be 2-D, got ndim={arr.ndim}")
    if shape is not None and arr.shape != shape:
        raise ValidationError(
            f"{name} must have shape {shape}, got {arr.shape}")
    if dtype is not None:
        arr = np.ascontiguousarray(arr, dtype=dtype)
    return arr


def check_square(a, name: str) -> np.ndarray:
    """Validate that *a* is a square 2-D array."""
    arr = check_2d(a, name)
    if arr.shape[0] != arr.shape[1]:
        raise ValidationError(
            f"{name} must be square, got shape {arr.shape}")
    return arr


def check_dtype(a, name: str, dtype) -> np.ndarray:
    """Validate that *a* has exactly dtype *dtype* (no silent conversion)."""
    arr = np.asarray(a)
    if arr.dtype != np.dtype(dtype):
        raise ValidationError(
            f"{name} must have dtype {np.dtype(dtype)}, got {arr.dtype}")
    return arr


def check_positive(value, name: str) -> float:
    """Validate that a scalar is strictly positive and finite."""
    v = float(value)
    if not np.isfinite(v) or v <= 0.0:
        raise ValidationError(f"{name} must be a positive finite number, got {value!r}")
    return v


def check_nonnegative(value, name: str) -> float:
    """Validate that a scalar is non-negative and finite."""
    v = float(value)
    if not np.isfinite(v) or v < 0.0:
        raise ValidationError(
            f"{name} must be a non-negative finite number, got {value!r}")
    return v


def check_probability_vector(p, name: str = "p", *, atol: float = 1e-8) -> np.ndarray:
    """Validate that *p* is a probability vector (entries >= 0, sums to 1)."""
    arr = check_1d(p, name, dtype=np.float64)
    if arr.size == 0:
        raise ValidationError(f"{name} must be non-empty")
    if np.any(arr < -atol):
        raise ValidationError(f"{name} has negative entries (min={arr.min()})")
    s = float(arr.sum())
    if abs(s - 1.0) > max(atol, atol * arr.size):
        raise ValidationError(f"{name} must sum to 1, got {s}")
    return arr


def check_index_array(a, name: str, *, upper: int) -> np.ndarray:
    """Validate an int index array with entries in ``[0, upper)``.

    Negative entries are allowed only as the conventional ``-1`` padding
    marker used by some ELL variants; anything below ``-1`` is rejected.
    """
    arr = np.asarray(a)
    if not np.issubdtype(arr.dtype, np.integer):
        raise ValidationError(f"{name} must be an integer array, got {arr.dtype}")
    if arr.size and (arr.min() < -1 or arr.max() >= upper):
        raise ValidationError(
            f"{name} entries must lie in [-1, {upper}), got range "
            f"[{arr.min()}, {arr.max()}]")
    return arr
