"""Table IV — end-to-end Jacobi steady-state solution.

For every benchmark the solver runs to the paper's criterion
(``epsilon = 1e-8``, capped iterations) on this host's fast backend;
performance columns come from the per-iteration models: the CPU CSR+DIA
baseline on the calibrated Opteron, the GPU fused warp-ELL+DIA kernel
on the GTX580 model (residual check amortized every ``check_interval``
iterations, renormalization every ``normalize_interval`` — the same
schedule the solver actually executes).

At the reproduction's matrix sizes the iteration counts are naturally
smaller than the paper's (the spectral gap grows as buffers shrink);
``max_iterations`` keeps the harness bounded, mirroring how the paper's
phage-lambda-2 hit its own 10^6 cap.
"""

from __future__ import annotations

import numpy as np

from repro.cme.models import benchmark_names, load_benchmark_matrix
from repro.cpu import CSRDIABaseline, OPTERON_6274_QUAD
from repro.experiments import paperdata
from repro.experiments.common import ExperimentResult, cached_format, x_scale_for
from repro.gpusim import GTX580, jacobi_performance
from repro.solvers import JacobiSolver

#: Solver schedule (matches the paper's "check only every several
#: iterations" guidance).
CHECK_INTERVAL = 100
NORMALIZE_INTERVAL = 10


def run(scale: str = "bench", *, tol: float = 1e-8,
        max_iterations: int = 20_000, device=GTX580,
        machine=OPTERON_6274_QUAD) -> ExperimentResult:
    headers = ["network", "iterations", "residual", "stop",
               "CPU GF", "GPU GF", "speedup",
               "paper iters", "paper CPU", "paper GPU"]
    rows = []
    cpu_vals, gpu_vals = [], []
    for name in benchmark_names():
        A = load_benchmark_matrix(name, scale)
        xs = x_scale_for(name, A.shape[0])
        solver = JacobiSolver(A, tol=tol, max_iterations=max_iterations,
                              check_interval=CHECK_INTERVAL,
                              normalize_interval=NORMALIZE_INTERVAL)
        result = solver.solve()

        baseline = CSRDIABaseline(A)
        cpu = baseline.performance(machine, working_set_scale=xs).gflops
        gpu = jacobi_performance(
            cached_format(name, scale, "warped+dia"), device,
            check_interval=CHECK_INTERVAL,
            normalize_interval=NORMALIZE_INTERVAL,
            x_scale=xs).gflops
        cpu_vals.append(cpu)
        gpu_vals.append(gpu)
        p = paperdata.TABLE4[name]
        rows.append([name, result.iterations, f"{result.residual:.3e}",
                     result.stop_reason.value,
                     round(cpu, 3), round(gpu, 3), round(gpu / cpu, 1),
                     p[0], p[2], p[3]])
    avg_cpu = float(np.mean(cpu_vals))
    avg_gpu = float(np.mean(gpu_vals))
    rows.append(["AVERAGE", "", "", "", round(avg_cpu, 3),
                 round(avg_gpu, 3), round(avg_gpu / avg_cpu, 1),
                 "", paperdata.JACOBI_AVG_CPU_GFLOPS,
                 paperdata.JACOBI_AVG_GPU_GFLOPS])
    return ExperimentResult(
        experiment_id="Table IV",
        title="Jacobi iteration: CPU CSR+DIA vs GPU Warp ELL+DIA",
        headers=headers,
        rows=rows,
        summary={"speedup_model": avg_gpu / avg_cpu,
                 "speedup_paper": paperdata.JACOBI_SPEEDUP},
        notes=("Iteration counts are for the scaled-down systems; the "
               "paper's full-scale counts are shown for reference."),
    )
