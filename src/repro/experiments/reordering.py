"""Section VII-C reordering experiment — random vs global vs local.

The paper measures the average warp-grained SpMV under three row
orderings: random shuffling destroys locality (2.783 GFLOPS), the
global pJDS-style sort uniformizes slices but mixes unrelated rows
(15.137), and the local per-block rearrangement gets the padding benefit
while keeping rows near their neighbors (16.278).
"""

from __future__ import annotations

import numpy as np

from repro.cme.models import benchmark_names
from repro.experiments import paperdata
from repro.experiments.common import ExperimentResult, cached_format, x_scale_for
from repro.gpusim import GTX580, spmv_performance

STRATEGIES = ("random", "global", "local", "none")


def run(scale: str = "bench", device=GTX580) -> ExperimentResult:
    headers = ["reordering", "avg GF (model)", "avg GF (paper)"]
    rows = []
    averages = {}
    for strategy in STRATEGIES:
        vals = []
        for name in benchmark_names():
            fmt = cached_format(name, scale, f"warped:{strategy}")
            xs = x_scale_for(name, fmt.shape[0])
            vals.append(spmv_performance(fmt, device, x_scale=xs).gflops)
        averages[strategy] = float(np.mean(vals))
        rows.append([strategy, round(averages[strategy], 3),
                     paperdata.REORDERING.get(strategy, "-")])
    return ExperimentResult(
        experiment_id="Section VII-C (reordering)",
        title="Warp-grained ELL under row reorderings",
        headers=headers,
        rows=rows,
        summary={
            "random_slowdown_model": averages["local"] / averages["random"],
            "random_slowdown_paper": (paperdata.REORDERING["local"]
                                      / paperdata.REORDERING["random"]),
            "local_over_global_model": averages["local"] / averages["global"],
        },
    )
