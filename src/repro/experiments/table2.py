"""Table II — ELL versus ELL+DIA SpMV performance.

The dense DFS-order diagonal band lets ELL+DIA drop the band's column
indices and read ``x`` contiguously; the paper measures a 5% average
gain (up to 15% on the fully-banded Brusselator/Schnakenberg).
"""

from __future__ import annotations

import numpy as np

from repro.cme.models import benchmark_names
from repro.experiments import paperdata
from repro.experiments.common import ExperimentResult, cached_format, x_scale_for
from repro.gpusim import GTX580, spmv_performance


def run(scale: str = "bench", device=GTX580) -> ExperimentResult:
    headers = ["network", "ELL GF", "ELL+DIA GF", "speedup",
               "paper ELL", "paper ELL+DIA", "paper speedup"]
    rows = []
    model = {"ell": [], "ell+dia": []}
    for name in benchmark_names():
        xs = x_scale_for(name, cached_format(name, scale, "ell").shape[0])
        ell = spmv_performance(cached_format(name, scale, "ell"),
                               device, x_scale=xs).gflops
        elldia = spmv_performance(cached_format(name, scale, "ell+dia"),
                                  device, x_scale=xs).gflops
        model["ell"].append(ell)
        model["ell+dia"].append(elldia)
        p_ell, p_elldia = paperdata.TABLE2[name]
        rows.append([name, round(ell, 3), round(elldia, 3),
                     round(elldia / ell, 2),
                     p_ell, p_elldia, round(p_elldia / p_ell, 2)])
    avg_ell = float(np.mean(model["ell"]))
    avg_elldia = float(np.mean(model["ell+dia"]))
    paper_avg_ell = float(np.mean([v[0] for v in paperdata.TABLE2.values()]))
    paper_avg_dia = float(np.mean([v[1] for v in paperdata.TABLE2.values()]))
    rows.append(["AVERAGE", round(avg_ell, 3), round(avg_elldia, 3),
                 round(avg_elldia / avg_ell, 2),
                 round(paper_avg_ell, 3), round(paper_avg_dia, 3),
                 round(paper_avg_dia / paper_avg_ell, 2)])
    return ExperimentResult(
        experiment_id="Table II",
        title="ELL versus ELL+DIA",
        headers=headers,
        rows=rows,
        summary={"avg_speedup_model": avg_elldia / avg_ell,
                 "avg_speedup_paper": paper_avg_dia / paper_avg_ell},
    )
