"""Ablation studies of the paper's two central design choices.

``run_sell_c_sigma``
    Sweeps the (chunk, sorting-window) plane around the paper's
    warp-grained format.  The paper argues for (C=32, sigma=256) on two
    grounds — Section VI's occupancy/padding trade-off and Section
    VII-C's reordering experiment — and this sweep shows the whole
    response surface: bigger chunks pad more, unsorted chunks pad more,
    and the global sort (sigma = n) trades padding for locality at a
    loss, exactly the paper's argument against pJDS.

``run_dia_threshold``
    Validates Section V's 8/12 rule: DIA storage of a diagonal beats
    ELL storage exactly when the diagonal's density exceeds 2/3
    (8 bytes per DIA slot vs 12 per ELL nonzero).  The sweep builds
    band matrices of controlled density and locates the footprint
    crossover.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.cme.models import load_benchmark_matrix
from repro.experiments.common import ExperimentResult, x_scale_for
from repro.gpusim import GTX580, spmv_performance
from repro.sparse.base import as_csr
from repro.sparse.ell import ELLMatrix
from repro.sparse.ell_dia import DIA_DENSITY_THRESHOLD, ELLDIAMatrix
from repro.sparse.sell_c_sigma import SellCSigmaMatrix

CHUNKS = (32, 64, 128, 256)
SIGMAS = (1, 256, 2048, 0)  # 0 stands for "n" (global sort)


def run_sell_c_sigma(*, benchmark: str = "phage-lambda-1",
                     scale: str = "bench", device=GTX580) -> ExperimentResult:
    """Modeled GFLOPS over the (C, sigma) plane for one benchmark."""
    A = load_benchmark_matrix(benchmark, scale)
    xs = x_scale_for(benchmark, A.shape[0])
    headers = ["chunk C"] + [
        ("sigma=n" if s == 0 else f"sigma={s}") for s in SIGMAS]
    rows = []
    best = (None, -1.0)
    for c in CHUNKS:
        row = [c]
        for s in SIGMAS:
            sigma = A.shape[0] if s == 0 else max(s, c) if s != 1 else 1
            fmt = SellCSigmaMatrix(A, chunk=c, sigma=sigma)
            gf = spmv_performance(fmt, device, x_scale=xs).gflops
            row.append(round(gf, 3))
            if gf > best[1]:
                best = ((c, s), gf)
        rows.append(row)
    return ExperimentResult(
        experiment_id="Ablation (SELL-C-sigma)",
        title=f"Chunk/sort-window sweep on {benchmark}",
        headers=headers,
        rows=rows,
        summary={"best_config": f"C={best[0][0]}, "
                 f"sigma={'n' if best[0][1] == 0 else best[0][1]}",
                 "best_gflops": best[1],
                 "paper_choice": "C=32, sigma=256"},
        notes=("The paper's warp-grained format is the (32, 256) cell; "
               "sigma=n is the pJDS-style global sort the paper rejects."),
    )


def band_matrix_with_density(n: int, density: float,
                             seed: int = 0) -> sp.csr_matrix:
    """A tridiagonal-band matrix whose off-diagonals have the given density.

    The main diagonal stays full (it is the Jacobi divisor); the +-1
    neighbors keep exactly ``density`` of their slots, chosen uniformly.
    A far +-40 pair provides the ELL remainder so both formats always
    have work.
    """
    rng = np.random.default_rng(seed)
    diag = -(rng.random(n) + 2.0)
    parts = [sp.diags(diag, 0, shape=(n, n))]
    for off in (-1, 1):
        size = n - 1
        values = rng.random(size) + 0.1
        keep = rng.random(size) < density
        values = np.where(keep, values, 0.0)
        parts.append(sp.diags(values, off, shape=(n, n)))
    for off in (-40, 40):
        size = n - 40
        parts.append(sp.diags(rng.random(size) + 0.1, off, shape=(n, n)))
    return as_csr(sum(parts[1:], parts[0]).tocsr())


def run_dia_threshold(*, n: int = 8192, device=GTX580) -> ExperimentResult:
    """Per-diagonal storage and kernel performance across band densities.

    Section V's rule is *per diagonal*: a diagonal of density ``d``
    stored in DIA costs ``8n`` bytes (every slot, occupied or not); its
    ``d*n`` nonzeros cost ``12*d*n`` bytes in a padding-free ELL-family
    structure.  DIA wins iff ``8n < 12 d n``, i.e. ``d > 2/3``.  The
    comparison therefore uses the warp-grained format (slot efficiency
    ~1) as the ELL-side carrier, so padding does not mask the rule.
    """
    headers = ["band density", "band-in-warped MB", "band-in-DIA MB",
               "DIA smaller?", "warped GF", "hybrid GF"]
    rows = []
    crossover = None
    densities = (0.2, 0.4, 0.5, 0.6, 2 / 3, 0.75, 0.9, 1.0)
    from repro.sparse.dia import DIAMatrix
    for density in densities:
        A = band_matrix_with_density(n, density)
        # Isolate the +-1 decision: the (always dense) main diagonal
        # stays in DIA on both sides, only the band placement differs.
        main = DIAMatrix.from_scipy(A, offsets=[0])
        band = DIAMatrix.from_scipy(A, offsets=[-1, 0, 1])
        rest_with_band = as_csr((A - main.to_scipy()).tocsr())
        rest_without = as_csr((A - band.to_scipy()).tocsr())
        in_warped_bytes = (main.footprint()
                           + SellCSigmaMatrix(rest_with_band, chunk=32,
                                              sigma=256).footprint())
        in_dia_bytes = (band.footprint()
                        + SellCSigmaMatrix(rest_without, chunk=32,
                                           sigma=256).footprint())
        smaller = in_dia_bytes < in_warped_bytes
        if smaller and crossover is None:
            crossover = density
        # Kernel view: plain ELL vs the fused ELL+DIA at this density.
        ell = ELLMatrix(A)
        hybrid = ELLDIAMatrix(A, offsets=[-1, 0, 1])
        rows.append([
            round(density, 3),
            round(in_warped_bytes / 1e6, 3),
            round(in_dia_bytes / 1e6, 3),
            "yes" if smaller else "no",
            round(spmv_performance(ell, device, x_scale=100.0).gflops, 3),
            round(spmv_performance(hybrid, device, x_scale=100.0).gflops, 3),
        ])
    return ExperimentResult(
        experiment_id="Ablation (DIA threshold)",
        title="Section V's 8/12 density rule",
        headers=headers,
        rows=rows,
        summary={"rule_threshold": DIA_DENSITY_THRESHOLD,
                 "observed_crossover_at": crossover},
        notes=("A DIA slot costs 8 bytes whether occupied or not; a "
               "padding-free ELL nonzero costs 12.  Storage breaks even "
               "at density 2/3 — the rule select_band_offsets enforces."),
    )
