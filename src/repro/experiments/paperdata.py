"""The paper's published numbers, transcribed for side-by-side reports.

Source: Maggioni, Berger-Wolf & Liang, *GPU-based Steady-State Solution
of the Chemical Master Equation*, IPPS 2013 — Tables I-IV and the
Section VII-C prose.  ``None`` marks entries the paper leaves blank
(clSpMV did not run on phage-lambda-3).
"""

from __future__ import annotations

#: Table I — benchmark matrix statistics at the paper's full scale.
TABLE1 = {
    # name: (n, nnz, disk_MB, min, mean, max, std, d0, dband)
    "toggle-switch-1": (319_204, 1_908_834, 34.46, 3, 5.98, 7, 0.72, 1.00, 0.86),
    "brusselator": (501_500, 2_501_500, 47.69, 2, 4.99, 5, 0.13, 1.00, 1.00),
    "phage-lambda-1": (1_067_713, 10_058_061, 202.60, 2, 9.42, 15, 2.78, 1.00, 0.70),
    "schnakenberg": (2_003_001, 14_001_003, 289.36, 2, 6.99, 7, 0.15, 1.00, 1.00),
    "phage-lambda-2": (2_437_455, 25_948_259, 529.15, 3, 10.65, 15, 1.63, 1.00, 0.98),
    "toggle-switch-2": (4_425_151, 42_202_701, 788.40, 3, 9.54, 11, 1.06, 1.00, 1.00),
    "phage-lambda-3": (9_980_913, 94_469_061, 2088.07, 2, 9.47, 15, 2.77, 1.00, 0.97),
}

#: Table II — ELL vs ELL+DIA SpMV GFLOPS.
TABLE2 = {
    "toggle-switch-1": (17.652, 17.844),
    "brusselator": (19.308, 22.218),
    "phage-lambda-1": (11.602, 11.956),
    "schnakenberg": (21.694, 24.213),
    "phage-lambda-2": (11.375, 11.463),
    "toggle-switch-2": (19.539, 19.760),
    "phage-lambda-3": (11.056, 11.352),
}

#: Table III — ELL / sliced ELL / warp-grained ELL / clSpMV GFLOPS.
TABLE3 = {
    "toggle-switch-1": (17.652, 17.711, 18.731, 17.853),
    "brusselator": (19.308, 19.156, 18.859, 16.399),
    "phage-lambda-1": (11.602, 12.355, 15.103, 9.434),
    "schnakenberg": (21.694, 21.694, 24.213, 20.203),
    "phage-lambda-2": (11.375, 11.485, 11.973, 8.861),
    "toggle-switch-2": (19.539, 20.294, 20.627, 17.717),
    "phage-lambda-3": (11.056, 11.805, 14.511, None),
}

#: Table IV — Jacobi: iterations, residual, CPU CSR+DIA and GPU
#: warp-ELL+DIA GFLOPS.
TABLE4 = {
    "toggle-switch-1": (36_800, 2.625e-06, 1.399, 15.479),
    "brusselator": (125_800, 1.331e-06, 1.170, 17.218),
    "phage-lambda-1": (453_200, 9.713e-06, 0.730, 10.323),
    "schnakenberg": (18_300, 2.536e-07, 0.757, 20.119),
    "phage-lambda-2": (1_000_000, 9.025e-07, 0.865, 8.133),
    "toggle-switch-2": (21_400, 1.313e-05, 0.783, 17.772),
    "phage-lambda-3": (210_600, 1.288e-06, 0.646, 10.438),
}

#: Section VII-C prose: average SpMV GFLOPS by reordering strategy.
REORDERING = {"random": 2.783, "global": 15.137, "local": 16.278}

#: Section VII-C prose: average ELL GFLOPS at the two L1 configurations.
L1_CACHE = {16: 15.132, 48: 16.032}

#: Section VII-C prose: average memory footprints in MB.
FOOTPRINT_MB = {"warped-ell": 322.45, "ell": 440.98, "csr": 323.71}

#: Section VII-C prose / Figure 5 summary.
FIGURE5_AVG_IMPROVEMENT = 12.62
FIGURE5_MAX_IMPROVEMENT = 48.09
FIGURE5_MAX_DOMAIN = "quantum-chemistry"

#: Headline averages.
JACOBI_AVG_GPU_GFLOPS = 14.212
JACOBI_AVG_CPU_GFLOPS = 0.907
JACOBI_SPEEDUP = 15.67
SPMV_AVG = {"ell": 16.032, "sell": 16.346, "warped-ell": 17.320,
            "clspmv": 15.078, "ell+dia": 16.972}
CLSPMV_SPEEDUP = 1.24
