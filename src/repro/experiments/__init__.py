"""The per-table / per-figure experiment harness (DESIGN.md §4).

Each module reproduces one table or figure of the paper's evaluation:
it runs the workload, returns structured rows including the paper's
reference numbers, and renders the paper-style text table.  The
benchmark suite under ``benchmarks/`` wraps these with pytest-benchmark;
:mod:`repro.experiments.runner` regenerates ``EXPERIMENTS.md``.
"""

from repro.experiments.common import ExperimentResult
from repro.experiments import (  # noqa: F401  (re-exported modules)
    ablations,
    blocksize,
    kepler,
    figure2,
    figure5,
    footprint,
    l1cache,
    reordering,
    table1,
    table2,
    table3,
    table4,
)

__all__ = [
    "ExperimentResult",
    "table1",
    "table2",
    "table3",
    "table4",
    "figure2",
    "figure5",
    "blocksize",
    "kepler",
    "ablations",
    "l1cache",
    "reordering",
    "footprint",
]
