"""Table III — ELL vs sliced ELL vs warp-grained ELL vs clSpMV.

The paper's headline format comparison: the warp-grained sliced ELL
(slice = warp, block = 256, local rearrangement) should win on the
irregular phage-lambda family and beat the clSpMV ensemble on average
(1.24x in the paper, after single-precision normalization).
"""

from __future__ import annotations

import numpy as np

from repro.autotune import ClSpMVSelector
from repro.cme.models import benchmark_names, load_benchmark_matrix
from repro.experiments import paperdata
from repro.experiments.common import ExperimentResult, cached_format, x_scale_for
from repro.gpusim import GTX580, spmv_performance


def run(scale: str = "bench", device=GTX580) -> ExperimentResult:
    headers = ["network", "ELL", "SELL", "Warped", "clSpMV (sel)",
               "paper ELL", "paper SELL", "paper Warped", "paper clSpMV"]
    rows = []
    sums = {k: [] for k in ("ell", "sell", "warped", "clspmv")}
    selector = ClSpMVSelector(device)
    for name in benchmark_names():
        A = load_benchmark_matrix(name, scale)
        xs = x_scale_for(name, A.shape[0])
        ell = spmv_performance(cached_format(name, scale, "ell"),
                               device, x_scale=xs).gflops
        sell = spmv_performance(cached_format(name, scale, "sell"),
                                device, x_scale=xs).gflops
        warped = spmv_performance(cached_format(name, scale, "warped:local"),
                                  device, x_scale=xs).gflops
        selection = selector.select(A, x_scale=xs)
        cl = selection.normalized_gflops
        for key, val in zip(sums, (ell, sell, warped, cl)):
            sums[key].append(val)
        p = paperdata.TABLE3[name]
        rows.append([name, round(ell, 3), round(sell, 3), round(warped, 3),
                     f"{cl:.3f} ({selection.chosen})",
                     p[0], p[1], p[2], p[3] if p[3] is not None else "-"])
    avgs = {k: float(np.mean(v)) for k, v in sums.items()}
    rows.append(["AVERAGE", round(avgs["ell"], 3), round(avgs["sell"], 3),
                 round(avgs["warped"], 3), round(avgs["clspmv"], 3),
                 paperdata.SPMV_AVG["ell"], paperdata.SPMV_AVG["sell"],
                 paperdata.SPMV_AVG["warped-ell"],
                 paperdata.SPMV_AVG["clspmv"]])
    return ExperimentResult(
        experiment_id="Table III",
        title="ELL vs Sliced ELL vs Warp-grained ELL vs clSpMV",
        headers=headers,
        rows=rows,
        summary={
            "warped_over_clspmv_model": avgs["warped"] / avgs["clspmv"],
            "warped_over_clspmv_paper": paperdata.CLSPMV_SPEEDUP,
            "warped_over_ell_model": avgs["warped"] / avgs["ell"],
        },
    )
