"""Section VII-D's Kepler outlook, made quantitative.

The paper closes Table IV's discussion with the Kepler generation:
"in terms of double precision performance, Kepler assures an increased
peak of 1.31 TFLOPS ... but this improvement is not fundamental for
sparse linear algebra.  In fact, we can expect more benefits from an
improved memory hierarchy (more bandwidth at each level)."

This experiment runs the warp-grained Jacobi kernel model on three
devices — the GTX580, a K20X, and a hypothetical K20X whose *only*
change is the Fermi flop peak — to separate the two effects: the
flop-peak column barely moves (the kernel is bandwidth-bound), while
the bandwidth/hierarchy column carries all of Kepler's gain, exactly
the paper's argument.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.cme.models import benchmark_names
from repro.experiments.common import ExperimentResult, cached_format, x_scale_for
from repro.gpusim import GTX580, KEPLER_K20X, jacobi_performance


def run(scale: str = "bench") -> ExperimentResult:
    # Kepler's memory system with Fermi's (quarter-rate) DP peak:
    # isolates how much of the K20X gain comes from flops alone.
    kepler_fermi_flops = dataclasses.replace(
        KEPLER_K20X, dp_peak_gflops=GTX580.dp_peak_gflops,
        name="K20X [Fermi DP peak]")

    headers = ["network", "GTX580 GF", "K20X GF",
               "K20X w/ Fermi flops GF", "bandwidth-driven gain %"]
    rows = []
    sums = {"fermi": [], "kepler": [], "hybrid": []}
    for name in benchmark_names():
        fmt = cached_format(name, scale, "warped+dia")
        xs = x_scale_for(name, fmt.shape[0])
        per = {}
        for key, device in (("fermi", GTX580), ("kepler", KEPLER_K20X),
                            ("hybrid", kepler_fermi_flops)):
            per[key] = jacobi_performance(
                fmt, device, check_interval=100, normalize_interval=10,
                x_scale=xs).gflops
            sums[key].append(per[key])
        rows.append([name, round(per["fermi"], 3), round(per["kepler"], 3),
                     round(per["hybrid"], 3),
                     round(100 * (per["hybrid"] / per["fermi"] - 1), 1)])
    avg = {k: float(np.mean(v)) for k, v in sums.items()}
    rows.append(["AVERAGE", round(avg["fermi"], 3), round(avg["kepler"], 3),
                 round(avg["hybrid"], 3),
                 round(100 * (avg["hybrid"] / avg["fermi"] - 1), 1)])
    return ExperimentResult(
        experiment_id="Section VII-D (Kepler outlook)",
        title="Jacobi kernel: Fermi vs Kepler, flops vs bandwidth",
        headers=headers,
        rows=rows,
        summary={
            "kepler_gain_pct": 100 * (avg["kepler"] / avg["fermi"] - 1),
            "share_from_bandwidth_pct":
                100 * (avg["hybrid"] - avg["fermi"])
                / max(avg["kepler"] - avg["fermi"], 1e-9),
        },
        notes=("The 'Fermi flops' column keeps Kepler's memory system but "
               "caps DP at the GTX580's 197 GFLOPS: virtually the whole "
               "Kepler gain survives, confirming Section VII-D's claim "
               "that the DP-peak increase 'is not fundamental for sparse "
               "linear algebra'."),
    )
