"""Table I — sparse linear systems from sample biological networks.

Rebuilds the seven benchmark matrices and reports the paper's structure
metrics side by side with the published full-scale values.  Sizes differ
by construction (the reproduction enumerates smaller buffers, DESIGN.md
§2); the *structure* columns — nnz-per-row profile, variability, skew
and diagonal densities — are the reproduction targets.
"""

from __future__ import annotations

from repro.cme.models import benchmark_names, load_benchmark_matrix
from repro.experiments import paperdata
from repro.experiments.common import ExperimentResult
from repro.sparse.stats import matrix_stats


def run(scale: str = "bench") -> ExperimentResult:
    """Compute the Table I statistics at the given registry scale."""
    headers = ["network", "n", "nnz", "disk MB",
               "min", "mean", "max", "std",
               "var", "skew", "d{0}", "d{-1,0,+1}",
               "paper mean/max", "paper var", "paper band"]
    rows = []
    for name in benchmark_names():
        A = load_benchmark_matrix(name, scale)
        st = matrix_stats(A)
        p = paperdata.TABLE1[name]
        p_mean, p_max, p_std = p[4], p[5], p[6]
        rows.append([
            name, st.n, st.nnz, round(st.disk_megabytes, 2),
            st.min_nnz_row, round(st.mean_nnz_row, 2), st.max_nnz_row,
            round(st.std_nnz_row, 2),
            round(st.variability, 2), round(st.skew, 2),
            round(st.diag_density, 2), round(st.band_density, 2),
            f"{p_mean}/{p_max}", round(p_std / p_mean, 2), p[8],
        ])
    return ExperimentResult(
        experiment_id="Table I",
        title="Sparse linear systems from sample biological networks",
        headers=headers,
        rows=rows,
        notes=("Sizes are scaled down (DESIGN.md §2); structure columns "
               "(mean/max nnz-per-row, variability, diagonal densities) "
               "are the reproduction targets."),
    )
