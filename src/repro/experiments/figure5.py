"""Figure 5 — sliced ELL vs warp-grained sliced ELL across UF domains.

For each synthetic domain stand-in (DESIGN.md §2) the baseline is the
*autotuned* original sliced ELL — the best slice size with the slice
coupled to the CUDA block, exactly the coupling the warp-grained variant
removes — against the warp-grained format (slice 32, block 256, local
rearrangement).  The paper reports a +12.6% average improvement with a
+48.1% maximum in the quantum-chemistry domain.
"""

from __future__ import annotations

import numpy as np

from repro.experiments import paperdata
from repro.experiments.common import ExperimentResult
from repro.gpusim import GTX580, spmv_performance
from repro.matrixgen import DOMAINS, generate_domain
from repro.sparse.sliced_ell import SlicedELLMatrix
from repro.sparse.warped_ell import WarpedELLMatrix

#: Candidate slice(=block) sizes of the autotuned original format.
SLICE_CANDIDATES = (32, 64, 128, 256)

#: Far-reuse normalization applied uniformly (UF matrices are far larger
#: than the synthetic stand-ins).
X_SCALE = 50.0


def best_sliced_gflops(A, device) -> tuple[float, int]:
    """Autotune the original sliced ELL (slice = block) over sizes."""
    best, best_s = -1.0, SLICE_CANDIDATES[0]
    for s in SLICE_CANDIDATES:
        perf = spmv_performance(SlicedELLMatrix(A, slice_size=s),
                                device, block_size=s, x_scale=X_SCALE)
        if perf.gflops > best:
            best, best_s = perf.gflops, s
    return best, best_s


def run(*, n: int = 8000, seed: int = 1, device=GTX580) -> ExperimentResult:
    headers = ["domain", "sliced GF (best s)", "warped GF", "improvement %"]
    rows = []
    gains = {}
    for name in DOMAINS:
        A = generate_domain(name, n=n, seed=seed)
        sliced, best_s = best_sliced_gflops(A, device)
        warped = spmv_performance(WarpedELLMatrix(A, reorder="local"),
                                  device, x_scale=X_SCALE).gflops
        gain = 100.0 * (warped / sliced - 1.0)
        gains[name] = gain
        rows.append([name, f"{sliced:.3f} (s={best_s})",
                     round(warped, 3), round(gain, 1)])
    avg = float(np.mean(list(gains.values())))
    max_domain = max(gains, key=gains.get)
    rows.append(["AVERAGE", "", "", round(avg, 1)])
    return ExperimentResult(
        experiment_id="Figure 5",
        title="Sliced ELL versus warp-grained sliced ELL by domain",
        headers=headers,
        rows=rows,
        summary={
            "avg_improvement_model": avg,
            "avg_improvement_paper": paperdata.FIGURE5_AVG_IMPROVEMENT,
            "max_domain_model": max_domain,
            "max_domain_paper": paperdata.FIGURE5_MAX_DOMAIN,
            "max_improvement_model": gains[max_domain],
            "max_improvement_paper": paperdata.FIGURE5_MAX_IMPROVEMENT,
        },
    )
