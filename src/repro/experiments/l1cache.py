"""Section VII-C L1 experiment — 16 KB versus 48 KB.

Fermi's 64 KB on-chip memory splits into L1 + shared memory; preferring
L1 (48 KB) buys the ``x``-gather reuse path more capacity.  The paper
measures +6% average ELL SpMV (15.132 -> 16.032 GFLOPS).
"""

from __future__ import annotations

import numpy as np

from repro.cme.models import benchmark_names
from repro.experiments import paperdata
from repro.experiments.common import ExperimentResult, cached_format, x_scale_for
from repro.gpusim import GTX580, spmv_performance


def run(scale: str = "bench", device=GTX580) -> ExperimentResult:
    headers = ["network", "16KB GF", "48KB GF", "gain %"]
    rows = []
    avgs = {16: [], 48: []}
    for name in benchmark_names():
        fmt = cached_format(name, scale, "ell")
        xs = x_scale_for(name, fmt.shape[0])
        per = {}
        for l1 in (16, 48):
            per[l1] = spmv_performance(fmt, device.with_l1(l1),
                                       x_scale=xs).gflops
            avgs[l1].append(per[l1])
        rows.append([name, round(per[16], 3), round(per[48], 3),
                     round(100 * (per[48] / per[16] - 1), 2)])
    a16, a48 = float(np.mean(avgs[16])), float(np.mean(avgs[48]))
    rows.append(["AVERAGE", round(a16, 3), round(a48, 3),
                 round(100 * (a48 / a16 - 1), 2)])
    return ExperimentResult(
        experiment_id="Section VII-C (L1 size)",
        title="ELL SpMV with 16KB vs 48KB L1",
        headers=headers,
        rows=rows,
        summary={
            "gain_model_pct": 100 * (a48 / a16 - 1),
            "gain_paper_pct": 100 * (paperdata.L1_CACHE[48]
                                     / paperdata.L1_CACHE[16] - 1),
        },
    )
