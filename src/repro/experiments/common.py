"""Shared experiment plumbing: cached formats, result container."""

from __future__ import annotations

import functools
from dataclasses import dataclass, field
from typing import Any

from repro.cme.models import BENCHMARKS, load_benchmark_matrix
from repro.sparse.csr import CSRMatrix
from repro.sparse.ell import ELLMatrix
from repro.sparse.ell_dia import ELLDIAMatrix
from repro.sparse.sliced_ell import SlicedELLMatrix
from repro.sparse.warped_ell import WarpedELLMatrix
from repro.utils.tables import Table


@dataclass
class ExperimentResult:
    """Structured outcome of one experiment."""

    experiment_id: str
    title: str
    headers: list
    rows: list
    #: Free-form summary values (averages, speedups, ...).
    summary: dict = field(default_factory=dict)
    notes: str = ""

    def table(self) -> Table:
        t = Table(self.headers, title=f"{self.experiment_id}: {self.title}")
        for row in self.rows:
            t.add_row(row)
        return t

    def render(self) -> str:
        out = self.table().render()
        if self.summary:
            out += "\n" + "  ".join(
                f"{k}={_fmt(v)}" for k, v in self.summary.items())
        if self.notes:
            out += "\n" + self.notes
        return out


def _fmt(v: Any) -> str:
    if isinstance(v, float):
        return f"{v:.3f}"
    return str(v)


def x_scale_for(name: str, n: int) -> float:
    """Problem-size normalization for a scaled-down benchmark.

    ``paper_n / n`` — see :func:`repro.gpusim.perfmodel.estimate_performance`.
    """
    return max(1.0, BENCHMARKS[name].paper_n / n)


@functools.lru_cache(maxsize=128)
def cached_format(name: str, scale: str, fmt: str):
    """Build (once) a device format of a registry benchmark matrix."""
    A = load_benchmark_matrix(name, scale)
    if fmt == "ell":
        return ELLMatrix(A)
    if fmt == "ell+dia":
        return ELLDIAMatrix(A)
    if fmt == "sell":
        return SlicedELLMatrix(A, slice_size=256)
    if fmt == "csr":
        return CSRMatrix(A)
    if fmt == "warped+dia":
        return WarpedELLMatrix(A, reorder="local", separate_diagonal=True)
    if fmt.startswith("warped"):
        _, _, reorder = fmt.partition(":")
        return WarpedELLMatrix(A, reorder=reorder or "local")
    raise ValueError(f"unknown format key {fmt!r}")
