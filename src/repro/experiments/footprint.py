"""Section VII-C footprint experiment — warped ELL vs ELL vs CSR.

Byte-exact device footprints of the three structures.  The paper's
averages over its benchmark set: warped 322.45 MB, CSR 323.71 MB, ELL
440.98 MB — i.e. the warp-grained format erases ELL's padding bloat and
edges out even CSR.  At the reproduction's scale the absolute numbers
shrink with the matrices; the *ratios* are the target.
"""

from __future__ import annotations

from repro.cme.models import benchmark_names
from repro.experiments import paperdata
from repro.experiments.common import ExperimentResult, cached_format


def run(scale: str = "bench") -> ExperimentResult:
    headers = ["network", "ELL MB", "CSR MB", "warped MB",
               "warped/ELL", "warped/CSR"]
    rows = []
    sums = {"ell": 0.0, "csr": 0.0, "warped": 0.0}
    for name in benchmark_names():
        ell = cached_format(name, scale, "ell").footprint() / 1e6
        csr = cached_format(name, scale, "csr").footprint() / 1e6
        warped = cached_format(name, scale, "warped:local").footprint() / 1e6
        sums["ell"] += ell
        sums["csr"] += csr
        sums["warped"] += warped
        rows.append([name, round(ell, 2), round(csr, 2), round(warped, 2),
                     round(warped / ell, 2), round(warped / csr, 2)])
    n = len(benchmark_names())
    avg = {k: v / n for k, v in sums.items()}
    rows.append(["AVERAGE", round(avg["ell"], 2), round(avg["csr"], 2),
                 round(avg["warped"], 2),
                 round(avg["warped"] / avg["ell"], 2),
                 round(avg["warped"] / avg["csr"], 2)])
    return ExperimentResult(
        experiment_id="Section VII-C (footprint)",
        title="Memory footprint: ELL vs CSR vs warp-grained ELL",
        headers=headers,
        rows=rows,
        summary={
            "warped_over_ell_model": avg["warped"] / avg["ell"],
            "warped_over_ell_paper": (paperdata.FOOTPRINT_MB["warped-ell"]
                                      / paperdata.FOOTPRINT_MB["ell"]),
            "warped_over_csr_model": avg["warped"] / avg["csr"],
            "warped_over_csr_paper": (paperdata.FOOTPRINT_MB["warped-ell"]
                                      / paperdata.FOOTPRINT_MB["csr"]),
        },
    )
