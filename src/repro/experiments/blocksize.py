"""Section VII-C block-size sweep — b = 256 is the sweet spot.

The paper identifies the best ELL block size by exhaustive testing:
small blocks starve the SM through the 8-blocks cap, 512 reaches full
occupancy but with coarser block turnover, 1024 cannot fill the SM at
all.  The occupancy model reproduces the sweep.
"""

from __future__ import annotations

import numpy as np

from repro.cme.models import benchmark_names
from repro.experiments.common import ExperimentResult, cached_format, x_scale_for
from repro.gpusim import GTX580, calculate_occupancy, spmv_performance

BLOCK_SIZES = (32, 64, 128, 256, 512, 1024)


def run(scale: str = "bench", device=GTX580) -> ExperimentResult:
    headers = ["block size", "warps/SM", "occupancy", "throughput factor",
               "avg ELL GF"]
    rows = []
    best = (None, -1.0)
    for b in BLOCK_SIZES:
        occ = calculate_occupancy(device, b)
        vals = []
        for name in benchmark_names():
            fmt = cached_format(name, scale, "ell")
            xs = x_scale_for(name, fmt.shape[0])
            vals.append(spmv_performance(fmt, device, block_size=b,
                                         x_scale=xs).gflops)
        avg = float(np.mean(vals))
        if avg > best[1]:
            best = (b, avg)
        rows.append([b, occ.resident_warps, round(occ.ratio, 3),
                     round(occ.throughput_factor, 3), round(avg, 3)])
    return ExperimentResult(
        experiment_id="Section VII-C (block size)",
        title="ELL SpMV block-size sweep",
        headers=headers,
        rows=rows,
        summary={"best_block_model": best[0], "best_block_paper": 256},
    )
