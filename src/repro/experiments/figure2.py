"""Figure 2 — steady-state probability landscape of the toggle switch.

Solves the toggle-switch CME and projects the steady state onto the
``(nA, nB)`` plane.  The reproduction target is the figure's qualitative
content: a bimodal landscape with probability concentrated at the two
mutual-inhibition corners ("on/off" and "off/on") and negligible mass at
the symmetric center.
"""

from __future__ import annotations

from repro.cme.landscape import ProbabilityLandscape
from repro.cme.master_equation import CMEOperator
from repro.cme.models.toggle_switch import toggle_switch
from repro.cme.statespace import enumerate_state_space
from repro.experiments.common import ExperimentResult
from repro.solvers import JacobiSolver


def run(*, max_protein: int = 50, tol: float = 1e-10,
        max_iterations: int = 200_000) -> ExperimentResult:
    network = toggle_switch(max_protein=max_protein)
    space = enumerate_state_space(network)
    operator = CMEOperator(space)
    solver = JacobiSolver(operator.A, tol=tol,
                          max_iterations=max_iterations,
                          check_interval=200)
    result = solver.solve()
    landscape = ProbabilityLandscape(space, result.x)

    modes = landscape.grid_modes("A", "B")
    grid = landscape.marginal2d("A", "B")
    # Probability mass in the two expected corners vs the center.
    half = (max_protein + 1) // 2
    on_off = float(grid[half:, :half].sum())     # A high, B low
    off_on = float(grid[:half, half:].sum())     # B high, A low
    center = float(grid[half // 2: half + half // 2,
                        half // 2: half + half // 2].sum())

    headers = ["quantity", "value"]
    rows = [
        ["states", space.size],
        ["solver iterations", result.iterations],
        ["normalized residual", f"{result.residual:.3e}"],
        ["modes (nA, nB)", "; ".join(map(str, modes[:4]))],
        ["P(A on, B off)", round(on_off, 4)],
        ["P(B on, A off)", round(off_on, 4)],
        ["P(center window)", round(center, 4)],
        ["entropy (nats)", round(landscape.entropy(), 3)],
    ]
    return ExperimentResult(
        experiment_id="Figure 2",
        title="Steady-state probability landscape of the toggle switch",
        headers=headers,
        rows=rows,
        summary={"bimodal": len(modes) >= 2,
                 "corner_mass": on_off + off_on},
        notes=landscape.ascii_heatmap("A", "B"),
    )
