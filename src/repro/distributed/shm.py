"""Shared-memory layout and sync protocol of the sharded solver.

One solve owns two POSIX shared-memory segments:

``data`` (float64)
    ``[x0 | x1 | y | ynorm | xnorm]`` — two full-length iterate
    buffers (ping-pong in barrier mode, only ``x0`` live in chaotic
    mode), the residual-product buffer ``y`` and two ``shards``-wide
    slots per-shard norm reports for the chaotic residual aggregator.

``ctrl`` (int64)
    ``[epoch, cmd, read, …reserved… | done | sweeps | halo_bytes |
    staleness]`` — the protocol header followed by four
    ``shards``-wide counter blocks.  Each worker writes only its own
    slot of each block; the parent only reads them (plus the header,
    which only the parent writes).

The sync protocol is epoch-based rather than a
:class:`multiprocessing.Barrier` so that a killed worker can be
respawned without wedging the survivors: the parent publishes
``(read, cmd)`` and *then* bumps ``epoch``; each worker waits for an
epoch it has not seen, executes the command, and acknowledges by
writing the epoch into its ``done`` slot.  The parent waits for
``done >= epoch`` everywhere.  An epoch aborted by a worker death is
simply never awaited again — the next command gets a fresh epoch and
every write buffer is fully rewritten by the shard that owns it.

Aligned 8-byte loads/stores are atomic on every platform this runs
on, and the single-writer discipline above means no slot is ever
raced; the ``epoch`` store is the release point for the command
fields written before it.
"""

from __future__ import annotations

import time
from multiprocessing import shared_memory

import numpy as np

# Commands the parent publishes (values are arbitrary but stable).
CMD_IDLE = 0          #: initial state, never executed
CMD_SWEEP = 1         #: gather halo from x[read], write block to x[1-read]
CMD_STEP_FROM_Y = 2   #: advance from the shared product y (no gather)
CMD_PRODUCT = 3       #: gather, write local rows of y = A @ x[read]
CMD_CHAOTIC = 4       #: ack, then free-run on x0 until the epoch moves
CMD_PAUSE = 5         #: ack only (exits chaotic free-running)
CMD_STOP = 6          #: ack and exit

# ctrl header slots.
IDX_EPOCH = 0
IDX_CMD = 1
IDX_READ = 2
_HEADER = 8


def wait_until(cond, *, timeout_s=None, abort=None,
               poll_s: float = 0.0002) -> bool:
    """Spin-then-sleep until ``cond()`` holds.

    Returns ``False`` on timeout or when ``abort()`` (polled every
    couple of milliseconds) returns true.  The early ``sleep(0)``
    yields keep latency low when a peer is about to flip the flag,
    the short sleeps afterwards keep an oversubscribed host (more
    shards than cores) from burning the very cycles the peer needs.
    """
    t0 = time.perf_counter()
    last_abort = t0
    spins = 0
    while not cond():
        now = time.perf_counter()
        if abort is not None and now - last_abort >= 0.002:
            if abort():
                return False
            last_abort = now
        if timeout_s is not None and now - t0 >= timeout_s:
            return False
        if spins < 50:
            spins += 1
            time.sleep(0)
        else:
            time.sleep(poll_s)
    return True


def _attach_segment(name: str) -> shared_memory.SharedMemory:
    """Attach to an existing segment without tracker registration.

    Workers must not register the parent-owned segment with their
    ``resource_tracker``: the tracker unlinks registered segments when
    its process exits, which would tear the buffers out from under the
    parent (and spam leak warnings).  Python 3.13 exposes
    ``track=False``; earlier versions need the unregister workaround.
    """
    try:
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:
        # Pre-3.13: attach registers with the resource tracker, and a
        # later unregister would race the *parent's* entry when the
        # tracker process is shared (fork).  Suppress the registration
        # itself instead — the worker is single-threaded here.
        from multiprocessing import resource_tracker
        original = resource_tracker.register
        resource_tracker.register = lambda *a, **k: None
        try:
            return shared_memory.SharedMemory(name=name)
        finally:
            resource_tracker.register = original


class SharedState:
    """Typed views over one solve's two shared segments."""

    def __init__(self, data_seg, ctrl_seg, n: int, shards: int,
                 owner: bool):
        self._data_seg = data_seg
        self._ctrl_seg = ctrl_seg
        self._owner = owner
        self.n = int(n)
        self.shards = int(shards)
        self.data = np.ndarray((3 * self.n + 2 * self.shards,),
                               dtype=np.float64, buffer=data_seg.buf)
        self.ctrl = np.ndarray((_HEADER + 4 * self.shards,),
                               dtype=np.int64, buffer=ctrl_seg.buf)

    @classmethod
    def create(cls, n: int, shards: int) -> "SharedState":
        data_seg = shared_memory.SharedMemory(
            create=True, size=max(8, (3 * n + 2 * shards) * 8))
        ctrl_seg = shared_memory.SharedMemory(
            create=True, size=(_HEADER + 4 * shards) * 8)
        state = cls(data_seg, ctrl_seg, n, shards, owner=True)
        state.data[:] = 0.0
        state.ctrl[:] = 0
        return state

    @classmethod
    def attach(cls, data_name: str, ctrl_name: str, *, n: int,
               shards: int) -> "SharedState":
        return cls(_attach_segment(data_name), _attach_segment(ctrl_name),
                   n, shards, owner=False)

    @property
    def names(self) -> tuple[str, str]:
        return (self._data_seg.name, self._ctrl_seg.name)

    # -- float64 views ----------------------------------------------------

    def x(self, index: int) -> np.ndarray:
        """Iterate buffer *index* (0 or 1), full length."""
        base = index * self.n
        return self.data[base:base + self.n]

    @property
    def y(self) -> np.ndarray:
        """The residual-product buffer ``y = A @ x``."""
        return self.data[2 * self.n:3 * self.n]

    @property
    def ynorm(self) -> np.ndarray:
        """Per-shard ``||(A x)_block||_inf`` reports (chaotic mode)."""
        base = 3 * self.n
        return self.data[base:base + self.shards]

    @property
    def xnorm(self) -> np.ndarray:
        """Per-shard ``||x_block||_inf`` reports (chaotic mode)."""
        base = 3 * self.n + self.shards
        return self.data[base:base + self.shards]

    # -- int64 views ------------------------------------------------------

    @property
    def done(self) -> np.ndarray:
        """Last epoch each shard acknowledged."""
        return self.ctrl[_HEADER:_HEADER + self.shards]

    @property
    def sweeps(self) -> np.ndarray:
        """Cumulative *attempted* sweeps per shard (survives respawn;
        incremented before fault checks so an injected kill cannot
        refire forever)."""
        base = _HEADER + self.shards
        return self.ctrl[base:base + self.shards]

    @property
    def halo_bytes(self) -> np.ndarray:
        """Cumulative halo bytes gathered per shard."""
        base = _HEADER + 2 * self.shards
        return self.ctrl[base:base + self.shards]

    @property
    def staleness(self) -> np.ndarray:
        """Max observed sweep lead over the slowest peer (chaotic)."""
        base = _HEADER + 3 * self.shards
        return self.ctrl[base:base + self.shards]

    def close(self) -> None:
        """Release the mappings; the owner also unlinks the segments."""
        self.data = None
        self.ctrl = None
        for seg in (self._data_seg, self._ctrl_seg):
            try:
                seg.close()
            except BufferError:
                # A live view still pins the mmap; the fd is released
                # when it is collected.  Unlinking below is unaffected.
                pass
            if self._owner:
                try:
                    seg.unlink()
                except FileNotFoundError:
                    pass
