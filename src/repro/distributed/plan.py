"""Shard planning: from a CSR generator to picklable worker specs.

The partition itself is :func:`repro.multigpu.partition.partition_rows`
— the same contiguous, nnz-balanced row blocks the multi-GPU traffic
model reasons about analytically.  This module repackages each
:class:`~repro.multigpu.partition.Partition` into a
:class:`WorkerSpec`: a plain dataclass of arrays and scalars that
pickles cleanly under the ``spawn`` start method and carries everything
a worker process needs (its matrix slice, shared-segment names, sync
parameters and the shard-site fault schedule).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.multigpu.partition import Partition, partition_rows


@dataclass
class WorkerSpec:
    """Everything one shard worker needs, in picklable form.

    The matrix slice travels as raw CSR arrays (``indptr`` int64,
    ``indices`` int32, ``data`` float64) with the *global* column
    space, so the worker reconstructs exactly the rectangular slice
    the parent partitioned — same values, same ordering, which is what
    keeps barrier-mode sweeps bitwise equal to the serial solver.
    """

    shard: int
    shards: int
    n: int
    row_start: int
    row_stop: int
    indptr: np.ndarray
    indices: np.ndarray
    data: np.ndarray
    diag: np.ndarray
    halo: np.ndarray
    damping: float
    max_iterations: int
    backend: str | None
    data_name: str
    ctrl_name: str
    parent_pid: int
    start_epoch: int
    plan_json: str | None


def build_specs(A, diagonal: np.ndarray, *, shards: int, damping: float,
                max_iterations: int, backend: str | None,
                data_name: str, ctrl_name: str, parent_pid: int,
                plan_json: str | None
                ) -> tuple[list[Partition], list[WorkerSpec]]:
    """Partition *A* and build one :class:`WorkerSpec` per shard."""
    parts = partition_rows(A, shards)
    specs = []
    for part in parts:
        local = part.local
        specs.append(WorkerSpec(
            shard=part.device_index,
            shards=shards,
            n=A.shape[0],
            row_start=part.row_start,
            row_stop=part.row_stop,
            indptr=np.ascontiguousarray(local.indptr, dtype=np.int64),
            indices=np.ascontiguousarray(local.indices, dtype=np.int32),
            data=np.ascontiguousarray(local.data, dtype=np.float64),
            diag=np.ascontiguousarray(
                diagonal[part.row_start:part.row_stop], dtype=np.float64),
            halo=np.ascontiguousarray(part.halo_columns, dtype=np.int64),
            damping=float(damping),
            max_iterations=int(max_iterations),
            backend=backend,
            data_name=data_name,
            ctrl_name=ctrl_name,
            parent_pid=parent_pid,
            start_epoch=0,
            plan_json=plan_json,
        ))
    return parts, specs
