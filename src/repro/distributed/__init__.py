"""Domain-decomposed (sharded) steady-state solving.

The executional counterpart of :mod:`repro.multigpu`'s analytic
multi-device model: :class:`ShardedJacobiSolver` actually runs the
partitioned Jacobi iteration across a pool of worker processes with
shared-memory halo exchange, in either barrier (bitwise-serial) or
chaotic (asynchronous) synchronization.  Registered as
``method="sharded"`` in :data:`repro.solvers.SOLVER_REGISTRY`.

See DESIGN.md §14 for the partition contract, the halo-exchange
protocol and the barrier-vs-chaotic semantics.
"""

from repro.distributed.plan import WorkerSpec, build_specs
from repro.distributed.sharded import SYNC_MODES, ShardedJacobiSolver

__all__ = [
    "SYNC_MODES",
    "ShardedJacobiSolver",
    "WorkerSpec",
    "build_specs",
]
