"""The shard worker process: command loop, sweeps and halo gathers.

Each worker owns one contiguous row block of the generator (a
rectangular ``(m, n)`` CSR slice) and a *private* full-length gather
buffer ``xl``.  Before a sweep it copies its own block plus the halo
columns — the only out-of-block entries its slice references — from
the shared iterate buffer into ``xl``, then runs the block sweep
through the kernel-backend stack (the native backend's
``csr_jacobi_sweep_block`` when available) and writes its rows of the
result back to shared memory.  Only ``block + halo`` entries ever
cross the process boundary per sweep; the worker counts the halo
bytes in its ``halo_bytes`` slot.

Sync modes (see :mod:`repro.distributed.shm` for the protocol):

barrier
    The worker executes exactly one command per epoch
    (``SWEEP`` / ``STEP_FROM_Y`` / ``PRODUCT``) and acknowledges it.
chaotic
    On ``CMD_CHAOTIC`` the worker acknowledges once, then free-runs
    in-place on buffer 0 — gathering whatever (possibly stale) halo
    values its peers last published — until the parent moves the
    epoch.  Each sweep it reports its block's ``||A x||_inf`` /
    ``||x||_inf`` for the parent's residual aggregator and tracks how
    far it has run ahead of the slowest peer (``staleness``).

Fault injection (site ``"shard.worker"``) rides in the spec as a JSON
fault plan rather than the process-global injector, which does not
cross process boundaries.  Faults match against the shard's cumulative
*attempted* sweep counter, which lives in shared memory and therefore
survives a respawn — a one-shot ``kill`` fires once, not on every
reincarnation.
"""

from __future__ import annotations

import os
import sys
import time
import traceback

import numpy as np
import scipy.sparse as sp

from repro.distributed import shm as S


def worker_main(spec) -> None:
    """Entry point of one shard worker process."""
    # Workers are pinned to one OpenMP thread each: the parent already
    # runs one process per shard, and nested OMP teams would thrash an
    # oversubscribed host.  Set before any kernel library loads.
    os.environ["OMP_NUM_THREADS"] = os.environ.get(
        "REPRO_SHARD_OMP_THREADS", "1")
    from repro import backends
    from repro.errors import WorkerCrashError
    from repro.resilience.faults import FaultPlan

    state = S.SharedState.attach(spec.data_name, spec.ctrl_name,
                                 n=spec.n, shards=spec.shards)
    try:
        _run(spec, state, backends, FaultPlan, WorkerCrashError)
    except WorkerCrashError:
        # An injected kill: die silently with a nonzero status; the
        # parent's liveness scan turns this into a recovery event.
        os._exit(1)
    except Exception:  # pragma: no cover - defensive
        traceback.print_exc(file=sys.stderr)
        os._exit(1)
    finally:
        state.close()


def _run(spec, state, backends, FaultPlan, WorkerCrashError) -> None:
    d = spec.shard
    lo, hi = spec.row_start, spec.row_stop
    local = sp.csr_matrix((spec.data, spec.indices, spec.indptr),
                          shape=(hi - lo, spec.n))
    diag = spec.diag
    halo = spec.halo
    halo_delta = int(halo.size) * 8
    damping = spec.damping

    be = backends.serving("", "jacobi_sweep", spec.backend)
    # The block sweep is an extension method, not a protocol op: probe
    # for it and keep the inline reference formula as the fallback.
    block_sweep = getattr(be, "jacobi_sweep_block", None)

    fault_specs = ()
    if spec.plan_json:
        fault_specs = FaultPlan.from_json(spec.plan_json).for_site(
            "shard.worker")
    fired = [0] * len(fault_specs)

    ctrl = state.ctrl
    done = state.done
    sweeps = state.sweeps
    halo_bytes = state.halo_bytes
    staleness = state.staleness
    ynorm = state.ynorm
    xnorm = state.xnorm
    xl = np.zeros(spec.n, dtype=np.float64)

    def gather(xb: np.ndarray) -> None:
        xl[lo:hi] = xb[lo:hi]
        if halo.size:
            xl[halo] = xb[halo]
            halo_bytes[d] += halo_delta

    def maybe_fault() -> None:
        # Count the attempt *before* evaluating the schedule so a
        # one-shot kill cannot refire after the parent respawns us.
        idx = int(sweeps[d])
        sweeps[d] = idx + 1
        for i, fs in enumerate(fault_specs):
            if fired[i] < fs.count and fs.matches(idx):
                fired[i] += 1
                if fs.kind == "kill":
                    raise WorkerCrashError(
                        f"injected kill fault at shard {d}, sweep {idx}")
                time.sleep(fs.delay_s)  # kind == "stall"

    def block_update() -> np.ndarray:
        """The (damped) Jacobi update of the owned block from ``xl``."""
        if block_sweep is not None:
            return block_sweep(local, diag, xl, lo, damping=damping)
        y = local @ xl
        new = -(y - diag * xl[lo:hi]) / diag
        if damping != 1.0:
            new = (1.0 - damping) * xl[lo:hi] + damping * new
        return new

    parent = spec.parent_pid

    def orphaned() -> bool:
        return os.getppid() != parent

    def chaotic_run(my_epoch: int) -> None:
        xb = state.x(0)
        while int(ctrl[S.IDX_EPOCH]) == my_epoch:
            if orphaned():
                return
            if int(sweeps[d]) >= spec.max_iterations:
                time.sleep(0.0005)
                continue
            maybe_fault()
            gather(xb)
            # The explicit product (instead of the fused kernel) keeps
            # the block residual norm available for the aggregator.
            y = local @ xl
            new = -(y - diag * xl[lo:hi]) / diag
            if damping != 1.0:
                new = (1.0 - damping) * xl[lo:hi] + damping * new
            xb[lo:hi] = new
            ynorm[d] = float(np.abs(y).max()) if y.size else 0.0
            xnorm[d] = float(np.abs(new).max()) if new.size else 0.0
            mine = int(sweeps[d])
            lag = mine - min(int(sweeps[j]) for j in range(spec.shards)
                             if j != d) if spec.shards > 1 else 0
            if lag > int(staleness[d]):
                staleness[d] = lag
            # Yield the core between sweeps: on an oversubscribed host
            # the OS otherwise timeslices whole shards for ~100ms at a
            # time, and a shard iterating against a frozen peer block
            # makes no global progress (the Cormie-Bowins staleness
            # pathology).  On a wide host this is a microsecond no-op.
            time.sleep(0)

    seen = spec.start_epoch
    while True:
        if not S.wait_until(lambda: int(ctrl[S.IDX_EPOCH]) != seen,
                            abort=orphaned):
            return
        seen = int(ctrl[S.IDX_EPOCH])
        cmd = int(ctrl[S.IDX_CMD])
        read = int(ctrl[S.IDX_READ])
        if cmd == S.CMD_STOP:
            done[d] = seen
            return
        if cmd == S.CMD_SWEEP:
            maybe_fault()
            gather(state.x(read))
            state.x(1 - read)[lo:hi] = block_update()
        elif cmd == S.CMD_STEP_FROM_Y:
            # Consume the parent's residual product y = A @ x: no halo
            # gather, mirrors JacobiSolver.step_from_product bitwise.
            maybe_fault()
            xb = state.x(read)[lo:hi]
            yb = state.y[lo:hi]
            new = -(yb - diag * xb) / diag
            if damping != 1.0:
                new = (1.0 - damping) * xb + damping * new
            state.x(1 - read)[lo:hi] = new
        elif cmd == S.CMD_PRODUCT:
            gather(state.x(read))
            state.y[lo:hi] = local @ xl
        elif cmd == S.CMD_CHAOTIC:
            done[d] = seen
            chaotic_run(seen)
            continue
        # CMD_PAUSE (and unknown commands) just acknowledge.
        done[d] = seen
