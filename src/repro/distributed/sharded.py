"""The sharded (domain-decomposed) Jacobi steady-state solver.

:class:`ShardedJacobiSolver` partitions the DFS-ordered state space
into contiguous, nnz-balanced row blocks
(:func:`repro.multigpu.partition.partition_rows` — the same partition
contract the multi-GPU traffic model analyzes) and runs one worker
process per block, exchanging only boundary/halo entries through
shared-memory buffers between sweeps.  It models the paper's
multi-GPU extension *executionally* where :mod:`repro.multigpu`
models it analytically.

Two synchronization modes:

``sync="barrier"``
    Every sweep is globally synchronized on the epoch protocol and the
    parent drives exactly the batch/renormalize/check/rollback loop of
    :meth:`repro.solvers.base.IterativeSolverBase.solve` — including
    the product-reuse step, in-loop renormalization cadence, guardrail
    checkpoints and the warm-start fast path — so the iterates (and
    therefore results, histories and stop reasons) are **bitwise
    equal** to the serial :class:`~repro.solvers.jacobi.JacobiSolver`.
    This is the correctness anchor the conformance suite pins.

``sync="chaotic"``
    Free-running chaotic relaxation (asynchronous iterations in the
    sense of Chazan-Miranker; cf. the Cormie-Bowins comparison of
    synchronous vs. asynchronous GPU relaxation in PAPERS.md): workers
    sweep in place against whatever halo values their peers last
    published, with no global sync.  Each shard reports its block
    residual/iterate norms; the parent aggregates them into a global
    residual *estimate* and, when it looks converged (or a check is
    due), pauses the pool, renormalizes, and runs a true synchronized
    residual check before stopping — so a ``CONVERGED`` result always
    satisfies the serial tolerance even though intermediate iterates
    are nondeterministic.  Per-shard staleness counters record how far
    ahead of the slowest peer each shard ran.

Resilience reuses the existing machinery: guardrail checkpoints and
rollback cover shard results exactly as in the serial loop,
``solver.iterate`` corruptions apply to the shared iterate, and the
``"shard.worker"`` fault site kills/stalls worker processes — a killed
worker is respawned and the iterate rolled back to the last
checkpoint (counted against ``GuardrailPolicy.max_recoveries``).
"""

from __future__ import annotations

import multiprocessing
import os
import time

import numpy as np

from repro import backends
from repro.distributed import shm as S
from repro.distributed.plan import build_specs
from repro.distributed.worker import worker_main
from repro.errors import SingularSystemError, ValidationError, \
    WorkerCrashError
from repro.solvers.base import IterativeSolverBase
from repro.solvers.normalization import renormalize
from repro.solvers.result import SolverResult, StopReason
from repro.solvers.stopping import StoppingCriterion
from repro.sparse.base import SparseFormat, as_csr
from repro.telemetry import tracing
from repro.telemetry.metrics import get_registry

SYNC_MODES = ("barrier", "chaotic")

#: Environment override for the worker start method ("fork"/"spawn").
START_ENV_VAR = "REPRO_SHARD_START"


class _WorkerLost(RuntimeError):
    """Internal: a worker process died mid-epoch (carries the shard)."""

    def __init__(self, shard: int):
        super().__init__(f"shard {shard} worker died")
        self.shard = shard


class _ShardPool:
    """The worker pool: shared state, processes and the epoch protocol."""

    def __init__(self, solver, plan_json: str | None):
        self.n = solver.n
        self.shards = solver.shards
        self.timeout_s = solver.worker_timeout_s
        resolved = backends.resolve(solver.backend)
        self.backend_name = resolved.name
        method = solver.start_method or os.environ.get(START_ENV_VAR)
        if method is None:
            # fork is cheap, but forking a live OpenMP runtime (libgomp
            # state does not survive fork) can deadlock — so spawn
            # whenever the workers will run a native (OpenMP) backend.
            if not resolved.is_reference:
                method = "spawn"
            elif "fork" in multiprocessing.get_all_start_methods():
                method = "fork"
            else:
                method = "spawn"
        self.start_method = method
        self._ctx = multiprocessing.get_context(method)
        self.state = S.SharedState.create(self.n, self.shards)
        data_name, ctrl_name = self.state.names
        self.parts, self._specs = build_specs(
            solver.A, solver.diagonal, shards=self.shards,
            damping=solver.damping,
            max_iterations=solver.max_iterations,
            backend=self.backend_name,
            data_name=data_name, ctrl_name=ctrl_name,
            parent_pid=os.getpid(), plan_json=plan_json)
        self._epoch = 0
        self.respawns = 0
        self._procs = [self._spawn(spec) for spec in self._specs]

    def _spawn(self, spec):
        proc = self._ctx.Process(target=worker_main, args=(spec,),
                                 daemon=True, name=f"repro-shard-{spec.shard}")
        proc.start()
        return proc

    def respawn(self, shard: int, *, rejoin_current: bool = False) -> None:
        """Replace a dead worker.

        ``rejoin_current`` makes the replacement treat the *current*
        epoch as unseen (chaotic mode: it re-enters the free-run the
        parent never re-publishes); barrier mode waits for the next.
        """
        old = self._procs[shard]
        if old.is_alive():  # pragma: no cover - defensive
            old.terminate()
        old.join(timeout=1.0)
        spec = self._specs[shard]
        spec.start_epoch = self._epoch - 1 if rejoin_current else self._epoch
        self._procs[shard] = self._spawn(spec)
        self.respawns += 1

    # -- epoch protocol ---------------------------------------------------

    def publish(self, cmd: int, read: int = 0) -> int:
        ctrl = self.state.ctrl
        self._epoch += 1
        ctrl[S.IDX_READ] = read
        ctrl[S.IDX_CMD] = cmd
        ctrl[S.IDX_EPOCH] = self._epoch  # release: command is now live
        return self._epoch

    def await_all(self) -> None:
        """Wait for every shard to acknowledge the current epoch."""
        epoch = self._epoch
        done = self.state.done
        procs = self._procs
        lost: list[int] = []

        def acked() -> bool:
            return bool((done >= epoch).all())

        def dead() -> bool:
            for i, proc in enumerate(procs):
                if int(done[i]) < epoch and not proc.is_alive():
                    lost.append(i)
                    return True
            return False

        if S.wait_until(acked, timeout_s=self.timeout_s, abort=dead):
            return
        if lost:
            raise _WorkerLost(lost[0])
        pending = [i for i in range(self.shards) if int(done[i]) < epoch]
        raise WorkerCrashError(
            f"sharded epoch {epoch} timed out after {self.timeout_s}s "
            f"waiting on shards {pending}")

    def epoch(self, cmd: int, read: int = 0) -> None:
        self.publish(cmd, read)
        self.await_all()

    def dead_shards(self) -> list[int]:
        return [i for i, p in enumerate(self._procs) if not p.is_alive()]

    # -- teardown ---------------------------------------------------------

    def shutdown(self) -> None:
        try:
            if any(p.is_alive() for p in self._procs):
                epoch = self.publish(S.CMD_STOP)
                done = self.state.done
                procs = self._procs
                S.wait_until(
                    lambda: all(int(done[i]) >= epoch or not p.is_alive()
                                for i, p in enumerate(procs)),
                    timeout_s=5.0)
        finally:
            for proc in self._procs:
                proc.join(timeout=2.0)
                if proc.is_alive():  # pragma: no cover - defensive
                    proc.terminate()
                    proc.join(timeout=1.0)
            self.state.close()


class ShardedJacobiSolver(IterativeSolverBase):
    """Domain-decomposed Jacobi over a multi-process shard pool.

    Parameters mirror :class:`~repro.solvers.jacobi.JacobiSolver`
    (``tol``, ``max_iterations``, ``check_interval``,
    ``normalize_interval``, ``stagnation_tol``, ``damping``,
    ``backend``) plus:

    shards:
        Worker-process count; rows are split into this many
        contiguous, nnz-balanced blocks.  Must not exceed ``n``.
    sync:
        ``"barrier"`` (bitwise-equal to serial Jacobi) or
        ``"chaotic"`` (asynchronous relaxation on stale halos) — see
        the module docstring.
    start_method:
        Multiprocessing start method override (``"fork"``/``"spawn"``;
        also via the ``REPRO_SHARD_START`` env var).  Default: fork
        for reference backends, spawn when workers run the native
        (OpenMP) backend.
    worker_timeout_s:
        Per-epoch watchdog; a pool that fails to acknowledge within
        this window raises :class:`~repro.errors.WorkerCrashError`
        instead of hanging the solve.
    respawn_budget:
        Elastic degradation: how many times any single shard may be
        respawned before the solver stops trusting that slot and
        **re-partitions onto one fewer shard** (from the last guardrail
        checkpoint) instead of respawning forever — a host that keeps
        OOM-killing one worker degrades to a smaller, working pool.
        ``None`` (default) keeps the legacy respawn-until-guardrail-
        budget behaviour; degradations stop at ``min_shards``, below
        which a crashed worker raises
        :class:`~repro.errors.WorkerCrashError`.
    min_shards:
        Floor of the degradation ladder (default 1: a single surviving
        shard finishes the solve alone).

    ``result.sharding`` carries the distribution telemetry: per-shard
    attempted sweeps, halo traffic, staleness (chaotic), respawn count
    and the partition geometry.  In chaotic mode hooks fire once per
    *verification* (with the measured residual), not once per sweep —
    free-running shards have no global iteration to report.
    """

    span_name = "sharded"

    def __init__(self, matrix, *, tol: float = 1e-8,
                 max_iterations: int = 1_000_000,
                 check_interval: int = 100,
                 normalize_interval: int = 10,
                 stagnation_tol: float | None = 1e-6,
                 shards: int = 2,
                 sync: str = "barrier",
                 damping: float = 1.0,
                 backend=None,
                 start_method: str | None = None,
                 worker_timeout_s: float = 120.0,
                 respawn_budget: int | None = None,
                 min_shards: int = 1):
        if sync not in SYNC_MODES:
            raise ValidationError(
                f"unknown sync mode {sync!r}; expected one of {SYNC_MODES}")
        if normalize_interval is None:
            raise ValidationError("intervals must be positive")
        if not (0.0 < damping <= 1.0):
            raise ValidationError(f"damping must be in (0, 1], got {damping}")
        shards = int(shards)
        if shards <= 0:
            raise ValidationError(f"shards must be positive, got {shards}")
        if start_method is not None and start_method not in \
                multiprocessing.get_all_start_methods():
            raise ValidationError(
                f"unknown start method {start_method!r}; expected one of "
                f"{multiprocessing.get_all_start_methods()}")
        if isinstance(matrix, SparseFormat) or hasattr(matrix, "to_scipy"):
            A = matrix.to_scipy()
        elif hasattr(matrix, "csr") and hasattr(matrix, "dia"):
            # CSRDIABaseline-style split object.
            A = as_csr(matrix.csr.to_scipy() + matrix.dia.to_scipy())
        else:
            A = as_csr(matrix)
        self._init_common(A, tol=tol, max_iterations=max_iterations,
                          check_interval=check_interval,
                          normalize_interval=normalize_interval,
                          stagnation_tol=stagnation_tol)
        if shards > self.n:
            raise ValidationError(
                f"cannot split {self.n} rows across {shards} shards")
        self.diagonal = self._derived["diagonal"]
        zero_rows = np.flatnonzero(self.diagonal == 0.0)
        if zero_rows.size:
            raise SingularSystemError(
                "Jacobi iteration needs a nonzero diagonal "
                f"(zero at rows {zero_rows[:5].tolist()})",
                rows=zero_rows[:5].tolist())
        self.shards = shards
        self.sync = sync
        self.damping = float(damping)
        self.backend = backend
        if backend is not None:
            backends.resolve(backend)  # fail fast on unknown names
        self.start_method = start_method
        self.worker_timeout_s = float(worker_timeout_s)
        if respawn_budget is not None and int(respawn_budget) < 0:
            raise ValidationError(
                f"respawn_budget must be >= 0 (or None), got {respawn_budget}")
        self.respawn_budget = (None if respawn_budget is None
                               else int(respawn_budget))
        min_shards = int(min_shards)
        if not 1 <= min_shards <= shards:
            raise ValidationError(
                f"min_shards must be in [1, shards={shards}], "
                f"got {min_shards}")
        self.min_shards = min_shards
        self.supports_product_step = True

    def _select_backend(self):
        """Resolve the kernel backend the shard workers will run."""
        return backends.serving("", "jacobi_sweep", self.backend)

    # -- solve -------------------------------------------------------------

    def solve(self, x0=None, *, time_budget_s: float | None = None,
              hooks=None, guardrails=None,
              validate_x0: bool = True, checkpointer=None) -> SolverResult:
        """Solve on the shard pool (see :meth:`IterativeSolverBase.solve`).

        The pool is started lazily — a warm start already within
        tolerance returns without spawning a single worker.  With a
        ``checkpointer``, the *parent* writes durable epoch snapshots
        at residual-check boundaries (iterate + loop state + shard
        topology); a resumed barrier-mode solve replays bitwise
        identically, whatever the shard count on either side, because
        the partition only distributes arithmetic, never changes it.
        """
        from repro.resilience.faults import active_injector
        from repro.resilience.guardrails import (
            GuardrailPolicy,
            RecoveryReport,
            count_recovery,
        )

        x = self._initial_iterate(x0, validate=validate_x0)
        if time_budget_s is not None and time_budget_s <= 0:
            raise ValidationError(
                f"time_budget_s must be positive, got {time_budget_s}")
        if guardrails is False:
            policy = None
        elif guardrails is None:
            policy = GuardrailPolicy()
        else:
            policy = guardrails

        injector = active_injector()
        inject = injector is not None and injector.active_for(
            "solver.iterate")
        sweep_guard = policy is not None and (policy.sweep_check or inject)
        report = RecoveryReport() if (policy is not None or inject) else None
        plan_json = None
        if injector is not None and injector.plan.for_site("shard.worker"):
            plan_json = injector.plan.to_json()

        self._active_backend = self._select_backend()
        accel = (self._active_backend
                 if self._active_backend is not None
                 and not self._active_backend.is_reference else None)
        criterion = StoppingCriterion(
            self.matrix_inf_norm, tol=self.tol,
            max_iterations=self.max_iterations,
            stagnation_tol=self.stagnation_tol,
            backend=accel)
        history: list[tuple[int, float]] = []
        t0 = time.perf_counter()
        iteration = 0
        reason = StopReason.MAX_ITERATIONS
        residual = float("inf")
        checkpoint = x.copy() if policy is not None else None
        checkpoint_iteration = 0
        checks_done = 0
        recoveries = 0
        best_residual = float("inf")
        pool: _ShardPool | None = None
        cur = 0          # which iterate buffer holds the current x
        pending = False  # pool.state.y holds A @ x for the current x
        requested_shards = self.shards
        per_shard_respawns: dict[int, int] = {}
        degradations: list[dict] = []

        def rollback(kind: str) -> np.ndarray:
            nonlocal recoveries
            recoveries += 1
            report.rollbacks += 1
            report.record(iteration, kind, "rollback",
                          detail=f"checkpoint@{checkpoint_iteration}")
            count_recovery(kind, iteration)
            return checkpoint.copy()

        def x_cur() -> np.ndarray:
            return pool.state.x(cur)

        def write_cur(values: np.ndarray) -> None:
            pool.state.x(cur)[:] = values

        def degrade(dead_shard: int) -> None:
            """Re-partition onto one fewer shard (elastic degradation).

            The old pool is torn down and a fresh one built over
            ``shards - 1`` nnz-balanced blocks, seeded from the last
            guardrail checkpoint — the same iterate a plain respawn
            rolls back to, so barrier-mode bitwise parity with the
            serial solver survives the topology change (the partition
            distributes arithmetic, it does not alter it).
            """
            nonlocal pool, cur, pending
            old = pool
            x_snapshot = (checkpoint.copy() if checkpoint is not None
                          else old.state.x(cur).copy())
            entry = {
                "iteration": iteration,
                "dead_shard": dead_shard,
                "from_shards": old.shards,
                "to_shards": old.shards - 1,
                "sweeps": [int(v) for v in old.state.sweeps],
                "halo_bytes": [int(v) for v in old.state.halo_bytes],
            }
            prior_respawns = old.respawns
            old.shutdown()
            self.shards = old.shards - 1
            pool = _ShardPool(self, plan_json)
            pool.respawns = prior_respawns
            pool.state.x(0)[:] = x_snapshot
            # Carry the chaos clock (per-shard attempted-sweep counters)
            # across the topology change: fault schedules index it, and
            # a degrade must not rewind it or one-shot kills would
            # refire in the replacement pool.
            pool.state.sweeps[:] = max(entry["sweeps"], default=0)
            cur = 0
            pending = False
            per_shard_respawns.clear()
            degradations.append(entry)
            if report is not None:
                report.record(iteration, "worker-crash", "degrade",
                              detail=f"shard {dead_shard} exhausted its "
                                     f"respawn budget; re-partitioned "
                                     f"{entry['from_shards']} -> "
                                     f"{entry['to_shards']} shards")
            count_recovery("worker-crash", iteration)
            get_registry().counter(
                "shard_degradations_total",
                "shard pools re-partitioned onto fewer shards after a "
                "worker exhausted its respawn budget").inc()

        def handle_death(shard: int, *, rejoin_current: bool) -> bool:
            """Respawn a crashed worker, degrade the pool, or give up.

            Returns whether the pool was *degraded* (replaced by a
            smaller one) rather than respawned in place.
            """
            if report is not None:
                report.faults_seen += 1
            if policy is None or recoveries >= policy.max_recoveries:
                raise WorkerCrashError(
                    f"shard {shard} worker died and "
                    + ("guardrails are disabled" if policy is None
                       else "the recovery budget is exhausted"))
            if (self.respawn_budget is not None
                    and per_shard_respawns.get(shard, 0)
                    >= self.respawn_budget):
                if pool.shards <= self.min_shards:
                    raise WorkerCrashError(
                        f"shard {shard} worker died, its respawn budget "
                        f"({self.respawn_budget}) is exhausted and the "
                        f"pool is already at min_shards={self.min_shards}")
                degrade(shard)
                return True
            per_shard_respawns[shard] = per_shard_respawns.get(shard, 0) + 1
            pool.respawn(shard, rejoin_current=rejoin_current)
            get_registry().counter(
                "shard_respawns_total",
                "shard workers respawned after a crash").inc()
            return False

        def product_epoch() -> bool:
            """Run ``y = A @ x`` on the pool; False if a shard died."""
            nonlocal pending
            halo0 = int(pool.state.halo_bytes.sum())
            try:
                pool.epoch(S.CMD_PRODUCT, read=cur)
            except _WorkerLost as lost:
                handle_death(lost.shard, rejoin_current=False)
                write_cur(rollback("worker-crash"))
                pending = False
                return False
            with tracing.span(
                    "shard.halo_exchange", shards=self.shards,
                    bytes=int(pool.state.halo_bytes.sum()) - halo0):
                pass
            return True

        def barrier_loop() -> None:
            """Mirror of :meth:`IterativeSolverBase.solve`'s batch loop.

            Every numerical decision — step order, renormalization
            cadence, guard conditions, checkpoint/rollback points —
            replays the serial loop exactly, with the iterate living
            in the shared ping-pong buffers; that is what makes the
            iterates bitwise equal to :class:`JacobiSolver`'s.
            """
            nonlocal iteration, reason, residual, checkpoint, \
                checkpoint_iteration, checks_done, best_residual, \
                cur, pending
            norm_every = self.normalize_interval
            guarded = inject or sweep_guard
            while True:
                budget = min(self.check_interval,
                             self.max_iterations - iteration)
                aborted = False
                with tracing.span("shard.sweep", shards=self.shards,
                                  sweeps=budget, iteration=iteration):
                    for i in range(budget):
                        cmd = (S.CMD_STEP_FROM_Y if pending
                               else S.CMD_SWEEP)
                        pending = False
                        try:
                            pool.epoch(cmd, read=cur)
                        except _WorkerLost as lost:
                            handle_death(lost.shard, rejoin_current=False)
                            write_cur(rollback("worker-crash"))
                            aborted = True
                            break
                        cur = 1 - cur
                        iteration += 1
                        if inject:
                            corrupted, spec = injector.corrupt(
                                "solver.iterate", x_cur().copy(),
                                iteration)
                            if spec is not None:
                                write_cur(corrupted)
                                if report is not None:
                                    report.faults_seen += 1
                                    report.record(
                                        iteration, f"fault:{spec.kind}",
                                        "injected",
                                        detail="site solver.iterate")
                        if sweep_guard and not np.all(
                                np.isfinite(x_cur())):
                            if recoveries < policy.max_recoveries:
                                write_cur(rollback("nan-inf"))
                            else:
                                break  # batch-end check reports DIVERGED
                        renorm = (norm_every is not None
                                  and iteration % norm_every == 0)
                        if renorm:
                            if guarded:
                                xv = x_cur()
                                if (np.all(np.isfinite(xv))
                                        and xv.sum() > 0):
                                    write_cur(renormalize(xv))
                                else:
                                    renorm = False
                            else:
                                write_cur(renormalize(x_cur()))
                        if hooks is not None and i < budget - 1:
                            hooks.on_iteration(iteration, None, renorm)
                if aborted:
                    continue
                xv = x_cur()
                finite = bool(np.all(np.isfinite(xv)))
                if finite:
                    if policy is not None:
                        try:
                            write_cur(renormalize(xv))
                        except ValidationError:
                            finite = False  # no mass left: recover below
                    else:
                        write_cur(renormalize(xv))
                if not finite:
                    if policy is not None \
                            and recoveries < policy.max_recoveries:
                        write_cur(rollback("nan-inf"))
                        if hooks is not None:
                            hooks.on_iteration(iteration, None, True)
                        continue
                    reason, residual = StopReason.DIVERGED, float("inf")
                    if hooks is not None:
                        hooks.on_iteration(iteration, residual, False)
                    return
                if not product_epoch():
                    continue
                stop, residual = criterion.check(iteration,
                                                 pool.state.y, x_cur())
                history.append((iteration, residual))
                if (policy is not None and stop is None
                        and np.isfinite(best_residual)
                        and residual
                        > policy.divergence_factor * best_residual):
                    if recoveries < policy.max_recoveries:
                        write_cur(rollback("divergence"))
                        if hooks is not None:
                            hooks.on_iteration(iteration, None, True)
                        continue
                    reason = StopReason.DIVERGED
                    if hooks is not None:
                        hooks.on_iteration(iteration, residual, True)
                    return
                # x survives this check unchanged, so the product seeds
                # the next batch's first step (no recomputation).
                pending = True
                best_residual = min(best_residual, residual)
                if hooks is not None:
                    hooks.on_iteration(iteration, residual, True)
                if stop is not None:
                    reason = stop
                    return
                if (time_budget_s is not None
                        and time.perf_counter() - t0 >= time_budget_s):
                    reason = StopReason.TIMED_OUT
                    return
                if iteration >= self.max_iterations:
                    reason = StopReason.MAX_ITERATIONS
                    return
                checks_done += 1
                if policy is not None \
                        and checks_done % policy.checkpoint_every == 0:
                    checkpoint = x_cur().copy()
                    checkpoint_iteration = iteration
                    report.checkpoints += 1
                durable_save()

        def durable_save() -> None:
            """Parent-side epoch snapshot + the ``shard.parent`` site.

            Fires at residual-check boundaries — the only points where
            the shared iterate is renormalized and globally consistent.
            The kill site is consulted *after* the save so a scheduled
            SIGKILL leaves an intact checkpoint at this very boundary,
            which is exactly what the crash-recovery suite resumes.
            """
            if checkpointer is not None:
                meta = self._checkpoint_meta(history, best_residual,
                                             checks_done, recoveries,
                                             criterion)
                meta["sharding"] = {
                    "shards": pool.shards,
                    "requested_shards": requested_shards,
                    "sync": self.sync,
                    "epoch": pool._epoch,
                    "rows": [[p.row_start, p.row_stop]
                             for p in pool.parts],
                    "degradations": len(degradations),
                }
                checkpointer.maybe_save(iteration, {"x": x_cur()}, meta)
            if injector is not None:
                injector.maybe_fail("shard.parent")

        def robust_epoch(cmd: int) -> None:
            """Chaotic-mode epoch: retry through worker deaths."""
            while True:
                try:
                    pool.epoch(cmd, read=0)
                    return
                except _WorkerLost as lost:
                    handle_death(lost.shard, rejoin_current=False)
                    if report is not None:
                        report.record(iteration, "worker-crash", "respawn",
                                      detail=f"shard {lost.shard}")

        def chaotic_loop() -> None:
            """Free-running relaxation with synchronized verification.

            Workers sweep in place against stale halos; the parent
            watches the per-shard norm reports and, when the
            aggregated residual estimate crosses the tolerance (or a
            check interval of sweeps has passed everywhere), pauses
            the pool, renormalizes and runs a *true* residual check —
            stopping only on verified convergence, so the reported
            residual always satisfies the serial tolerance.
            """
            nonlocal iteration, reason, residual, checkpoint, \
                checkpoint_iteration, checks_done, best_residual
            last_checked = 0
            robust_epoch(S.CMD_CHAOTIC)
            while True:
                time.sleep(0.001)
                degraded = False
                for shard in pool.dead_shards():
                    if handle_death(shard, rejoin_current=True):
                        degraded = True
                        break  # the stale dead-shard list is meaningless
                    if report is not None:
                        report.record(iteration, "worker-crash",
                                      "respawn",
                                      detail=f"shard {shard} (chaotic)")
                if degraded:
                    # Fresh pool, fresh sweep counters: restart the
                    # free-run and realign the check cadence.
                    last_checked = 0
                    robust_epoch(S.CMD_CHAOTIC)
                    continue
                # Always through pool.state (never a cached view):
                # degradation replaces the pool and its shared buffers.
                sweeps = pool.state.sweeps
                floor = int(sweeps.min())
                estimate = None
                xn = float(pool.state.xnorm.max())
                if xn > 0 and self.matrix_inf_norm > 0 and floor > 0:
                    estimate = float(pool.state.ynorm.max()) / (
                        self.matrix_inf_norm * xn)
                timed_out = (time_budget_s is not None
                             and time.perf_counter() - t0 >= time_budget_s)
                due = (floor - last_checked >= self.check_interval
                       or (estimate is not None and estimate <= self.tol)
                       or int(sweeps.max()) >= self.max_iterations
                       or timed_out)
                if not due:
                    continue
                with tracing.span("shard.sweep", shards=self.shards,
                                  mode="chaotic",
                                  sweeps=int(sweeps.max())):
                    robust_epoch(S.CMD_PAUSE)
                iteration = max(iteration, int(pool.state.sweeps.max()))
                last_checked = int(pool.state.sweeps.min())
                xv = x_cur()
                finite = bool(np.all(np.isfinite(xv)))
                if finite:
                    try:
                        write_cur(renormalize(xv))
                    except ValidationError:
                        finite = False
                if not finite:
                    if policy is not None \
                            and recoveries < policy.max_recoveries:
                        write_cur(rollback("nan-inf"))
                        robust_epoch(S.CMD_CHAOTIC)
                        continue
                    reason, residual = StopReason.DIVERGED, float("inf")
                    return
                robust_epoch(S.CMD_PRODUCT)
                xv = x_cur()  # re-fetch: a degrade mid-epoch swaps pools
                stop, residual = criterion.check(iteration, pool.state.y, xv)
                history.append((iteration, residual))
                if (policy is not None and stop is None
                        and np.isfinite(best_residual)
                        and residual
                        > policy.divergence_factor * best_residual):
                    if recoveries < policy.max_recoveries:
                        write_cur(rollback("divergence"))
                        robust_epoch(S.CMD_CHAOTIC)
                        continue
                    reason = StopReason.DIVERGED
                    return
                best_residual = min(best_residual, residual)
                if hooks is not None:
                    # Chaotic iterations have no global step to report
                    # per sweep; hooks fire once per verification.
                    hooks.on_iteration(iteration, residual, True)
                if stop is not None:
                    reason = stop
                    return
                if timed_out:
                    reason = StopReason.TIMED_OUT
                    return
                checks_done += 1
                if policy is not None \
                        and checks_done % policy.checkpoint_every == 0:
                    checkpoint = xv.copy()
                    checkpoint_iteration = iteration
                    report.checkpoints += 1
                durable_save()
                robust_epoch(S.CMD_CHAOTIC)

        # Durable resume (parent-side): restore the exact loop state of
        # a previous process before any worker spawns.  The iterate is
        # taken verbatim — saved post-renormalization at a check
        # boundary — so barrier mode stays bitwise-equal to both the
        # uninterrupted sharded run and the serial solver.
        resumed = None
        if checkpointer is not None and checkpointer.resume:
            resumed = checkpointer.load_latest(kind="solver")
        if resumed is not None:
            from repro.errors import CheckpointError
            rx = np.asarray(resumed.arrays.get("x"), dtype=np.float64)
            if rx.shape != (self.n,):
                raise CheckpointError(
                    f"checkpoint iterate has shape {rx.shape}, "
                    f"system needs ({self.n},)")
            x = rx.copy()
            iteration = int(resumed.iteration)
            meta = resumed.meta
            history = [(int(i), float(r)) for i, r in meta.get("history", [])]
            checks_done = int(meta.get("checks_done", 0))
            saved_best = meta.get("best_residual")
            best_residual = (float("inf") if saved_best is None
                             else float(saved_best))
            recoveries = int(meta.get("recoveries", 0))
            criterion.load_state(meta.get("criterion", {}))
            if policy is not None:
                checkpoint = x.copy()
                checkpoint_iteration = iteration

        span = tracing.span(f"{self.span_name}.solve", n=self.n,
                            method=type(self).__name__,
                            shards=self.shards, sync=self.sync)
        if self._active_backend is not None:
            span.set_attribute("backend", self._active_backend.name)
        try:
            with span:
                pending_y0 = None
                if resumed is not None:
                    span.set_attribute("resumed_iteration", iteration)
                    # Deterministic SpMV on the restored iterate — the
                    # same bits the uninterrupted run's product-reuse
                    # step carried into its next batch.
                    pending_y0 = self.A @ x
                elif x0 is not None:
                    # Warm-start fast path, serial on purpose: within
                    # tolerance it returns before any worker spawns.
                    y0 = self.A @ x
                    residual = criterion.normalized_residual(y0, x)
                    pending_y0 = y0
                    if residual <= self.tol:
                        history.append((0, residual))
                        if hooks is not None:
                            hooks.on_stop(StopReason.CONVERGED)
                        span.set_attribute("iterations", 0)
                        return SolverResult(
                            x=renormalize(x), iterations=0,
                            residual=residual,
                            stop_reason=StopReason.CONVERGED,
                            residual_history=history,
                            runtime_s=time.perf_counter() - t0)

                pool = _ShardPool(self, plan_json)
                span.set_attribute("start_method", pool.start_method)
                pool.state.x(0)[:] = x
                if pending_y0 is not None:
                    pool.state.y[:] = pending_y0
                    pending = True

                if self.sync == "barrier":
                    barrier_loop()
                else:
                    chaotic_loop()
                span.set_attribute("iterations", iteration)
                span.set_attribute("residual", residual)
                span.set_attribute("stop_reason", reason.value)
                if report is not None and (report.rollbacks
                                           or report.faults_seen):
                    span.set_attribute("rollbacks", report.rollbacks)
                    span.set_attribute("faults_seen", report.faults_seen)
                if reason is not StopReason.DIVERGED:
                    x = renormalize(x_cur())
                else:
                    x = x_cur().copy()
        finally:
            sharding = None
            if pool is not None:
                sharding = self._sharding_info(
                    pool, degradations=degradations,
                    requested_shards=requested_shards)
                pool.shutdown()
            self.shards = requested_shards  # degradation is per-solve
        runtime = time.perf_counter() - t0
        if hooks is not None:
            hooks.on_stop(reason)
        recovery = report if report is not None \
            and (report.rollbacks or report.faults_seen or report.events) \
            else None
        result = SolverResult(x=x, iterations=iteration, residual=residual,
                              stop_reason=reason, residual_history=history,
                              runtime_s=runtime, recovery=recovery)
        result.sharding = sharding
        return result

    def _sharding_info(self, pool: _ShardPool, *,
                       degradations: list[dict] = (),
                       requested_shards: int | None = None) -> dict:
        """Distribution telemetry attached as ``result.sharding``."""
        state = pool.state
        sweeps = [int(v) for v in state.sweeps]
        halo_bytes = [int(v) for v in state.halo_bytes]
        reg = get_registry()
        reg.counter("shard_sweeps_total",
                    "sweeps attempted by shard workers").inc(sum(sweeps))
        reg.counter("shard_halo_bytes_total",
                    "halo bytes gathered by shard workers"
                    ).inc(sum(halo_bytes))
        return {
            "shards": pool.shards,
            "requested_shards": (self.shards if requested_shards is None
                                 else requested_shards),
            "degradations": list(degradations),
            "sync": self.sync,
            "backend": pool.backend_name,
            "start_method": pool.start_method,
            "rows": [[p.row_start, p.row_stop] for p in pool.parts],
            "halo_sizes": [p.halo_size for p in pool.parts],
            "sweeps": sweeps,
            "halo_bytes": halo_bytes,
            "staleness": [int(v) for v in state.staleness],
            "respawns": pool.respawns,
        }
