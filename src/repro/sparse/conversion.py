"""Conversions between SciPy sparse matrices and the device formats."""

from __future__ import annotations

import scipy.sparse as sp

from repro.errors import FormatError
from repro.sparse.base import SparseFormat, as_csr
from repro.sparse.coo import COOMatrix
from repro.sparse.csr import CSRMatrix
from repro.sparse.dia import DIAMatrix
from repro.sparse.ell import ELLMatrix
from repro.sparse.ellr import ELLRMatrix
from repro.sparse.ell_dia import ELLDIAMatrix
from repro.sparse.sliced_ell import SlicedELLMatrix
from repro.sparse.sell_c_sigma import SellCSigmaMatrix
from repro.sparse.warped_ell import WarpedELLMatrix

#: Registry of constructible formats, keyed by ``format_name``.
FORMAT_REGISTRY: dict[str, type] = {
    "coo": COOMatrix,
    "csr": CSRMatrix,
    "dia": DIAMatrix,
    "ell": ELLMatrix,
    "ellr": ELLRMatrix,
    "ell+dia": ELLDIAMatrix,
    "sell": SlicedELLMatrix,
    "warped-ell": WarpedELLMatrix,
    "sell-c-sigma": SellCSigmaMatrix,
}


def from_scipy(matrix, format_name: str, **kwargs) -> SparseFormat:
    """Build the named device format from a SciPy (or dense) matrix.

    Parameters
    ----------
    matrix:
        Anything convertible to canonical CSR.
    format_name:
        A key of :data:`FORMAT_REGISTRY` (``"ell"``, ``"warped-ell"``, ...).
    **kwargs:
        Forwarded to the format constructor (e.g. ``slice_size=...``).
    """
    try:
        cls = FORMAT_REGISTRY[format_name]
    except KeyError:
        raise FormatError(
            f"unknown format {format_name!r}; known formats: "
            f"{sorted(FORMAT_REGISTRY)}") from None
    if cls is COOMatrix:
        return COOMatrix.from_scipy(matrix)
    if cls is DIAMatrix:
        return DIAMatrix.from_scipy(matrix, **kwargs)
    return cls(matrix, **kwargs)


def to_scipy(matrix) -> sp.csr_matrix:
    """Convert a device format (or anything CSR-able) to SciPy CSR."""
    if isinstance(matrix, SparseFormat):
        return matrix.to_scipy()
    return as_csr(matrix)
