"""Hybrid ELL+DIA format (Section V, Figure 3).

CME rate matrices in DFS order have a fully dense main diagonal (by the
definition ``A(x,x) = -Σ A(x',x)``) and, thanks to reversible reactions
between DFS-adjacent microstates, dense ``{-1, +1}`` neighbors.  Peeling
those diagonals into DIA

* saves 4 bytes per peeled nonzero (no column index),
* makes the ``x`` accesses of the band contiguous, and
* hands the Jacobi iteration its ``a_ii`` coefficients directly instead of
  leaving them at arbitrary positions inside the ELL structure.

A diagonal is only worth peeling when its density exceeds
``DIA_DENSITY_THRESHOLD = 8/12``: below that, the zero slots DIA stores
cost more than the ELL column indices it saves.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.errors import FormatError, SingularMatrixError
from repro.sparse.base import SparseFormat, as_csr
from repro.sparse.dia import DIAMatrix
from repro.sparse.ell import WARP_SIZE, ELLMatrix

#: Minimum diagonal density for DIA storage to beat ELL storage (8B vs 12B).
DIA_DENSITY_THRESHOLD = 8.0 / 12.0


def diagonal_density(csr: sp.csr_matrix, offset: int) -> float:
    """Density of the diagonal at *offset*: nonzeros / in-bounds length."""
    n, m = csr.shape
    lo = max(0, -offset)
    hi = min(n, m - offset)
    slots = hi - lo
    if slots <= 0:
        return 0.0
    diag = csr.diagonal(k=offset)
    return float(np.count_nonzero(diag)) / slots


def select_band_offsets(csr: sp.csr_matrix,
                        candidates=(-1, 0, 1),
                        threshold: float = DIA_DENSITY_THRESHOLD,
                        always_main: bool = True) -> list[int]:
    """Choose which diagonals to peel into DIA.

    The main diagonal is always selected when *always_main* (the Jacobi
    iteration needs it as a dense vector regardless of density); other
    candidates are selected when their density exceeds *threshold*.
    """
    chosen = []
    for off in candidates:
        dens = diagonal_density(csr, off)
        if (off == 0 and always_main) or dens > threshold:
            chosen.append(off)
    if 0 not in chosen and always_main:
        chosen.append(0)
    return sorted(chosen)


class ELLDIAMatrix(SparseFormat):
    """ELL matrix with a DIA-stored diagonal band.

    Parameters
    ----------
    matrix:
        Anything convertible to canonical CSR.
    offsets:
        Diagonals to peel.  ``None`` selects automatically from
        ``{-1, 0, +1}`` by the 8/12 density rule (main diagonal always).
    pad_to:
        ELL row padding (default: warp size).
    """

    format_name = "ell+dia"

    def __init__(self, matrix, *, offsets=None, pad_to: int = WARP_SIZE):
        csr = as_csr(matrix)
        if csr.shape[0] != csr.shape[1]:
            raise FormatError("ELL+DIA requires a square matrix")
        self.shape = csr.shape
        if offsets is None:
            offsets = select_band_offsets(csr)
        self.dia = DIAMatrix.from_scipy(csr, offsets=offsets)
        remainder = (csr - self.dia.to_scipy()).tocsr()
        self.ell = ELLMatrix(as_csr(remainder), pad_to=pad_to)

    # -- queries ------------------------------------------------------------

    @property
    def nnz(self) -> int:
        return self.dia.nnz + self.ell.nnz

    @property
    def offsets(self) -> np.ndarray:
        return self.dia.offsets

    def main_diagonal(self) -> np.ndarray:
        """Dense main diagonal (the Jacobi divisor vector)."""
        return self.dia.main_diagonal()

    # -- SparseFormat interface --------------------------------------------

    def _reference_spmv(self, x: np.ndarray) -> np.ndarray:
        """DIA band product plus ELL remainder product."""
        return self.dia._reference_spmv(x) + self.ell._reference_spmv(x)

    def _reference_spmm(self, X: np.ndarray) -> np.ndarray:
        """Multi-RHS hybrid product: DIA band block plus ELL remainder block."""
        return self.dia._reference_spmm(X) + self.ell._reference_spmm(X)

    def jacobi_step(self, x: np.ndarray) -> np.ndarray:
        """One Jacobi iteration ``x' = -D^{-1}(A - D) x`` for ``A x = 0``.

        The main diagonal sits in the first DIA column, so ``a_ii`` is read
        directly; the off-diagonal band and the ELL remainder are then
        accumulated and divided — exactly the fused GPU kernel the paper
        describes at the end of Section V.
        """
        x = self.check_x(x)
        diag = self.main_diagonal()
        if np.any(diag == 0.0):
            raise SingularMatrixError("Jacobi step requires a nonzero diagonal")
        off_band = self.dia.spmv(x) - diag * x
        return -(off_band + self.ell.spmv(x)) / diag

    def to_scipy(self) -> sp.csr_matrix:
        return as_csr(self.dia.to_scipy() + self.ell.to_scipy())

    def footprint(self) -> int:
        """Bytes: ELL remainder plus DIA band."""
        return self.dia.footprint() + self.ell.footprint()
