"""Diagonal (DIA) sparse format.

DIA stores ``d`` full diagonals as contiguous dense vectors plus a small
list of offsets from the main diagonal.  The paper peels the densely
populated ``{-1, 0, +1}`` band of DFS-ordered CME rate matrices into DIA
(Section V, Figure 3c): a DIA nonzero costs 8 bytes versus 12 in ELL, so
DIA wins whenever the band density exceeds 8/12 ≈ 0.66, and its ``x``
accesses are contiguous (coalesced up to a small misalignment).

Layout convention: ``data[k, i]`` holds ``A[i, i + offsets[k]]`` (row
aligned), matching what the kernel reads when thread ``i`` processes row
``i``.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.errors import ValidationError
from repro.sparse.base import (
    INDEX_BYTES,
    VALUE_BYTES,
    SparseFormat,
    as_csr,
    validate_shape,
)
from repro.utils.validation import check_2d


class DIAMatrix(SparseFormat):
    """Diagonal-format sparse matrix.

    Parameters
    ----------
    offsets:
        Iterable of distinct diagonal offsets (0 = main, negative = below).
    data:
        ``(len(offsets), n_rows)`` array, row-aligned (see module docstring).
    shape:
        Matrix shape.
    """

    format_name = "dia"

    def __init__(self, offsets, data, shape):
        self.shape = validate_shape(shape)
        offsets = np.asarray(offsets, dtype=np.int64)
        if offsets.ndim != 1:
            raise ValidationError("offsets must be 1-D")
        if np.unique(offsets).size != offsets.size:
            raise ValidationError("offsets must be distinct")
        data = check_2d(data, "data",
                        shape=(offsets.size, self.shape[0]),
                        dtype=np.float64)
        # Zero out the out-of-bounds tails so footprints and products are
        # insensitive to garbage beyond the matrix edge.
        for k, off in enumerate(offsets):
            lo, hi = self._valid_range(int(off))
            data[k, :lo] = 0.0
            data[k, hi:] = 0.0
        self.offsets = offsets
        self.data = data

    def _valid_range(self, off: int) -> tuple[int, int]:
        """Rows ``i`` for which column ``i + off`` is inside the matrix."""
        n, m = self.shape
        lo = max(0, -off)
        hi = min(n, m - off)
        return lo, max(lo, hi)

    # -- construction helpers ---------------------------------------------

    @classmethod
    def from_scipy(cls, matrix, offsets=None) -> "DIAMatrix":
        """Extract the given diagonals (default: all nonzero ones).

        When *offsets* is given, only those diagonals are extracted; other
        nonzeros are silently ignored (callers pair this with an ELL/CSR
        remainder — see :class:`repro.sparse.ell_dia.ELLDIAMatrix`).
        """
        csr = as_csr(matrix)
        n, m = csr.shape
        coo = csr.tocoo()
        all_offsets = coo.col.astype(np.int64) - coo.row.astype(np.int64)
        if offsets is None:
            offsets = np.unique(all_offsets)
        offsets = np.asarray(sorted(set(int(o) for o in offsets)), dtype=np.int64)
        data = np.zeros((offsets.size, n), dtype=np.float64)
        index_of = {int(o): k for k, o in enumerate(offsets)}
        mask = np.isin(all_offsets, offsets)
        rows = coo.row[mask]
        offs = all_offsets[mask]
        vals = coo.data[mask]
        ks = np.fromiter((index_of[int(o)] for o in offs),
                         dtype=np.int64, count=offs.size)
        data[ks, rows] = vals
        return cls(offsets, data, (n, m))

    # -- queries ------------------------------------------------------------

    @property
    def nnz(self) -> int:
        return int(np.count_nonzero(self.data))

    def band_density(self) -> float:
        """Stored-nonzero density over the in-bounds band positions.

        This is the paper's Table I metric ``d{...}``: the fraction of
        positions on the stored diagonals (within matrix bounds) that hold
        a nonzero.  A value above 8/12 makes DIA storage worthwhile.
        """
        slots = 0
        for off in self.offsets:
            lo, hi = self._valid_range(int(off))
            slots += hi - lo
        return self.nnz / slots if slots else 0.0

    def main_diagonal(self) -> np.ndarray:
        """The offset-0 diagonal as a dense vector (zeros if not stored)."""
        hits = np.flatnonzero(self.offsets == 0)
        if hits.size == 0:
            return np.zeros(min(self.shape), dtype=np.float64)
        return self.data[int(hits[0]), : min(self.shape)].copy()

    # -- SparseFormat interface --------------------------------------------

    def _reference_spmv(self, x: np.ndarray) -> np.ndarray:
        """Reference DIA product: one shifted multiply-add per diagonal."""
        y = np.zeros(self.shape[0], dtype=np.float64)
        for k, off in enumerate(self.offsets):
            off = int(off)
            lo, hi = self._valid_range(off)
            if hi > lo:
                y[lo:hi] += self.data[k, lo:hi] * x[lo + off: hi + off]
        return y

    def _reference_spmm(self, X: np.ndarray) -> np.ndarray:
        """Multi-RHS DIA product: one shifted block multiply per diagonal."""
        Y = np.zeros((self.shape[0], X.shape[1]), dtype=np.float64)
        for k, off in enumerate(self.offsets):
            off = int(off)
            lo, hi = self._valid_range(off)
            if hi > lo:
                Y[lo:hi] += self.data[k, lo:hi, None] * X[lo + off: hi + off]
        return Y

    def to_scipy(self) -> sp.csr_matrix:
        n, m = self.shape
        rows_list = []
        cols_list = []
        vals_list = []
        for k, off in enumerate(self.offsets):
            off = int(off)
            lo, hi = self._valid_range(off)
            seg = self.data[k, lo:hi]
            nz = np.flatnonzero(seg)
            rows_list.append(nz + lo)
            cols_list.append(nz + lo + off)
            vals_list.append(seg[nz])
        if rows_list:
            rows = np.concatenate(rows_list)
            cols = np.concatenate(cols_list)
            vals = np.concatenate(vals_list)
        else:
            rows = cols = np.zeros(0, dtype=np.int64)
            vals = np.zeros(0)
        return as_csr(sp.coo_matrix((vals, (rows, cols)), shape=(n, m)))

    def footprint(self) -> int:
        """Bytes: d dense diagonals of n doubles plus d offset entries."""
        d = int(self.offsets.size)
        return d * self.shape[0] * VALUE_BYTES + d * INDEX_BYTES
