"""SELL-C-sigma: the general chunked-and-sorted sliced ELL.

The paper's warp-grained format fixes two design constants — slice size
32 (the warp) and sorting window 256 (the CUDA block).  The natural
two-parameter family around it, later formalized by Kreutzer et al.
(the paper's pJDS reference [20] is its ancestor), is **SELL-C-sigma**:

* ``C`` — the chunk (slice) size rows are padded to;
* ``sigma`` — the window within which rows are sorted by length before
  chunking (``sigma >= C``; ``sigma = C`` or 1 means no useful sorting,
  ``sigma = n`` is the global pJDS sort).

Under this naming the paper's formats are:

=====================  ====  =======
format                  C     sigma
=====================  ====  =======
sliced ELL (s=256)      256   1
warp-grained ELL        32    256
pJDS / global sort      32    n
=====================  ====  =======

This class makes the whole family available, which the ablation bench
uses to show the paper's (32, 256) choice sits on the efficiency/
locality sweet spot.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.errors import FormatError
from repro.sparse.base import INDEX_BYTES, VALUE_BYTES, as_csr
from repro.sparse.sliced_ell import SlicedELLMatrix
from repro.utils.arrays import inverse_permutation


def window_sort_permutation(row_lengths: np.ndarray,
                            sigma: int) -> np.ndarray:
    """Sort rows by descending length within consecutive sigma-windows.

    Stable, so equal-length runs keep their original order (the locality
    property the paper's local rearrangement relies on).  Returns
    ``perm[storage_position] = original_row``.
    """
    lengths = np.asarray(row_lengths, dtype=np.int64)
    if sigma <= 0:
        raise FormatError(f"sigma must be positive, got {sigma}")
    n = lengths.size
    perm = np.empty(n, dtype=np.int64)
    for start in range(0, n, sigma):
        stop = min(start + sigma, n)
        order = np.argsort(-lengths[start:stop], kind="stable")
        perm[start:stop] = start + order
    return perm


class SellCSigmaMatrix(SlicedELLMatrix):
    """SELL-C-sigma sparse matrix.

    Parameters
    ----------
    matrix:
        Anything convertible to canonical CSR.
    chunk:
        The chunk size ``C`` (rows per slice; a multiple of the warp
        size keeps accesses aligned, but any positive value is legal).
    sigma:
        Sorting window (``>= chunk``, or 1 to disable sorting).
    """

    format_name = "sell-c-sigma"

    def __init__(self, matrix, *, chunk: int = 32, sigma: int = 256):
        if chunk <= 0:
            raise FormatError(f"chunk must be positive, got {chunk}")
        if sigma != 1 and sigma < chunk:
            raise FormatError(
                f"sigma ({sigma}) must be >= chunk ({chunk}) or exactly 1")
        csr = as_csr(matrix)
        self.chunk = int(chunk)
        self.sigma = int(sigma)
        n = csr.shape[0]
        lengths = np.diff(csr.indptr).astype(np.int64)
        if sigma > 1 and n:
            perm = window_sort_permutation(lengths, self.sigma)
        else:
            perm = np.arange(n, dtype=np.int64)
        self.row_ids = perm
        self._inverse_ids = inverse_permutation(perm) if n else perm
        permuted = csr[perm, :] if n else csr
        super().__init__(as_csr(permuted), slice_size=self.chunk)
        self.shape = csr.shape

    # -- SparseFormat interface --------------------------------------------

    def _reference_spmv(self, x: np.ndarray) -> np.ndarray:
        """Chunked product over the sorted rows, scattered back."""
        y_storage = SlicedELLMatrix._reference_spmv(self, x)
        y = np.empty(self.shape[0], dtype=np.float64)
        y[self.row_ids] = y_storage
        return y

    def _reference_spmm(self, X: np.ndarray) -> np.ndarray:
        """Chunked multi-RHS product over the sorted rows, scattered back."""
        Y_storage = SlicedELLMatrix._reference_spmm(self, X)
        Y = np.empty((self.shape[0], X.shape[1]), dtype=np.float64)
        Y[self.row_ids] = Y_storage
        return Y

    def to_scipy(self) -> sp.csr_matrix:
        permuted = SlicedELLMatrix.to_scipy(self)
        return as_csr(permuted[self._inverse_ids, :])

    def footprint(self) -> int:
        """Sliced storage + per-chunk arrays + the row-id permutation."""
        total = int(self.slice_ptr[-1])
        size = (total * (VALUE_BYTES + INDEX_BYTES)
                + self.n_slices * 2 * INDEX_BYTES)
        if self.sigma > 1:
            size += self.shape[0] * INDEX_BYTES
        return size
