"""Row-reordering strategies for the sliced-ELL family (Section VI).

The efficiency of a sliced ELL structure depends on how uniform the row
lengths are *within each slice*.  Three strategies are compared in the
paper's Section VII-C:

``random_permutation``
    A control: shuffling rows destroys the data locality of the ``x``
    accesses (measured at 2.783 GFLOPS versus ~16 for the others).

``global_row_sort``
    Bucket-sort all rows by length, longest first — equivalent to pJDS.
    Perfectly uniform slices, but data-unrelated rows land next to each
    other, hurting cache locality (a ~6% slowdown in the paper).

``local_rearrangement``
    The paper's proposal: sort rows by length *within each CUDA block*
    (256 rows).  Warp-grained slices become nearly uniform while every row
    stays within 255 positions of its neighbors, preserving locality.

All functions return a permutation ``perm`` with the convention
``perm[storage_position] = original_row``: storing rows in the order
``perm`` yields the rearranged matrix.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ValidationError
from repro.utils.arrays import ceil_div


def _check_lengths(row_lengths) -> np.ndarray:
    lengths = np.asarray(row_lengths)
    if lengths.ndim != 1:
        raise ValidationError("row_lengths must be 1-D")
    if lengths.size and lengths.min() < 0:
        raise ValidationError("row lengths must be non-negative")
    return lengths.astype(np.int64)


def identity_permutation(n: int) -> np.ndarray:
    """The no-op ordering."""
    return np.arange(n, dtype=np.int64)


def random_permutation(n: int, *, seed: int | None = 0) -> np.ndarray:
    """A uniformly random row order (locality-destroying control)."""
    rng = np.random.default_rng(seed)
    return rng.permutation(n).astype(np.int64)


def global_row_sort(row_lengths) -> np.ndarray:
    """Sort all rows by descending length via bucket sort (pJDS ordering).

    Runs in O(n + k_max) like the paper's linear-time bucket sort; ties
    keep their original relative order (stable), which limits gratuitous
    shuffling among equal-length rows.
    """
    lengths = _check_lengths(row_lengths)
    if lengths.size == 0:
        return np.zeros(0, dtype=np.int64)
    kmax = int(lengths.max())
    # Stable counting sort on (kmax - length) gives descending order.
    keys = kmax - lengths
    counts = np.bincount(keys, minlength=kmax + 1)
    starts = np.concatenate(([0], np.cumsum(counts)[:-1]))
    perm = np.empty(lengths.size, dtype=np.int64)
    next_slot = starts.copy()
    for row in range(lengths.size):
        key = keys[row]
        perm[next_slot[key]] = row
        next_slot[key] += 1
    return perm


def global_row_sort_fast(row_lengths) -> np.ndarray:
    """Vectorized equivalent of :func:`global_row_sort` (stable argsort)."""
    lengths = _check_lengths(row_lengths)
    return np.argsort(-lengths, kind="stable").astype(np.int64)


def local_rearrangement(row_lengths, *, block_size: int = 256) -> np.ndarray:
    """Sort rows by descending length within each *block_size* window.

    Rows never leave their block, so any row ends up at most
    ``block_size - 1`` positions from where DFS enumeration put it; the
    warp-grained slices inside each block get near-uniform lengths.
    """
    lengths = _check_lengths(row_lengths)
    if block_size <= 0:
        raise ValidationError(f"block_size must be positive, got {block_size}")
    n = lengths.size
    perm = np.empty(n, dtype=np.int64)
    for start in range(0, n, block_size):
        stop = min(start + block_size, n)
        seg = lengths[start:stop]
        order = np.argsort(-seg, kind="stable")
        perm[start:stop] = start + order
    return perm


def slice_padding_overhead(row_lengths, perm, *, slice_size: int = 32) -> int:
    """Zero-padding slots a sliced-ELL build would need under *perm*.

    For each slice the structure stores ``slice_size * k_slice`` slots
    where ``k_slice`` is the longest row in the slice; the overhead is the
    total slots minus the total nonzeros.  Used to quantify what a
    reordering buys.
    """
    lengths = _check_lengths(row_lengths)[np.asarray(perm, dtype=np.int64)]
    n = lengths.size
    if n == 0:
        return 0
    n_slices = ceil_div(n, slice_size)
    padded = np.zeros(n_slices * slice_size, dtype=np.int64)
    padded[:n] = lengths
    per_slice_k = padded.reshape(n_slices, slice_size).max(axis=1)
    slots = int(per_slice_k.sum()) * slice_size
    return slots - int(lengths.sum())


def displacement(perm) -> np.ndarray:
    """How far each row moved: ``|storage_position - original_row|``.

    A locality proxy: local rearrangement keeps this below the block size,
    global sorting does not.
    """
    perm = np.asarray(perm, dtype=np.int64)
    return np.abs(np.arange(perm.size, dtype=np.int64) - perm)
