"""Warp-grained sliced ELL — the paper's novel format (Section VI, Figure 4).

Two ideas on top of sliced ELL:

1. **Warp granularity.**  The slice size is fixed to the 32-thread warp —
   the hardware execution granule — while the CUDA block stays at 256
   threads.  Each thread derives its slice from its warp index, so the
   finest padding granularity is obtained *without* sacrificing SM
   occupancy (the original formulation with slice = block = 32 would cap
   an SM at 8 warps, 1/6 of capacity).

2. **Local rearrangement.**  Rows are sorted by length within each 256-row
   block, making warp slices nearly uniform without moving related rows
   far apart (global pJDS-style sorting helps padding but hurts the cache
   locality of the ``x`` gathers).

The format can also keep the main diagonal as a separate dense vector
(``separate_diagonal=True``), the "Warp ELL+DIA" structure used for the
Jacobi iteration in Table IV: the divisor ``a_ii`` is then available
directly instead of sitting at an arbitrary slot of the sliced structure.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.errors import FormatError, SingularMatrixError
from repro.sparse.base import INDEX_BYTES, VALUE_BYTES, as_csr
from repro.sparse.ell import WARP_SIZE
from repro.sparse.reorder import (
    global_row_sort_fast,
    identity_permutation,
    local_rearrangement,
    random_permutation,
)
from repro.sparse.sliced_ell import SlicedELLMatrix
from repro.utils.arrays import inverse_permutation

#: CUDA block size the local rearrangement window is tied to.
DEFAULT_BLOCK_SIZE = 256

#: Recognized reordering strategies.
REORDER_STRATEGIES = ("local", "global", "random", "none")


class WarpedELLMatrix(SlicedELLMatrix):
    """Warp-grained sliced ELL with optional row rearrangement and diagonal.

    Parameters
    ----------
    matrix:
        Anything convertible to canonical CSR (square if
        ``separate_diagonal``).
    reorder:
        ``"local"`` (default, the paper's scheme), ``"global"`` (pJDS),
        ``"random"`` (locality-destroying control) or ``"none"``.
    block_size:
        Window of the local rearrangement (the CUDA block, 256).
    separate_diagonal:
        Peel ``a_ii`` into a dense vector (the Jacobi-ready variant).
    seed:
        RNG seed for ``reorder="random"``.

    Attributes
    ----------
    row_ids:
        ``row_ids[storage_row] = original_row``; the stored matrix is the
        original with its rows permuted by ``row_ids``.
    diagonal_values:
        When ``separate_diagonal``, ``diagonal_values[storage_row]`` is the
        ``a_ii`` of the original row stored there (else ``None``).
    """

    format_name = "warped-ell"

    def __init__(self, matrix, *, reorder: str = "local",
                 block_size: int = DEFAULT_BLOCK_SIZE,
                 separate_diagonal: bool = False,
                 seed: int | None = 0):
        if reorder not in REORDER_STRATEGIES:
            raise FormatError(
                f"unknown reorder strategy {reorder!r}; "
                f"expected one of {REORDER_STRATEGIES}")
        if block_size % WARP_SIZE != 0:
            raise FormatError(
                f"block_size must be a multiple of the warp size "
                f"({WARP_SIZE}), got {block_size}")
        csr = as_csr(matrix)
        if separate_diagonal and csr.shape[0] != csr.shape[1]:
            raise FormatError("separate_diagonal requires a square matrix")

        self.reorder = reorder
        self.block_size = int(block_size)
        self.separate_diagonal = bool(separate_diagonal)

        if separate_diagonal:
            diag = csr.diagonal().astype(np.float64)
            stripped = (csr - sp.diags(diag, 0, shape=csr.shape)).tocsr()
            stripped = as_csr(stripped)
        else:
            diag = None
            stripped = csr

        lengths = np.diff(stripped.indptr).astype(np.int64)
        n = stripped.shape[0]
        if reorder == "local":
            perm = local_rearrangement(lengths, block_size=self.block_size)
        elif reorder == "global":
            perm = global_row_sort_fast(lengths)
        elif reorder == "random":
            perm = random_permutation(n, seed=seed)
        else:
            perm = identity_permutation(n)

        self.row_ids = perm
        self._inverse_ids = inverse_permutation(perm) if n else perm
        permuted = stripped[perm, :] if n else stripped
        super().__init__(as_csr(permuted), slice_size=WARP_SIZE)
        # SlicedELL recorded the *permuted* shape, which equals the original.
        self.shape = csr.shape
        self.diagonal_values = diag[perm] if diag is not None else None
        self._total_nnz = int(csr.nnz)

    # -- queries ------------------------------------------------------------

    @property
    def nnz(self) -> int:
        return self._total_nnz

    def main_diagonal(self) -> np.ndarray:
        """Dense main diagonal in *original* row order."""
        if self.diagonal_values is None:
            raise FormatError(
                "matrix was built without separate_diagonal=True")
        return self.diagonal_values[self._inverse_ids]

    def storage_row_lengths(self) -> np.ndarray:
        """Row lengths in storage order (post-rearrangement)."""
        return self.row_lengths

    # -- SparseFormat interface --------------------------------------------

    def _reference_spmv(self, x: np.ndarray) -> np.ndarray:
        """Warp-sliced product over the permuted rows, scattered back."""
        y_storage = SlicedELLMatrix._reference_spmv(self, x)
        if self.diagonal_values is not None:
            y_storage = y_storage + self.diagonal_values * x[self.row_ids]
        y = np.empty(self.shape[0], dtype=np.float64)
        y[self.row_ids] = y_storage
        return y

    def _reference_spmm(self, X: np.ndarray) -> np.ndarray:
        """Warp-sliced multi-RHS product over the permuted rows."""
        Y_storage = SlicedELLMatrix._reference_spmm(self, X)
        if self.diagonal_values is not None:
            Y_storage = (Y_storage
                         + self.diagonal_values[:, None] * X[self.row_ids, :])
        Y = np.empty((self.shape[0], X.shape[1]), dtype=np.float64)
        Y[self.row_ids] = Y_storage
        return Y

    def jacobi_step(self, x: np.ndarray) -> np.ndarray:
        """One Jacobi iteration ``x' = -D^{-1}(A - D) x`` for ``A x = 0``.

        Requires ``separate_diagonal=True``; the sliced structure then
        holds only off-diagonal entries, so the fused kernel is a sliced
        SpMV followed by a division by the dense diagonal vector.
        """
        if self.diagonal_values is None:
            raise FormatError(
                "jacobi_step requires separate_diagonal=True")
        if np.any(self.diagonal_values == 0.0):
            raise SingularMatrixError("Jacobi step requires a nonzero diagonal")
        x = self.check_x(x)
        # Off-diagonal part in storage order (reference sliced kernel:
        # the fused step is format-faithful by definition).
        off = SlicedELLMatrix._reference_spmv(self, x)
        x_storage = -off / self.diagonal_values
        x_new = np.empty(self.shape[0], dtype=np.float64)
        x_new[self.row_ids] = x_storage
        return x_new

    def to_scipy(self) -> sp.csr_matrix:
        permuted = SlicedELLMatrix.to_scipy(self)
        restored = permuted[self._inverse_ids, :]
        if self.diagonal_values is not None:
            diag = self.main_diagonal()
            restored = restored + sp.diags(diag, 0, shape=self.shape)
        return as_csr(restored)

    def footprint(self) -> int:
        """Bytes: sliced storage + per-slice arrays + row ids (+ diagonal)."""
        total = int(self.slice_ptr[-1])
        size = (total * (VALUE_BYTES + INDEX_BYTES)
                + self.n_slices * 2 * INDEX_BYTES)
        if self.reorder != "none":
            size += self.shape[0] * INDEX_BYTES       # row_ids
        if self.diagonal_values is not None:
            size += self.shape[0] * VALUE_BYTES       # dense diagonal
        return size
