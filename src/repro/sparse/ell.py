"""ELLPACK (ELL) sparse format with warp padding.

ELL compresses an ``n x m`` sparse matrix into two dense ``n' x k`` arrays
(values and column indices), where ``k`` is the maximum number of nonzeros
per row and ``n' = ceil(n / 32) * 32`` pads the row count to warp
granularity so column-major accesses are 128-byte aligned (Section V).
Rows shorter than ``k`` are zero-padded; the kernel skips the column-index
and ``x`` loads of padding entries behind an ``if (value != 0)`` test, so
padding wastes value bandwidth only.

The data structure efficiency is ``e = nnz / (n' * k)`` — the fraction of
stored slots that are real nonzeros.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.errors import FormatError
from repro.sparse.base import (
    INDEX_BYTES,
    VALUE_BYTES,
    SparseFormat,
    as_csr,
)
from repro.utils.arrays import round_up

#: Warp size used for row padding (Fermi and every later NVIDIA part).
WARP_SIZE = 32

#: Column-index marker for padding slots.
PAD_COL = -1


def csr_to_ell_arrays(csr: sp.csr_matrix, n_padded: int, k: int):
    """Pack a canonical CSR matrix into dense ELL (values, cols) arrays.

    Returns ``(values, cols)`` of shape ``(n_padded, k)``; padding slots
    have value 0.0 and column :data:`PAD_COL`.
    """
    n = csr.shape[0]
    lengths = np.diff(csr.indptr)
    if lengths.size and int(lengths.max()) > k:
        raise FormatError(
            f"k={k} is smaller than the longest row ({int(lengths.max())})")
    values = np.zeros((n_padded, k), dtype=np.float64)
    cols = np.full((n_padded, k), PAD_COL, dtype=np.int32)
    if csr.nnz:
        rows = np.repeat(np.arange(n), lengths)
        # Position of each nonzero within its row: 0, 1, 2, ...
        pos = np.arange(csr.nnz) - np.repeat(csr.indptr[:-1], lengths)
        values[rows, pos] = csr.data
        cols[rows, pos] = csr.indices
    return values, cols


class ELLMatrix(SparseFormat):
    """ELL-format sparse matrix (warp-padded, column-major semantics).

    Parameters
    ----------
    matrix:
        Anything convertible to canonical CSR.
    pad_to:
        Row-count alignment; defaults to the warp size (32).
    """

    format_name = "ell"

    def __init__(self, matrix, *, pad_to: int = WARP_SIZE):
        csr = as_csr(matrix)
        self.shape = csr.shape
        n = csr.shape[0]
        lengths = np.diff(csr.indptr)
        self.k = int(lengths.max()) if lengths.size else 0
        self.n_padded = round_up(n, pad_to) if n else 0
        self.values, self.cols = csr_to_ell_arrays(csr, self.n_padded, self.k)
        self._nnz = int(csr.nnz)
        self.row_lengths = lengths.astype(np.int64)

    # -- queries ------------------------------------------------------------

    @property
    def nnz(self) -> int:
        return self._nnz

    def efficiency(self) -> float:
        """ELL slot efficiency ``e = nnz / (n' * k)`` (1.0 = no padding)."""
        slots = self.n_padded * self.k
        return self._nnz / slots if slots else 1.0

    def active_mask(self) -> np.ndarray:
        """Boolean ``(n_padded, k)`` mask of non-padding slots."""
        return self.cols != PAD_COL

    # -- SparseFormat interface --------------------------------------------

    def _reference_spmv(self, x: np.ndarray) -> np.ndarray:
        """Reference ELL product: k column-major sweeps with padding skip.

        Mirrors the kernel of Listing 1: iterate ``k`` times; at each step
        every row (thread) loads its value and, only if it is not padding,
        loads the column index and gathers ``x``.
        """
        y = np.zeros(self.n_padded, dtype=np.float64)
        for c in range(self.k):
            col = self.cols[:, c]
            active = col != PAD_COL
            y[active] += self.values[active, c] * x[col[active]]
        return y[: self.shape[0]]

    def _reference_spmm(self, X: np.ndarray) -> np.ndarray:
        """Multi-RHS ELL product: k column-major sweeps over all columns.

        Identical traversal to :meth:`_reference_spmv` — each of the
        ``k_ell`` steps loads one value/column pair per row and gathers a
        whole row of ``X`` instead of one ``x`` element.
        """
        Y = np.zeros((self.n_padded, X.shape[1]), dtype=np.float64)
        for c in range(self.k):
            col = self.cols[:, c]
            active = col != PAD_COL
            Y[active] += self.values[active, c, None] * X[col[active], :]
        return Y[: self.shape[0]]

    def to_scipy(self) -> sp.csr_matrix:
        active = self.active_mask()
        rows, pos = np.nonzero(active)
        keep = rows < self.shape[0]
        rows, pos = rows[keep], pos[keep]
        coo = sp.coo_matrix(
            (self.values[rows, pos], (rows, self.cols[rows, pos])),
            shape=self.shape)
        return as_csr(coo)

    def footprint(self) -> int:
        """Bytes: two dense ``n' x k`` arrays (8-byte values, 4-byte cols)."""
        return self.n_padded * self.k * (VALUE_BYTES + INDEX_BYTES)
