"""Coordinate (COO) sparse format.

COO stores one ``(row, col, value)`` triple per nonzero.  The paper uses it
only as the on-disk Matrix Market representation and as one member of the
clSpMV ensemble; we additionally use it as the assembly format for the CME
rate matrix (duplicate triples are summed on conversion, which is exactly
what rate-matrix assembly needs when several reactions connect the same
pair of microstates).
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.sparse.base import (
    INDEX_BYTES,
    VALUE_BYTES,
    SparseFormat,
    as_csr,
    validate_shape,
)
from repro.utils.validation import check_1d, check_index_array


class COOMatrix(SparseFormat):
    """Coordinate-format sparse matrix.

    Parameters
    ----------
    rows, cols:
        Integer coordinate arrays of equal length.
    values:
        Nonzero values, same length as the coordinate arrays.
    shape:
        Matrix shape ``(n_rows, n_cols)``.
    sum_duplicates:
        When true (default) duplicate coordinates are summed immediately,
        giving a canonical representation.
    """

    format_name = "coo"

    def __init__(self, rows, cols, values, shape, *, sum_duplicates: bool = True):
        self.shape = validate_shape(shape)
        values = check_1d(values, "values", dtype=np.float64)
        rows = check_1d(rows, "rows", n=values.shape[0])
        cols = check_1d(cols, "cols", n=values.shape[0])
        rows = check_index_array(rows.astype(np.int64), "rows", upper=self.shape[0])
        cols = check_index_array(cols.astype(np.int64), "cols", upper=self.shape[1])
        if values.size and (rows.min() < 0 or cols.min() < 0):
            # COO has no padding concept: -1 markers are invalid here.
            raise ValueError("COO coordinates must be non-negative")
        self.rows = rows
        self.cols = cols
        self.values = values
        if sum_duplicates:
            self._canonicalize()

    # -- construction helpers ---------------------------------------------

    @classmethod
    def from_scipy(cls, matrix) -> "COOMatrix":
        """Build from any SciPy sparse / dense matrix."""
        coo = as_csr(matrix).tocoo()
        return cls(coo.row.astype(np.int64), coo.col.astype(np.int64),
                   coo.data, coo.shape)

    @classmethod
    def empty(cls, shape) -> "COOMatrix":
        """An all-zero matrix of the given shape."""
        z = np.zeros(0)
        return cls(z.astype(np.int64), z.astype(np.int64), z, shape)

    def _canonicalize(self) -> None:
        """Sort by (row, col) and sum duplicate coordinates in place."""
        if self.values.size == 0:
            return
        order = np.lexsort((self.cols, self.rows))
        rows, cols, values = self.rows[order], self.cols[order], self.values[order]
        new_group = np.empty(rows.shape[0], dtype=bool)
        new_group[0] = True
        np.not_equal(rows[1:], rows[:-1], out=new_group[1:])
        same_row = ~new_group[1:]
        new_group[1:] |= cols[1:] != cols[:-1]
        del same_row
        group_ids = np.cumsum(new_group) - 1
        n_groups = int(group_ids[-1]) + 1
        summed = np.zeros(n_groups, dtype=np.float64)
        np.add.at(summed, group_ids, values)
        first = np.flatnonzero(new_group)
        keep = summed != 0.0
        self.rows = rows[first][keep]
        self.cols = cols[first][keep]
        self.values = summed[keep]
        self._invalidate_cache()

    # -- SparseFormat interface --------------------------------------------

    @property
    def nnz(self) -> int:
        return int(self.values.shape[0])

    def _reference_spmv(self, x: np.ndarray) -> np.ndarray:
        """Reference COO product: scatter-add of ``values * x[cols]``.

        On a GPU this corresponds to the segmented-reduction COO kernel of
        Bell & Garland; functionally both are a scatter-add.  No JIT
        backend implements COO, so every dispatch falls back here — the
        format deliberately exercises the fallback path.
        """
        y = np.zeros(self.shape[0], dtype=np.float64)
        np.add.at(y, self.rows, self.values * x[self.cols])
        return y

    def _reference_spmm(self, X: np.ndarray) -> np.ndarray:
        """Multi-RHS COO product: one scatter-add over whole ``X`` rows."""
        Y = np.zeros((self.shape[0], X.shape[1]), dtype=np.float64)
        np.add.at(Y, self.rows, self.values[:, None] * X[self.cols, :])
        return Y

    def to_scipy(self) -> sp.csr_matrix:
        coo = sp.coo_matrix(
            (self.values, (self.rows, self.cols)), shape=self.shape)
        return as_csr(coo)

    def footprint(self) -> int:
        """Bytes: one value + two 4-byte indices per nonzero."""
        return self.nnz * (VALUE_BYTES + 2 * INDEX_BYTES)
