"""Sliced ELL format (Monakov et al., Section VI).

Sliced ELL partitions the matrix into slices of ``s`` consecutive rows and
stores each slice as its own local ELL block with its own ``k_i`` (the
longest row in the slice), drastically reducing zero padding for matrices
with variable row lengths.  Two auxiliary arrays of ``ceil(n/s)`` entries
hold the per-slice ``k_i`` values and the starting offset of each local
block in the flat storage.

In the original formulation the slice size equals the CUDA block size;
the paper's warp-grained variant (:mod:`repro.sparse.warped_ell`)
decouples the two.  Each local block is stored column-major (coalesced)
and the rows of the final slice are padded up to ``s``.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.errors import FormatError
from repro.sparse.base import (
    INDEX_BYTES,
    VALUE_BYTES,
    SparseFormat,
    as_csr,
)
from repro.sparse.ell import PAD_COL
from repro.utils.arrays import ceil_div

#: Default slice size for the original sliced ELL: the CUDA block (256).
DEFAULT_SLICE_SIZE = 256


class SlicedELLMatrix(SparseFormat):
    """Sliced-ELL sparse matrix.

    Parameters
    ----------
    matrix:
        Anything convertible to canonical CSR.
    slice_size:
        Rows per slice (default 256, the original block-granularity
        formulation; the warp-grained subclass passes 32).

    Attributes
    ----------
    slice_k:
        ``(n_slices,)`` local maximum row length per slice.
    slice_ptr:
        ``(n_slices + 1,)`` starting element offset of each slice's local
        block inside the flat arrays; ``slice_ptr[-1]`` is the total number
        of stored slots.
    values, cols:
        Flat storage; slice ``i`` occupies
        ``values[slice_ptr[i]:slice_ptr[i+1]]`` viewed as an
        ``(slice_size, slice_k[i])`` column-major block.
    """

    format_name = "sell"

    def __init__(self, matrix, *, slice_size: int = DEFAULT_SLICE_SIZE):
        if slice_size <= 0:
            raise FormatError(f"slice_size must be positive, got {slice_size}")
        csr = as_csr(matrix)
        self.shape = csr.shape
        self.slice_size = int(slice_size)
        n = csr.shape[0]
        self.n_slices = ceil_div(n, self.slice_size) if n else 0
        self.n_padded = self.n_slices * self.slice_size
        lengths = np.diff(csr.indptr).astype(np.int64)
        self.row_lengths = lengths
        padded_lengths = np.zeros(self.n_padded, dtype=np.int64)
        padded_lengths[:n] = lengths
        if self.n_slices:
            self.slice_k = padded_lengths.reshape(
                self.n_slices, self.slice_size).max(axis=1)
        else:
            self.slice_k = np.zeros(0, dtype=np.int64)
        sizes = self.slice_k * self.slice_size
        self.slice_ptr = np.concatenate(
            ([0], np.cumsum(sizes))).astype(np.int64)
        total = int(self.slice_ptr[-1])
        self.values = np.zeros(total, dtype=np.float64)
        self.cols = np.full(total, PAD_COL, dtype=np.int32)
        self._nnz = int(csr.nnz)
        self._fill(csr)

    def _fill(self, csr: sp.csr_matrix) -> None:
        """Scatter the CSR nonzeros into the flat sliced storage.

        The flat index of nonzero ``p`` of row ``r`` (the ``p``-th stored
        entry in that row) is::

            slice_ptr[slice] + p * slice_size + (r mod slice_size)

        i.e. column-major within the slice's local block.
        """
        if csr.nnz == 0:
            return
        lengths = np.diff(csr.indptr)
        rows = np.repeat(np.arange(csr.shape[0]), lengths)
        pos = np.arange(csr.nnz) - np.repeat(csr.indptr[:-1], lengths)
        slices = rows // self.slice_size
        lane = rows % self.slice_size
        flat = self.slice_ptr[slices] + pos * self.slice_size + lane
        self.values[flat] = csr.data
        self.cols[flat] = csr.indices

    # -- queries ------------------------------------------------------------

    @property
    def nnz(self) -> int:
        return self._nnz

    def efficiency(self) -> float:
        """Slot efficiency: nonzeros over stored slots (1.0 = no padding)."""
        total = int(self.slice_ptr[-1])
        return self._nnz / total if total else 1.0

    def slice_block(self, i: int) -> tuple[np.ndarray, np.ndarray]:
        """The ``(slice_size, k_i)`` column-major (values, cols) views of slice *i*."""
        k = int(self.slice_k[i])
        lo, hi = int(self.slice_ptr[i]), int(self.slice_ptr[i + 1])
        vals = self.values[lo:hi].reshape(self.slice_size, k, order="F")
        cols = self.cols[lo:hi].reshape(self.slice_size, k, order="F")
        return vals, cols

    # -- SparseFormat interface --------------------------------------------

    def _reference_spmv(self, x: np.ndarray) -> np.ndarray:
        """Reference product: each slice sweeps its local k columns.

        Slices with equal ``k`` are batched into one vectorized gather so
        the reference stays usable inside tests on larger matrices.  The
        local columns are accumulated *sequentially* (``c = 0, 1, ...``)
        — the per-lane order of the slice kernel, which the JIT backends
        replicate exactly; a pairwise ``.sum(axis=2)`` would reorder the
        adds on wide slices and change the low bits.
        """
        y = np.zeros(self.n_padded, dtype=np.float64)
        if self._nnz == 0:
            return y[: self.shape[0]]
        s = self.slice_size
        for k in np.unique(self.slice_k):
            k = int(k)
            if k == 0:
                continue
            which = np.flatnonzero(self.slice_k == k)
            # Flat indices of every slot of every slice with this k:
            # shape (num_slices, s, k), column-major inside each block.
            base = self.slice_ptr[which][:, None, None]
            offs = (np.arange(k)[None, None, :] * s
                    + np.arange(s)[None, :, None])
            flat = base + offs
            vals = self.values[flat]
            cols = self.cols[flat]
            active = cols != PAD_COL
            gathered = np.where(active, x[np.clip(cols, 0, None)], 0.0)
            prods = vals * gathered
            contrib = np.zeros((which.size, s), dtype=np.float64)
            for c in range(k):
                contrib += prods[:, :, c]
            row_base = which[:, None] * s + np.arange(s)[None, :]
            y[row_base.ravel()] += contrib.ravel()
        return y[: self.shape[0]]

    def _reference_spmm(self, X: np.ndarray) -> np.ndarray:
        """Multi-RHS sliced product: the same equal-k batching as
        :meth:`_reference_spmv` with a trailing RHS axis, so each slice's
        local structure is gathered once for all ``k`` right-hand sides
        (and the same sequential local-column accumulation).
        """
        kr = X.shape[1]
        Y = np.zeros((self.n_padded, kr), dtype=np.float64)
        if self._nnz == 0 or kr == 0:
            return Y[: self.shape[0]]
        s = self.slice_size
        for k in np.unique(self.slice_k):
            k = int(k)
            if k == 0:
                continue
            which = np.flatnonzero(self.slice_k == k)
            base = self.slice_ptr[which][:, None, None]
            offs = (np.arange(k)[None, None, :] * s
                    + np.arange(s)[None, :, None])
            flat = base + offs
            vals = self.values[flat]
            cols = self.cols[flat]
            active = cols != PAD_COL
            # (num_slices, s, k, kr): the X-row gather, padding zeroed.
            gathered = np.where(active[..., None],
                                X[np.clip(cols, 0, None), :], 0.0)
            prods = vals[..., None] * gathered
            contrib = np.zeros((which.size, s, kr), dtype=np.float64)
            for c in range(k):
                contrib += prods[:, :, c, :]
            row_base = (which[:, None] * s
                        + np.arange(s)[None, :]).ravel()
            Y[row_base] += contrib.reshape(-1, kr)
        return Y[: self.shape[0]]

    def to_scipy(self) -> sp.csr_matrix:
        rows_list, cols_list, vals_list = [], [], []
        for i in range(self.n_slices):
            vals, cols = self.slice_block(i)
            r, p = np.nonzero(cols != PAD_COL)
            rows = i * self.slice_size + r
            keep = rows < self.shape[0]
            rows_list.append(rows[keep])
            cols_list.append(cols[r[keep], p[keep]])
            vals_list.append(vals[r[keep], p[keep]])
        if rows_list:
            rows = np.concatenate(rows_list)
            cols = np.concatenate(cols_list)
            vals = np.concatenate(vals_list)
        else:
            rows = cols = np.zeros(0, dtype=np.int64)
            vals = np.zeros(0)
        return as_csr(sp.coo_matrix((vals, (rows, cols)), shape=self.shape))

    def footprint(self) -> int:
        """Bytes: flat value/col slots plus the two per-slice arrays."""
        total = int(self.slice_ptr[-1])
        return (total * (VALUE_BYTES + INDEX_BYTES)
                + self.n_slices * 2 * INDEX_BYTES)
