"""GPU-oriented sparse matrix formats.

This subpackage implements, from scratch, every sparse format the paper
uses or compares against:

==================  =====================================================
:class:`COOMatrix`   coordinate format (assembly / Matrix Market I/O)
:class:`CSRMatrix`   compressed sparse row (CPU baseline format)
:class:`DIAMatrix`   diagonal format (dense band storage)
:class:`ELLMatrix`   ELLPACK with warp-padded rows (Section V)
:class:`ELLDIAMatrix` ELL with the dense diagonal band peeled into DIA
:class:`SlicedELLMatrix` sliced ELL of Monakov et al. (slice = block)
:class:`WarpedELLMatrix` the paper's warp-grained sliced ELL with local
                     rearrangement, optionally combined with DIA
                     (Section VI)
:class:`SellCSigmaMatrix` the general chunk/sort family the paper's
                     format belongs to (ablation studies)
==================  =====================================================

All formats share the :class:`SparseFormat` interface: ``spmv(x)`` and
``spmm(X)`` are the two documented product entry points, each validating
once and dispatching to the selected :mod:`repro.backends` kernel (the
reference backend runs the format-faithful traversal — the exact
arithmetic a GPU kernel would perform); ``matvec``/``matmat`` survive
only as thin aliases of them (see :mod:`repro.sparse.base` for the
alias and deprecation policy).  Every format also provides byte-exact
device ``footprint`` accounting and lossless conversion to/from
:mod:`scipy.sparse`.
"""

from repro.sparse.base import SparseFormat
from repro.sparse.coo import COOMatrix
from repro.sparse.csr import CSRMatrix
from repro.sparse.dia import DIAMatrix
from repro.sparse.ell import ELLMatrix
from repro.sparse.ellr import ELLRMatrix
from repro.sparse.ell_dia import ELLDIAMatrix
from repro.sparse.sliced_ell import SlicedELLMatrix
from repro.sparse.warped_ell import WarpedELLMatrix
from repro.sparse.sell_c_sigma import SellCSigmaMatrix
from repro.sparse.reorder import (
    local_rearrangement,
    global_row_sort,
    random_permutation,
)
from repro.sparse.stats import MatrixStats, matrix_stats
from repro.sparse.conversion import from_scipy, to_scipy
from repro.sparse.mmio import read_matrix_market, write_matrix_market

__all__ = [
    "SparseFormat",
    "COOMatrix",
    "CSRMatrix",
    "DIAMatrix",
    "ELLMatrix",
    "ELLRMatrix",
    "ELLDIAMatrix",
    "SlicedELLMatrix",
    "WarpedELLMatrix",
    "SellCSigmaMatrix",
    "local_rearrangement",
    "global_row_sort",
    "random_permutation",
    "MatrixStats",
    "matrix_stats",
    "from_scipy",
    "to_scipy",
    "read_matrix_market",
    "write_matrix_market",
]
