"""ELLR-T (ELLPACK-R): ELL with an explicit row-length array.

Vázquez, Fernández & Garzón's variant (the paper's reference [7]):
alongside the dense ``n' x k`` value/column arrays, an ``rl`` array
stores each row's true nonzero count, so the kernel loop runs
``rl[i]`` times instead of ``k`` — padding costs *no value bandwidth at
all* (where Listing 1's ELL still streams the padded value to test it
against zero).  The price is 4 bytes per row of extra state and the
same warp-level lockstep as sliced ELL: the warp executes as many steps
as its longest row, but issues no memory traffic for lanes whose rows
have ended.

Comparing ELLR-T against plain ELL and the warp-grained format isolates
how much of the sliced family's win is the *value-bandwidth* saving
(which ELLR-T also gets) versus the *storage compaction* (which only
slicing gets).
"""

from __future__ import annotations

import numpy as np

from repro.sparse.base import INDEX_BYTES, VALUE_BYTES
from repro.sparse.ell import ELLMatrix, PAD_COL


class ELLRMatrix(ELLMatrix):
    """ELLPACK-R sparse matrix (ELL + per-row length array).

    The dense layout is identical to :class:`~repro.sparse.ell.ELLMatrix`
    (so construction is shared); the differences are the ``row_lengths``
    array being part of the *device* structure and the kernel semantics
    of not touching padding at all.
    """

    format_name = "ellr"

    def __init__(self, matrix, *, pad_to: int = 32):
        super().__init__(matrix, pad_to=pad_to)
        # Device-resident row lengths, padded like the value array.
        self.rl = np.zeros(self.n_padded, dtype=np.int32)
        self.rl[: self.shape[0]] = self.row_lengths

    def _reference_spmv(self, x: np.ndarray) -> np.ndarray:
        """Row-length-guided product: lane ``i`` runs ``rl[i]`` steps.

        Numerically identical to the ELL kernel; the difference is pure
        traffic (no padded value loads), which the kernel model captures.
        """
        y = np.zeros(self.n_padded, dtype=np.float64)
        for c in range(self.k):
            active = self.rl > c
            if not active.any():
                break
            cols = self.cols[active, c]
            # Defensive: the structure guarantees col validity below rl.
            assert (cols != PAD_COL).all()
            y[active] += self.values[active, c] * x[cols]
        return y[: self.shape[0]]

    def _reference_spmm(self, X: np.ndarray) -> np.ndarray:
        """Row-length-guided multi-RHS product (lane ``i``: ``rl[i]`` steps)."""
        Y = np.zeros((self.n_padded, X.shape[1]), dtype=np.float64)
        for c in range(self.k):
            active = self.rl > c
            if not active.any():
                break
            cols = self.cols[active, c]
            assert (cols != PAD_COL).all()
            Y[active] += self.values[active, c, None] * X[cols, :]
        return Y[: self.shape[0]]

    def footprint(self) -> int:
        """ELL's dense slots plus the 4-byte row-length array."""
        return (self.n_padded * self.k * (VALUE_BYTES + INDEX_BYTES)
                + self.n_padded * INDEX_BYTES)
