"""Matrix structure statistics — the metrics of the paper's Table I.

For every benchmark matrix the paper reports: size ``n``, nonzeros
``nnz``, Matrix Market disk size, the nnz-per-row distribution (min, mean,
max, standard deviation), two derived metrics — the *variability factor*
``sigma / mu`` and the *skew factor* ``(max - mu) / mu`` — and the density
of the main diagonal alone (``d{0}``) and of the ``{-1, 0, +1}`` band
(``d{-1,0,+1}``).  Low variability/skew means plain ELL is already
efficient; high values leave room for the warp-grained format; a band
density above 8/12 justifies ELL+DIA.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.sparse.base import as_csr
from repro.sparse.ell_dia import diagonal_density


@dataclass(frozen=True)
class MatrixStats:
    """Structure statistics of one sparse matrix (Table I row)."""

    n: int
    nnz: int
    disk_bytes: int
    min_nnz_row: int
    mean_nnz_row: float
    max_nnz_row: int
    std_nnz_row: float
    diag_density: float
    band_density: float
    row_lengths: np.ndarray = field(repr=False, compare=False)

    @property
    def variability(self) -> float:
        """``sigma / mu`` — spread of row lengths relative to the mean."""
        return self.std_nnz_row / self.mean_nnz_row if self.mean_nnz_row else 0.0

    @property
    def skew(self) -> float:
        """``(max - mu) / mu`` — how far the longest row exceeds the mean."""
        if self.mean_nnz_row == 0:
            return 0.0
        return (self.max_nnz_row - self.mean_nnz_row) / self.mean_nnz_row

    @property
    def disk_megabytes(self) -> float:
        """Matrix Market coordinate file size in (decimal) megabytes."""
        return self.disk_bytes / 1e6

    @property
    def ell_efficiency(self) -> float:
        """Slot efficiency a plain ELL build would achieve, ``nnz/(n'·kmax)``."""
        if self.n == 0 or self.max_nnz_row == 0:
            return 1.0
        n_padded = -(-self.n // 32) * 32
        return self.nnz / (n_padded * self.max_nnz_row)


def matrix_market_size(csr) -> int:
    """Exact byte size of the Matrix Market coordinate file for *csr*.

    Uses the same ``%d %d %.13g`` line format as
    :func:`repro.sparse.mmio.write_matrix_market`, computed without
    materializing the file: digit counts are obtained vectorized from
    log10 and the value widths from a sampled exact formatting pass
    (values are formatted exactly — no sampling — via NumPy's string
    conversion, which is the only per-element cost).
    """
    csr = as_csr(csr)
    coo = csr.tocoo()
    header = b"%%MatrixMarket matrix coordinate real general\n"
    size_line = f"{csr.shape[0]} {csr.shape[1]} {csr.nnz}\n".encode()
    total = len(header) + len(size_line)
    if csr.nnz == 0:
        return total
    # 1-based indices as written to disk.
    digits_r = np.floor(np.log10(coo.row.astype(np.float64) + 1)).astype(np.int64) + 1
    digits_c = np.floor(np.log10(coo.col.astype(np.float64) + 1)).astype(np.int64) + 1
    value_chars = sum(len(f"{v:.13g}") for v in coo.data)
    # two separating spaces + newline per line
    total += int(digits_r.sum() + digits_c.sum()) + value_chars + 3 * csr.nnz
    return total


def matrix_stats(matrix, *, disk_bytes: int | None = None) -> MatrixStats:
    """Compute the Table I statistics for *matrix*.

    Parameters
    ----------
    matrix:
        Anything convertible to canonical CSR.
    disk_bytes:
        Pre-computed Matrix Market size; computed exactly when omitted
        (costs one pass over the values).
    """
    csr = as_csr(matrix)
    lengths = np.diff(csr.indptr).astype(np.int64)
    n = csr.shape[0]
    if disk_bytes is None:
        disk_bytes = matrix_market_size(csr)
    if n == 0:
        return MatrixStats(0, 0, disk_bytes, 0, 0.0, 0, 0.0, 0.0, 0.0, lengths)
    band = (diagonal_density(csr, -1), diagonal_density(csr, 0),
            diagonal_density(csr, 1))
    # Band density over the three diagonals jointly (slot-weighted).
    slots = np.array([n - 1, n, n - 1], dtype=np.float64)
    band_density = float((np.array(band) * slots).sum() / slots.sum()) if n > 1 else band[1]
    return MatrixStats(
        n=n,
        nnz=int(csr.nnz),
        disk_bytes=int(disk_bytes),
        min_nnz_row=int(lengths.min()),
        mean_nnz_row=float(lengths.mean()),
        max_nnz_row=int(lengths.max()),
        std_nnz_row=float(lengths.std()),
        diag_density=float(band[1]),
        band_density=band_density,
        row_lengths=lengths,
    )
