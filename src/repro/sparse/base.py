"""Common interface for all sparse formats.

Since the backend redesign every format exposes **one documented entry
point per multiply op**:

``spmv(x, *, backend=None)`` / ``spmm(X, *, backend=None)``
    The sparse products ``y = A @ x`` and ``Y = A @ X`` (``X`` of shape
    ``(n, k)``).  The entry points validate the operand once, then
    dispatch to a :mod:`repro.backends` kernel: the ``numpy`` reference
    backend runs the format's own *format-faithful* kernel
    (:meth:`_reference_spmv` / :meth:`_reference_spmm` — exactly the
    arithmetic of the corresponding GPU kernel, same traversal order,
    same padding-skip semantics), while JIT backends run compiled
    kernels that reproduce the identical accumulation order (the
    conformance suite asserts bitwise agreement).  Column ``j`` of
    ``spmm`` matches ``spmv(X[:, j])`` exactly on every backend.

``matvec(x)`` / ``matmat(X)``
    Thin cached aliases of ``spmv``/``spmm`` kept for solver inner
    loops: when a non-reference backend serves this format they forward
    to the dispatched product; otherwise they run a cached SciPy CSR
    product (numerically equal to ``spmv``, faster than the Python
    traversal).  They add no third semantic — ``spmv`` is *the* seam.

Subclasses implement ``_reference_spmv`` (and optionally a vectorized
``_reference_spmm``); overriding ``spmv``/``spmm`` directly is
deprecated — a shim adopts such legacy overrides as the reference
kernel with a :class:`DeprecationWarning` so old format plug-ins keep
working under the new dispatch.

Footprint accounting follows the paper: 8 bytes per double value, 4 bytes
per (column) index, 4 bytes per pointer/offset entry.
"""

from __future__ import annotations

import abc
import warnings

import numpy as np
import scipy.sparse as sp

from repro import backends
from repro.errors import ValidationError
from repro.utils.validation import check_1d

#: Bytes per double-precision value on the device.
VALUE_BYTES = 8
#: Bytes per column index / pointer entry on the device.
INDEX_BYTES = 4


def _entry_point(fn):
    """Mark a method as the backend-dispatching kernel entry point."""
    fn._kernel_entry_point = True
    return fn


class SparseFormat(abc.ABC):
    """Abstract base class for device sparse-matrix representations.

    Subclasses must set ``shape`` (a ``(n_rows, n_cols)`` tuple) during
    construction and implement :meth:`_reference_spmv`, :meth:`to_scipy`
    and :meth:`footprint`.
    """

    #: Short lowercase identifier used in tables and the autotuner.
    format_name: str = "abstract"

    shape: tuple[int, int]

    def __init_subclass__(cls, **kwargs) -> None:
        """Adopt legacy direct ``spmv``/``spmm`` overrides as reference kernels.

        Before the backend redesign, formats overrode :meth:`spmv` and
        :meth:`spmm` directly.  Such overrides would now shadow the
        dispatching entry points and silently bypass every backend, so
        they are deprecated: the shim warns once per class, installs the
        override as the class's reference kernel, and removes the
        shadowing name so base-class dispatch wins again.

        Removal policy: the shim is kept for two release cycles after
        the backend redesign (through the 0.x series) and is then
        deleted — at that point a direct ``spmv``/``spmm`` override
        raises ``TypeError`` at class-definition time instead of being
        adopted.  New formats must implement ``_reference_spmv`` (and
        optionally ``_reference_spmm``) from the start.
        """
        super().__init_subclass__(**kwargs)
        for legacy, target in (("spmv", "_reference_spmv"),
                               ("spmm", "_reference_spmm")):
            impl = cls.__dict__.get(legacy)
            if impl is None or getattr(impl, "_kernel_entry_point", False):
                continue
            warnings.warn(
                f"{cls.__name__} overrides {legacy}() directly; override "
                f"{target}() instead — direct {legacy} overrides are "
                f"deprecated and bypass kernel-backend dispatch. The "
                f"override was adopted as {cls.__name__}.{target}.",
                DeprecationWarning, stacklevel=3)
            setattr(cls, target, impl)
            delattr(cls, legacy)

    # -- core interface ----------------------------------------------------

    @abc.abstractmethod
    def _reference_spmv(self, x: np.ndarray) -> np.ndarray:
        """Format-faithful product ``y = A @ x`` on a validated operand."""

    @abc.abstractmethod
    def to_scipy(self) -> sp.csr_matrix:
        """Lossless conversion to a SciPy CSR matrix (explicit zeros dropped)."""

    @abc.abstractmethod
    def footprint(self) -> int:
        """Device memory footprint of the data structure, in bytes."""

    # -- provided behaviour ------------------------------------------------

    @property
    def n_rows(self) -> int:
        return self.shape[0]

    @property
    def n_cols(self) -> int:
        return self.shape[1]

    @property
    def nnz(self) -> int:
        """Number of stored nonzeros (excluding padding)."""
        return int(self.to_scipy().nnz)

    @_entry_point
    def spmv(self, x: np.ndarray, *, backend=None) -> np.ndarray:
        """Sparse matrix-vector product ``y = A @ x``.

        The single kernel entry point: validates ``x`` once, then
        dispatches to the selected :mod:`repro.backends` kernel (see
        the module docstring for reference-vs-JIT semantics).  *backend*
        overrides the ambient selection for this call; an unsupported
        ``(format, op)`` pair falls back to the reference kernel.
        """
        x = self.check_x(x)
        be = backends.serving(self.format_name, "spmv", backend)
        return be.spmv(self, x)

    @_entry_point
    def spmm(self, X: np.ndarray, *, backend=None) -> np.ndarray:
        """Multi-RHS product ``Y = A @ X`` with ``X`` of shape ``(n, k)``.

        Dispatches like :meth:`spmv`; every backend's ``spmm(X)[:, j]``
        equals its ``spmv(X[:, j])`` bit for bit (the amortization a
        batched kernel exploits changes traffic, not arithmetic).
        """
        X = self.check_X(X)
        be = backends.serving(self.format_name, "spmm", backend)
        return be.spmm(self, X)

    def _reference_spmm(self, X: np.ndarray) -> np.ndarray:
        """Generic reference multi-RHS kernel: ``_reference_spmv`` per column.

        Formats with a vectorized sweep override this; the fallback
        preserves each column's exact arithmetic.
        """
        Y = np.zeros((self.n_rows, X.shape[1]), dtype=np.float64)
        for j in range(X.shape[1]):
            Y[:, j] = self._reference_spmv(np.ascontiguousarray(X[:, j]))
        return Y

    def matvec(self, x: np.ndarray, *, backend=None) -> np.ndarray:
        """Fast ``A @ x`` — a thin alias of :meth:`spmv`.

        With a non-reference backend serving this format it *is*
        ``spmv`` (same kernel, same bits); under the reference backend
        it runs a cached SciPy CSR product instead of the Python-level
        format traversal (numerically equal, faster on this host).
        """
        be = backends.resolve(backend)
        if not be.is_reference and be.supports(self.format_name, "spmv"):
            return self.spmv(x, backend=be)
        x = check_1d(x, "x", n=self.n_cols, dtype=np.float64)
        return self._cached_csr() @ x

    def matmat(self, X: np.ndarray, *, backend=None) -> np.ndarray:
        """Fast ``A @ X`` — a thin alias of :meth:`spmm` (see :meth:`matvec`)."""
        be = backends.resolve(backend)
        if not be.is_reference and be.supports(self.format_name, "spmm"):
            return self.spmm(X, backend=be)
        X = self.check_X(X)
        return self._cached_csr() @ X

    def _cached_csr(self) -> sp.csr_matrix:
        csr = getattr(self, "_csr_cache", None)
        if csr is None:
            csr = self.to_scipy()
            self._csr_cache = csr
        return csr

    def _invalidate_cache(self) -> None:
        self._csr_cache = None

    def check_x(self, x: np.ndarray) -> np.ndarray:
        """Validate a multiplicand vector (contiguous float64 on return)."""
        return check_1d(x, "x", n=self.n_cols, dtype=np.float64)

    def check_X(self, X: np.ndarray) -> np.ndarray:
        """Validate a multi-RHS block: shape ``(n_cols, k)``, float64."""
        arr = np.asarray(X)
        if arr.ndim != 2:
            raise ValidationError(
                f"X must be 2-D (n, k), got ndim={arr.ndim}")
        if arr.shape[0] != self.n_cols:
            raise ValidationError(
                f"X must have {self.n_cols} rows, got {arr.shape[0]}")
        return np.ascontiguousarray(arr, dtype=np.float64)

    def density(self) -> float:
        """Fraction of nonzero entries, ``nnz / (n_rows * n_cols)``."""
        n = self.n_rows * self.n_cols
        return self.nnz / n if n else 0.0

    def __repr__(self) -> str:  # pragma: no cover - debug convenience
        return (f"<{type(self).__name__} {self.shape[0]}x{self.shape[1]}, "
                f"nnz={self.nnz}, {self.footprint()} bytes>")


def validate_shape(shape) -> tuple[int, int]:
    """Validate and normalize a matrix shape tuple."""
    try:
        n, m = int(shape[0]), int(shape[1])
    except (TypeError, ValueError, IndexError) as exc:
        raise ValidationError(f"invalid shape {shape!r}") from exc
    if n < 0 or m < 0:
        raise ValidationError(f"shape must be non-negative, got {shape!r}")
    return (n, m)


def as_csr(matrix) -> sp.csr_matrix:
    """Coerce SciPy sparse / dense / SparseFormat input to canonical CSR.

    Canonical means: sorted column indices, no duplicates, no explicit
    zeros, ``float64`` values and ``int32`` indices (the device index
    width used throughout the paper).

    Input that is already canonical is returned unchanged (no copy).
    Preserving object identity lets per-matrix caches keyed on the CSR
    arrays — kernel preps, stacked layouts — survive across solver
    constructions instead of being rebuilt for an identical copy.
    """
    if (sp.issparse(matrix) and matrix.format == "csr"
            and matrix.dtype == np.float64
            and matrix.indices.dtype == np.int32
            and matrix.indptr.dtype == np.int32
            and matrix.has_canonical_format
            and bool(matrix.data.all())):
        return matrix
    if isinstance(matrix, SparseFormat):
        csr = matrix.to_scipy()
    elif sp.issparse(matrix):
        csr = matrix.tocsr()
    else:
        arr = np.asarray(matrix, dtype=np.float64)
        if arr.ndim != 2:
            raise ValidationError(
                f"matrix must be 2-D, got ndim={arr.ndim}")
        csr = sp.csr_matrix(arr)
    csr = csr.astype(np.float64)
    csr.sum_duplicates()
    csr.eliminate_zeros()
    csr.sort_indices()
    if (csr.shape[0] >= np.iinfo(np.int32).max
            or csr.shape[1] >= np.iinfo(np.int32).max
            or csr.nnz >= np.iinfo(np.int32).max):
        raise ValidationError("matrix exceeds the 32-bit device index range")
    csr.indices = csr.indices.astype(np.int32)
    csr.indptr = csr.indptr.astype(np.int32)
    return csr
