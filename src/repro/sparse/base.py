"""Common interface for all sparse formats.

Each format provides two multiply paths:

``spmv(x)`` / ``spmm(X)``
    The *format-faithful* reference implementations: they perform exactly
    the arithmetic the corresponding GPU kernel performs (same traversal
    order, same padding-skip semantics).  ``spmm`` is the multi-RHS
    product ``Y = A @ X`` with ``X`` of shape ``(n, k)``; every format
    vectorizes it so the matrix structure is traversed once for all ``k``
    columns, and column ``j`` of the result matches ``spmv(X[:, j])``
    exactly (tests enforce parity).  The base class supplies a
    column-loop fallback for formats without a vectorized kernel.

``matvec(x)`` / ``matmat(X)``
    Fast paths for solver inner loops.  Numerically identical to
    ``spmv``/``spmm`` but delegating to a cached SciPy CSR product, since
    on this host the Python-level traversal would dominate a Jacobi run.

Footprint accounting follows the paper: 8 bytes per double value, 4 bytes
per (column) index, 4 bytes per pointer/offset entry.
"""

from __future__ import annotations

import abc

import numpy as np
import scipy.sparse as sp

from repro.errors import ValidationError
from repro.utils.validation import check_1d

#: Bytes per double-precision value on the device.
VALUE_BYTES = 8
#: Bytes per column index / pointer entry on the device.
INDEX_BYTES = 4


class SparseFormat(abc.ABC):
    """Abstract base class for device sparse-matrix representations.

    Subclasses must set ``shape`` (a ``(n_rows, n_cols)`` tuple) during
    construction and implement :meth:`spmv`, :meth:`to_scipy` and
    :meth:`footprint`.
    """

    #: Short lowercase identifier used in tables and the autotuner.
    format_name: str = "abstract"

    shape: tuple[int, int]

    # -- core interface ----------------------------------------------------

    @abc.abstractmethod
    def spmv(self, x: np.ndarray) -> np.ndarray:
        """Format-faithful sparse matrix-vector product ``y = A @ x``."""

    @abc.abstractmethod
    def to_scipy(self) -> sp.csr_matrix:
        """Lossless conversion to a SciPy CSR matrix (explicit zeros dropped)."""

    @abc.abstractmethod
    def footprint(self) -> int:
        """Device memory footprint of the data structure, in bytes."""

    # -- provided behaviour ------------------------------------------------

    @property
    def n_rows(self) -> int:
        return self.shape[0]

    @property
    def n_cols(self) -> int:
        return self.shape[1]

    @property
    def nnz(self) -> int:
        """Number of stored nonzeros (excluding padding)."""
        return int(self.to_scipy().nnz)

    def spmm(self, X: np.ndarray) -> np.ndarray:
        """Format-faithful multi-RHS product ``Y = A @ X``, ``X: (n, k)``.

        The generic fallback runs ``spmv`` per column, preserving each
        column's exact arithmetic; formats override it with a vectorized
        sweep that reads the matrix structure once for all ``k`` columns
        (the amortization a batched GPU kernel exploits).
        """
        X = self.check_X(X)
        Y = np.zeros((self.n_rows, X.shape[1]), dtype=np.float64)
        for j in range(X.shape[1]):
            Y[:, j] = self.spmv(X[:, j])
        return Y

    def matvec(self, x: np.ndarray) -> np.ndarray:
        """Fast ``A @ x`` via a cached CSR product (numerically = ``spmv``)."""
        x = check_1d(x, "x", n=self.n_cols, dtype=np.float64)
        return self._cached_csr() @ x

    def matmat(self, X: np.ndarray) -> np.ndarray:
        """Fast ``A @ X`` via a cached CSR product (numerically = ``spmm``)."""
        X = self.check_X(X)
        return self._cached_csr() @ X

    def _cached_csr(self) -> sp.csr_matrix:
        csr = getattr(self, "_csr_cache", None)
        if csr is None:
            csr = self.to_scipy()
            self._csr_cache = csr
        return csr

    def _invalidate_cache(self) -> None:
        self._csr_cache = None

    def check_x(self, x: np.ndarray) -> np.ndarray:
        """Validate a multiplicand vector."""
        return check_1d(x, "x", n=self.n_cols, dtype=np.float64)

    def check_X(self, X: np.ndarray) -> np.ndarray:
        """Validate a multi-RHS block: shape ``(n_cols, k)``, float64."""
        arr = np.asarray(X)
        if arr.ndim != 2:
            raise ValidationError(
                f"X must be 2-D (n, k), got ndim={arr.ndim}")
        if arr.shape[0] != self.n_cols:
            raise ValidationError(
                f"X must have {self.n_cols} rows, got {arr.shape[0]}")
        return np.ascontiguousarray(arr, dtype=np.float64)

    def density(self) -> float:
        """Fraction of nonzero entries, ``nnz / (n_rows * n_cols)``."""
        n = self.n_rows * self.n_cols
        return self.nnz / n if n else 0.0

    def __repr__(self) -> str:  # pragma: no cover - debug convenience
        return (f"<{type(self).__name__} {self.shape[0]}x{self.shape[1]}, "
                f"nnz={self.nnz}, {self.footprint()} bytes>")


def validate_shape(shape) -> tuple[int, int]:
    """Validate and normalize a matrix shape tuple."""
    try:
        n, m = int(shape[0]), int(shape[1])
    except (TypeError, ValueError, IndexError) as exc:
        raise ValidationError(f"invalid shape {shape!r}") from exc
    if n < 0 or m < 0:
        raise ValidationError(f"shape must be non-negative, got {shape!r}")
    return (n, m)


def as_csr(matrix) -> sp.csr_matrix:
    """Coerce SciPy sparse / dense / SparseFormat input to canonical CSR.

    Canonical means: sorted column indices, no duplicates, no explicit
    zeros, ``float64`` values and ``int32`` indices (the device index
    width used throughout the paper).
    """
    if isinstance(matrix, SparseFormat):
        csr = matrix.to_scipy()
    elif sp.issparse(matrix):
        csr = matrix.tocsr()
    else:
        arr = np.asarray(matrix, dtype=np.float64)
        if arr.ndim != 2:
            raise ValidationError(
                f"matrix must be 2-D, got ndim={arr.ndim}")
        csr = sp.csr_matrix(arr)
    csr = csr.astype(np.float64)
    csr.sum_duplicates()
    csr.eliminate_zeros()
    csr.sort_indices()
    if (csr.shape[0] >= np.iinfo(np.int32).max
            or csr.shape[1] >= np.iinfo(np.int32).max
            or csr.nnz >= np.iinfo(np.int32).max):
        raise ValidationError("matrix exceeds the 32-bit device index range")
    csr.indices = csr.indices.astype(np.int32)
    csr.indptr = csr.indptr.astype(np.int32)
    return csr
