"""Compressed Sparse Row (CSR) format.

CSR is the general-purpose format the CPU baseline (an "MKL-like"
implementation, Section VII-D) operates on, and one member of the clSpMV
ensemble.  It stores ``values``/``col_indices`` row-contiguously with an
``n+1``-entry row-pointer array.

The optional ``dia`` argument supports the paper's *CSR+DIA* baseline: the
dense ``{-1, 0, +1}`` band is peeled into a separate
:class:`~repro.sparse.dia.DIAMatrix` and the CSR part keeps the remainder.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.errors import SingularMatrixError
from repro.sparse.base import (
    INDEX_BYTES,
    VALUE_BYTES,
    SparseFormat,
    as_csr,
)


class CSRMatrix(SparseFormat):
    """Compressed sparse row matrix.

    Parameters
    ----------
    matrix:
        Anything :func:`repro.sparse.base.as_csr` accepts (SciPy sparse,
        dense array, or another :class:`SparseFormat`).
    """

    format_name = "csr"

    def __init__(self, matrix):
        csr = as_csr(matrix)
        self.shape = csr.shape
        self.indptr = csr.indptr.astype(np.int64)
        self.col_indices = csr.indices.astype(np.int32)
        self.values = csr.data.astype(np.float64)

    # -- SparseFormat interface --------------------------------------------

    @property
    def nnz(self) -> int:
        return int(self.values.shape[0])

    def row_lengths(self) -> np.ndarray:
        """Number of stored nonzeros per row."""
        return np.diff(self.indptr)

    def _reference_spmv(self, x: np.ndarray) -> np.ndarray:
        """Reference CSR product (the "scalar" kernel: one thread per row).

        Each row accumulates its products sequentially in column-index
        order — exactly the scalar kernel's loop.  SciPy's ``csr_matvec``
        implements precisely that per-row sequential loop in C, so the
        cached CSR product *is* the reference arithmetic (a ``reduceat``
        segmented sum would not be: NumPy sums long segments pairwise,
        which changes the accumulation order and the low bits).
        """
        return self._cached_csr() @ x

    def _reference_spmm(self, X: np.ndarray) -> np.ndarray:
        """Multi-RHS CSR product: the structure is read once for all k.

        SciPy's ``csr_matvecs`` accumulates row-sequentially per output
        column (an axpy per nonzero), so ``spmm(X)[:, j]`` equals
        ``spmv(X[:, j])`` bit for bit.
        """
        return self._cached_csr() @ X

    def diagonal(self) -> np.ndarray:
        """Main-diagonal entries as a dense vector (zeros where absent)."""
        n = min(self.shape)
        diag = np.zeros(n, dtype=np.float64)
        for_row = np.repeat(np.arange(self.shape[0]), np.diff(self.indptr))
        on_diag = (for_row == self.col_indices) & (self.col_indices < n)
        diag[self.col_indices[on_diag]] = self.values[on_diag]
        return diag

    def jacobi_step(self, x: np.ndarray) -> np.ndarray:
        """One Jacobi iteration for ``A x = 0``: ``x' = -D^{-1} (A - D) x``.

        This is the CPU-baseline inner loop (CSR traversal with the
        diagonal divided out), kept here so the Jacobi solver can treat the
        format as a black box.
        """
        diag = self.diagonal()
        if np.any(diag == 0.0):
            raise SingularMatrixError(
                "Jacobi step requires a nonzero diagonal")
        y = self.spmv(x)
        # spmv computed D x + (L+U) x; subtract the diagonal contribution.
        return -(y - diag * x[: diag.shape[0]]) / diag

    def to_scipy(self) -> sp.csr_matrix:
        return sp.csr_matrix(
            (self.values.copy(), self.col_indices.copy(), self.indptr.copy()),
            shape=self.shape)

    def footprint(self) -> int:
        """Bytes: values + column indices + (n+1) row pointers."""
        return (self.nnz * (VALUE_BYTES + INDEX_BYTES)
                + (self.shape[0] + 1) * INDEX_BYTES)
