"""Matrix Market coordinate I/O.

The paper stores its benchmark matrices on disk in the NIST Matrix Market
coordinate format and reports the resulting file sizes in Table I.  This
is a from-scratch reader/writer for the ``matrix coordinate real
general``/``symmetric``/``integer``/``pattern`` subset (sufficient for
CME rate matrices and the UF-collection style inputs).
"""

from __future__ import annotations

import io
from pathlib import Path

import numpy as np
import scipy.sparse as sp

from repro.errors import FormatError
from repro.sparse.base import as_csr


def write_matrix_market(matrix, path) -> int:
    """Write *matrix* as a Matrix Market coordinate file.

    Indices are 1-based on disk, values use the ``%.13g`` format (enough
    to round-trip doubles for the rate constants used here).  Returns the
    number of bytes written.
    """
    csr = as_csr(matrix)
    coo = csr.tocoo()
    buf = io.StringIO()
    buf.write("%%MatrixMarket matrix coordinate real general\n")
    buf.write(f"{csr.shape[0]} {csr.shape[1]} {csr.nnz}\n")
    for r, c, v in zip(coo.row, coo.col, coo.data):
        buf.write(f"{r + 1} {c + 1} {v:.13g}\n")
    data = buf.getvalue().encode()
    Path(path).write_bytes(data)
    return len(data)


def read_matrix_market(path) -> sp.csr_matrix:
    """Read a Matrix Market coordinate file into canonical CSR.

    Supports ``real``, ``integer`` and ``pattern`` fields and ``general``
    or ``symmetric`` symmetry (symmetric entries are mirrored).
    """
    text = Path(path).read_text()
    lines = iter(text.splitlines())
    try:
        header = next(lines)
    except StopIteration:
        raise FormatError(f"{path}: empty file") from None
    parts = header.strip().split()
    if (len(parts) != 5 or parts[0] != "%%MatrixMarket"
            or parts[1].lower() != "matrix"
            or parts[2].lower() != "coordinate"):
        raise FormatError(f"{path}: unsupported Matrix Market header: {header!r}")
    field = parts[3].lower()
    symmetry = parts[4].lower()
    if field not in ("real", "integer", "pattern"):
        raise FormatError(f"{path}: unsupported field {field!r}")
    if symmetry not in ("general", "symmetric"):
        raise FormatError(f"{path}: unsupported symmetry {symmetry!r}")

    # Skip comments, read the size line.
    size_line = None
    for line in lines:
        stripped = line.strip()
        if not stripped or stripped.startswith("%"):
            continue
        size_line = stripped
        break
    if size_line is None:
        raise FormatError(f"{path}: missing size line")
    try:
        n, m, nnz = (int(tok) for tok in size_line.split())
    except ValueError:
        raise FormatError(f"{path}: bad size line {size_line!r}") from None

    rows = np.empty(nnz, dtype=np.int64)
    cols = np.empty(nnz, dtype=np.int64)
    vals = np.empty(nnz, dtype=np.float64)
    count = 0
    for line in lines:
        stripped = line.strip()
        if not stripped or stripped.startswith("%"):
            continue
        toks = stripped.split()
        if field == "pattern":
            if len(toks) != 2:
                raise FormatError(f"{path}: bad pattern entry {stripped!r}")
            value = 1.0
        else:
            if len(toks) != 3:
                raise FormatError(f"{path}: bad entry {stripped!r}")
            value = float(toks[2])
        if count >= nnz:
            raise FormatError(f"{path}: more entries than declared ({nnz})")
        rows[count] = int(toks[0]) - 1
        cols[count] = int(toks[1]) - 1
        vals[count] = value
        count += 1
    if count != nnz:
        raise FormatError(f"{path}: declared {nnz} entries, found {count}")
    if nnz and (rows.min() < 0 or cols.min() < 0
                or rows.max() >= n or cols.max() >= m):
        raise FormatError(f"{path}: index out of declared bounds")

    if symmetry == "symmetric":
        off = rows != cols
        mirrored_rows = cols[off]
        mirrored_cols = rows[off]
        rows = np.concatenate([rows, mirrored_rows])
        cols = np.concatenate([cols, mirrored_cols])
        vals = np.concatenate([vals, vals[off]])
    return as_csr(sp.coo_matrix((vals, (rows, cols)), shape=(n, m)))
