"""Versioned, checksummed, atomically-written solve checkpoints.

A checkpoint file is one self-validating binary record::

    magic   b"RCPK"                      (4 bytes)
    version u32 little-endian            (currently 1)
    hlen    u32 little-endian            (header length in bytes)
    crc     u32 little-endian            (CRC32 over header + payload)
    header  UTF-8 JSON, ``hlen`` bytes
    payload concatenated raw array bytes, in header order

The header carries everything needed to rebuild the arrays (name,
dtype, shape, byte length), the producing layer (``kind``), a caller
``signature`` pinning the system being solved, the ``iteration``
reached, and an arbitrary JSON ``meta`` dict (residual history,
stopping-criterion state, shard topology, FSP round records, ...).

Three properties make this crash-safe:

* **Atomic visibility** — the record is written to a same-directory
  temporary file, flushed and fsynced, then :func:`os.replace`'d into
  place (and the directory fsynced), so a reader never observes a
  half-renamed file under POSIX semantics.
* **Self-validation** — magic, version, lengths and the CRC are checked
  on read; a torn tail, flipped bit or truncated payload raises
  :class:`~repro.errors.CheckpointError` instead of returning garbage.
* **Fallback** — :meth:`Checkpointer.load_latest` walks the retained
  files newest-first and resumes from the first one that validates,
  logging a warning for each rejected file.

The ``checkpoint.write`` fault site (:mod:`repro.resilience.faults`,
kinds ``torn``/``corrupt``) damages the encoded bytes *before* the
atomic write, so chaos tests exercise exactly the read-side validation
path a real crash would.
"""

from __future__ import annotations

import contextlib
import json
import logging
import os
import struct
import time
import zlib
from dataclasses import dataclass, field
from hashlib import sha256
from pathlib import Path

import numpy as np

from repro.errors import CheckpointError, ValidationError
from repro.telemetry.metrics import get_registry

log = logging.getLogger("repro.durability")

MAGIC = b"RCPK"
VERSION = 1
_PREAMBLE = struct.Struct("<4sIII")  # magic, version, header len, crc32

#: File-name pattern of retained checkpoints inside a checkpoint
#: directory; the zero-padded iteration makes lexical order == age.
FILE_PATTERN = "ckpt-*.ckpt"


def system_signature(A, *, method: str = "", tol: float = 0.0,
                     extra: str = "") -> str:
    """A short content hash pinning *what is being solved, and how*.

    Built from the assembled matrix (shape, nnz, structure and values)
    plus the solver method and tolerance, so a checkpoint written for
    one system can never silently seed a resume of another.  ``extra``
    folds in layer-specific parameters (e.g. FSP tolerances) that also
    change the answer.
    """
    h = sha256()
    h.update(repr(getattr(A, "shape", None)).encode())
    h.update(str(getattr(A, "nnz", "")).encode())
    for part in ("indptr", "indices", "data"):
        arr = getattr(A, part, None)
        if arr is not None:
            h.update(np.ascontiguousarray(arr).tobytes())
    h.update(f"|{method}|{tol!r}|{extra}".encode())
    return h.hexdigest()[:16]


def network_signature(network, *, extra: str = "") -> str:
    """Like :func:`system_signature` but for a reaction network (the
    FSP controller checkpoints before any single matrix exists)."""
    h = sha256()
    h.update(network.canonical_signature().encode())
    h.update(f"|{extra}".encode())
    return h.hexdigest()[:16]


@dataclass
class CheckpointData:
    """One validated checkpoint, decoded back into arrays + metadata."""

    signature: str
    kind: str
    iteration: int
    meta: dict
    arrays: dict[str, np.ndarray]
    path: Path | None = None


@dataclass(frozen=True)
class CheckpointPolicy:
    """When to write, and how many files to retain.

    A save is due when *either* trigger fires: ``every_iterations``
    iterations have passed since the last durable save, or
    ``every_seconds`` wall-clock seconds have (set a trigger to
    ``None`` to disable it).  ``keep_last`` caps the number of retained
    files; older ones are deleted after each successful write, so at
    least one intact older checkpoint always survives a torn newest.
    """

    every_iterations: int | None = 1000
    every_seconds: float | None = None
    keep_last: int = 3

    def __post_init__(self) -> None:
        if self.every_iterations is None and self.every_seconds is None:
            raise ValidationError(
                "checkpoint policy needs at least one trigger "
                "(every_iterations or every_seconds)")
        if self.every_iterations is not None and self.every_iterations <= 0:
            raise ValidationError("every_iterations must be positive")
        if self.every_seconds is not None and not self.every_seconds > 0:
            raise ValidationError("every_seconds must be positive")
        if self.keep_last <= 0:
            raise ValidationError("keep_last must be positive")

    def due(self, iterations_since: int, seconds_since: float) -> bool:
        """Whether a save is due after the given progress deltas."""
        if (self.every_iterations is not None
                and iterations_since >= self.every_iterations):
            return True
        return (self.every_seconds is not None
                and seconds_since >= self.every_seconds)


def _encode(*, signature: str, kind: str, iteration: int,
            arrays: dict[str, np.ndarray], meta: dict | None) -> bytes:
    descriptors = []
    chunks = []
    for name, array in arrays.items():
        arr = np.ascontiguousarray(array)
        raw = arr.tobytes()
        descriptors.append({"name": str(name), "dtype": arr.dtype.str,
                            "shape": list(arr.shape), "nbytes": len(raw)})
        chunks.append(raw)
    header = json.dumps({
        "signature": str(signature),
        "kind": str(kind),
        "iteration": int(iteration),
        "meta": meta or {},
        "arrays": descriptors,
    }, sort_keys=True, separators=(",", ":")).encode()
    payload = b"".join(chunks)
    crc = zlib.crc32(header + payload) & 0xFFFFFFFF
    return _PREAMBLE.pack(MAGIC, VERSION, len(header), crc) + header + payload


def write_checkpoint(path, *, signature: str, kind: str, iteration: int,
                     arrays: dict[str, np.ndarray],
                     meta: dict | None = None) -> Path:
    """Atomically write one checkpoint record to *path*.

    The bytes pass through the ``checkpoint.write`` fault site first,
    so an installed chaos plan can tear or flip them; the (possibly
    damaged) record is then written tmp + fsync + rename, and the
    containing directory fsynced.  Returns the final path.
    """
    path = Path(path)
    blob = _encode(signature=signature, kind=kind, iteration=iteration,
                   arrays=arrays, meta=meta)
    from repro.resilience.faults import active_injector
    injector = active_injector()
    if injector is not None:
        blob, _ = injector.corrupt_blob("checkpoint.write", blob,
                                        detail=path.name)
    tmp = path.with_name(path.name + f".tmp{os.getpid()}")
    try:
        with open(tmp, "wb") as fh:
            fh.write(blob)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
    finally:
        with contextlib.suppress(OSError):
            tmp.unlink()
    with contextlib.suppress(OSError):
        dir_fd = os.open(path.parent, os.O_RDONLY)
        try:
            os.fsync(dir_fd)
        finally:
            os.close(dir_fd)
    return path


def read_checkpoint(path, *, expected_signature: str | None = None,
                    expected_kind: str | None = None) -> CheckpointData:
    """Read and fully validate one checkpoint record.

    Raises :class:`~repro.errors.CheckpointError` on any defect: bad
    magic, unsupported version, truncated header or payload, CRC
    mismatch, malformed header JSON, or (when requested) a signature or
    kind that does not match the resuming caller.
    """
    path = Path(path)
    try:
        blob = path.read_bytes()
    except OSError as exc:
        raise CheckpointError(f"cannot read checkpoint {path}: {exc}") from exc
    if len(blob) < _PREAMBLE.size:
        raise CheckpointError(
            f"checkpoint {path.name} truncated: {len(blob)} bytes is "
            f"shorter than the {_PREAMBLE.size}-byte preamble")
    magic, version, hlen, crc = _PREAMBLE.unpack_from(blob)
    if magic != MAGIC:
        raise CheckpointError(
            f"checkpoint {path.name} has bad magic {magic!r}")
    if version != VERSION:
        raise CheckpointError(
            f"checkpoint {path.name} has unsupported version {version} "
            f"(this build reads version {VERSION})")
    body = blob[_PREAMBLE.size:]
    if len(body) < hlen:
        raise CheckpointError(
            f"checkpoint {path.name} truncated inside its header "
            f"({len(body)} < {hlen} bytes)")
    if zlib.crc32(body) & 0xFFFFFFFF != crc:
        raise CheckpointError(
            f"checkpoint {path.name} failed CRC validation "
            "(torn or corrupt write)")
    try:
        header = json.loads(body[:hlen].decode())
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise CheckpointError(
            f"checkpoint {path.name} has unparseable header: {exc}") from exc
    payload = body[hlen:]
    arrays: dict[str, np.ndarray] = {}
    offset = 0
    for desc in header.get("arrays", []):
        nbytes = int(desc["nbytes"])
        chunk = payload[offset:offset + nbytes]
        if len(chunk) != nbytes:
            raise CheckpointError(
                f"checkpoint {path.name} truncated inside array "
                f"{desc['name']!r}")
        arrays[desc["name"]] = np.frombuffer(
            chunk, dtype=np.dtype(desc["dtype"])).reshape(desc["shape"]).copy()
        offset += nbytes
    if offset != len(payload):
        raise CheckpointError(
            f"checkpoint {path.name} has {len(payload) - offset} trailing "
            "payload bytes not covered by its header")
    data = CheckpointData(signature=header.get("signature", ""),
                          kind=header.get("kind", ""),
                          iteration=int(header.get("iteration", 0)),
                          meta=header.get("meta", {}) or {},
                          arrays=arrays, path=path)
    if expected_signature is not None and data.signature != expected_signature:
        raise CheckpointError(
            f"checkpoint {path.name} was written for signature "
            f"{data.signature!r}, not {expected_signature!r} — refusing "
            "to resume a different system")
    if expected_kind is not None and data.kind != expected_kind:
        raise CheckpointError(
            f"checkpoint {path.name} holds {data.kind!r} state, "
            f"expected {expected_kind!r}")
    return data


@dataclass
class Checkpointer:
    """Policy-driven checkpoint writer/loader over one directory.

    One Checkpointer serves one logical solve: its ``signature`` pins
    the system, its ``policy`` decides cadence and retention, and
    ``resume`` is the caller's declared intent (solvers only attempt
    :meth:`load_latest` when it is set).  Thread-compatible, not
    thread-safe — each solve drives its own instance from one thread.
    """

    directory: Path
    signature: str
    policy: CheckpointPolicy = field(default_factory=CheckpointPolicy)
    resume: bool = False
    saves: int = field(default=0, init=False)
    rejected: int = field(default=0, init=False)
    resumed_from: Path | None = field(default=None, init=False)

    def __post_init__(self) -> None:
        self.directory = Path(self.directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self._last_iteration = 0
        self._last_wall = time.monotonic()
        reg = get_registry()
        self._writes = reg.counter(
            "durability_checkpoint_writes_total",
            "durable checkpoint files written")
        self._resumes = reg.counter(
            "durability_checkpoint_resumes_total",
            "solves resumed from a durable checkpoint")
        self._rejects = reg.counter(
            "durability_checkpoint_rejected_total",
            "checkpoint files rejected as torn/corrupt/mismatched")

    def files(self) -> list[Path]:
        """Retained checkpoint files, oldest first."""
        return sorted(self.directory.glob(FILE_PATTERN))

    def load_latest(self, *, kind: str | None = None) -> CheckpointData | None:
        """The newest checkpoint that validates, or ``None``.

        Walks retained files newest-first; every rejected file logs a
        warning and bumps the rejected counter, then the next-oldest is
        tried — the fallback ladder torn-write recovery relies on.
        """
        for path in reversed(self.files()):
            try:
                data = read_checkpoint(path, expected_signature=self.signature,
                                       expected_kind=kind)
            except CheckpointError as exc:
                log.warning("skipping checkpoint %s: %s", path.name, exc)
                self.rejected += 1
                self._rejects.inc()
                continue
            self._last_iteration = data.iteration
            self._last_wall = time.monotonic()
            self.resumed_from = path
            self._resumes.inc()
            log.info("resuming from checkpoint %s (iteration %d)",
                     path.name, data.iteration)
            return data
        return None

    def maybe_save(self, iteration: int, arrays: dict[str, np.ndarray],
                   meta: dict | None = None, *, kind: str = "solver") -> bool:
        """Save if the policy says a checkpoint is due; returns whether
        a file was written."""
        now = time.monotonic()
        if not self.policy.due(iteration - self._last_iteration,
                               now - self._last_wall):
            return False
        self.save(iteration, arrays, meta, kind=kind)
        return True

    def save(self, iteration: int, arrays: dict[str, np.ndarray],
             meta: dict | None = None, *, kind: str = "solver") -> Path:
        """Unconditionally write a checkpoint and rotate old files."""
        path = self.directory / f"ckpt-{int(iteration):012d}.ckpt"
        write_checkpoint(path, signature=self.signature, kind=kind,
                         iteration=iteration, arrays=arrays, meta=meta)
        self._last_iteration = int(iteration)
        self._last_wall = time.monotonic()
        self.saves += 1
        self._writes.inc()
        retained = self.files()
        while len(retained) > self.policy.keep_last:
            oldest = retained.pop(0)
            with contextlib.suppress(OSError):
                oldest.unlink()
        return path
