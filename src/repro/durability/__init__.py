"""Durable checkpoint/restart for long solves and the serving layer.

Two building blocks:

* :mod:`repro.durability.checkpoint` — versioned, CRC32-checksummed,
  atomically-written checkpoint files plus the cadence/retention
  :class:`CheckpointPolicy` and the :class:`Checkpointer` driver that
  the solver, batched, FSP and sharded layers thread through their
  loops (``checkpointer=`` keyword, ``solve_steady_state(...,
  checkpoint=dir, resume=True)`` at the front door).
* :mod:`repro.durability.journal` — the append-only write-ahead job
  journal :class:`JobJournal` that lets a restarted
  :class:`repro.serve.SolveService` replay accepted-but-unfinished
  jobs exactly once per key.

See DESIGN.md §15 for the file formats and the resume protocol.
"""

from repro.durability.checkpoint import (
    CheckpointData,
    CheckpointPolicy,
    Checkpointer,
    network_signature,
    read_checkpoint,
    system_signature,
    write_checkpoint,
)
from repro.durability.journal import JobJournal
from repro.errors import CheckpointError, JournalError

__all__ = [
    "CheckpointData",
    "CheckpointError",
    "CheckpointPolicy",
    "Checkpointer",
    "JobJournal",
    "JournalError",
    "network_signature",
    "read_checkpoint",
    "system_signature",
    "write_checkpoint",
]
