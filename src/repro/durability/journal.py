"""Append-only write-ahead job journal for the serving layer.

One journal file is a sequence of JSONL records, each line carrying its
own CRC32 so replay can tell an intact record from a torn or flipped
one::

    crc32-hex <TAB> {"type":"accepted","key":"...","seq":3,"payload":{...}}

``accepted`` is written *before* a job enters the scheduler (the
write-ahead part); a terminal record (``completed``/``failed``/
``cancelled``) is appended when the job leaves the system.  On restart,
:meth:`JobJournal.open_entries` pairs them up: every key with more
accepts than terminals is work the previous process promised but never
finished, and is replayed **exactly once per key** (the serving layer's
single-flight deduplication makes one replay per key the correct
multiplicity even when a key was accepted repeatedly).

Damage tolerance: a torn tail (the crash happened mid-append) and
isolated corrupt lines are *expected* — they are skipped with a logged
warning and counted, never raised.  The effect of losing a record is
exactly the write-ahead contract: a lost ``accepted`` means the caller
never had a durable acknowledgement; a lost terminal record means the
job replays and completes again idempotently (same cache key, same
answer).

:meth:`JobJournal.compact` atomically rewrites the file keeping only
open entries, bounding journal growth across restarts.  The
``serve.journal`` fault site (kind ``truncate``) tears an append on
schedule so tests exercise the skip-and-recover path deterministically.
"""

from __future__ import annotations

import contextlib
import json
import logging
import os
import threading
import time
import zlib
from pathlib import Path

from repro.errors import JournalError
from repro.telemetry.metrics import get_registry

log = logging.getLogger("repro.durability")


class JobJournal:
    """A crash-safe append-only record of accepted serve jobs.

    Thread-safe: the submit path and worker completion callbacks append
    concurrently.  Appends are flushed (and by default fsynced) before
    returning, so an acknowledged record survives an immediate kill.
    """

    def __init__(self, path, *, fsync: bool = True):
        self.path = Path(path)
        try:
            self.path.parent.mkdir(parents=True, exist_ok=True)
        except OSError as exc:
            raise JournalError(
                f"cannot create journal directory for {self.path}: {exc}"
            ) from exc
        self.fsync = bool(fsync)
        self._lock = threading.Lock()
        self._fh = None
        self._seq = 0
        self.appended = 0
        self.corrupt_skipped = 0
        reg = get_registry()
        self._appends = reg.counter(
            "durability_journal_appends_total",
            "records appended to the serve job journal")
        self._corrupt = reg.counter(
            "durability_journal_corrupt_total",
            "torn/corrupt journal records skipped during replay")

    # -- writing -------------------------------------------------------------

    def _open(self):
        if self._fh is None:
            self._fh = open(self.path, "ab")
        return self._fh

    @staticmethod
    def _encode(record: dict) -> bytes:
        payload = json.dumps(record, sort_keys=True, separators=(",", ":"))
        crc = zlib.crc32(payload.encode()) & 0xFFFFFFFF
        return f"{crc:08x}\t{payload}\n".encode()

    def append(self, type: str, key: str, payload: dict | None = None) -> dict:
        """Durably append one record; returns the record written.

        The encoded line passes through the ``serve.journal`` fault
        site, so a chaos plan can tear it mid-write — replay treats the
        damaged line as lost, exactly as a real crash would.
        """
        with self._lock:
            self._seq += 1
            record = {"type": str(type), "key": str(key), "seq": self._seq,
                      "ts": round(time.time(), 3)}
            if payload is not None:
                record["payload"] = payload
            blob = self._encode(record)
            from repro.resilience.faults import active_injector
            injector = active_injector()
            if injector is not None:
                blob, _ = injector.corrupt_blob("serve.journal", blob,
                                                detail=f"{type}:{key[:12]}")
            fh = self._open()
            fh.write(blob)
            fh.flush()
            if self.fsync:
                os.fsync(fh.fileno())
            self.appended += 1
            self._appends.inc()
            return record

    def accepted(self, key: str, payload: dict) -> dict:
        return self.append("accepted", key, payload)

    def completed(self, key: str) -> dict:
        return self.append("completed", key)

    def failed(self, key: str) -> dict:
        return self.append("failed", key)

    def cancelled(self, key: str) -> dict:
        return self.append("cancelled", key)

    # -- reading -------------------------------------------------------------

    def records(self) -> list[dict]:
        """Every intact record on disk, in append order.

        Unparseable lines (torn tail, bit flips, a record sharing a
        line with a torn predecessor) are skipped with a warning and
        counted on ``durability_journal_corrupt_total``.
        """
        try:
            raw = self.path.read_bytes()
        except FileNotFoundError:
            return []
        except OSError as exc:
            raise JournalError(
                f"cannot read journal {self.path}: {exc}") from exc
        out = []
        for lineno, line in enumerate(raw.split(b"\n"), start=1):
            if not line.strip():
                continue
            try:
                crc_hex, payload = line.split(b"\t", 1)
                if int(crc_hex, 16) != zlib.crc32(payload) & 0xFFFFFFFF:
                    raise ValueError("CRC mismatch")
                record = json.loads(payload.decode())
                if not isinstance(record, dict) or "type" not in record:
                    raise ValueError("not a journal record")
            except (ValueError, UnicodeDecodeError,
                    json.JSONDecodeError) as exc:
                log.warning("journal %s line %d skipped (%s)",
                            self.path.name, lineno, exc)
                self.corrupt_skipped += 1
                self._corrupt.inc()
                continue
            out.append(record)
        return out

    def open_entries(self) -> list[dict]:
        """Accepted-but-unfinished entries, one per key, oldest first.

        Each entry is the *latest* accepted record of a key whose
        accept count exceeds its terminal count — the work a restarted
        service must replay exactly once per key.
        """
        opens: dict[str, int] = {}
        latest: dict[str, dict] = {}
        order: list[str] = []
        for record in self.records():
            key = record.get("key", "")
            if record["type"] == "accepted":
                if key not in opens:
                    order.append(key)
                opens[key] = opens.get(key, 0) + 1
                latest[key] = record
            elif record["type"] in ("completed", "failed", "cancelled"):
                opens[key] = max(0, opens.get(key, 0) - 1)
        return [latest[key] for key in order if opens.get(key, 0) > 0]

    # -- maintenance ---------------------------------------------------------

    def compact(self) -> int:
        """Atomically rewrite the journal keeping only open entries.

        Returns the number of records dropped.  Safe to call on a live
        journal — the lock serializes against concurrent appends and
        the file handle is reopened on the rewritten file.
        """
        with self._lock:
            keep = self.open_entries()
            total = len(self.records())
            if self._fh is not None:
                self._fh.close()
                self._fh = None
            tmp = self.path.with_name(self.path.name + f".tmp{os.getpid()}")
            try:
                with open(tmp, "wb") as fh:
                    for record in keep:
                        fh.write(self._encode(record))
                    fh.flush()
                    os.fsync(fh.fileno())
                os.replace(tmp, self.path)
            finally:
                with contextlib.suppress(OSError):
                    tmp.unlink()
            self._seq = max((r.get("seq", 0) for r in keep), default=0)
            return total - len(keep)

    def close(self) -> None:
        with self._lock:
            if self._fh is not None:
                self._fh.close()
                self._fh = None

    def __enter__(self) -> "JobJournal":
        return self

    def __exit__(self, *exc_info) -> bool:
        self.close()
        return False
