"""Deterministic, seeded fault injection for chaos testing.

A :class:`FaultPlan` is a declarative, JSON-serializable schedule of
faults — *which* site misbehaves, *how* (NaN/Inf/perturbation of the
solver iterate, a failed kernel launch, a killed or stalled worker, a
dropped cache read) and *when* (site-local indices: the solver
iteration number for ``solver.iterate``, the per-site hit count
everywhere else).  A :class:`FaultInjector` executes one plan with a
seeded RNG, so a chaos run is exactly reproducible from
``(plan, seed)`` — the property the ``tests/resilience`` suite and the
CI chaos job rely on.

Injection sites
---------------
``solver.iterate``
    Corrupt the live iterate of any :class:`IterativeSolverBase` loop
    (kinds ``nan``/``inf``/``perturb``).
``gpusim.launch``
    Fail a modeled kernel launch with
    :class:`~repro.errors.KernelLaunchError` (kind ``raise``).
``serve.worker``
    Kill (kind ``kill`` → :class:`~repro.errors.WorkerCrashError`) or
    stall (kind ``stall``, ``delay_s`` seconds) a serve worker at the
    start of a job attempt.
``serve.cache``
    Drop a cache read (kind ``miss``): the serving layer treats the
    lookup as a miss and recomputes.
``serve.pool``
    Kill (kind ``kill``) or stall (kind ``stall``) one worker
    *process* of the serve :class:`~repro.serve.pool.ProcessSolverPool`
    at a solve dispatch.  Indices count parent-side dispatches; the
    parent consumes the schedule via :meth:`FaultInjector.scheduled`
    and ships the directive inside the task, so the worker actually
    ``os._exit``\\ s (a kill no in-process handler can absorb) and the
    parent's death-detection/respawn path is what gets exercised.
``serve.admission``
    Force the admission controller to reject a submission (kind
    ``reject``) — a synthetic over-rate burst, independent of any
    configured token bucket.
``shard.worker``
    Kill (kind ``kill``) or stall (kind ``stall``) one shard worker of
    the sharded Jacobi solver at the start of a sweep.  Indices match
    the shard's cumulative *attempted* sweep counter, which lives in
    shared memory and survives a respawn — a one-shot kill fires once,
    not on every reincarnation.  The schedule is evaluated
    independently per shard: ``at=30, count=1`` kills *every* shard
    that reaches sweep 30, once each.  The plan travels to the worker
    processes as JSON inside the worker spec, because the
    process-global injector does not cross process boundaries.
``checkpoint.write``
    Damage a durable checkpoint as it is written: kind ``torn`` drops
    the final ``fraction`` of the encoded bytes (a crash mid-write),
    kind ``corrupt`` XOR-flips a seeded ``fraction`` of them (bitrot).
    The damaged bytes still go through the atomic rename, so the
    *reader's* CRC validation and fallback-to-older path is what gets
    exercised (see :func:`FaultInjector.corrupt_blob`).
``serve.journal``
    Tear an append to the serve write-ahead job journal (kind
    ``truncate``): only a prefix of the record reaches the file, as if
    the process died mid-``write``.  Replay must skip the damaged
    record and recover every intact one.
``shard.parent``
    Kill the *parent* process of the sharded solver with ``SIGKILL``
    (kind ``kill``) — the crash no in-process guardrail can absorb.
    Indices count parent-side checkpoint opportunities.  Only
    meaningful in a sacrificial subprocess (the crash-recovery suite);
    the process does not survive.

Install an injector process-wide with :func:`install`/:func:`uninstall`
or the :func:`injecting` context manager (mirroring
:mod:`repro.telemetry.tracing`); instrumented code calls
:func:`active_injector` and pays nothing when none is installed.
Every fired fault is appended to :attr:`FaultInjector.events`,
counted on the default metrics registry
(``resilience_faults_injected_total``) and emitted as a
``resilience.fault`` trace event when a recorder is active.
"""

from __future__ import annotations

import json
import os
import random
import signal
import threading
import time
from dataclasses import asdict, dataclass, field
from pathlib import Path

import numpy as np

from repro.errors import (
    FaultPlanError,
    KernelLaunchError,
    WorkerCrashError,
)
from repro.telemetry import tracing
from repro.telemetry.metrics import get_registry

#: Every site an injector knows how to hit.
SITES = ("solver.iterate", "gpusim.launch", "serve.worker", "serve.cache",
         "shard.worker", "checkpoint.write", "serve.journal", "shard.parent",
         "serve.pool", "serve.admission")

#: Fault kinds accepted per site.
SITE_KINDS = {
    "solver.iterate": ("nan", "inf", "perturb"),
    "gpusim.launch": ("raise",),
    "serve.worker": ("kill", "stall"),
    "serve.cache": ("miss",),
    "shard.worker": ("kill", "stall"),
    "checkpoint.write": ("torn", "corrupt"),
    "serve.journal": ("truncate",),
    "shard.parent": ("kill",),
    "serve.pool": ("kill", "stall"),
    "serve.admission": ("reject",),
}

#: The error a failing site raises (kinds ``raise``/``kill``).
SITE_ERRORS = {
    "gpusim.launch": KernelLaunchError,
    "serve.worker": WorkerCrashError,
    "shard.worker": WorkerCrashError,
    "serve.pool": WorkerCrashError,
}


@dataclass(frozen=True)
class FaultSpec:
    """One scheduled fault (see module docstring for site semantics).

    Attributes
    ----------
    site, kind:
        Where and how to misbehave (validated against :data:`SITES` /
        :data:`SITE_KINDS`).
    at:
        First site-local index to fire on (the iteration number for
        ``solver.iterate``, the hit count otherwise).
    every:
        Also fire every this many indices after ``at`` (``None`` for a
        one-shot schedule).
    count:
        Maximum number of firings.
    fraction:
        Fraction of iterate entries corrupted (``solver.iterate``).
    magnitude:
        Perturbation scale relative to ``|x|.max()`` (kind
        ``perturb``).
    delay_s:
        Stall duration (kind ``stall``).
    """

    site: str
    kind: str
    at: int = 0
    every: int | None = None
    count: int = 1
    fraction: float = 0.05
    magnitude: float = 1.0
    delay_s: float = 0.0

    def __post_init__(self) -> None:
        if self.site not in SITES:
            raise FaultPlanError(
                f"unknown fault site {self.site!r}; expected one of {SITES}")
        if self.kind not in SITE_KINDS[self.site]:
            raise FaultPlanError(
                f"site {self.site!r} does not support kind {self.kind!r}; "
                f"expected one of {SITE_KINDS[self.site]}")
        if self.at < 0 or self.count <= 0:
            raise FaultPlanError("at must be >= 0 and count positive")
        if self.every is not None and self.every <= 0:
            raise FaultPlanError("every must be positive (or null)")
        if not (0.0 < self.fraction <= 1.0):
            raise FaultPlanError(
                f"fraction must be in (0, 1], got {self.fraction}")
        if self.delay_s < 0:
            raise FaultPlanError("delay_s must be >= 0")

    def matches(self, index: int) -> bool:
        """Whether this spec's schedule includes site-local *index*."""
        if index < self.at:
            return False
        if index == self.at:
            return True
        if self.every is None:
            return False
        return (index - self.at) % self.every == 0

    def to_dict(self) -> dict:
        d = asdict(self)
        return {k: v for k, v in d.items() if v is not None}


class FaultPlan:
    """An immutable, seeded schedule of :class:`FaultSpec` entries."""

    def __init__(self, specs, *, seed: int = 0, name: str = "chaos"):
        self.specs = tuple(spec if isinstance(spec, FaultSpec)
                           else FaultSpec(**spec) for spec in specs)
        self.seed = int(seed)
        self.name = str(name)

    def for_site(self, site: str) -> tuple[FaultSpec, ...]:
        return tuple(s for s in self.specs if s.site == site)

    # -- JSON round-trip -----------------------------------------------------

    def to_dict(self) -> dict:
        return {"name": self.name, "seed": self.seed,
                "specs": [s.to_dict() for s in self.specs]}

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2)

    @classmethod
    def from_dict(cls, payload: dict) -> "FaultPlan":
        try:
            specs = payload["specs"]
        except (TypeError, KeyError) as exc:
            raise FaultPlanError(
                "fault plan needs a 'specs' list") from exc
        return cls(specs, seed=payload.get("seed", 0),
                   name=payload.get("name", "chaos"))

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as exc:
            raise FaultPlanError(f"unparseable fault plan: {exc}") from exc
        return cls.from_dict(payload)

    @classmethod
    def load(cls, path) -> "FaultPlan":
        return cls.from_json(Path(path).read_text(encoding="utf-8"))

    def save(self, path) -> None:
        Path(path).write_text(self.to_json() + "\n", encoding="utf-8")

    def __repr__(self) -> str:  # pragma: no cover - debug convenience
        return (f"FaultPlan({self.name!r}, seed={self.seed}, "
                f"{len(self.specs)} specs)")


@dataclass
class FaultEvent:
    """One fault that actually fired."""

    site: str
    kind: str
    index: int
    detail: str = ""

    def to_dict(self) -> dict:
        return asdict(self)


@dataclass
class _SpecState:
    """Mutable firing state of one spec inside an injector."""

    spec: FaultSpec
    fired: int = 0
    rng: random.Random = field(default_factory=random.Random)


class FaultInjector:
    """Executes one :class:`FaultPlan` deterministically.

    Thread-safe: worker threads, the solver loop and the submit path
    may all consult the same injector.  Each spec owns a
    ``random.Random`` seeded from ``(plan.seed, spec position)``, so
    corruption values do not depend on which thread hits a site first.
    """

    def __init__(self, plan: FaultPlan, *, registry=None):
        self.plan = plan
        self._lock = threading.Lock()
        self._states = [
            _SpecState(spec, rng=random.Random(f"{plan.seed}:{i}"))
            for i, spec in enumerate(plan.specs)
        ]
        self._by_site: dict[str, list[_SpecState]] = {}
        for state in self._states:
            self._by_site.setdefault(state.spec.site, []).append(state)
        self._hits: dict[str, int] = {}
        self.events: list[FaultEvent] = []
        reg = registry if registry is not None else get_registry()
        self._fired_counter = reg.counter(
            "resilience_faults_injected_total",
            "faults fired by the active fault injector")

    def active_for(self, site: str) -> bool:
        """Whether any spec targets *site* (cheap hot-loop guard)."""
        return site in self._by_site

    def fired(self, site: str | None = None) -> int:
        """How many faults have fired (optionally at one site)."""
        with self._lock:
            if site is None:
                return len(self.events)
            return sum(1 for e in self.events if e.site == site)

    # -- firing --------------------------------------------------------------

    def _visit(self, site: str, index: int | None) -> _SpecState | None:
        """Advance *site*'s hit counter and match a spec, under lock."""
        with self._lock:
            if index is None:
                index = self._hits.get(site, 0)
            self._hits[site] = self._hits.get(site, 0) + 1
            for state in self._by_site.get(site, ()):
                if (state.fired < state.spec.count
                        and state.spec.matches(index)):
                    state.fired += 1
                    return state
        return None

    def _record(self, spec: FaultSpec, index: int, detail: str) -> None:
        event = FaultEvent(site=spec.site, kind=spec.kind, index=index,
                           detail=detail)
        with self._lock:
            self.events.append(event)
        self._fired_counter.inc()
        recorder = tracing.active()
        if recorder is not None:
            recorder.add_event("resilience.fault", recorder.now_us(), 0.0,
                               site=spec.site, kind=spec.kind, index=index,
                               detail=detail)

    def corrupt(self, site: str, x: np.ndarray,
                iteration: int) -> tuple[np.ndarray, FaultSpec | None]:
        """Apply a scheduled iterate corruption; returns ``(x, spec)``.

        Returns the input array untouched (and ``None``) when no spec
        fires at *iteration*.  Corruption targets a seeded subset of
        ``ceil(fraction * n)`` entries of a copy of *x*.
        """
        state = self._visit(site, iteration)
        if state is None:
            return x, None
        spec = state.spec
        n = x.shape[0]
        k = max(1, int(np.ceil(spec.fraction * n)))
        idx = state.rng.sample(range(n), min(k, n))
        x = np.array(x, dtype=np.float64, copy=True)
        if spec.kind == "nan":
            x[idx] = np.nan
        elif spec.kind == "inf":
            x[idx] = np.inf
        else:  # perturb: bit-flip-style relative kicks
            scale = spec.magnitude * (float(np.abs(x).max()) or 1.0)
            kicks = [scale * (2.0 * state.rng.random() - 1.0) for _ in idx]
            x[idx] += np.asarray(kicks)
        self._record(spec, iteration,
                     f"corrupted {len(idx)}/{n} entries")
        return x, spec

    def maybe_fail(self, site: str, *, detail: str = "") -> FaultSpec | None:
        """Fire a failure-flavored fault at *site*, if one is scheduled.

        Kind ``raise``/``kill`` raises the site's error class
        (:data:`SITE_ERRORS`); ``stall`` sleeps ``delay_s`` and
        returns; ``miss`` just returns the spec, leaving the caller to
        degrade (drop the cache read).  Returns ``None`` when nothing
        fires.
        """
        if site not in self._by_site:
            return None
        state = self._visit(site, None)
        if state is None:
            return None
        spec = state.spec
        index = self._hits[site] - 1
        self._record(spec, index, detail)
        if site == "shard.parent" and spec.kind == "kill":
            # The real thing: no exception to catch, no cleanup — the
            # crash-recovery suite runs this in a sacrificial subprocess
            # and asserts the *resumed* run completes.
            os.kill(os.getpid(), signal.SIGKILL)
        if spec.kind in ("raise", "kill"):
            error_cls = SITE_ERRORS.get(site, RuntimeError)
            raise error_cls(
                f"injected {spec.kind} fault at {site}"
                + (f" ({detail})" if detail else ""))
        if spec.kind == "stall":
            time.sleep(spec.delay_s)
        return spec

    def scheduled(self, site: str, *, detail: str = "") -> FaultSpec | None:
        """Match and consume a fault at *site* without executing it here.

        For sites whose effect must land in *another process*: the
        serve pool's parent consults the schedule on dispatch, records
        the firing on this (parent-side) injector — so one-shot kills
        survive worker respawns — and ships the directive to the worker
        process, which carries it out.  Returns the matched spec, or
        ``None`` when nothing is scheduled at the current hit index.
        """
        if site not in self._by_site:
            return None
        state = self._visit(site, None)
        if state is None:
            return None
        spec = state.spec
        self._record(spec, self._hits[site] - 1, detail)
        return spec

    def corrupt_blob(self, site: str, blob: bytes, *,
                     detail: str = "") -> tuple[bytes, FaultSpec | None]:
        """Damage an encoded record headed for disk, if scheduled.

        Kind ``torn``/``truncate`` keeps only the leading
        ``1 - fraction`` of *blob* (a write cut short mid-record); kind
        ``corrupt`` XOR-flips a seeded ``fraction`` of its bytes.
        Returns ``(blob, None)`` untouched when nothing fires.  Callers
        (the checkpoint writer, the journal appender) persist whatever
        comes back — validation happens on the *read* side.
        """
        if site not in self._by_site or not blob:
            return blob, None
        state = self._visit(site, None)
        if state is None:
            return blob, None
        spec = state.spec
        index = self._hits[site] - 1
        n = len(blob)
        if spec.kind in ("torn", "truncate"):
            keep = min(n - 1, max(1, int(n * (1.0 - spec.fraction))))
            out = blob[:keep]
            self._record(spec, index,
                         f"torn write: kept {keep}/{n} bytes"
                         + (f" ({detail})" if detail else ""))
        else:  # corrupt
            k = min(n, max(1, int(np.ceil(spec.fraction * n))))
            damaged = bytearray(blob)
            for pos in state.rng.sample(range(n), k):
                damaged[pos] ^= 0xFF
            out = bytes(damaged)
            self._record(spec, index,
                         f"flipped {k}/{n} bytes"
                         + (f" ({detail})" if detail else ""))
        return out, spec


#: The process-wide active injector (None = chaos disabled).
_active: FaultInjector | None = None
_install_lock = threading.Lock()


def active_injector() -> FaultInjector | None:
    """The installed injector, or ``None`` when chaos is off."""
    return _active


def install(injector: FaultInjector) -> None:
    """Make *injector* the process-wide fault source."""
    global _active
    with _install_lock:
        _active = injector


def uninstall() -> None:
    """Disable fault injection."""
    global _active
    with _install_lock:
        _active = None


class injecting:
    """Context manager: install an injector for the enclosed block.

    Accepts an injector or a plan (wrapped in a fresh injector); the
    injector is yielded so tests can assert on its event log.
    """

    def __init__(self, injector_or_plan) -> None:
        if isinstance(injector_or_plan, FaultPlan):
            injector_or_plan = FaultInjector(injector_or_plan)
        self.injector = injector_or_plan

    def __enter__(self) -> FaultInjector:
        install(self.injector)
        return self.injector

    def __exit__(self, *exc_info) -> bool:
        uninstall()
        return False
