"""A per-solver-method circuit breaker for the serve path.

When a solver method fails repeatedly — timeouts on every attempt,
a poisoned parameter region — letting every queued job run the same
doomed solve wastes worker time and starves healthy traffic.  The
breaker trips **open** after ``failure_threshold`` consecutive
failures: attempts fail fast (or fall into degraded mode) until
``reset_timeout_s`` has elapsed, then a bounded number of
**half-open** probes test whether the method recovered; one success
closes the breaker, one failure re-opens it.

The clock is injectable so tests drive state transitions without
sleeping.
"""

from __future__ import annotations

import threading
import time

from repro.errors import ValidationError

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half-open"


class CircuitBreaker:
    """Thread-safe closed → open → half-open → closed state machine.

    Usage::

        if not breaker.allow():
            ...fail fast / degrade...
        try:
            work()
        except Exception:
            breaker.record_failure()
            raise
        else:
            breaker.record_success()
    """

    def __init__(self, *, failure_threshold: int = 5,
                 reset_timeout_s: float = 30.0,
                 half_open_probes: int = 1,
                 clock=time.monotonic,
                 name: str = "circuit"):
        if failure_threshold <= 0:
            raise ValidationError("failure_threshold must be positive")
        if reset_timeout_s <= 0:
            raise ValidationError("reset_timeout_s must be positive")
        if half_open_probes <= 0:
            raise ValidationError("half_open_probes must be positive")
        self.failure_threshold = int(failure_threshold)
        self.reset_timeout_s = float(reset_timeout_s)
        self.half_open_probes = int(half_open_probes)
        self.name = name
        self._clock = clock
        self._lock = threading.Lock()
        self._state = CLOSED
        self._failures = 0
        self._opened_at = 0.0
        self._probes_in_flight = 0
        self.opened_count = 0

    @property
    def state(self) -> str:
        with self._lock:
            self._maybe_half_open()
            return self._state

    def allow(self) -> bool:
        """Whether the next attempt may proceed."""
        with self._lock:
            self._maybe_half_open()
            if self._state == CLOSED:
                return True
            if self._state == OPEN:
                return False
            if self._probes_in_flight >= self.half_open_probes:
                return False
            self._probes_in_flight += 1
            return True

    def record_success(self) -> None:
        with self._lock:
            self._failures = 0
            self._probes_in_flight = 0
            self._state = CLOSED

    def record_failure(self) -> None:
        with self._lock:
            self._maybe_half_open()
            if self._state == HALF_OPEN:
                self._trip()
                return
            self._failures += 1
            if self._state == CLOSED \
                    and self._failures >= self.failure_threshold:
                self._trip()

    def snapshot(self) -> dict:
        with self._lock:
            self._maybe_half_open()
            return {"state": self._state, "failures": self._failures,
                    "opened_count": self.opened_count}

    # -- internals (call with the lock held) ---------------------------------

    def _trip(self) -> None:
        self._state = OPEN
        self._opened_at = self._clock()
        self._probes_in_flight = 0
        self.opened_count += 1

    def _maybe_half_open(self) -> None:
        if self._state == OPEN \
                and self._clock() - self._opened_at >= self.reset_timeout_s:
            self._state = HALF_OPEN
            self._probes_in_flight = 0
