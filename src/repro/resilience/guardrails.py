"""Numerical guardrails: checkpoints, rollback and recovery reporting.

Relaxation methods on the CME are naturally self-correcting: any
non-negative vector with positive mass is a valid restart point, and
the iteration contracts back to the unique stationary distribution
(the property FSP-style stationary solvers lean on — Gupta et al.
2017; Dendukuri & Petzold 2025).  The guardrails exploit exactly that:
:class:`~repro.solvers.base.IterativeSolverBase` snapshots the iterate
every ``checkpoint_every`` residual checks, and when a sweep produces
NaN/Inf — or the residual explodes past ``divergence_factor`` times
the best seen — it **rolls back** to the snapshot, renormalizes onto
the probability simplex, and keeps iterating instead of aborting.

What happened is never silent: every rollback lands in a
:class:`RecoveryReport` attached to the
:class:`~repro.solvers.result.SolverResult` (``result.recovery``), is
counted on the default metrics registry
(``resilience_recoveries_total``) and emitted as a
``resilience.recovery`` trace event when a recorder is installed.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field

from repro.errors import ValidationError
from repro.telemetry import tracing
from repro.telemetry.metrics import get_registry


@dataclass(frozen=True)
class GuardrailPolicy:
    """How the shared solver loop checkpoints and recovers.

    Attributes
    ----------
    checkpoint_every:
        Snapshot the iterate every this many *residual checks* (one
        vector copy per ``checkpoint_every * check_interval`` sweeps —
        negligible next to the SpMVs in between).
    max_recoveries:
        Rollbacks allowed per solve before the solver gives up and
        reports :attr:`~repro.solvers.result.StopReason.DIVERGED`.
    divergence_factor:
        A checked residual larger than this factor times the best
        residual seen counts as divergence (NaN/Inf always does).
    sweep_check:
        Scan the iterate for NaN/Inf after *every* sweep instead of
        only at residual checks.  Costs one pass over ``x`` per sweep,
        so it is off by default; the loop switches it on automatically
        while a fault injector targets ``solver.iterate``.
    """

    checkpoint_every: int = 1
    max_recoveries: int = 3
    divergence_factor: float = 1e6
    sweep_check: bool = False

    def __post_init__(self) -> None:
        if self.checkpoint_every <= 0:
            raise ValidationError("checkpoint_every must be positive")
        if self.max_recoveries < 0:
            raise ValidationError("max_recoveries must be >= 0")
        if self.divergence_factor <= 1.0:
            raise ValidationError("divergence_factor must exceed 1")


@dataclass
class RecoveryEvent:
    """One detection-and-reaction step during a solve."""

    iteration: int
    kind: str        # "nan-inf" | "divergence" | "fault:<kind>" | ...
    action: str      # "rollback" | "injected" | "fallback:<method>" | ...
    detail: str = ""

    def to_dict(self) -> dict:
        return asdict(self)


@dataclass
class RecoveryReport:
    """Everything the resilience machinery did during one solve.

    Attached to :class:`~repro.solvers.result.SolverResult` as
    ``result.recovery`` whenever guardrails were active, and carried
    through the serve layer into job outcomes, so a chaos run leaves a
    complete, JSON-able audit trail.
    """

    events: list[RecoveryEvent] = field(default_factory=list)
    checkpoints: int = 0
    rollbacks: int = 0
    faults_seen: int = 0
    fallback_chain: list[str] = field(default_factory=list)
    degraded: bool = False

    @property
    def recovered(self) -> bool:
        """Whether any corrective action was taken."""
        return self.rollbacks > 0 or len(self.fallback_chain) > 1

    def record(self, iteration: int, kind: str, action: str,
               detail: str = "") -> RecoveryEvent:
        event = RecoveryEvent(iteration=iteration, kind=kind,
                              action=action, detail=detail)
        self.events.append(event)
        return event

    def absorb(self, other: "RecoveryReport | None") -> None:
        """Merge a nested solve's report (fallback chains)."""
        if other is None:
            return
        self.events.extend(other.events)
        self.checkpoints += other.checkpoints
        self.rollbacks += other.rollbacks
        self.faults_seen += other.faults_seen

    def to_dict(self) -> dict:
        return {
            "events": [e.to_dict() for e in self.events],
            "checkpoints": self.checkpoints,
            "rollbacks": self.rollbacks,
            "faults_seen": self.faults_seen,
            "fallback_chain": list(self.fallback_chain),
            "degraded": self.degraded,
            "recovered": self.recovered,
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2)


def count_recovery(kind: str, iteration: int, detail: str = "") -> None:
    """Count a recovery on the default registry and trace it."""
    get_registry().counter(
        "resilience_recoveries_total",
        "rollback/renormalize recoveries performed by solvers").inc()
    recorder = tracing.active()
    if recorder is not None:
        recorder.add_event("resilience.recovery", recorder.now_us(), 0.0,
                           kind=kind, iteration=iteration, detail=detail)
