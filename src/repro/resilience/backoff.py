"""Exponential backoff with jitter for retry scheduling.

Fixed retry delays synchronize failures: every attempt that failed
together retries together, which is how a momentary stall turns into a
thundering herd against the solve queue.  :class:`RetryPolicy` spaces
attempt *k* by ``base * multiplier**(k-1)`` capped at ``max_delay_s``,
then spreads a ±``jitter`` fraction of deterministic (seeded) noise on
top so concurrent retries decorrelate while chaos runs stay exactly
reproducible.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field

from repro.errors import ValidationError


@dataclass
class RetryPolicy:
    """Backoff schedule used by the serve scheduler between attempts.

    ``delay(1)`` is the wait before the first retry (i.e. after the
    first failed attempt).  ``seed=None`` draws OS entropy; any int
    makes the jitter sequence reproducible.
    """

    base_delay_s: float = 0.05
    multiplier: float = 2.0
    max_delay_s: float = 5.0
    jitter: float = 0.1
    seed: int | None = 0
    _rng: random.Random = field(init=False, repr=False, compare=False,
                                default=None)

    def __post_init__(self) -> None:
        if self.base_delay_s < 0 or self.max_delay_s < 0:
            raise ValidationError("delays must be >= 0")
        if self.multiplier < 1.0:
            raise ValidationError(
                f"multiplier must be >= 1, got {self.multiplier}")
        if not (0.0 <= self.jitter <= 1.0):
            raise ValidationError(f"jitter must be in [0, 1], got "
                                  f"{self.jitter}")
        self._rng = random.Random(self.seed)

    def raw_delay(self, attempt: int) -> float:
        """The un-jittered delay before retry *attempt* (1-based)."""
        if attempt <= 0:
            raise ValidationError("attempt is 1-based")
        if self.base_delay_s == 0.0 or self.multiplier == 1.0:
            return min(self.max_delay_s, self.base_delay_s)
        if self.base_delay_s >= self.max_delay_s:
            return self.max_delay_s
        # Clamp the exponent before exponentiating: Python float ``**``
        # overflows near 2.0**1024, so a long-lived job asking for its
        # thousandth delay would raise OverflowError instead of
        # saturating at max_delay_s.
        saturated = (math.log(self.max_delay_s / self.base_delay_s)
                     / math.log(self.multiplier))
        if attempt - 1 >= saturated:
            return self.max_delay_s
        return min(self.max_delay_s,
                   self.base_delay_s * self.multiplier ** (attempt - 1))

    def delay(self, attempt: int) -> float:
        """The jittered delay before retry *attempt* (1-based)."""
        raw = self.raw_delay(attempt)
        if self.jitter == 0.0:
            return raw
        spread = raw * self.jitter * (2.0 * self._rng.random() - 1.0)
        return max(0.0, raw + spread)
