"""A self-healing steady-state solver: guardrails plus a fallback chain.

:class:`ResilientSolver` presents the unified
:class:`~repro.solvers.base.SteadyStateSolver` front while running a
*chain* of methods behind it — by default the paper's Jacobi first,
then Gauss-Seidel (immune to Jacobi's bipartite oscillation and to its
need for damping), then GMRES on the normalization-constrained system
as a last resort.  Each attempt runs under the numerical guardrails of
:mod:`repro.resilience.guardrails`; a method that cannot even be
*constructed* (a singular splitting —
:class:`~repro.errors.SingularSystemError`) or that fails to converge
hands its final iterate to the next method as a warm start.

The combined :class:`~repro.solvers.result.SolverResult` reports the
total iteration count across attempts and carries a
:class:`~repro.resilience.guardrails.RecoveryReport` whose
``fallback_chain`` lists every method tried, in order.
"""

from __future__ import annotations

import time

import numpy as np

from repro.errors import SingularSystemError, ValidationError
from repro.resilience.guardrails import RecoveryReport
from repro.telemetry import tracing

# NOTE: repro.solvers types (SolverResult, StopReason, SOLVER_REGISTRY)
# are imported lazily inside methods — repro.solvers/__init__ imports
# this module to register "resilient", so a module-level import back
# into the package would be circular whenever repro.resilience loads
# first.

#: The default fallback order (see module docstring).
DEFAULT_CHAIN = ("jacobi", "gauss-seidel", "gmres")

#: Constructor/solve options each chain method understands; anything a
#: caller passes is validated against the union and filtered per
#: method, so one options dict can configure the whole chain.
_METHOD_OPTIONS = {
    "jacobi": frozenset({"check_interval", "normalize_interval",
                         "stagnation_tol", "damping", "step", "backend"}),
    "gauss-seidel": frozenset({"check_interval", "normalize_interval",
                               "stagnation_tol", "backend"}),
    "power": frozenset({"check_interval", "stagnation_tol",
                        "uniformization_factor", "backend"}),
    "gmres": frozenset({"restart"}),
}

#: GMRES is O(restart * n) memory per cycle and exists as a last
#: resort; cap its outer iterations independently of the relaxation
#: methods' (much larger) sweep budgets.
GMRES_MAX_ITERATIONS = 2000


class _SuppressStop:
    """Forward ``on_iteration`` but swallow per-attempt ``on_stop``.

    The chain fires the caller's ``on_stop`` exactly once, with the
    final stop reason, preserving the hooks contract across fallbacks.
    """

    def __init__(self, hooks) -> None:
        self._hooks = hooks

    def on_iteration(self, iteration, residual, renormalized) -> None:
        self._hooks.on_iteration(iteration, residual, renormalized)

    def on_stop(self, reason) -> None:
        pass


class ResilientSolver:
    """Steady-state solver with automatic method fallback.

    Parameters
    ----------
    matrix:
        The generator, as anything the chain members accept (SciPy
        sparse, dense, or a device :class:`~repro.sparse.base.SparseFormat`).
    tol, max_iterations:
        Stopping parameters applied to every chain member (GMRES's
        outer-iteration cap is additionally bounded by
        :data:`GMRES_MAX_ITERATIONS`).
    chain:
        Method names tried in order (keys of
        :data:`repro.solvers.SOLVER_REGISTRY` plus ``"gmres"``).
    guardrails:
        Forwarded to each iterative attempt (see
        :meth:`~repro.solvers.base.IterativeSolverBase.solve`).
    **options:
        Extra per-method options, filtered by :data:`_METHOD_OPTIONS`
        (e.g. ``damping=0.8`` reaches only the Jacobi attempt).
    """

    span_name = "resilient"

    def __init__(self, matrix, *, tol: float = 1e-8,
                 max_iterations: int = 500_000,
                 chain=DEFAULT_CHAIN,
                 guardrails=None,
                 **options):
        from repro.sparse.base import as_csr
        self.matrix = matrix
        if hasattr(matrix, "to_scipy"):
            self._csr = as_csr(matrix.to_scipy())
        else:
            self._csr = as_csr(matrix)
        if self._csr.shape[0] != self._csr.shape[1]:
            raise ValidationError("steady-state solve needs a square matrix")
        self.n = self._csr.shape[0]
        self.tol = float(tol)
        self.max_iterations = int(max_iterations)
        self.chain = tuple(str(m).lower().replace("_", "-") for m in chain)
        if not self.chain:
            raise ValidationError("chain must name at least one method")
        unknown = [m for m in self.chain if m not in _METHOD_OPTIONS]
        if unknown:
            raise ValidationError(
                f"unknown chain methods {unknown}; expected a subset of "
                f"{sorted(_METHOD_OPTIONS)}")
        allowed = frozenset().union(*(_METHOD_OPTIONS[m]
                                      for m in self.chain))
        bad = set(options) - allowed
        if bad:
            raise ValidationError(
                f"unknown solver options {sorted(bad)} for chain "
                f"{self.chain}; expected a subset of {sorted(allowed)}")
        self.options = dict(options)
        self.guardrails = guardrails

    def _options_for(self, method: str) -> dict:
        keys = _METHOD_OPTIONS[method]
        return {k: v for k, v in self.options.items() if k in keys}

    def _attempt(self, method: str, x0, budget_s, hooks,
                 validate_x0: bool = True) -> "SolverResult":
        """Run one chain member (may raise SingularSystemError)."""
        from repro.solvers import SOLVER_REGISTRY
        from repro.solvers.gmres import gmres_steady_state
        if method == "gmres":
            return gmres_steady_state(
                self._csr, tol=self.tol,
                max_iterations=min(self.max_iterations,
                                   GMRES_MAX_ITERATIONS),
                x0=x0, **self._options_for(method))
        solver = SOLVER_REGISTRY[method](
            self.matrix, tol=self.tol, max_iterations=self.max_iterations,
            **self._options_for(method))
        return solver.solve(x0=x0, time_budget_s=budget_s, hooks=hooks,
                            guardrails=self.guardrails,
                            validate_x0=validate_x0)

    def solve(self, x0=None, *, time_budget_s: float | None = None,
              hooks=None, validate_x0: bool = True) -> "SolverResult":
        """Try the chain until a method converges (or budget expires).

        A failed attempt's final iterate, when finite, warm-starts the
        next method — a stagnated Jacobi iterate oscillates *around*
        the answer, which Gauss-Seidel then reaches in a handful of
        sweeps.
        """
        from repro.solvers.result import SolverResult, StopReason
        if time_budget_s is not None and time_budget_s <= 0:
            raise ValidationError(
                f"time_budget_s must be positive, got {time_budget_s}")
        t0 = time.perf_counter()
        report = RecoveryReport()
        chain_hooks = None if hooks is None else _SuppressStop(hooks)
        total_iterations = 0
        chosen: SolverResult | None = None
        best: SolverResult | None = None
        last_error: Exception | None = None
        next_x0 = x0
        # Once a chain member's own iterate becomes the warm start, the
        # x0 scans are redundant (solver output is finite by the check
        # below); the caller's flag only governs the caller's x0.
        next_validate = validate_x0
        with tracing.span("resilient.solve", n=self.n,
                          chain=",".join(self.chain)) as span:
            for method in self.chain:
                budget = None
                if time_budget_s is not None:
                    budget = time_budget_s - (time.perf_counter() - t0)
                    if budget <= 0:
                        if report.fallback_chain:
                            break
                        # The first attempt always runs: a TIMED_OUT
                        # result with a partial iterate beats raising.
                        budget = min(time_budget_s, 1e-6)
                report.fallback_chain.append(method)
                try:
                    result = self._attempt(method, next_x0, budget,
                                           chain_hooks, next_validate)
                except SingularSystemError as exc:
                    last_error = exc
                    report.record(total_iterations, "singular-system",
                                  f"fallback:{method}", detail=str(exc))
                    continue
                total_iterations += result.iterations
                report.absorb(result.recovery)
                if result.converged \
                        or result.stop_reason is StopReason.TIMED_OUT:
                    chosen = result
                    break
                report.record(total_iterations, result.stop_reason.value,
                              f"fallback:{method}",
                              detail=f"residual {result.residual:.3e}")
                if best is None or result.residual < best.residual:
                    best = result
                if np.all(np.isfinite(result.x)):
                    next_x0 = result.x
                    next_validate = False
            if chosen is None:
                chosen = best
            if chosen is None:
                if last_error is not None:
                    raise last_error
                raise ValidationError(
                    "time budget expired before any chain attempt")
            span.set_attribute("iterations", total_iterations)
            span.set_attribute("stop_reason", chosen.stop_reason.value)
            span.set_attribute("methods_tried", len(report.fallback_chain))
        if hooks is not None:
            hooks.on_stop(chosen.stop_reason)
        return SolverResult(
            x=chosen.x, iterations=total_iterations,
            residual=chosen.residual, stop_reason=chosen.stop_reason,
            residual_history=chosen.residual_history,
            runtime_s=time.perf_counter() - t0,
            landscape=chosen.landscape, recovery=report)
