"""Fault injection, self-healing solvers, and serve hardening.

The package has four legs:

- :mod:`repro.resilience.faults` — a deterministic, seeded fault
  injection framework (:class:`FaultPlan` / :class:`FaultInjector`)
  that corrupts solver iterates, fails gpusim kernel launches, and
  kills/stalls serve workers and cache reads on schedule.
- :mod:`repro.resilience.guardrails` — checkpoint/rollback recovery
  policy for the shared solver loop, plus the :class:`RecoveryReport`
  audit trail attached to solver results.
- :mod:`repro.resilience.resilient` — :class:`ResilientSolver`, the
  jacobi → gauss-seidel → gmres fallback chain (registered as
  ``"resilient"`` in :data:`repro.solvers.SOLVER_REGISTRY`).
- :mod:`repro.resilience.backoff` / :mod:`repro.resilience.circuit` —
  retry backoff with jitter and the per-method circuit breaker used by
  :class:`repro.serve.service.SolveService`.
"""

from repro.resilience.backoff import RetryPolicy
from repro.resilience.circuit import CLOSED, HALF_OPEN, OPEN, CircuitBreaker
from repro.resilience.faults import (
    SITE_KINDS,
    SITES,
    FaultEvent,
    FaultInjector,
    FaultPlan,
    FaultSpec,
    active_injector,
    injecting,
    install,
    uninstall,
)
from repro.resilience.guardrails import (
    GuardrailPolicy,
    RecoveryEvent,
    RecoveryReport,
)
from repro.resilience.resilient import DEFAULT_CHAIN, ResilientSolver

__all__ = [
    "CLOSED",
    "DEFAULT_CHAIN",
    "HALF_OPEN",
    "OPEN",
    "SITES",
    "SITE_KINDS",
    "CircuitBreaker",
    "FaultEvent",
    "FaultInjector",
    "FaultPlan",
    "FaultSpec",
    "GuardrailPolicy",
    "RecoveryEvent",
    "RecoveryReport",
    "ResilientSolver",
    "RetryPolicy",
    "active_injector",
    "injecting",
    "install",
    "uninstall",
]
