"""clSpMV-analog ensemble selection.

The selector evaluates candidate representations with a *naive* cost
model — bytes of the data structure plus one uncached gather per
nonzero, the style of estimate an offline-calibrated autotuner applies
without knowing a specific matrix's locality — picks the cheapest, and
then "runs" the chosen format through the faithful GPU model in single
precision.  The reported number is normalized to a double-precision
equivalent with the paper's per-format byte ratios (Section VII-C:
"if clSpMV selects single-precision ELL format, we normalize by
8/12 = 0.66").

The gap between the naive selection estimate and the faithful model is
exactly what makes the domain-specialized warp-grained format win in
Table III: the ensemble can pick a representation whose padding looks
good on paper but whose runtime behavior is mediocre.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import FormatError
from repro.gpusim.device import GTX580, DeviceSpec
from repro.gpusim.executor import spmv_performance
from repro.gpusim.kernels.base import Precision
from repro.sparse.base import as_csr
from repro.sparse.coo import COOMatrix
from repro.sparse.csr import CSRMatrix
from repro.sparse.dia import DIAMatrix
from repro.sparse.ell import ELLMatrix
from repro.sparse.ell_dia import ELLDIAMatrix
from repro.sparse.sliced_ell import SlicedELLMatrix

#: Single->double normalization per format: bytes per nonzero in double
#: over bytes in single (value + index), per the paper's ELL example.
PRECISION_NORMALIZATION = {
    "dia": 4.0 / 8.0,           # value only
    "ell": 8.0 / 12.0,
    "ell+dia": 8.0 / 12.0,
    "sell": 8.0 / 12.0,
    "csr": 8.0 / 12.0,
    "coo": 12.0 / 16.0,         # value + row + col
}

#: Maximum distinct diagonals before the DIA candidate is dropped.
MAX_DIA_DIAGONALS = 64

#: Offline-calibrated throughput penalties of the selection model: an
#: autotuner's microbenchmarks know CSR's row-contiguous layout
#: coalesces poorly on GPUs and COO pays its segmented reduction, even
#: before seeing a specific matrix.
SELECTION_PENALTY = {
    "dia": 1.0,
    "ell": 1.0,
    "ell+dia": 1.0,
    "sell": 1.0,
    "csr": 1.5,
    "coo": 1.3,
}

#: The ensemble members of the published clSpMV (single formats; the
#: block variants BELL/SBELL/BCSR degenerate to their base on the
#: blockless CME matrices, and the DIA band combination is folded into
#: the DIA candidate).
ENSEMBLE = ("dia", "ell", "sell", "csr", "coo")


@dataclass(frozen=True)
class SelectionResult:
    """Outcome of one clSpMV-style selection."""

    #: Chosen format name.
    chosen: str
    #: Naive cost-model bytes per candidate (the selection inputs).
    naive_costs: dict
    #: Single-precision modeled GFLOPS of the chosen format.
    single_gflops: float
    #: Paper-style double-precision-equivalent GFLOPS.
    normalized_gflops: float


class ClSpMVSelector:
    """Ensemble selector over the clSpMV formats (:data:`ENSEMBLE`).

    Parameters
    ----------
    device:
        Target device for the faithful evaluation.
    slice_size:
        Slice size of the SELL candidate (the ensemble's sliced ELL).
    framework_efficiency:
        Throughput of the generic OpenCL kernels relative to the
        hand-tuned CUDA kernels this library models (no L1-preferred
        configuration, generic index arithmetic, per-format launch
        overhead).  Calibrated once against the paper's measured clSpMV
        column (DESIGN.md §7).
    """

    def __init__(self, device: DeviceSpec = GTX580, *,
                 slice_size: int = 256,
                 framework_efficiency: float = 0.85):
        if not (0 < framework_efficiency <= 1):
            raise FormatError("framework_efficiency must be in (0, 1]")
        self.device = device
        self.slice_size = int(slice_size)
        self.framework_efficiency = float(framework_efficiency)

    # -- naive cost model -----------------------------------------------------

    def naive_cost(self, csr, fmt: str) -> float | None:
        """Structure bytes + one uncached 4-byte gather per nonzero.

        Single precision, cache-blind, padding-aware only through the
        dense-structure sizes, weighted by the offline per-format
        throughput penalties — the offline-model style of clSpMV.
        Returns ``None`` when the format cannot represent the matrix
        sensibly (e.g. DIA with too many diagonals).
        """
        if fmt not in SELECTION_PENALTY:
            raise FormatError(f"unknown ensemble member {fmt!r}")
        n, m = csr.shape
        nnz = csr.nnz
        lengths = np.diff(csr.indptr)
        k = int(lengths.max()) if n else 0
        gather = 4.0 * nnz
        penalty = SELECTION_PENALTY[fmt]
        if fmt == "dia":
            coo = csr.tocoo()
            diags = np.unique(coo.col.astype(np.int64)
                              - coo.row.astype(np.int64))
            if diags.size > MAX_DIA_DIAGONALS:
                return None
            return (float(diags.size * n * 4) + gather) * penalty
        if fmt == "ell":
            n_pad = -(-n // 32) * 32
            return (float(n_pad * k * (4 + 4)) + gather) * penalty
        if fmt == "ell+dia":
            # Band values (no indices) + remainder ELL.
            band = min(3, k)
            k_rem = max(0, k - band)
            n_pad = -(-n // 32) * 32
            return (float(3 * n * 4 + n_pad * k_rem * 8) + gather) * penalty
        if fmt == "sell":
            s = self.slice_size
            n_slices = -(-n // s)
            padded = np.zeros(n_slices * s, dtype=np.int64)
            padded[:n] = lengths
            slice_k = padded.reshape(n_slices, s).max(axis=1)
            return (float(slice_k.sum() * s * 8 + n_slices * 8) + gather) * penalty
        if fmt == "csr":
            return (float(nnz * 8 + (n + 1) * 4) + gather) * penalty
        if fmt == "coo":
            return (float(nnz * 12) + gather) * penalty
        raise FormatError(f"unknown ensemble member {fmt!r}")

    # -- faithful evaluation ----------------------------------------------------

    def _build(self, csr, fmt: str):
        if fmt == "dia":
            coo = csr.tocoo()
            diags = np.unique(coo.col.astype(np.int64)
                              - coo.row.astype(np.int64))
            return DIAMatrix.from_scipy(csr, offsets=diags)
        if fmt == "ell":
            return ELLMatrix(csr)
        if fmt == "ell+dia":
            return ELLDIAMatrix(csr)
        if fmt == "sell":
            return SlicedELLMatrix(csr, slice_size=self.slice_size)
        if fmt == "csr":
            return CSRMatrix(csr)
        if fmt == "coo":
            return COOMatrix.from_scipy(csr)
        raise FormatError(f"unknown ensemble member {fmt!r}")

    def select(self, matrix, *, x_scale: float = 1.0) -> SelectionResult:
        """Pick a representation for *matrix* and evaluate it faithfully."""
        csr = as_csr(matrix)
        costs = {}
        for fmt in ENSEMBLE:
            cost = self.naive_cost(csr, fmt)
            if cost is not None:
                costs[fmt] = cost
        chosen = min(costs, key=costs.get)
        built = self._build(csr, chosen)
        perf = spmv_performance(built, self.device,
                                precision=Precision.SINGLE,
                                x_scale=x_scale)
        single = perf.gflops * self.framework_efficiency
        factor = PRECISION_NORMALIZATION[chosen]
        return SelectionResult(
            chosen=chosen,
            naive_costs=costs,
            single_gflops=single,
            normalized_gflops=single * factor,
        )
