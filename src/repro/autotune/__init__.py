"""The clSpMV-analog format autotuner (Table III's last column).

clSpMV (Su & Keutzer 2012) is an OpenCL framework holding an ensemble of
sparse formats and selecting a representation per matrix from an
offline-calibrated analytic cost model; its public implementation is
single-precision only, so the paper normalizes its results to
double-precision equivalents (e.g. x 8/12 for ELL).

:class:`ClSpMVSelector` reproduces that pipeline: a *naive* selection
cost model (structure-size driven, cache-blind — the reason the paper
observes "nonintuitive" choices), single-precision execution through the
GPU performance model, and the paper's precision normalization.
"""

from repro.autotune.clspmv import ClSpMVSelector, SelectionResult

__all__ = ["ClSpMVSelector", "SelectionResult"]
