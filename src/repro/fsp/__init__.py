"""Adaptive Finite State Projection with certified truncation bounds.

The fixed-capacity pipeline enumerates every state the species buffers
admit and solves on all of them — for stiff or high-copy models that is
millions of states of which the stationary distribution occupies a
sliver.  Adaptive FSP inverts the deal: start from a small projection
around the initial condition, solve, *measure* how much stationary
probability the truncation can hide (a certified upper bound, not a
heuristic), and grow the projection where the boundary flux says the
mass wants to go — pruning states the distribution has abandoned —
until the certificate meets the user's tolerance.

* :class:`AdaptiveFspController` — the projection loop.
* :class:`FspResult` / :class:`FspRound` — the certified outcome and
  its per-round trajectory (projection sizes, bounds, solver work).

The loop composes the existing stack: state handling and truncated
assembly live in :mod:`repro.cme.expansion`, warm-start transfer in
:func:`repro.solvers.remap_iterate`, and the inner solves run through
the unchanged :data:`repro.solvers.SOLVER_REGISTRY`.
"""

from repro.fsp.controller import AdaptiveFspController, FspResult, FspRound

__all__ = ["AdaptiveFspController", "FspResult", "FspRound"]
