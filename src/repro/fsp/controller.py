"""The adaptive FSP projection loop (see DESIGN.md §12).

Certificate
-----------
Each round augments the truncated generator ``A`` of the projection Ω
with one *sink* state.  All boundary outflow (the rates ``w_j`` from
``j ∈ Ω`` to in-buffer states outside Ω, which truncated assembly keeps
in the diagonal loss) is routed into the sink, and the sink returns to
a single redirect state ``z ∈ Ω``.  The sink turns the sub-stochastic
truncated system into a proper generator with a unique stationary
distribution — the quasi-stationary regularization of stationary FSP —
and its return rate is chosen at the matrix's own diagonal scale
purely for solver conditioning; the certificate does **not** depend on
it.

The bound itself is analytic, in two parts.  **Frontier layer.**  At
stationarity the flux out of Ω equals the flux back in, and all return
flux passes through the one-step-outside frontier F, so
``Φ_out = ν_c · w = Σ_{y∈F} π(y)·r_in(y)`` exactly (``ν_c`` the solved
distribution conditional on Ω, ``r_in(y)`` the state's total propensity
directly back into Ω).  With the *return-rate floor* ``ρ = min r_in``,
the mass resting on the frontier layer is at most ``Φ_out / ρ``.
**Geometric tail.**  Mass deeper than one step outside is invisible to
that identity.  Each frontier state forwards mass onward at its *away*
rate ``r_out(y) = r_total(y) − r_in(y)``, so the flux feeding layer 2
is ``Σ π(y)·r_out(y) ≈ γ·Φ_out`` with ``γ`` the influx-weighted mean
of ``r_out/r_in`` over the frontier.  Under the inward-drift condition
that makes FSP truncation meaningful at all (return rates grow, or at
least hold, with distance — true of the degradation-dominated tails
these models have), ``γ`` does not increase outward and the layer
masses decay geometrically, totalling at most
``(Φ_out/ρ) / (1 − γ)``.  The certificate reported as
``truncation_mass`` is ``safety`` (default 4) times that, with ``γ``
clipped to ``0.95`` so a non-contracting frontier yields a huge —
never infinite or negative — bound that simply forces more growth.
The bound is *exact by construction* in one case: a closed projection
has ``w ≡ 0`` and the certificate is ``0``.
``tests/fsp/test_truncation_bound.py`` checks the certified bound
against the true outside-projection mass of a full-capacity solve on
small models across coarse and fine tolerances.

Growth and pruning
------------------
After an uncertified round the projection is first *pruned* — states
are sorted by stationary mass and the smallest prefix holding at most
``prune_mass`` total probability is dropped (the initial state and the
current mode are never pruned) — then *grown* by ``expand_depth``
frontier layers, the first layer ranked by measured boundary flux.
Growing multiple layers per round matters: a ball grows one reaction
step per layer, and metastable modes can sit tens of steps from the
seed.  The previous iterate is carried onto the new projection with
:func:`repro.solvers.remap_iterate` (state-keyed, so permutation,
growth and pruning are all safe) and used as the warm start.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np
import scipy.sparse as sp

from repro.cme.expansion import ProjectionAssembler, initial_projection
from repro.cme.network import ReactionNetwork
from repro.cme.statespace import StateSpace
from repro.errors import ValidationError
from repro.solvers import SOLVER_REGISTRY, SolverResult, StopReason
from repro.solvers.remap import remap_iterate
from repro.sparse.base import as_csr
from repro.telemetry import tracing
from repro.telemetry.metrics import get_registry


@dataclass(frozen=True)
class FspRound:
    """One projection round's record (the trajectory entry)."""

    round: int                 #: 1-based round number.
    states: int                #: Projection size solved this round.
    added: int                 #: States grown in *before* this round.
    pruned: int                #: States pruned *before* this round.
    iterations: int            #: Inner-solver iterations spent.
    residual: float            #: Inner solve's final residual.
    outflow_flux: float        #: Stationary boundary flux Φ_out.
    return_floor: float        #: ρ — the frontier return-rate floor.
    tail_ratio: float          #: γ — clipped layer-decay ratio.
    bound: float               #: Certified truncation bound.
    runtime_s: float           #: Wall-clock of the round.


@dataclass
class FspResult:
    """Outcome of an adaptive FSP solve.

    ``x`` is the stationary distribution *conditional on the final
    projection* (sums to 1 over ``space``); ``truncation_mass`` is the
    certified upper bound on the probability the projection cannot
    represent.  ``reason`` is one of ``"certified"`` (bound met the
    tolerance), ``"closed"`` (the projection closed — bound exactly 0),
    ``"max_rounds"``, ``"timed_out"`` or ``"solver_<stop>"`` (the inner
    solver stopped without converging).
    """

    x: np.ndarray
    space: StateSpace
    truncation_mass: float
    converged: bool
    reason: str
    rounds: list[FspRound] = field(default_factory=list)
    runtime_s: float = 0.0
    method: str = "jacobi"

    @property
    def iterations(self) -> int:
        """Total inner-solver iterations across all rounds."""
        return sum(r.iterations for r in self.rounds)

    def to_solver_result(self) -> SolverResult:
        """Present the FSP outcome through the unified solver result.

        ``residual_history`` carries one entry per round at cumulative
        iteration count, so downstream consumers (serve payloads, the
        CLI) see the round trajectory where they expect a residual
        curve.
        """
        history: list[tuple[int, float]] = []
        cum = 0
        for r in self.rounds:
            cum += r.iterations
            history.append((cum, r.residual))
        last = self.rounds[-1] if self.rounds else None
        reason = (StopReason.CONVERGED if self.converged
                  else StopReason.TIMED_OUT if self.reason == "timed_out"
                  else StopReason.MAX_ITERATIONS)
        return SolverResult(
            x=self.x, iterations=cum,
            residual=last.residual if last else float("inf"),
            stop_reason=reason, residual_history=history,
            runtime_s=self.runtime_s)

    def payload(self) -> dict:
        """The JSON-ready summary serve responses and the CLI attach."""
        return {
            "method": "fsp",
            "solver": self.method,
            "converged": self.converged,
            "reason": self.reason,
            "truncation_mass": self.truncation_mass,
            "final_states": int(self.space.size),
            "rounds": len(self.rounds),
            "iterations": self.iterations,
            "runtime_s": self.runtime_s,
            "projection_sizes": [r.states for r in self.rounds],
            "bounds": [r.bound for r in self.rounds],
            "states_added": [r.added for r in self.rounds],
            "states_pruned": [r.pruned for r in self.rounds],
        }


class AdaptiveFspController:
    """Adaptive FSP driver over one reaction network.

    Parameters
    ----------
    network:
        The reaction model.  Its species buffers still bound the
        representable space; the controller explores *within* them.
    fsp_tol:
        Target for the certified truncation bound (default ``1e-6``).
    tol, max_iterations, method, solver_options:
        The inner steady-state solve: method name from
        :data:`~repro.solvers.SOLVER_REGISTRY` plus its options
        (``damping``, ``check_interval``, ... — anything the solver's
        constructor takes).
    initial_size:
        Seed projection size (a BFS ball around the initial state).
    max_rounds:
        Projection-growth rounds before giving up uncertified.
    prune_mass:
        Total stationary mass the per-round prune may discard
        (default ``fsp_tol / 100``); ``0`` disables pruning.
    safety:
        Certificate cushion multiplier on the tail-corrected bound
        (≥ 1).
    expand_depth:
        Frontier layers grown per round.
    max_new_states:
        Cap on flux-ranked first-layer growth per round (``None`` for
        unbounded).
    max_states:
        Hard projection-size cap (overflow raises, same contract as
        enumeration).
    """

    def __init__(self, network: ReactionNetwork, *,
                 fsp_tol: float = 1e-6,
                 tol: float = 1e-8,
                 max_iterations: int = 1_000_000,
                 method: str = "jacobi",
                 solver_options: dict | None = None,
                 initial_size: int = 64,
                 max_rounds: int = 40,
                 prune_mass: float | None = None,
                 safety: float = 4.0,
                 expand_depth: int = 2,
                 max_new_states: int | None = None,
                 max_states: int = 5_000_000):
        if method not in SOLVER_REGISTRY:
            raise ValidationError(
                f"unknown method {method!r}; expected one of "
                f"{sorted(SOLVER_REGISTRY)}")
        if not (fsp_tol > 0.0):
            raise ValidationError(f"fsp_tol must be positive, got {fsp_tol}")
        if not (safety >= 1.0):
            raise ValidationError(f"safety must be >= 1, got {safety}")
        if max_rounds <= 0:
            raise ValidationError(
                f"max_rounds must be positive, got {max_rounds}")
        if prune_mass is None:
            prune_mass = fsp_tol / 100.0
        if prune_mass < 0.0:
            raise ValidationError(
                f"prune_mass must be non-negative, got {prune_mass}")
        self.network = network
        self.fsp_tol = float(fsp_tol)
        self.tol = float(tol)
        self.max_iterations = int(max_iterations)
        self.method = method
        self.solver_options = dict(solver_options or {})
        self.initial_size = int(initial_size)
        self.max_rounds = int(max_rounds)
        self.prune_mass = float(prune_mass)
        self.safety = float(safety)
        self.expand_depth = int(expand_depth)
        self.max_new_states = max_new_states
        self.max_states = int(max_states)
        self.assembler = ProjectionAssembler(network)

    # -- the loop ------------------------------------------------------------

    def solve(self, *, time_budget_s: float | None = None,
              hooks=None, checkpointer=None) -> FspResult:
        """Run the projection loop until certified (or a budget ends).

        With a :class:`~repro.durability.Checkpointer` (signature from
        :func:`~repro.durability.network_signature`), the controller
        writes one durable snapshot per projection round (kind
        ``"fsp"``, *unconditionally* — rounds are the natural coarse
        granularity): the next round's projection, the carried iterate
        and its source projection, and the round trajectory.  A resumed
        solve re-enters the loop at the next round with the same warm
        start the uninterrupted run would have used.
        """
        if time_budget_s is not None and time_budget_s <= 0:
            raise ValidationError(
                f"time_budget_s must be positive, got {time_budget_s}")
        t0 = time.perf_counter()
        registry = get_registry()
        rounds_ctr = registry.counter(
            "fsp_rounds_total", "Adaptive FSP rounds executed")
        added_ctr = registry.counter(
            "fsp_states_added_total", "States grown into FSP projections")
        pruned_ctr = registry.counter(
            "fsp_states_pruned_total", "States pruned from FSP projections")

        space = initial_projection(self.network, size=self.initial_size)
        prev: np.ndarray | None = None
        prev_space: StateSpace | None = None
        prev_sink = 0.0
        rounds: list[FspRound] = []
        added = pruned = 0
        nu_c = np.full(space.size, 1.0 / space.size)
        bound = float("inf")
        converged = False
        reason = "max_rounds"
        start_round = 1

        if checkpointer is not None and checkpointer.resume:
            resumed = checkpointer.load_latest(kind="fsp")
            if resumed is not None:
                meta = resumed.meta
                space = StateSpace(network=self.network,
                                   states=resumed.arrays["states"])
                carried = resumed.arrays.get("prev")
                prev = None if carried is None else carried.copy()
                prev_states = resumed.arrays.get("prev_states")
                if prev_states is not None:
                    prev_space = StateSpace(network=self.network,
                                            states=prev_states)
                prev_sink = float(meta.get("prev_sink", 0.0))
                rounds = [FspRound(**rec) for rec in meta.get("rounds", [])]
                added = int(meta.get("added", 0))
                pruned = int(meta.get("pruned", 0))
                bound = float(meta.get("bound", float("inf")))
                if prev is not None and prev.size == space.size:
                    nu_c = prev.copy()
                else:
                    nu_c = np.full(space.size, 1.0 / space.size)
                start_round = int(meta["round"]) + 1

        def durable_save(r: int) -> None:
            """One snapshot per round: everything the next round reads."""
            if checkpointer is None:
                return
            arrays = {"states": space.states}
            if prev is not None and prev_space is not None:
                arrays["prev"] = prev
                arrays["prev_states"] = prev_space.states
            from dataclasses import asdict
            checkpointer.save(r, arrays, {
                "round": int(r),
                "prev_sink": float(prev_sink),
                "added": int(added),
                "pruned": int(pruned),
                "bound": float(bound),
                "rounds": [asdict(rec) for rec in rounds],
            }, kind="fsp")

        outer = tracing.span("fsp.solve", method=self.method,
                             fsp_tol=self.fsp_tol)
        with outer:
            if start_round > 1:
                outer.set_attribute("resumed_round", start_round)
            for r in range(start_round, self.max_rounds + 1):
                remaining = None
                if time_budget_s is not None:
                    remaining = time_budget_s - (time.perf_counter() - t0)
                    if remaining <= 0:
                        reason = "timed_out"
                        break
                round_t0 = time.perf_counter()
                with tracing.span("fsp.round", round=r,
                                  states=space.size) as rspan:
                    A, w = self.assembler.assemble(space)
                    has_outflow = bool(np.any(w > 0.0))
                    if has_outflow:
                        # The sink's return rate is a *conditioning*
                        # choice, not part of the certificate: keep it
                        # at the generator's own diagonal scale so the
                        # Jacobi/power iteration matrix stays balanced.
                        kappa = float(np.abs(A.diagonal()).max())
                        A_sys = self._with_sink(A, w, kappa,
                                                self._redirect_index(space))
                    else:
                        A_sys = A
                    x0 = self._warm_start(space, prev, prev_space,
                                          prev_sink, has_outflow)
                    # A looser stagnation default than the solvers' own:
                    # a projection that misses the stationary support
                    # yields a slowly-creeping residual that would burn
                    # the whole iteration budget for digits growth will
                    # erase anyway.  Explicit solver_options still win.
                    opts = {"stagnation_tol": 1e-4, **self.solver_options}
                    solver = SOLVER_REGISTRY[self.method](
                        A_sys, tol=self.tol,
                        max_iterations=self.max_iterations, **opts)
                    # The warm start is last round's solved iterate
                    # remapped (finite, non-negative by construction),
                    # so the O(n) x0 scans are skipped on every
                    # projection round after the first.
                    result = solver.solve(x0, time_budget_s=remaining,
                                          hooks=hooks,
                                          validate_x0=x0 is None)
                    nu = result.x[:-1] if has_outflow else result.x
                    sink_mass = float(result.x[-1]) if has_outflow else 0.0
                    mass = float(nu.sum())
                    nu_c = (nu / mass if mass > 0.0
                            else np.full(space.size, 1.0 / space.size))
                    flux = float(w @ nu_c)
                    rho, gamma = float("inf"), 0.0
                    if has_outflow:
                        fr = self.assembler.frontier(space, weights=nu_c)
                        rho = self._return_floor(fr, w)
                        gamma = self._tail_ratio(fr)
                        bound = self.safety * flux / (rho * (1.0 - gamma))
                    else:
                        bound = 0.0
                    rounds.append(FspRound(
                        round=r, states=space.size, added=added,
                        pruned=pruned, iterations=result.iterations,
                        residual=result.residual, outflow_flux=flux,
                        return_floor=rho, tail_ratio=gamma, bound=bound,
                        runtime_s=time.perf_counter() - round_t0))
                    rounds_ctr.inc()
                    rspan.set_attribute("bound", bound)
                    rspan.set_attribute("iterations", result.iterations)

                    # Stagnation is a legitimate stop throughout this
                    # stack (bistable models never reach 1e-8; the
                    # residual floor is the spectral gap's, not ours) —
                    # only divergence and budget expiry are failures.
                    # An iteration-capped round is *rough*: its ν still
                    # guides growth, and the warm-started next round
                    # resumes where it stopped.
                    if result.stop_reason is StopReason.TIMED_OUT:
                        reason = "timed_out"
                        break
                    if result.stop_reason is StopReason.DIVERGED:
                        reason = "solver_diverged"
                        break
                    solved = result.stop_reason in (StopReason.CONVERGED,
                                                    StopReason.STAGNATED)
                    if not has_outflow and solved:
                        converged, reason = True, "closed"
                        break
                    if bound <= self.fsp_tol and solved:
                        converged, reason = True, "certified"
                        break
                    if r == self.max_rounds:
                        reason = "max_rounds"
                        break
                    if bound <= self.fsp_tol or not has_outflow:
                        # Bound already fine but the solve ran out of
                        # iterations: re-solve this projection from the
                        # carried iterate instead of growing.
                        prev, prev_space, prev_sink = nu_c, space, sink_mass
                        added = pruned = 0
                        durable_save(r)
                        continue

                    # Uncertified: prune the abandoned tail, grow where
                    # the boundary flux points, carry the iterate over.
                    prev, prev_space, prev_sink = nu_c, space, sink_mass
                    kept_space, kept_nu, n_pruned = self._prune(space, nu_c)
                    grown, n_added = self.assembler.grow(
                        kept_space, depth=self.expand_depth,
                        weights=kept_nu,
                        max_new_states=self.max_new_states,
                        max_states=self.max_states)
                    space, added, pruned = grown, n_added, n_pruned
                    added_ctr.inc(n_added)
                    pruned_ctr.inc(n_pruned)
                    durable_save(r)
            outer.set_attribute("rounds", len(rounds))
            outer.set_attribute("final_states", space.size)
            outer.set_attribute("truncation_mass", bound)
            outer.set_attribute("converged", converged)

        return FspResult(
            x=nu_c, space=space, truncation_mass=bound,
            converged=converged, reason=reason, rounds=rounds,
            runtime_s=time.perf_counter() - t0, method=self.method)

    # -- pieces --------------------------------------------------------------

    #: Clip on the geometric tail's layer-decay ratio γ: a frontier
    #: that does not contract gets a factor-20 tail instead of an
    #: infinite (or negative) one, so the bound stays a finite number
    #: whose size forces further growth.
    _GAMMA_CAP = 0.95

    @staticmethod
    def _return_floor(fr, w: np.ndarray) -> float:
        """ρ: the slowest direct return rate over the frontier layer."""
        positive = fr.inward_rates[fr.inward_rates > 0.0]
        if fr.size and np.all(fr.inward_rates > 0.0):
            return float(fr.inward_rates.min())
        if positive.size:
            # Some frontier states have no one-step return (they drain
            # through deeper states); floor on the slowest that do.
            return float(positive.min())
        # Degenerate: no frontier state returns directly.  Fall back to
        # the slowest escape rate so the floor stays positive.
        return float(w[w > 0.0].min())

    def _tail_ratio(self, fr) -> float:
        """γ: influx-weighted mean of away/return rate over the
        frontier — the estimated layer-to-layer decay of outside mass.
        """
        returning = fr.inward_rates > 0.0
        weight = float(fr.influx[returning].sum())
        if not returning.any() or weight <= 0.0:
            return self._GAMMA_CAP
        away = fr.total_rates[returning] - fr.inward_rates[returning]
        gamma = float((fr.influx[returning] * away
                       / fr.inward_rates[returning]).sum() / weight)
        return min(max(gamma, 0.0), self._GAMMA_CAP)

    def _redirect_index(self, space: StateSpace) -> int:
        """Where the sink re-injects mass: the model's initial state if
        the projection holds it, else state 0 (the BFS seed)."""
        idx = space.lookup(
            np.asarray(self.network.initial_state, dtype=np.int64)[None, :])
        return int(idx[0]) if idx[0] >= 0 else 0

    @staticmethod
    def _with_sink(A: sp.csr_matrix, w: np.ndarray, kappa: float,
                   redirect: int) -> sp.csr_matrix:
        """Augment the truncated generator with the certificate sink.

        The sink collects all boundary outflow (``A``'s diagonal
        already carries the matching loss) and returns to *redirect* at
        rate ``kappa``, keeping the augmented matrix a proper generator
        (columns sum to zero) with a unique stationary distribution.
        """
        n = A.shape[0]
        sink_gain = sp.csr_matrix(
            (w, (np.zeros(w.size, dtype=np.int64),
                 np.arange(n, dtype=np.int64))), shape=(1, n))
        return_col = np.zeros((n, 1))
        return_col[redirect, 0] = kappa
        corner = sp.csr_matrix(np.array([[-kappa]]))
        return as_csr(sp.bmat([[A, return_col], [sink_gain, corner]],
                              format="csr"))

    def _warm_start(self, space: StateSpace, prev, prev_space,
                    prev_sink: float, has_outflow: bool):
        """Remap last round's iterate onto this round's system."""
        if prev is None or prev_space is None:
            return None
        carried = remap_iterate(prev, prev_space, space)
        if not has_outflow:
            return carried
        sink = min(max(prev_sink, 0.0), 0.5)
        return np.concatenate([carried * (1.0 - sink), [sink]])

    def _prune(self, space: StateSpace, nu_c: np.ndarray
               ) -> tuple[StateSpace, np.ndarray, int]:
        """Drop the lowest-mass prefix holding ≤ ``prune_mass`` total.

        The initial state and the current mode survive any prune, and
        at least two states always remain.
        """
        n = space.size
        if self.prune_mass <= 0.0 or n <= 2:
            return space, nu_c, 0
        order = np.argsort(nu_c, kind="stable")
        cums = np.cumsum(nu_c[order])
        cut = int(np.searchsorted(cums, self.prune_mass, side="right"))
        if cut == 0:
            return space, nu_c, 0
        protected = {self._redirect_index(space), int(np.argmax(nu_c))}
        drop = np.array([i for i in order[:cut] if int(i) not in protected],
                        dtype=np.int64)
        if drop.size == 0 or n - drop.size < 2:
            return space, nu_c, 0
        keep = np.ones(n, dtype=bool)
        keep[drop] = False
        kept_space = StateSpace(network=space.network,
                                states=space.states[keep])
        kept_nu = nu_c[keep]
        total = float(kept_nu.sum())
        kept_nu = (kept_nu / total if total > 0.0
                   else np.full(kept_space.size, 1.0 / kept_space.size))
        return kept_space, kept_nu, int(drop.size)
