"""Process-wide metrics: counters, gauges and histograms in a registry.

The registry is the single sink every layer of the pipeline writes
into — solver hooks, the gpusim performance model and the serving
layer all share one vocabulary of named metrics, so a ``repro
profile`` run (or an operator scraping a long-lived service) sees the
whole system in one report.  Two export surfaces:

* :meth:`MetricsRegistry.render_prometheus` — Prometheus text
  exposition (``# HELP`` / ``# TYPE`` plus samples), suitable for a
  scrape endpoint or a flat-file report;
* :meth:`MetricsRegistry.snapshot` — a plain JSON-able dict for
  logging and test assertions.

Metric instruments are cheap, lock-guarded scalar updates; the hot
solver loop never touches them unless a recorder/hook is attached
(see :mod:`repro.telemetry.hooks`).
"""

from __future__ import annotations

import json
import threading
from collections import deque

from repro.errors import ValidationError

#: Retain at most this many recent samples per histogram for
#: percentile queries (bucket counts are unbounded and exact).
SAMPLE_WINDOW = 4096

#: Default histogram bucket upper bounds (seconds-flavored, the most
#: common use); the trailing +inf bucket is implicit.
DEFAULT_BUCKETS = (0.0005, 0.001, 0.005, 0.01, 0.05, 0.1, 0.5,
                   1.0, 5.0, 10.0, 60.0)


def percentile(sorted_values, q: float) -> float:
    """Linear-interpolated percentile of an already-sorted sequence."""
    if not sorted_values:
        return 0.0
    if len(sorted_values) == 1:
        return sorted_values[0]
    pos = (len(sorted_values) - 1) * q
    lo = int(pos)
    hi = min(lo + 1, len(sorted_values) - 1)
    frac = pos - lo
    return sorted_values[lo] * (1.0 - frac) + sorted_values[hi] * frac


def _valid_name(name: str) -> str:
    if not name or not all(c.isalnum() or c in "_:" for c in name):
        raise ValidationError(
            f"metric name {name!r} must be non-empty and use only "
            "alphanumerics, '_' and ':'")
    return name


class Counter:
    """A monotonically increasing count (events, iterations, bytes)."""

    kind = "counter"

    def __init__(self, name: str, help: str = "") -> None:
        self.name = _valid_name(name)
        self.help = help
        self._lock = threading.Lock()
        self._value = 0

    def inc(self, amount=1) -> None:
        """Add *amount* (must be non-negative) to the counter."""
        if amount < 0:
            raise ValidationError(
                f"counter {self.name} cannot decrease (inc by {amount})")
        with self._lock:
            self._value += amount

    @property
    def value(self):
        with self._lock:
            return self._value

    def sample_lines(self) -> list[str]:
        return [f"{self.name} {_fmt(self.value)}"]

    def snapshot_value(self):
        return self.value


class Gauge:
    """A value that can go up and down (queue depth, residual, savings).

    A gauge may instead be *bound* to a callable with
    :meth:`set_function`, in which case reads evaluate the callable —
    the pattern for live values owned elsewhere (e.g. a queue's
    ``__len__``).
    """

    kind = "gauge"

    def __init__(self, name: str, help: str = "") -> None:
        self.name = _valid_name(name)
        self.help = help
        self._lock = threading.Lock()
        self._value = 0
        self._fn = None

    def set(self, value) -> None:
        with self._lock:
            self._fn = None
            self._value = value

    def inc(self, amount=1) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount=1) -> None:
        self.inc(-amount)

    def set_function(self, fn) -> None:
        """Bind reads to *fn* (``None`` unbinds back to the stored value)."""
        with self._lock:
            self._fn = fn

    @property
    def value(self):
        with self._lock:
            fn = self._fn
            if fn is None:
                return self._value
        return fn()

    def sample_lines(self) -> list[str]:
        return [f"{self.name} {_fmt(self.value)}"]

    def snapshot_value(self):
        return self.value


class Histogram:
    """A distribution: exact cumulative buckets plus a sample window.

    The bucket counts follow Prometheus semantics (``le`` upper bounds,
    cumulative at render time, implicit ``+Inf``); the bounded window of
    recent raw samples additionally supports
    :meth:`quantile` queries, which Prometheus histograms cannot answer
    locally but the CLI reports want.
    """

    kind = "histogram"

    def __init__(self, name: str, help: str = "",
                 buckets=DEFAULT_BUCKETS) -> None:
        self.name = _valid_name(name)
        self.help = help
        bounds = tuple(sorted(float(b) for b in buckets))
        if not bounds:
            raise ValidationError(f"histogram {name} needs >= 1 bucket")
        self.bounds = bounds
        self._lock = threading.Lock()
        self._bucket_counts = [0] * (len(bounds) + 1)  # trailing +Inf
        self._sum = 0.0
        self._count = 0
        self._window: deque[float] = deque(maxlen=SAMPLE_WINDOW)

    def observe(self, value) -> None:
        value = float(value)
        idx = len(self.bounds)
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                idx = i
                break
        with self._lock:
            self._bucket_counts[idx] += 1
            self._sum += value
            self._count += 1
            self._window.append(value)

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum

    def quantile(self, q: float) -> float:
        """Percentile over the recent sample window (0 when empty)."""
        with self._lock:
            window = sorted(self._window)
        return percentile(window, q)

    def bucket_quantile(self, q: float) -> float:
        """Quantile estimated from the exact cumulative bucket counts.

        The Prometheus ``histogram_quantile`` estimator: find the
        bucket containing the ``q``-th observation and interpolate
        linearly inside it.  Unlike :meth:`quantile` this covers the
        histogram's *entire* history (bucket counts are unbounded),
        at bucket-boundary resolution.  Returns 0 when empty; a target
        landing in the implicit ``+Inf`` bucket clamps to the highest
        finite bound.
        """
        if not 0.0 <= q <= 1.0:
            raise ValidationError(f"quantile must be in [0, 1], got {q}")
        with self._lock:
            counts = list(self._bucket_counts)
            total = self._count
        if total == 0:
            return 0.0
        target = q * total
        acc = 0.0
        lo = 0.0
        for bound, n in zip(self.bounds, counts):
            if n > 0 and acc + n >= target:
                frac = min(1.0, max(0.0, (target - acc) / n))
                return lo + (bound - lo) * frac
            acc += n
            lo = bound
        return self.bounds[-1]

    def sample_lines(self) -> list[str]:
        with self._lock:
            counts = list(self._bucket_counts)
            total, acc = self._count, 0
            s = self._sum
        lines = []
        for bound, n in zip(self.bounds, counts):
            acc += n
            lines.append(f'{self.name}_bucket{{le="{_fmt(bound)}"}} {acc}')
        lines.append(f'{self.name}_bucket{{le="+Inf"}} {total}')
        lines.append(f"{self.name}_sum {_fmt(s)}")
        lines.append(f"{self.name}_count {total}")
        return lines

    def snapshot_value(self):
        with self._lock:
            window = sorted(self._window)
            total, s = self._count, self._sum
        return {
            "count": total,
            "sum": s,
            "p50": percentile(window, 0.50),
            "p90": percentile(window, 0.90),
            "p99": percentile(window, 0.99),
        }


def _fmt(value) -> str:
    """Prometheus sample formatting: integers bare, floats via repr."""
    if isinstance(value, bool):
        return str(int(value))
    if isinstance(value, int):
        return str(value)
    value = float(value)
    if value != value:  # NaN
        return "NaN"
    if value in (float("inf"), float("-inf")):
        return "+Inf" if value > 0 else "-Inf"
    return repr(value)


class MetricsRegistry:
    """A named collection of metric instruments with get-or-create
    semantics: asking twice for the same name returns the same object,
    asking for an existing name as a different kind raises."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: dict[str, object] = {}

    def _get_or_create(self, cls, name: str, help: str, **kwargs):
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if not isinstance(existing, cls):
                    raise ValidationError(
                        f"metric {name!r} already registered as "
                        f"{existing.kind}, not {cls.kind}")
                return existing
            metric = cls(name, help, **kwargs)
            self._metrics[name] = metric
            return metric

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get_or_create(Counter, name, help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get_or_create(Gauge, name, help)

    def histogram(self, name: str, help: str = "",
                  buckets=DEFAULT_BUCKETS) -> Histogram:
        return self._get_or_create(Histogram, name, help, buckets=buckets)

    def get(self, name: str):
        """The registered metric, or ``None``."""
        with self._lock:
            return self._metrics.get(name)

    def __contains__(self, name: str) -> bool:
        with self._lock:
            return name in self._metrics

    def names(self) -> list[str]:
        with self._lock:
            return list(self._metrics)

    # -- export --------------------------------------------------------------

    def snapshot(self) -> dict:
        """A point-in-time JSON-able dict of every metric's value."""
        with self._lock:
            metrics = list(self._metrics.values())
        return {m.name: m.snapshot_value() for m in metrics}

    def render_prometheus(self) -> str:
        """Prometheus text exposition of the whole registry."""
        with self._lock:
            metrics = list(self._metrics.values())
        lines = []
        for m in metrics:
            if m.help:
                lines.append(f"# HELP {m.name} {m.help}")
            lines.append(f"# TYPE {m.name} {m.kind}")
            lines.extend(m.sample_lines())
        return "\n".join(lines) + ("\n" if lines else "")

    def render_json(self) -> str:
        """The snapshot serialized as indented JSON."""
        return json.dumps(self.snapshot(), indent=2, sort_keys=True)


#: The process-wide default registry (isolated registries can still be
#: created directly, e.g. one per service or per test).
_DEFAULT = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-wide default :class:`MetricsRegistry`."""
    return _DEFAULT
