"""Lightweight tracing spans with Chrome-trace (Perfetto) export.

A span is a named, timed interval with attributes::

    with trace.span("spmv", rows=n) as sp:
        ...
        sp.set_attribute("gflops", perf.gflops)

Spans nest (a per-thread stack tracks the enclosing span) and are
recorded into a :class:`TraceRecorder`; the recorder exports the
standard Chrome trace-event JSON (``chrome://tracing`` or
https://ui.perfetto.dev) where nesting is rendered from timestamps per
thread track.

When no recorder is installed, :func:`span` returns a shared no-op
singleton — no object allocation, no clock reads — so instrumented
code costs near-zero by default.  Install a recorder process-wide with
:func:`install`/:func:`uninstall` or the :func:`recording` context
manager (what ``repro profile`` does).
"""

from __future__ import annotations

import json
import os
import threading
import time

__all__ = [
    "Span",
    "TraceRecorder",
    "active",
    "install",
    "recording",
    "span",
    "uninstall",
]

_state = threading.local()


def _stack() -> list:
    stack = getattr(_state, "stack", None)
    if stack is None:
        stack = _state.stack = []
    return stack


class Span:
    """One live span: a context manager that records itself on exit."""

    __slots__ = ("recorder", "name", "attrs", "start_us", "_depth")

    def __init__(self, recorder: "TraceRecorder", name: str, attrs: dict):
        self.recorder = recorder
        self.name = name
        self.attrs = attrs
        self.start_us = 0.0
        self._depth = 0

    def set_attribute(self, key: str, value) -> None:
        """Attach ``key=value`` to the span (shows up under ``args``)."""
        self.attrs[key] = value

    def __enter__(self) -> "Span":
        stack = _stack()
        self._depth = len(stack)
        stack.append(self)
        self.start_us = self.recorder._now_us()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        end_us = self.recorder._now_us()
        stack = _stack()
        if stack and stack[-1] is self:
            stack.pop()
        if exc_type is not None:
            self.attrs["error"] = exc_type.__name__
        self.recorder.add_event(self.name, self.start_us,
                                end_us - self.start_us,
                                depth=self._depth, **self.attrs)
        return False


class _NullSpan:
    """The do-nothing span handed out when tracing is disabled."""

    __slots__ = ()

    def set_attribute(self, key: str, value) -> None:
        pass

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


NULL_SPAN = _NullSpan()


class TraceRecorder:
    """Collects span events and serializes them as a Chrome trace.

    All timestamps are microseconds relative to the recorder's
    creation, so traces from one run line up on a shared zero.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._events: list[dict] = []
        self._t0 = time.perf_counter()

    def _now_us(self) -> float:
        return (time.perf_counter() - self._t0) * 1e6

    def now_us(self) -> float:
        """The current trace-relative timestamp in microseconds."""
        return self._now_us()

    def span(self, name: str, **attrs) -> Span:
        """A new (not yet entered) span bound to this recorder."""
        return Span(self, name, attrs)

    def add_event(self, name: str, start_us: float, dur_us: float,
                  **attrs) -> None:
        """Record a complete event directly (used by hooks that measure
        intervals themselves, e.g. per-iteration timing)."""
        event = {
            "name": name,
            "start_us": float(start_us),
            "dur_us": max(0.0, float(dur_us)),
            "tid": threading.get_ident(),
            "thread": threading.current_thread().name,
            "args": attrs,
        }
        with self._lock:
            self._events.append(event)

    @property
    def events(self) -> list[dict]:
        """A copy of the recorded events (unordered across threads)."""
        with self._lock:
            return list(self._events)

    def __len__(self) -> int:
        with self._lock:
            return len(self._events)

    def clear(self) -> None:
        with self._lock:
            self._events.clear()

    # -- export --------------------------------------------------------------

    def to_chrome_trace(self) -> dict:
        """The events in Chrome trace-event format (``ph: "X"``)."""
        events = self.events
        trace_events = []
        threads = {}
        pid = os.getpid()
        for ev in events:
            tid = ev["tid"]
            if tid not in threads:
                threads[tid] = ev["thread"]
            args = {k: _jsonable(v) for k, v in ev["args"].items()}
            trace_events.append({
                "name": ev["name"],
                "ph": "X",
                "ts": ev["start_us"],
                "dur": ev["dur_us"],
                "pid": pid,
                "tid": tid,
                "args": args,
            })
        for tid, thread_name in threads.items():
            trace_events.append({
                "name": "thread_name",
                "ph": "M",
                "pid": pid,
                "tid": tid,
                "args": {"name": thread_name},
            })
        return {"traceEvents": trace_events, "displayTimeUnit": "ms"}

    def write(self, path) -> int:
        """Write the Chrome trace JSON to *path*; returns bytes written."""
        payload = json.dumps(self.to_chrome_trace(), indent=1)
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(payload)
        return len(payload)


def _jsonable(value):
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    try:
        return float(value)
    except (TypeError, ValueError):
        return repr(value)


#: The process-wide active recorder (None = tracing disabled).
_active: TraceRecorder | None = None
_install_lock = threading.Lock()


def active() -> TraceRecorder | None:
    """The installed recorder, or ``None`` when tracing is off."""
    return _active


def install(recorder: TraceRecorder) -> None:
    """Make *recorder* the process-wide span sink."""
    global _active
    with _install_lock:
        _active = recorder


def uninstall() -> None:
    """Disable tracing (span() goes back to the no-op singleton)."""
    global _active
    with _install_lock:
        _active = None


class recording:
    """Context manager: install a recorder for the enclosed block.

    >>> rec = TraceRecorder()
    >>> with recording(rec):
    ...     with span("work"):
    ...         pass
    >>> len(rec)
    1
    """

    def __init__(self, recorder: TraceRecorder) -> None:
        self.recorder = recorder

    def __enter__(self) -> TraceRecorder:
        install(self.recorder)
        return self.recorder

    def __exit__(self, *exc_info) -> bool:
        uninstall()
        return False


def span(name: str, **attrs):
    """A span on the active recorder, or the no-op singleton when
    tracing is disabled — safe (and near-free) to call anywhere."""
    recorder = _active
    if recorder is None:
        return NULL_SPAN
    return recorder.span(name, **attrs)
