"""Solver instrumentation hooks: per-iteration observability.

Section IV of the paper hinges on iteration counts and residual decay;
adaptive state-space work (Gupta et al. 2017; Dendukuri & Petzold
2025) turns such per-iteration diagnostics into algorithmic inputs.
The hook protocol is how a solver exposes them without paying for
instrumentation when nobody listens: ``solve(hooks=None)`` (the
default) runs the exact uninstrumented loop; with a hooks object
attached, the solver calls

* ``on_iteration(k, residual, renormalized)`` — exactly once per
  iteration.  ``residual`` is the normalized residual when this
  iteration coincided with a residual check, else ``None``;
  ``renormalized`` says whether the iterate was renormalized at this
  step.
* ``on_stop(reason)`` — exactly once, with the final
  :class:`~repro.solvers.result.StopReason`.

Implementations here: :class:`RecordingHooks` (in-memory trajectories
for analysis/tests), :class:`TelemetryHooks` (streams spans into a
:class:`~repro.telemetry.tracing.TraceRecorder` and counters into a
:class:`~repro.telemetry.metrics.MetricsRegistry`) and
:class:`MultiHooks` (fan-out).
"""

from __future__ import annotations

import time
from typing import Protocol, runtime_checkable

from repro.telemetry import tracing
from repro.telemetry.metrics import MetricsRegistry

#: Histogram buckets for per-iteration step times (sub-millisecond to
#: seconds — CME iterations span this whole range with problem size).
ITERATION_SECONDS_BUCKETS = (1e-6, 1e-5, 1e-4, 5e-4, 1e-3, 5e-3,
                             1e-2, 5e-2, 0.1, 0.5, 1.0, 10.0)


@runtime_checkable
class SolverHooks(Protocol):
    """What a solver calls while iterating (see module docstring)."""

    def on_iteration(self, iteration: int, residual: float | None,
                     renormalized: bool) -> None: ...

    def on_stop(self, reason) -> None: ...


class NullHooks:
    """A no-op hooks object (useful as a base class or placeholder)."""

    def on_iteration(self, iteration: int, residual: float | None,
                     renormalized: bool) -> None:
        pass

    def on_stop(self, reason) -> None:
        pass


class RecordingHooks:
    """Record the full solve trajectory in memory.

    Attributes
    ----------
    iterations:
        Number of ``on_iteration`` calls observed.
    residuals:
        ``(iteration, residual)`` pairs for every residual check.
    renormalizations:
        Iteration numbers at which the iterate was renormalized.
    timestamps:
        ``time.perf_counter()`` at each iteration (for wall-time
        analysis via :meth:`iteration_seconds`).
    stop_reason, stop_calls:
        The final reason and how many times ``on_stop`` fired
        (exactly 1 after a completed solve).
    """

    def __init__(self) -> None:
        self.iterations = 0
        self.residuals: list[tuple[int, float]] = []
        self.renormalizations: list[int] = []
        self.timestamps: list[float] = []
        self.stop_reason = None
        self.stop_calls = 0
        self.started_at = time.perf_counter()

    def on_iteration(self, iteration: int, residual: float | None,
                     renormalized: bool) -> None:
        self.timestamps.append(time.perf_counter())
        self.iterations += 1
        if residual is not None:
            self.residuals.append((iteration, residual))
        if renormalized:
            self.renormalizations.append(iteration)

    def on_stop(self, reason) -> None:
        self.stop_reason = reason
        self.stop_calls += 1

    @property
    def residual_trajectory(self) -> list[float]:
        """Residual values in check order."""
        return [r for _, r in self.residuals]

    def iteration_seconds(self) -> list[float]:
        """Per-iteration wall times (first measured from construction)."""
        out = []
        prev = self.started_at
        for t in self.timestamps:
            out.append(t - prev)
            prev = t
        return out

    def total_seconds(self) -> float:
        if not self.timestamps:
            return 0.0
        return self.timestamps[-1] - self.started_at


class TelemetryHooks:
    """Stream iterations into the shared tracing/metrics layer.

    Every iteration becomes a trace event (duration = measured step
    wall time) on *recorder*, and updates ``<prefix>_iterations_total``,
    ``<prefix>_renormalizations_total``, ``<prefix>_residual_checks_total``
    counters, the ``<prefix>_iteration_seconds`` histogram and the
    ``<prefix>_residual`` gauge on *registry*.

    Parameters default to the process-wide active recorder and the
    default registry, so ``solver.solve(hooks=TelemetryHooks())`` inside
    a :func:`repro.telemetry.tracing.recording` block just works.
    """

    def __init__(self, recorder: tracing.TraceRecorder | None = None,
                 registry: MetricsRegistry | None = None, *,
                 prefix: str = "solver",
                 trace_every: int = 1) -> None:
        from repro.telemetry.metrics import get_registry
        self.recorder = recorder if recorder is not None else tracing.active()
        self.registry = registry if registry is not None else get_registry()
        self.prefix = prefix
        self.trace_every = max(1, int(trace_every))
        reg = self.registry
        self._iterations = reg.counter(
            f"{prefix}_iterations_total", "solver iterations performed")
        self._renorms = reg.counter(
            f"{prefix}_renormalizations_total",
            "probability renormalizations applied")
        self._checks = reg.counter(
            f"{prefix}_residual_checks_total", "residual evaluations")
        self._step_seconds = reg.histogram(
            f"{prefix}_iteration_seconds", "per-iteration wall time",
            buckets=ITERATION_SECONDS_BUCKETS)
        self._residual = reg.gauge(
            f"{prefix}_residual", "latest normalized residual")
        self._stops = reg.counter(
            f"{prefix}_stops_total", "completed solves")
        self._last_us = (self.recorder.now_us()
                         if self.recorder is not None else 0.0)
        self._last_s = time.perf_counter()

    def on_iteration(self, iteration: int, residual: float | None,
                     renormalized: bool) -> None:
        now_s = time.perf_counter()
        self._step_seconds.observe(now_s - self._last_s)
        self._last_s = now_s
        self._iterations.inc()
        if renormalized:
            self._renorms.inc()
        if residual is not None:
            self._checks.inc()
            self._residual.set(residual)
        if self.recorder is not None:
            now_us = self.recorder.now_us()
            if iteration % self.trace_every == 0 or residual is not None:
                args = {"iteration": iteration}
                if residual is not None:
                    args["residual"] = residual
                if renormalized:
                    args["renormalized"] = True
                self.recorder.add_event(f"{self.prefix}.iteration",
                                        self._last_us,
                                        now_us - self._last_us, **args)
            self._last_us = now_us

    def on_stop(self, reason) -> None:
        self._stops.inc()
        if self.recorder is not None:
            now_us = self.recorder.now_us()
            self.recorder.add_event(f"{self.prefix}.stop", now_us, 0.0,
                                    reason=getattr(reason, "value",
                                                   str(reason)))


class MultiHooks:
    """Fan one hook stream out to several hooks objects."""

    def __init__(self, *hooks) -> None:
        self.hooks = [h for h in hooks if h is not None]

    def on_iteration(self, iteration: int, residual: float | None,
                     renormalized: bool) -> None:
        for h in self.hooks:
            h.on_iteration(iteration, residual, renormalized)

    def on_stop(self, reason) -> None:
        for h in self.hooks:
            h.on_stop(reason)
