"""repro.telemetry — unified tracing and metrics for the whole pipeline.

Three pieces, one sink each:

* :mod:`repro.telemetry.metrics` — a registry of counters, gauges and
  histograms with Prometheus text exposition and JSON snapshots;
* :mod:`repro.telemetry.tracing` — nesting spans with attributes,
  exported as Chrome-trace JSON (``chrome://tracing`` / Perfetto);
* :mod:`repro.telemetry.hooks` — the solver instrumentation protocol
  (``on_iteration`` / ``on_stop``) plus recording/streaming
  implementations.

The design rule throughout: **zero cost when detached**.  With no
recorder installed and ``hooks=None``, the solvers run their original
uninstrumented loops and :func:`repro.telemetry.tracing.span` returns
a shared no-op singleton.

Quick profile of a solve::

    from repro.telemetry import MetricsRegistry, TelemetryHooks, tracing

    registry = MetricsRegistry()
    recorder = tracing.TraceRecorder()
    with tracing.recording(recorder):
        result = solver.solve(hooks=TelemetryHooks(recorder, registry))
    recorder.write("trace.json")
    print(registry.render_prometheus())
"""

from repro.telemetry import tracing
from repro.telemetry.hooks import (
    MultiHooks,
    NullHooks,
    RecordingHooks,
    SolverHooks,
    TelemetryHooks,
)
from repro.telemetry.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
    percentile,
)
from repro.telemetry.tracing import TraceRecorder, span

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "MultiHooks",
    "NullHooks",
    "RecordingHooks",
    "SolverHooks",
    "TelemetryHooks",
    "TraceRecorder",
    "get_registry",
    "percentile",
    "span",
    "tracing",
]
