"""GMRES on the steady-state system — the paper's negative result.

Section IV: "we performed some preliminary studies on using GMRES for
solving the steady-state problem but we observed no convergence", which
is why the paper settles on Jacobi.  The CME system ``A p = 0`` is
singular (the steady state *is* the null space) and severely
ill-conditioned; the standard workaround replaces one balance equation
with the normalization constraint ``sum(p) = 1``:

    A' p = e_last,   A' = A with its last row set to all ones

and hands ``A'`` to restarted GMRES.  On CME matrices this system's
conditioning defeats unpreconditioned GMRES — the function below exists
to *demonstrate* that, returning an honest :class:`SolverResult` rather
than a usable landscape in most cases.
"""

from __future__ import annotations

import time

import numpy as np
import scipy.sparse.linalg as spla

from repro.errors import ValidationError
from repro.solvers.normalization import renormalize, uniform_probability
from repro.solvers.result import SolverResult, StopReason
from repro.solvers.stopping import StoppingCriterion
from repro.sparse.base import as_csr


def gmres_steady_state(A, *, tol: float = 1e-8, restart: int = 50,
                       max_iterations: int = 2000,
                       x0=None) -> SolverResult:
    """Attempt the steady state with restarted GMRES (see module docs).

    The result's residual is the paper's normalized metric measured on
    the *original* generator, so outcomes are directly comparable with
    the Jacobi solver; ``stop_reason`` is ``CONVERGED`` only if that
    metric beats *tol* — on realistic CME matrices expect ``STAGNATED``
    or ``MAX_ITERATIONS``.
    """
    A = as_csr(A)
    if A.shape[0] != A.shape[1]:
        raise ValidationError("steady-state solve needs a square matrix")
    n = A.shape[0]
    # Replace the last balance equation with sum(p) = 1.
    constrained = A.tolil(copy=True)
    constrained[n - 1, :] = 1.0
    constrained = as_csr(constrained.tocsr())
    b = np.zeros(n)
    b[n - 1] = 1.0

    x = uniform_probability(n) if x0 is None else np.asarray(x0, np.float64)
    t0 = time.perf_counter()
    iterations = 0

    def callback(_):
        nonlocal iterations
        iterations += 1

    solution, info = spla.gmres(constrained, b, x0=x, rtol=tol,
                                restart=restart, maxiter=max_iterations,
                                callback=callback,
                                callback_type="legacy")
    runtime = time.perf_counter() - t0

    matrix_inf_norm = float(abs(A).sum(axis=1).max()) if A.nnz else 0.0
    criterion = StoppingCriterion(matrix_inf_norm, tol=tol,
                                  max_iterations=max(1, max_iterations))
    finite = bool(np.all(np.isfinite(solution)))
    usable = finite and solution.sum() > 0
    if usable:
        p = renormalize(solution)
        residual = criterion.normalized_residual(A @ p, p)
    else:
        p = uniform_probability(n)
        residual = float("inf")

    if usable and residual <= tol:
        reason = StopReason.CONVERGED
    elif not finite:
        reason = StopReason.DIVERGED
    elif info > 0:
        reason = StopReason.MAX_ITERATIONS
    else:
        reason = StopReason.STAGNATED
    return SolverResult(x=p, iterations=iterations, residual=residual,
                        stop_reason=reason, runtime_s=runtime)
