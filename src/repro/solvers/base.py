"""The unified steady-state solver API (protocol + shared loop).

Every solver in :mod:`repro.solvers` presents the same front:

* constructed from ``matrix`` (plus solver-specific options);
* ``solve(x0=None, *, time_budget_s=None, hooks=None) -> SolverResult``.

:class:`SteadyStateSolver` is the structural protocol that front-door
code (:func:`repro.solve_steady_state`, the serve layer, the sweep)
programs against; :class:`IterativeSolverBase` is the shared
batch-iterate / renormalize / residual-check loop from Section IV that
Jacobi, Gauss-Seidel and power iteration all run — each subclass only
supplies :meth:`~IterativeSolverBase.step_once` and its constructor.

Centralizing the loop means every solver gets, identically:

* wall-clock budgets (``time_budget_s`` →
  :attr:`~repro.solvers.result.StopReason.TIMED_OUT`);
* the instrumentation hook protocol
  (:class:`repro.telemetry.hooks.SolverHooks`) — ``on_iteration`` fires
  exactly once per iteration, ``on_stop`` exactly once per solve, and
  the ``hooks=None`` default runs the original uninstrumented inner
  loop (zero added work);
* a tracing span per solve
  (:func:`repro.telemetry.tracing.span`, a no-op unless a recorder is
  installed);
* the warm-start fast path: a caller-supplied ``x0`` already within
  tolerance returns immediately with ``iterations=0``.
"""

from __future__ import annotations

import threading
import time
import weakref
from typing import Protocol, runtime_checkable

import numpy as np

from repro import backends
from repro.errors import (
    IterateSizeError,
    SingularSystemError,
    ValidationError,
)
from repro.solvers.normalization import renormalize, uniform_probability
from repro.solvers.result import SolverResult, StopReason
from repro.solvers.stopping import StoppingCriterion
from repro.telemetry import tracing

#: Matrix-derived quantities (row sums, inf-norm, diagonal) cached per
#: matrix *object*.  SciPy CSR matrices are unhashable, so entries are
#: keyed by ``id()`` and guarded by a weak reference: a stale id reuse
#: misses (the guard compares identity) and collection evicts the entry.
_DERIVED_CACHE: dict[int, tuple] = {}
_DERIVED_LOCK = threading.Lock()


def matrix_derived(A) -> dict:
    """Row sums, ``||A||_inf``, zero rows and the diagonal of *A*, cached.

    Repeated solver constructions on the same matrix object (warm-started
    re-solves, serve retries/audits, batched sweeps) skip the O(nnz)
    re-derivation; the first call on a matrix pays it once.
    """
    key = id(A)
    with _DERIVED_LOCK:
        hit = _DERIVED_CACHE.get(key)
        if hit is not None and hit[0]() is A:
            return hit[1]
    if A.nnz:
        row_sums = np.asarray(abs(A).sum(axis=1), dtype=np.float64).ravel()
        inf_norm = float(row_sums.max())
    else:
        row_sums = np.zeros(A.shape[0], dtype=np.float64)
        inf_norm = 0.0
    derived = {
        "row_sums": row_sums,
        "inf_norm": inf_norm,
        "zero_rows": np.flatnonzero(row_sums == 0.0),
        "diagonal": np.asarray(A.diagonal(), dtype=np.float64),
    }

    def _evict(dying_ref, _key=key):
        with _DERIVED_LOCK:
            cur = _DERIVED_CACHE.get(_key)
            if cur is not None and cur[0] is dying_ref:
                del _DERIVED_CACHE[_key]

    try:
        ref = weakref.ref(A, _evict)
    except TypeError:
        return derived
    with _DERIVED_LOCK:
        _DERIVED_CACHE[key] = (ref, derived)
    return derived


@runtime_checkable
class SteadyStateSolver(Protocol):
    """Structural interface of every steady-state solver.

    Conformance (checked by ``tests/solvers/test_protocol.py`` against
    all concrete solvers): construction from ``matrix``, a system size
    ``n``, and the unified ``solve`` signature.
    """

    n: int

    def solve(self, x0=None, *, time_budget_s: float | None = None,
              hooks=None) -> SolverResult: ...


class IterativeSolverBase:
    """The shared iterate / renormalize / check loop (Section IV).

    Subclasses set (in their constructor):

    ``A``
        The generator as SciPy CSR — used for residual evaluation.
    ``n``
        System size.
    ``tol, max_iterations, check_interval, stagnation_tol``
        Stopping parameters (see :class:`StoppingCriterion`).
    ``normalize_interval``
        Renormalize the iterate every this many steps; ``None`` for
        norm-preserving iterations (power iteration) that only
        renormalize at residual checks against floating-point drift.
    ``matrix_inf_norm``
        ``||A||_inf``, precomputed.

    and implement :meth:`step_once`.
    """

    #: Name used for the per-solve tracing span and hook events.
    span_name = "solver"

    #: Explicit kernel-backend selection (a name, an instance, or
    #: ``None`` for the ambient resolution — see
    #: :func:`repro.backends.resolve`).  Subclasses that accept a
    #: ``backend=`` constructor argument overwrite this.
    backend = None

    #: Kernel backend resolved by the most recent :meth:`solve`
    #: (``None`` before the first solve).  Refreshed at the top of
    #: every solve from :meth:`_select_backend` so ambient selections
    #: (``use()`` contexts, ``REPRO_BACKEND``) are honored per solve,
    #: not per construction.
    _active_backend = None

    A: object
    n: int
    tol: float
    max_iterations: int
    check_interval: int
    normalize_interval: int | None
    stagnation_tol: float | None
    matrix_inf_norm: float

    def _init_common(self, A, *, tol: float, max_iterations: int,
                     check_interval: int,
                     normalize_interval: int | None,
                     stagnation_tol: float | None) -> None:
        """Validate and store the loop parameters shared by all solvers."""
        if A.shape[0] != A.shape[1]:
            raise ValidationError("steady-state solve needs a square matrix")
        if check_interval <= 0:
            raise ValidationError("intervals must be positive")
        if normalize_interval is not None and normalize_interval <= 0:
            raise ValidationError("intervals must be positive")
        self.A = A
        self.n = A.shape[0]
        self.tol = float(tol)
        self.max_iterations = int(max_iterations)
        self.check_interval = int(check_interval)
        self.normalize_interval = (None if normalize_interval is None
                                   else int(normalize_interval))
        self.stagnation_tol = stagnation_tol
        self._derived = matrix_derived(A)
        self.matrix_inf_norm = self._derived["inf_norm"]
        # An all-zero row is an isolated state: nothing flows in or out,
        # so the chain is reducible and the stationary distribution is
        # not unique — no amount of iterating (or retrying) fixes that.
        zero_rows = self._derived["zero_rows"]
        if zero_rows.size:
            shown = ", ".join(str(r) for r in zero_rows[:5])
            more = "" if zero_rows.size <= 5 else \
                f" (+{zero_rows.size - 5} more)"
            raise SingularSystemError(
                f"generator has {zero_rows.size} all-zero row(s) "
                f"[{shown}{more}]: isolated states make the steady state "
                f"non-unique", rows=zero_rows[:5].tolist())

    # -- to be provided by subclasses ----------------------------------------

    #: When true, :meth:`step_from_product` can advance the iterate from
    #: a residual product ``y = A @ x`` the loop already computed at a
    #: check, so a check iteration costs no extra SpMV (the loop performs
    #: exactly one product per iteration, plus the final check's).
    supports_product_step: bool = False

    def _select_backend(self):
        """Resolve the kernel backend serving this solve.

        The base loop only consumes the ``residual`` primitive (inside
        :class:`StoppingCriterion`); solvers whose *steps* dispatch
        through :mod:`repro.backends` override this with the op they
        run (e.g. Jacobi resolves ``jacobi_sweep``) so telemetry
        attributes the solve to the right kernel.
        """
        return backends.serving("", "residual", self.backend)

    def step_once(self, x: np.ndarray) -> np.ndarray:
        """One iteration of the method (no renormalization)."""
        raise NotImplementedError

    def step_from_product(self, x: np.ndarray,
                          y: np.ndarray) -> np.ndarray:
        """One iteration reusing ``y = A @ x`` (already computed).

        Must be numerically identical to :meth:`step_once` on the same
        ``x``; only solvers setting :attr:`supports_product_step` need it.
        """
        raise NotImplementedError

    # -- the unified solve loop ----------------------------------------------

    @staticmethod
    def _checkpoint_meta(history, best_residual, checks_done, recoveries,
                         criterion) -> dict:
        """JSON-serializable loop state for a durable checkpoint."""
        return {
            "history": [[int(i), float(r)] for i, r in history],
            "best_residual": (None if not np.isfinite(best_residual)
                              else float(best_residual)),
            "checks_done": int(checks_done),
            "recoveries": int(recoveries),
            "criterion": criterion.state_dict(),
        }

    def _initial_iterate(self, x0, *, validate: bool = True) -> np.ndarray:
        """Validate *x0* and project it onto the probability simplex.

        ``validate=False`` skips the O(n) finiteness/negativity scans for
        callers that hand back an iterate a previous solve produced (warm
        restarts in the FSP controller re-solve the same system dozens of
        times); the shape check and renormalization always run.
        """
        if x0 is None:
            return uniform_probability(self.n)
        x = np.asarray(x0, dtype=np.float64)
        if x.shape != (self.n,):
            # A typed size error (not a bare shape complaint): when the
            # caller remaps iterates across changing projections, this
            # is the failure that pinpoints a remap bug.
            raise IterateSizeError(self.n, x.shape)
        if validate:
            if not np.all(np.isfinite(x)):
                raise ValidationError("x0 contains non-finite entries")
            if np.any(x < 0.0):
                raise ValidationError("x0 contains negative entries")
        return renormalize(x)

    def solve(self, x0=None, *, time_budget_s: float | None = None,
              hooks=None, guardrails=None,
              validate_x0: bool = True, checkpointer=None) -> SolverResult:
        """Iterate from *x0* (uniform by default) until a criterion fires.

        Parameters
        ----------
        x0:
            Optional initial guess (e.g. a warm start from a nearby
            rate condition).  Must have length ``n``, be finite and
            non-negative with positive mass; it is renormalized onto
            the probability simplex before iterating.  A warm start
            already within tolerance returns immediately
            (``iterations=0``), charged one residual evaluation.
        time_budget_s:
            Optional wall-clock budget, checked at every residual
            check; on expiry the solve returns with
            :attr:`StopReason.TIMED_OUT` instead of raising, so callers
            can inspect the partial iterate.
        hooks:
            Optional :class:`~repro.telemetry.hooks.SolverHooks`.
            ``on_iteration(k, residual, renormalized)`` fires exactly
            once per iteration (``residual`` only on check iterations)
            and ``on_stop(reason)`` exactly once.  ``None`` (default)
            runs the uninstrumented loop.
        guardrails:
            Numerical recovery policy
            (:class:`~repro.resilience.guardrails.GuardrailPolicy`).
            ``None`` (default) applies the default policy: the iterate
            is checkpointed periodically, and a non-finite or diverging
            iterate **rolls back** to the checkpoint and renormalizes
            (up to ``max_recoveries`` times) instead of aborting.  Pass
            ``False`` for the legacy fail-fast behaviour (a non-finite
            batch stops with :attr:`StopReason.DIVERGED` immediately).
            Any corrective action taken is reported in
            ``result.recovery``.
        validate_x0:
            Skip the finiteness/negativity scans of *x0* when false.
            Only safe when *x0* is an iterate a previous solve returned
            (the FSP controller's warm restarts); the shape check and
            renormalization still run.
        checkpointer:
            Optional :class:`~repro.durability.Checkpointer`.  The loop
            writes a durable checkpoint (iterate, iteration count,
            residual history, stopping-criterion state) whenever the
            checkpointer's policy says one is due — always at a
            residual-check boundary, where the iterate is renormalized
            and consistent.  When ``checkpointer.resume`` is set and an
            intact checkpoint matching the signature exists, the solve
            restores it (ignoring *x0*) and continues **bitwise
            identically** to the uninterrupted run: the iterate is
            taken verbatim (no re-renormalization), the stopping
            criterion's stagnation state is reloaded, and the reusable
            residual product is recomputed deterministically.
        """
        # Lazy imports: repro.resilience imports repro.solvers (for the
        # registry and result types), so a module-level import here
        # would be circular.
        from repro.resilience.faults import active_injector
        from repro.resilience.guardrails import (
            GuardrailPolicy,
            RecoveryReport,
            count_recovery,
        )

        x = self._initial_iterate(x0, validate=validate_x0)
        if time_budget_s is not None and time_budget_s <= 0:
            raise ValidationError(
                f"time_budget_s must be positive, got {time_budget_s}")
        if guardrails is False:
            policy = None
        elif guardrails is None:
            policy = GuardrailPolicy()
        else:
            policy = guardrails

        injector = active_injector()
        inject = injector is not None and injector.active_for("solver.iterate")
        # Per-sweep finiteness scans cost a pass over x each iteration,
        # so they stay off unless asked for — or a fault injector is
        # corrupting iterates, where waiting for the batch-end check
        # would discard up to check_interval good sweeps per fault.
        sweep_guard = policy is not None and (policy.sweep_check or inject)
        report = RecoveryReport() if (policy is not None or inject) else None

        self._active_backend = self._select_backend()
        accel = (self._active_backend
                 if self._active_backend is not None
                 and not self._active_backend.is_reference else None)
        criterion = StoppingCriterion(
            self.matrix_inf_norm, tol=self.tol,
            max_iterations=self.max_iterations,
            stagnation_tol=self.stagnation_tol,
            backend=accel)
        history: list[tuple[int, float]] = []
        t0 = time.perf_counter()
        iteration = 0
        reason = StopReason.MAX_ITERATIONS
        residual = float("inf")
        checkpoint = x.copy() if policy is not None else None
        checkpoint_iteration = 0
        checks_done = 0
        recoveries = 0
        best_residual = float("inf")

        def rollback(kind: str) -> np.ndarray:
            nonlocal recoveries
            recoveries += 1
            report.rollbacks += 1
            report.record(iteration, kind, "rollback",
                          detail=f"checkpoint@{checkpoint_iteration}")
            count_recovery(kind, iteration)
            return checkpoint.copy()

        # The residual product ``y = A @ x`` of the latest check, valid
        # for the *current* x.  When the solver supports product-reuse
        # steps, the next batch's first iteration consumes it instead of
        # recomputing the same product — one SpMV per iteration total.
        pending_y = None
        reuse = self.supports_product_step

        def advance(x: np.ndarray) -> np.ndarray:
            nonlocal pending_y
            if pending_y is not None:
                y, pending_y = pending_y, None
                return self.step_from_product(x, y)
            return self.step_once(x)

        # Durable resume: restore the exact mid-solve state a previous
        # process persisted.  The iterate is taken verbatim — it was
        # saved post-renormalization, and renormalizing again would
        # break bitwise parity with the uninterrupted run.
        resumed = None
        if checkpointer is not None and checkpointer.resume:
            resumed = checkpointer.load_latest(kind="solver")
        if resumed is not None:
            from repro.errors import CheckpointError
            rx = np.asarray(resumed.arrays.get("x"), dtype=np.float64)
            if rx.shape != (self.n,):
                raise CheckpointError(
                    f"checkpoint iterate has shape {rx.shape}, "
                    f"system needs ({self.n},)")
            x = rx.copy()
            iteration = int(resumed.iteration)
            meta = resumed.meta
            history = [(int(i), float(r))
                       for i, r in meta.get("history", [])]
            checks_done = int(meta.get("checks_done", 0))
            saved_best = meta.get("best_residual")
            best_residual = (float("inf") if saved_best is None
                             else float(saved_best))
            recoveries = int(meta.get("recoveries", 0))
            criterion.load_state(meta.get("criterion", {}))
            if policy is not None:
                checkpoint = x.copy()
                checkpoint_iteration = iteration

        span = tracing.span(f"{self.span_name}.solve", n=self.n,
                            method=type(self).__name__)
        if self._active_backend is not None:
            span.set_attribute("backend", self._active_backend.name)
        with span:
            if resumed is not None:
                span.set_attribute("resumed_iteration", iteration)
                if reuse:
                    # Deterministic SpMV on the restored iterate: the
                    # same bits the uninterrupted loop carried forward.
                    pending_y = self.A @ x
            elif x0 is not None:
                # A warm start may already satisfy the tolerance (e.g. a
                # cached neighbor with identical dynamics); charge one
                # residual evaluation instead of a full check interval.
                y0 = self.A @ x
                residual = criterion.normalized_residual(y0, x)
                if reuse:
                    pending_y = y0
                if residual <= self.tol:
                    history.append((0, residual))
                    if hooks is not None:
                        hooks.on_stop(StopReason.CONVERGED)
                    span.set_attribute("iterations", 0)
                    return SolverResult(
                        x=renormalize(x), iterations=0, residual=residual,
                        stop_reason=StopReason.CONVERGED,
                        residual_history=history,
                        runtime_s=time.perf_counter() - t0)
            norm_every = self.normalize_interval
            while True:
                budget = min(self.check_interval,
                             self.max_iterations - iteration)
                if hooks is None and not inject and not sweep_guard:
                    # The original uninstrumented inner loop, unchanged.
                    for _ in range(budget):
                        x = advance(x)
                        iteration += 1
                        if (norm_every is not None
                                and iteration % norm_every == 0):
                            x = renormalize(x)
                elif not inject and not sweep_guard:
                    # The batch's final iteration is reported after the
                    # residual check below, so its on_iteration call can
                    # carry the measured residual.
                    for i in range(budget):
                        x = advance(x)
                        iteration += 1
                        renorm = (norm_every is not None
                                  and iteration % norm_every == 0)
                        if renorm:
                            x = renormalize(x)
                        if i < budget - 1:
                            hooks.on_iteration(iteration, None, renorm)
                else:
                    # Guarded batch: faults may corrupt the iterate at
                    # any sweep, so finiteness is (optionally) checked —
                    # and recovered from — per sweep, and in-batch
                    # renormalization is skipped for corrupt iterates
                    # (renormalize raises on non-finite input).
                    for i in range(budget):
                        x = advance(x)
                        iteration += 1
                        if inject:
                            x, spec = injector.corrupt(
                                "solver.iterate", x, iteration)
                            if spec is not None and report is not None:
                                report.faults_seen += 1
                                report.record(
                                    iteration, f"fault:{spec.kind}",
                                    "injected", detail="site solver.iterate")
                        if sweep_guard and not np.all(np.isfinite(x)):
                            if recoveries < policy.max_recoveries:
                                x = rollback("nan-inf")
                            else:
                                break  # batch-end check reports DIVERGED
                        renorm = (norm_every is not None
                                  and iteration % norm_every == 0)
                        if renorm:
                            if np.all(np.isfinite(x)) and x.sum() > 0:
                                x = renormalize(x)
                            else:
                                renorm = False
                        if hooks is not None and i < budget - 1:
                            hooks.on_iteration(iteration, None, renorm)
                finite = bool(np.all(np.isfinite(x)))
                if finite:
                    if policy is not None:
                        try:
                            x = renormalize(x)
                        except ValidationError:
                            finite = False  # no mass left: recover below
                    else:
                        x = renormalize(x)
                if not finite:
                    if policy is not None \
                            and recoveries < policy.max_recoveries:
                        x = rollback("nan-inf")
                        if hooks is not None:
                            hooks.on_iteration(iteration, None, True)
                        continue
                    reason, residual = StopReason.DIVERGED, float("inf")
                    if hooks is not None:
                        hooks.on_iteration(iteration, residual, False)
                    break
                y = self.A @ x
                stop, residual = criterion.check(iteration, y, x)
                history.append((iteration, residual))
                if (policy is not None and stop is None
                        and np.isfinite(best_residual)
                        and residual
                        > policy.divergence_factor * best_residual):
                    if recoveries < policy.max_recoveries:
                        x = rollback("divergence")
                        if hooks is not None:
                            hooks.on_iteration(iteration, None, True)
                        continue
                    reason = StopReason.DIVERGED
                    if hooks is not None:
                        hooks.on_iteration(iteration, residual, True)
                    break
                # x survives this check unchanged, so the residual product
                # seeds the next batch's first step (no recomputation).
                if reuse:
                    pending_y = y
                best_residual = min(best_residual, residual)
                if hooks is not None:
                    hooks.on_iteration(iteration, residual, True)
                if stop is not None:
                    reason = stop
                    break
                if (time_budget_s is not None
                        and time.perf_counter() - t0 >= time_budget_s):
                    reason = StopReason.TIMED_OUT
                    break
                if iteration >= self.max_iterations:
                    reason = StopReason.MAX_ITERATIONS
                    break
                checks_done += 1
                if policy is not None \
                        and checks_done % policy.checkpoint_every == 0:
                    checkpoint = x.copy()
                    checkpoint_iteration = iteration
                    report.checkpoints += 1
                if checkpointer is not None:
                    checkpointer.maybe_save(
                        iteration, {"x": x},
                        self._checkpoint_meta(history, best_residual,
                                              checks_done, recoveries,
                                              criterion))
            span.set_attribute("iterations", iteration)
            span.set_attribute("residual", residual)
            span.set_attribute("stop_reason", reason.value)
            if report is not None and (report.rollbacks or report.faults_seen):
                span.set_attribute("rollbacks", report.rollbacks)
                span.set_attribute("faults_seen", report.faults_seen)
        runtime = time.perf_counter() - t0
        if hooks is not None:
            hooks.on_stop(reason)
        if reason is not StopReason.DIVERGED:
            x = renormalize(x)
        recovery = report if report is not None \
            and (report.rollbacks or report.faults_seen or report.events) \
            else None
        return SolverResult(x=x, iterations=iteration, residual=residual,
                            stop_reason=reason, residual_history=history,
                            runtime_s=runtime, recovery=recovery)
