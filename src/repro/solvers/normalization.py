"""Probability-vector maintenance for the Jacobi iteration (Section IV).

The steady-state iterate must remain a probability vector: entries
non-negative and ``||x||_1 = 1``.  Non-negativity is preserved by the
iteration itself (the rate matrix has non-negative off-diagonals and a
negative diagonal) up to floating-point noise; the unit sum is not, so
the solver renormalizes periodically.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ValidationError


def renormalize(x: np.ndarray, *, clip: bool = True) -> np.ndarray:
    """Return *x* projected back onto the probability simplex.

    Tiny negative entries (floating-point noise) are clipped to zero
    when *clip* is set; the vector is then rescaled to unit L1 norm.
    Raises if the mass is zero or non-finite — both indicate a diverged
    iteration, which the caller should surface, not paper over.
    """
    x = np.asarray(x, dtype=np.float64)
    if not np.all(np.isfinite(x)):
        raise ValidationError("iterate contains non-finite entries")
    if clip:
        x = np.maximum(x, 0.0)
    total = float(x.sum())
    if total <= 0.0:
        raise ValidationError("iterate has no probability mass left")
    return x / total


def uniform_probability(n: int) -> np.ndarray:
    """The uniform distribution over *n* states (the default ``x0``)."""
    if n <= 0:
        raise ValidationError(f"n must be positive, got {n}")
    return np.full(n, 1.0 / n, dtype=np.float64)
