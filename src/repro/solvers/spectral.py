"""Spectral convergence analysis of the Jacobi iteration (Section IV).

Section IV ties convergence to the spectral radius of the iteration
matrix ``M = -D^{-1}(L + U) = I - D^{-1}A``.  For a CME generator, the
steady state is M's eigenvector at eigenvalue exactly 1, so what
governs the *rate* is the subdominant modulus ``|lambda_2|``: the error
contracts like ``|lambda_2|^k``, giving the iteration-count estimate

    k(eps) ~ log(eps) / log(|lambda_2|)

— which is why Table IV's counts range from 18 300 (Schnakenberg, a
well-separated spectrum) to beyond 10^6 (phage-lambda-2).  This module
estimates ``|lambda_2|`` by deflated power iteration on ``M`` using only
SpMV (the same primitive as the solver) and converts it to predicted
iteration counts, which the tests compare against measured ones.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import SingularMatrixError, ValidationError
from repro.solvers.jacobi import JacobiSolver
from repro.sparse.base import as_csr


@dataclass(frozen=True)
class SpectralEstimate:
    """Subdominant-mode estimate of a Jacobi iteration matrix."""

    #: Estimated |lambda_2| of ``M = I - D^{-1} A`` (damped if requested).
    subdominant_modulus: float
    #: Power-iteration steps used for the estimate.
    power_steps: int
    #: The damping the estimate refers to.
    damping: float

    def predicted_iterations(self, tol: float,
                             initial_error: float = 1.0) -> float:
        """Iterations until the error contracts below *tol*.

        ``inf`` when the subdominant modulus is >= 1 (non-convergent).
        """
        if tol <= 0 or initial_error <= 0:
            raise ValidationError("tol and initial_error must be positive")
        rho = self.subdominant_modulus
        if rho >= 1.0:
            return float("inf")
        if rho <= 0.0:
            return 1.0
        return float(np.log(tol / initial_error) / np.log(rho))


def estimate_subdominant(A, *, damping: float = 1.0,
                         power_steps: int = 400,
                         seed: int = 0) -> SpectralEstimate:
    """Estimate ``|lambda_2|`` of the (damped) Jacobi iteration matrix.

    Runs power iteration on ``M_omega = (1 - omega) I + omega M`` with
    the known dominant eigenvector (the steady state, computed first)
    deflated out at every step, so the iteration converges to the
    subdominant mode.  The modulus is read off the step-to-step norm
    ratio, averaged over the final quarter of the run to smooth complex-
    pair oscillation.
    """
    A = as_csr(A)
    if A.shape[0] != A.shape[1]:
        raise ValidationError("spectral analysis needs a square matrix")
    if not (0.0 < damping <= 1.0):
        raise ValidationError(f"damping must be in (0, 1], got {damping}")
    if power_steps < 10:
        raise ValidationError("power_steps must be at least 10")
    diag = A.diagonal()
    if np.any(diag == 0.0):
        raise SingularMatrixError("Jacobi spectrum needs a nonzero diagonal")

    # The dominant right eigenvector of M at eigenvalue 1: the steady
    # state (solved robustly with a damped Jacobi run).
    steady = JacobiSolver(A, tol=1e-12, damping=min(damping, 0.8),
                          max_iterations=200_000).solve().x
    steady = steady / np.linalg.norm(steady)
    # The dominant *left* eigenvector of M is not uniform (M's rows are
    # scaled by 1/a_ii), so deflate with the right eigenvector projector
    # applied to the iterate: v <- v - (steady . v) steady works because
    # power iteration only needs the dominant component suppressed.
    rng = np.random.default_rng(seed)
    v = rng.standard_normal(A.shape[0])
    v -= (steady @ v) * steady
    v /= np.linalg.norm(v)

    def step(vec):
        jac = -(A @ vec - diag * vec) / diag
        if damping != 1.0:
            jac = (1.0 - damping) * vec + damping * jac
        return jac

    ratios = []
    for _ in range(power_steps):
        new = step(v)
        new -= (steady @ new) * steady
        norm = np.linalg.norm(new)
        if norm == 0.0:
            return SpectralEstimate(0.0, power_steps, damping)
        ratios.append(norm)
        v = new / norm
    tail = np.array(ratios[-max(10, power_steps // 4):])
    return SpectralEstimate(
        subdominant_modulus=float(np.exp(np.mean(np.log(tail)))),
        power_steps=power_steps,
        damping=damping,
    )
