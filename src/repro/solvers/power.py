"""Power iteration on the uniformized stochastic matrix.

The paper's closing observation — the GPU steady-state machinery
"can be generalized to operation on stochastic matrices (Markov
models)" — corresponds to iterating ``x <- S x`` with
``S = I + A / Lambda`` (uniformization): ``S`` is a column-stochastic
matrix whose dominant eigenvector is the CME steady state.  Unlike the
Jacobi iteration, each step preserves the unit L1 norm exactly, so
renormalization is only needed against floating-point drift.
"""

from __future__ import annotations

import time

import numpy as np
import scipy.sparse as sp

from repro.errors import ValidationError
from repro.solvers.normalization import renormalize, uniform_probability
from repro.solvers.result import SolverResult, StopReason
from repro.solvers.stopping import StoppingCriterion
from repro.sparse.base import as_csr


class PowerIterationSolver:
    """Steady state via power iteration on the uniformized matrix.

    Parameters
    ----------
    A:
        The rate matrix (generator), anything convertible to CSR.
    uniformization_factor:
        ``Lambda = factor * max exit rate`` (> 1 guards aperiodicity).
    tol, max_iterations, check_interval, stagnation_tol:
        As in :class:`~repro.solvers.jacobi.JacobiSolver`; the residual
        is measured on the original generator ``A``.
    """

    def __init__(self, A, *, uniformization_factor: float = 1.05,
                 tol: float = 1e-8, max_iterations: int = 1_000_000,
                 check_interval: int = 100,
                 stagnation_tol: float | None = 1e-6):
        self.A = as_csr(A)
        if self.A.shape[0] != self.A.shape[1]:
            raise ValidationError("steady-state solve needs a square matrix")
        if uniformization_factor <= 1.0:
            raise ValidationError("uniformization_factor must exceed 1")
        self.n = self.A.shape[0]
        exit_rates = -self.A.diagonal()
        lam = float(exit_rates.max())
        if lam <= 0:
            raise ValidationError("matrix has no outgoing transitions")
        lam *= uniformization_factor
        self.S = as_csr(sp.eye(self.n, format="csr")
                        + self.A.multiply(1.0 / lam))
        self.tol = float(tol)
        self.max_iterations = int(max_iterations)
        self.check_interval = int(check_interval)
        self.stagnation_tol = stagnation_tol
        self.matrix_inf_norm = float(abs(self.A).sum(axis=1).max()) \
            if self.A.nnz else 0.0

    def solve(self, x0=None) -> SolverResult:
        """Iterate ``x <- S x`` from *x0* (uniform by default)."""
        x = (uniform_probability(self.n) if x0 is None
             else renormalize(np.asarray(x0, dtype=np.float64)))
        if x.shape != (self.n,):
            raise ValidationError(f"x0 must have length {self.n}")
        criterion = StoppingCriterion(
            self.matrix_inf_norm, tol=self.tol,
            max_iterations=self.max_iterations,
            stagnation_tol=self.stagnation_tol)
        history: list[tuple[int, float]] = []
        t0 = time.perf_counter()
        iteration = 0
        reason = StopReason.MAX_ITERATIONS
        residual = float("inf")
        while True:
            budget = min(self.check_interval,
                         self.max_iterations - iteration)
            for _ in range(budget):
                x = self.S @ x
                iteration += 1
            if not np.all(np.isfinite(x)):
                reason, residual = StopReason.DIVERGED, float("inf")
                break
            x = renormalize(x)
            stop, residual = criterion.check(iteration, self.A @ x, x)
            history.append((iteration, residual))
            if stop is not None:
                reason = stop
                break
            if iteration >= self.max_iterations:
                break
        runtime = time.perf_counter() - t0
        if reason is not StopReason.DIVERGED:
            x = renormalize(x)
        return SolverResult(x=x, iterations=iteration, residual=residual,
                            stop_reason=reason, residual_history=history,
                            runtime_s=runtime)
