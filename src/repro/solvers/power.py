"""Power iteration on the uniformized stochastic matrix.

The paper's closing observation — the GPU steady-state machinery
"can be generalized to operation on stochastic matrices (Markov
models)" — corresponds to iterating ``x <- S x`` with
``S = I + A / Lambda`` (uniformization): ``S`` is a column-stochastic
matrix whose dominant eigenvector is the CME steady state.  Unlike the
Jacobi iteration, each step preserves the unit L1 norm exactly, so
renormalization is only needed against floating-point drift (the
unified loop renormalizes at residual checks only —
``normalize_interval=None``).
"""

from __future__ import annotations

import warnings

import numpy as np
import scipy.sparse as sp

from repro.errors import ValidationError
from repro.solvers.base import IterativeSolverBase
from repro.sparse.base import as_csr


class PowerIterationSolver(IterativeSolverBase):
    """Steady state via power iteration on the uniformized matrix.

    Parameters
    ----------
    matrix:
        The rate matrix (generator), anything convertible to CSR.
        (The pre-1.1 keyword ``A`` still works but is deprecated.)
    uniformization_factor:
        ``Lambda = factor * max exit rate`` (> 1 guards aperiodicity).
    tol, max_iterations, check_interval, stagnation_tol:
        As in :class:`~repro.solvers.jacobi.JacobiSolver`; the residual
        is measured on the original generator.  ``solve(x0=None, *,
        time_budget_s=None, hooks=None)`` is the unified loop.
    """

    span_name = "power"

    def __init__(self, matrix=None, *, A=None,
                 uniformization_factor: float = 1.05,
                 tol: float = 1e-8, max_iterations: int = 1_000_000,
                 check_interval: int = 100,
                 stagnation_tol: float | None = 1e-6,
                 backend=None):
        self.backend = backend
        if A is not None:
            warnings.warn(
                "PowerIterationSolver(A=...) is deprecated; pass "
                "matrix=... (the unified SteadyStateSolver signature)",
                DeprecationWarning, stacklevel=2)
            if matrix is not None:
                raise ValidationError(
                    "pass either matrix or the deprecated A, not both")
            matrix = A
        if matrix is None:
            raise ValidationError("matrix is required")
        A_csr = as_csr(matrix)
        self._init_common(A_csr, tol=tol, max_iterations=max_iterations,
                          check_interval=check_interval,
                          normalize_interval=None,
                          stagnation_tol=stagnation_tol)
        if uniformization_factor <= 1.0:
            raise ValidationError("uniformization_factor must exceed 1")
        exit_rates = -self.A.diagonal()
        lam = float(exit_rates.max())
        if lam <= 0:
            raise ValidationError("matrix has no outgoing transitions")
        lam *= uniformization_factor
        self.S = as_csr(sp.eye(self.n, format="csr")
                        + self.A.multiply(1.0 / lam))

    def step_once(self, x: np.ndarray) -> np.ndarray:
        """One stochastic step ``x <- S x`` (norm-preserving)."""
        return self.S @ x
