"""Gauss-Seidel: the sequential foil to the paper's Jacobi choice.

Section IV motivates Jacobi by its "intrinsic level of parallelism":
every component of ``x^(k+1)`` depends only on ``x^(k)``.  Gauss-Seidel
uses the freshest values instead —

    (D + L) x^(k+1) = -U x^(k)

— which typically converges in fewer iterations (and, unlike plain
Jacobi, is immune to the bipartite-oscillation mode: the triangular
solve breaks the parity symmetry) but serializes each sweep along the
dependency chain, exactly what a GPU cannot exploit.  This module
exists for the comparison: iterations-to-converge vs.
parallelism-per-iteration.
"""

from __future__ import annotations

import time

import numpy as np
import scipy.sparse as sp
from scipy.sparse.linalg import spsolve_triangular

from repro.errors import SingularMatrixError, ValidationError
from repro.solvers.normalization import renormalize, uniform_probability
from repro.solvers.result import SolverResult, StopReason
from repro.solvers.stopping import StoppingCriterion
from repro.sparse.base import as_csr


class GaussSeidelSolver:
    """Steady-state Gauss-Seidel solver for ``A x = 0``.

    Parameters mirror :class:`~repro.solvers.jacobi.JacobiSolver`; each
    iteration is one forward triangular solve.
    """

    def __init__(self, matrix, *, tol: float = 1e-8,
                 max_iterations: int = 100_000,
                 check_interval: int = 50,
                 normalize_interval: int = 10,
                 stagnation_tol: float | None = 1e-6):
        self.A = as_csr(matrix)
        if self.A.shape[0] != self.A.shape[1]:
            raise ValidationError("steady-state solve needs a square matrix")
        if check_interval <= 0 or normalize_interval <= 0:
            raise ValidationError("intervals must be positive")
        diag = self.A.diagonal()
        if np.any(diag == 0.0):
            raise SingularMatrixError(
                "Gauss-Seidel needs a nonzero diagonal")
        self.n = self.A.shape[0]
        lower = sp.tril(self.A, k=0, format="csr")
        self.lower = as_csr(lower)
        self.upper = as_csr(sp.triu(self.A, k=1, format="csr"))
        self.tol = float(tol)
        self.max_iterations = int(max_iterations)
        self.check_interval = int(check_interval)
        self.normalize_interval = int(normalize_interval)
        self.stagnation_tol = stagnation_tol
        self.matrix_inf_norm = float(abs(self.A).sum(axis=1).max()) \
            if self.A.nnz else 0.0

    def step_once(self, x: np.ndarray) -> np.ndarray:
        """One sweep: solve ``(D + L) x' = -U x``."""
        rhs = -(self.upper @ x)
        return spsolve_triangular(self.lower, rhs, lower=True)

    def solve(self, x0=None) -> SolverResult:
        """Iterate from *x0* (uniform by default) until the criterion fires."""
        x = (uniform_probability(self.n) if x0 is None
             else renormalize(np.asarray(x0, dtype=np.float64)))
        if x.shape != (self.n,):
            raise ValidationError(f"x0 must have length {self.n}")
        criterion = StoppingCriterion(
            self.matrix_inf_norm, tol=self.tol,
            max_iterations=self.max_iterations,
            stagnation_tol=self.stagnation_tol)
        history: list[tuple[int, float]] = []
        t0 = time.perf_counter()
        iteration = 0
        reason = StopReason.MAX_ITERATIONS
        residual = float("inf")
        while True:
            budget = min(self.check_interval,
                         self.max_iterations - iteration)
            for _ in range(budget):
                x = self.step_once(x)
                iteration += 1
                if iteration % self.normalize_interval == 0:
                    x = renormalize(x)
            if not np.all(np.isfinite(x)):
                reason, residual = StopReason.DIVERGED, float("inf")
                break
            x = renormalize(x)
            stop, residual = criterion.check(iteration, self.A @ x, x)
            history.append((iteration, residual))
            if stop is not None:
                reason = stop
                break
            if iteration >= self.max_iterations:
                break
        runtime = time.perf_counter() - t0
        if reason is not StopReason.DIVERGED:
            x = renormalize(x)
        return SolverResult(x=x, iterations=iteration, residual=residual,
                            stop_reason=reason, residual_history=history,
                            runtime_s=runtime)
