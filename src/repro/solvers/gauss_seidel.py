"""Gauss-Seidel: the sequential foil to the paper's Jacobi choice.

Section IV motivates Jacobi by its "intrinsic level of parallelism":
every component of ``x^(k+1)`` depends only on ``x^(k)``.  Gauss-Seidel
uses the freshest values instead —

    (D + L) x^(k+1) = -U x^(k)

— which typically converges in fewer iterations (and, unlike plain
Jacobi, is immune to the bipartite-oscillation mode: the triangular
solve breaks the parity symmetry) but serializes each sweep along the
dependency chain, exactly what a GPU cannot exploit.  This module
exists for the comparison: iterations-to-converge vs.
parallelism-per-iteration.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp
from scipy.sparse.linalg import spsolve_triangular

from repro.errors import SingularSystemError
from repro.solvers.base import IterativeSolverBase
from repro.sparse.base import as_csr


class GaussSeidelSolver(IterativeSolverBase):
    """Steady-state Gauss-Seidel solver for ``A x = 0``.

    Parameters mirror :class:`~repro.solvers.jacobi.JacobiSolver`; each
    iteration is one forward triangular solve.  ``solve(x0=None, *,
    time_budget_s=None, hooks=None)`` is the unified loop from
    :class:`~repro.solvers.base.IterativeSolverBase`.
    """

    span_name = "gauss_seidel"

    def __init__(self, matrix, *, tol: float = 1e-8,
                 max_iterations: int = 100_000,
                 check_interval: int = 50,
                 normalize_interval: int = 10,
                 stagnation_tol: float | None = 1e-6,
                 backend=None):
        self.backend = backend
        A = as_csr(matrix)
        self._init_common(A, tol=tol, max_iterations=max_iterations,
                          check_interval=check_interval,
                          normalize_interval=normalize_interval,
                          stagnation_tol=stagnation_tol)
        diag = self.A.diagonal()
        zero_rows = np.flatnonzero(diag == 0.0)
        if zero_rows.size:
            raise SingularSystemError(
                "Gauss-Seidel needs a nonzero diagonal "
                f"(zero at rows {zero_rows[:5].tolist()})",
                rows=zero_rows[:5].tolist())
        self.lower = as_csr(sp.tril(self.A, k=0, format="csr"))
        self.upper = as_csr(sp.triu(self.A, k=1, format="csr"))

    def step_once(self, x: np.ndarray) -> np.ndarray:
        """One sweep: solve ``(D + L) x' = -U x``."""
        rhs = -(self.upper @ x)
        return spsolve_triangular(self.lower, rhs, lower=True)
