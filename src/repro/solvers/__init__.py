"""Steady-state solvers (Section IV).

* :class:`JacobiSolver` — the paper's method: the component-wise Jacobi
  iteration ``x_i <- -(1/a_ii) sum_{j != i} a_ij x_j`` with periodic
  probability renormalization, the normalized infinity-norm residual
  test, a stagnation test, and an iteration cap.
* :class:`PowerIterationSolver` — power iteration on the uniformized
  stochastic matrix (the Markov-model generalization of Section VIII).
* :class:`GaussSeidelSolver` — the sequential foil: fewer iterations,
  no parallelism per iteration (the trade-off Section IV weighs).
* :class:`BatchedJacobiSolver` — K steady states in lockstep, one
  multi-RHS product per sweep (shared-matrix SpMM or a stacked block
  diagonal), with per-column stopping and early retirement.  Not in the
  registry: ``solve_many`` has a different signature than the unified
  ``solve``.
* :func:`gmres_steady_state` — a GMRES attempt on the (ill-conditioned,
  singular) steady-state system, reproducing the paper's observation
  that Krylov methods fail to converge here.
* :class:`~repro.resilience.resilient.ResilientSolver` — the
  self-healing fallback chain (jacobi → gauss-seidel → gmres),
  registered as ``"resilient"``.
* :class:`~repro.distributed.sharded.ShardedJacobiSolver` — the
  domain-decomposed Jacobi iteration across a pool of worker
  processes with shared-memory halo exchange (barrier or chaotic
  sync), registered as ``"sharded"``.  See DESIGN.md §14.
"""

from repro.solvers.result import SolverResult, StopReason
from repro.solvers.stopping import StoppingCriterion
from repro.solvers.normalization import renormalize
from repro.solvers.base import IterativeSolverBase, SteadyStateSolver
from repro.solvers.jacobi import JacobiSolver
from repro.solvers.batched import BatchedJacobiSolver
from repro.solvers.gauss_seidel import GaussSeidelSolver
from repro.solvers.power import PowerIterationSolver
from repro.solvers.gmres import gmres_steady_state
from repro.solvers.remap import remap_iterate
from repro.solvers.spectral import SpectralEstimate, estimate_subdominant

#: Method-name registry used by :func:`repro.solve_steady_state`.
SOLVER_REGISTRY = {
    "jacobi": JacobiSolver,
    "gauss-seidel": GaussSeidelSolver,
    "power": PowerIterationSolver,
}

# Imported after the registry exists: the resilient solver's module
# resolves its fallback chain through SOLVER_REGISTRY at solve time,
# and the sharded solver imports the base/stopping machinery above.
from repro.resilience.resilient import ResilientSolver  # noqa: E402
from repro.distributed.sharded import ShardedJacobiSolver  # noqa: E402

SOLVER_REGISTRY["resilient"] = ResilientSolver
SOLVER_REGISTRY["sharded"] = ShardedJacobiSolver

__all__ = [
    "ResilientSolver",
    "ShardedJacobiSolver",
    "SolverResult",
    "StopReason",
    "StoppingCriterion",
    "SteadyStateSolver",
    "IterativeSolverBase",
    "SOLVER_REGISTRY",
    "renormalize",
    "JacobiSolver",
    "BatchedJacobiSolver",
    "GaussSeidelSolver",
    "PowerIterationSolver",
    "gmres_steady_state",
    "remap_iterate",
    "SpectralEstimate",
    "estimate_subdominant",
]
