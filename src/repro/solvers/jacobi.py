"""The Jacobi steady-state solver (Section IV).

For ``A x = 0`` the component-wise iteration is::

    x_i^(k+1) = -(1/a_ii) * sum_{j != i} a_ij x_j^(k)

i.e. one off-diagonal SpMV plus a division — which is why the paper
builds the solver directly on its SpMV formats.  Because the steady
state is the eigenvector of the iteration matrix ``M = I - D^{-1} A``
at eigenvalue exactly 1 (the spectral radius for an irreducible
generator), the iterate's scale drifts; it is renormalized to a
probability vector every ``normalize_interval`` steps, and the
(expensive) residual test runs only every ``check_interval`` steps —
both as prescribed in Section IV.

Two step backends:

``"fast"``
    A cached CSR product (``x' = -(A x - d∘x) / d``) — numerically
    identical, used for long solves on this host.
``"format"``
    The format object's own ``jacobi_step`` — the exact arithmetic of
    the corresponding fused GPU/CPU kernel (ELL+DIA, warped ELL+DIA,
    CSR+DIA); tests cross-check the two backends.
"""

from __future__ import annotations

import numpy as np

from repro import backends
from repro.errors import SingularSystemError, ValidationError
from repro.solvers.base import IterativeSolverBase
from repro.sparse.base import SparseFormat, as_csr

STEP_BACKENDS = ("fast", "format")


class JacobiSolver(IterativeSolverBase):
    """Steady-state Jacobi solver over any Jacobi-capable format.

    Parameters
    ----------
    matrix:
        Either a device format with a ``jacobi_step`` method
        (:class:`~repro.sparse.ell_dia.ELLDIAMatrix`,
        :class:`~repro.sparse.warped_ell.WarpedELLMatrix` with
        ``separate_diagonal=True``, :class:`~repro.sparse.csr.CSRMatrix`,
        :class:`~repro.cpu.baseline.CSRDIABaseline`) or anything
        convertible to SciPy CSR (used directly with the fast backend).
    tol, max_iterations:
        The paper's ``epsilon = 1e-8`` and ``10^6`` cap (Section VII-D).
    check_interval:
        Iterations between residual evaluations.
    normalize_interval:
        Iterations between probability renormalizations.
    stagnation_tol:
        Stagnation threshold (``None`` disables).
    step:
        ``"fast"`` or ``"format"`` (see module docstring).
    damping:
        Weighted-Jacobi factor ``omega`` in (0, 1]: the update becomes
        ``x <- (1 - omega) x + omega J(x)``.  ``1.0`` is the paper's
        plain iteration; any ``omega < 1`` pulls every non-unit
        eigenvalue of the iteration matrix strictly inside the unit
        circle, restoring convergence for operators with rotating
        spectra (oscillatory networks on their limit cycle).
    backend:
        Kernel backend for the fast step's fused sweep (a name, a
        :class:`~repro.backends.protocol.KernelBackend` instance, or
        ``None`` for the ambient selection — see
        :func:`repro.backends.resolve`).  A non-reference backend runs
        the fused ``jacobi_sweep`` primitive; the reference keeps the
        historical inline NumPy step.  Either way the iterates are
        bitwise identical.
    """

    span_name = "jacobi"

    def __init__(self, matrix, *, tol: float = 1e-8,
                 max_iterations: int = 1_000_000,
                 check_interval: int = 100,
                 normalize_interval: int = 10,
                 stagnation_tol: float | None = 1e-6,
                 step: str = "fast",
                 damping: float = 1.0,
                 backend=None):
        if step not in STEP_BACKENDS:
            raise ValidationError(
                f"unknown step backend {step!r}; expected {STEP_BACKENDS}")
        if normalize_interval is None:
            raise ValidationError("intervals must be positive")
        if not (0.0 < damping <= 1.0):
            raise ValidationError(f"damping must be in (0, 1], got {damping}")
        self.damping = float(damping)
        self.format = matrix if hasattr(matrix, "jacobi_step") else None
        if step == "format" and self.format is None:
            raise ValidationError(
                f"{type(matrix).__name__} has no jacobi_step; "
                f"use step='fast' or a Jacobi-capable format")
        if isinstance(matrix, SparseFormat) or hasattr(matrix, "to_scipy"):
            A = matrix.to_scipy()
        elif hasattr(matrix, "csr") and hasattr(matrix, "dia"):
            # CSRDIABaseline-style split object.
            A = as_csr(matrix.csr.to_scipy() + matrix.dia.to_scipy())
        else:
            A = as_csr(matrix)
        self._init_common(A, tol=tol, max_iterations=max_iterations,
                          check_interval=check_interval,
                          normalize_interval=normalize_interval,
                          stagnation_tol=stagnation_tol)
        # The diagonal comes from the shared derived-quantity cache, so
        # repeated solver constructions on one matrix skip re-extraction.
        self.diagonal = self._derived["diagonal"]
        zero_rows = np.flatnonzero(self.diagonal == 0.0)
        if zero_rows.size:
            raise SingularSystemError(
                "Jacobi iteration needs a nonzero diagonal "
                f"(zero at rows {zero_rows[:5].tolist()})",
                rows=zero_rows[:5].tolist())
        self.step_backend = step
        self.backend = backend
        if backend is not None:
            backends.resolve(backend)   # fail fast on unknown names
        # The fast backend's product is the CSR ``A @ x`` the residual
        # check also computes, so the check's product can seed the next
        # step bit-for-bit.  The format backend's own traversal order
        # differs at the bit level, so it keeps the plain loop.
        self.supports_product_step = step == "fast"

    # -- steps -----------------------------------------------------------------

    def _select_backend(self):
        """Resolve the kernel backend once per solve (see base class)."""
        if self.step_backend != "fast":
            # The format step keeps the format's own kernel; the solve
            # still resolves a backend for the residual primitive.
            return super()._select_backend()
        return backends.serving("", "jacobi_sweep", self.backend)

    def _fast_step(self, x: np.ndarray) -> np.ndarray:
        y = self.A @ x
        return -(y - self.diagonal * x) / self.diagonal

    def _format_step(self, x: np.ndarray) -> np.ndarray:
        return self.format.jacobi_step(x)

    def step_once(self, x: np.ndarray) -> np.ndarray:
        """One (possibly damped) Jacobi iteration."""
        be = self._active_backend
        if (self.step_backend == "fast" and be is not None
                and not be.is_reference):
            # The fused sweep folds the product, update and damping into
            # one kernel call; its iterates match the inline path bitwise.
            return be.jacobi_sweep(self.A, self.diagonal, x,
                                   damping=self.damping)
        new = (self._format_step(x) if self.step_backend == "format"
               else self._fast_step(x))
        if self.damping != 1.0:
            return (1.0 - self.damping) * x + self.damping * new
        return new

    def step_from_product(self, x: np.ndarray,
                          y: np.ndarray) -> np.ndarray:
        """One fast-backend iteration from an existing ``y = A @ x``."""
        new = -(y - self.diagonal * x) / self.diagonal
        if self.damping != 1.0:
            return (1.0 - self.damping) * x + self.damping * new
        return new

    # ``solve(x0=None, *, time_budget_s=None, hooks=None)`` comes from
    # IterativeSolverBase — the unified Section IV loop.
