"""The Jacobi steady-state solver (Section IV).

For ``A x = 0`` the component-wise iteration is::

    x_i^(k+1) = -(1/a_ii) * sum_{j != i} a_ij x_j^(k)

i.e. one off-diagonal SpMV plus a division — which is why the paper
builds the solver directly on its SpMV formats.  Because the steady
state is the eigenvector of the iteration matrix ``M = I - D^{-1} A``
at eigenvalue exactly 1 (the spectral radius for an irreducible
generator), the iterate's scale drifts; it is renormalized to a
probability vector every ``normalize_interval`` steps, and the
(expensive) residual test runs only every ``check_interval`` steps —
both as prescribed in Section IV.

Two step backends:

``"fast"``
    A cached CSR product (``x' = -(A x - d∘x) / d``) — numerically
    identical, used for long solves on this host.
``"format"``
    The format object's own ``jacobi_step`` — the exact arithmetic of
    the corresponding fused GPU/CPU kernel (ELL+DIA, warped ELL+DIA,
    CSR+DIA); tests cross-check the two backends.
"""

from __future__ import annotations

import time

import numpy as np

from repro.errors import SingularMatrixError, ValidationError
from repro.solvers.normalization import renormalize, uniform_probability
from repro.solvers.result import SolverResult, StopReason
from repro.solvers.stopping import StoppingCriterion
from repro.sparse.base import SparseFormat, as_csr

STEP_BACKENDS = ("fast", "format")


class JacobiSolver:
    """Steady-state Jacobi solver over any Jacobi-capable format.

    Parameters
    ----------
    matrix:
        Either a device format with a ``jacobi_step`` method
        (:class:`~repro.sparse.ell_dia.ELLDIAMatrix`,
        :class:`~repro.sparse.warped_ell.WarpedELLMatrix` with
        ``separate_diagonal=True``, :class:`~repro.sparse.csr.CSRMatrix`,
        :class:`~repro.cpu.baseline.CSRDIABaseline`) or anything
        convertible to SciPy CSR (used directly with the fast backend).
    tol, max_iterations:
        The paper's ``epsilon = 1e-8`` and ``10^6`` cap (Section VII-D).
    check_interval:
        Iterations between residual evaluations.
    normalize_interval:
        Iterations between probability renormalizations.
    stagnation_tol:
        Stagnation threshold (``None`` disables).
    step:
        ``"fast"`` or ``"format"`` (see module docstring).
    damping:
        Weighted-Jacobi factor ``omega`` in (0, 1]: the update becomes
        ``x <- (1 - omega) x + omega J(x)``.  ``1.0`` is the paper's
        plain iteration; any ``omega < 1`` pulls every non-unit
        eigenvalue of the iteration matrix strictly inside the unit
        circle, restoring convergence for operators with rotating
        spectra (oscillatory networks on their limit cycle).
    """

    def __init__(self, matrix, *, tol: float = 1e-8,
                 max_iterations: int = 1_000_000,
                 check_interval: int = 100,
                 normalize_interval: int = 10,
                 stagnation_tol: float | None = 1e-6,
                 step: str = "fast",
                 damping: float = 1.0):
        if step not in STEP_BACKENDS:
            raise ValidationError(
                f"unknown step backend {step!r}; expected {STEP_BACKENDS}")
        if check_interval <= 0 or normalize_interval <= 0:
            raise ValidationError("intervals must be positive")
        if not (0.0 < damping <= 1.0):
            raise ValidationError(f"damping must be in (0, 1], got {damping}")
        self.damping = float(damping)
        self.format = matrix if hasattr(matrix, "jacobi_step") else None
        if step == "format" and self.format is None:
            raise ValidationError(
                f"{type(matrix).__name__} has no jacobi_step; "
                f"use step='fast' or a Jacobi-capable format")
        if isinstance(matrix, SparseFormat) or hasattr(matrix, "to_scipy"):
            self.A = matrix.to_scipy()
        elif hasattr(matrix, "csr") and hasattr(matrix, "dia"):
            # CSRDIABaseline-style split object.
            self.A = as_csr(matrix.csr.to_scipy() + matrix.dia.to_scipy())
        else:
            self.A = as_csr(matrix)
        if self.A.shape[0] != self.A.shape[1]:
            raise ValidationError("steady-state solve needs a square matrix")
        self.n = self.A.shape[0]
        self.diagonal = self.A.diagonal().astype(np.float64)
        if np.any(self.diagonal == 0.0):
            raise SingularMatrixError(
                "Jacobi iteration needs a nonzero diagonal")
        self.tol = float(tol)
        self.max_iterations = int(max_iterations)
        self.check_interval = int(check_interval)
        self.normalize_interval = int(normalize_interval)
        self.stagnation_tol = stagnation_tol
        self.step_backend = step
        self.matrix_inf_norm = float(abs(self.A).sum(axis=1).max()) \
            if self.A.nnz else 0.0

    # -- steps -----------------------------------------------------------------

    def _fast_step(self, x: np.ndarray) -> np.ndarray:
        y = self.A @ x
        return -(y - self.diagonal * x) / self.diagonal

    def _format_step(self, x: np.ndarray) -> np.ndarray:
        return self.format.jacobi_step(x)

    def step_once(self, x: np.ndarray) -> np.ndarray:
        """One (possibly damped) Jacobi iteration."""
        new = (self._format_step(x) if self.step_backend == "format"
               else self._fast_step(x))
        if self.damping != 1.0:
            return (1.0 - self.damping) * x + self.damping * new
        return new

    # -- solve -----------------------------------------------------------------

    def solve(self, x0=None, *, time_budget_s: float | None = None) -> SolverResult:
        """Iterate from *x0* (uniform by default) until the criterion fires.

        Parameters
        ----------
        x0:
            Optional initial guess (e.g. a warm start from a nearby rate
            condition's steady state).  It must have length ``n``, be
            finite and non-negative, and carry positive mass; it is
            renormalized onto the probability simplex before iterating.
        time_budget_s:
            Optional wall-clock budget.  Checked at every residual
            check; on expiry the solve returns with
            :attr:`StopReason.TIMED_OUT` instead of raising, so callers
            can inspect the partial iterate.
        """
        if x0 is None:
            x = uniform_probability(self.n)
        else:
            x = np.asarray(x0, dtype=np.float64)
            if x.shape != (self.n,):
                raise ValidationError(
                    f"x0 must have length {self.n}, got {x.shape}")
            if not np.all(np.isfinite(x)):
                raise ValidationError("x0 contains non-finite entries")
            if np.any(x < 0.0):
                raise ValidationError("x0 contains negative entries")
            x = renormalize(x)
        if time_budget_s is not None and time_budget_s <= 0:
            raise ValidationError(
                f"time_budget_s must be positive, got {time_budget_s}")

        criterion = StoppingCriterion(
            self.matrix_inf_norm, tol=self.tol,
            max_iterations=self.max_iterations,
            stagnation_tol=self.stagnation_tol)
        history: list[tuple[int, float]] = []
        t0 = time.perf_counter()
        iteration = 0
        reason = StopReason.MAX_ITERATIONS
        residual = float("inf")
        if x0 is not None:
            # A warm start may already satisfy the tolerance (e.g. a
            # cached neighbor with identical dynamics); charge one
            # residual evaluation instead of a full check interval.
            residual = criterion.normalized_residual(self.A @ x, x)
            if residual <= self.tol:
                history.append((0, residual))
                return SolverResult(
                    x=renormalize(x), iterations=0, residual=residual,
                    stop_reason=StopReason.CONVERGED,
                    residual_history=history,
                    runtime_s=time.perf_counter() - t0)
        while True:
            budget = min(self.check_interval,
                         self.max_iterations - iteration)
            for _ in range(budget):
                x = self.step_once(x)
                iteration += 1
                if iteration % self.normalize_interval == 0:
                    x = renormalize(x)
            if not np.all(np.isfinite(x)):
                reason, residual = StopReason.DIVERGED, float("inf")
                break
            x = renormalize(x)
            stop, residual = criterion.check(iteration, self.A @ x, x)
            history.append((iteration, residual))
            if stop is not None:
                reason = stop
                break
            if (time_budget_s is not None
                    and time.perf_counter() - t0 >= time_budget_s):
                reason = StopReason.TIMED_OUT
                break
            if iteration >= self.max_iterations:
                reason = StopReason.MAX_ITERATIONS
                break
        runtime = time.perf_counter() - t0
        if reason is not StopReason.DIVERGED:
            x = renormalize(x)
        return SolverResult(x=x, iterations=iteration, residual=residual,
                            stop_reason=reason, residual_history=history,
                            runtime_s=runtime)
