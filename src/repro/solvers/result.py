"""Solver outcome types."""

from __future__ import annotations

import enum
import warnings
from dataclasses import dataclass, field

import numpy as np


class StopReason(enum.Enum):
    """Why an iterative solver stopped."""

    #: The normalized residual dropped below the tolerance.
    CONVERGED = "converged"
    #: The residual stopped decreasing (paper's stagnation test).
    STAGNATED = "stagnated"
    #: The iteration cap was reached (phage-lambda-2 in Table IV).
    MAX_ITERATIONS = "max-iterations"
    #: The iterate became non-finite (overflow/NaN).
    DIVERGED = "diverged"
    #: A wall-clock budget expired before any other criterion fired
    #: (used by the serving layer's per-job timeouts).
    TIMED_OUT = "timed-out"


@dataclass
class SolverResult:
    """Outcome of a steady-state solve.

    Attributes
    ----------
    x:
        Final iterate as a probability vector (non-negative, sums to 1).
    iterations:
        Iterations performed.
    residual:
        Final *normalized* residual
        ``||A x||_inf / (||A||_inf ||x||_inf)`` — the paper's metric.
    stop_reason:
        Why the iteration ended.
    residual_history:
        ``(iteration, residual)`` samples taken at each check.
    runtime_s:
        Wall-clock solve time on this host.
    landscape:
        The :class:`~repro.cme.landscape.ProbabilityLandscape` over the
        enumerated state space, when the solve started from a
        :class:`~repro.cme.network.ReactionNetwork` (the
        :func:`repro.solve_steady_state` front door fills this in);
        ``None`` for raw-matrix solves.
    recovery:
        A :class:`~repro.resilience.guardrails.RecoveryReport`
        describing any checkpoints, rollbacks, injected faults and
        method fallbacks taken during the solve; ``None`` when
        guardrails were disabled and nothing fired.
    """

    x: np.ndarray
    iterations: int
    residual: float
    stop_reason: StopReason
    residual_history: list = field(default_factory=list)
    runtime_s: float = 0.0
    landscape: object | None = None
    recovery: object | None = None

    @property
    def converged(self) -> bool:
        """True when the tolerance was reached."""
        return self.stop_reason is StopReason.CONVERGED

    # -- legacy (landscape, result) tuple shim -------------------------------

    def _legacy_pair(self) -> tuple:
        warnings.warn(
            "unpacking solve_steady_state's return as (landscape, result) "
            "is deprecated; it now returns a single SolverResult — use "
            "result.landscape and the result itself",
            DeprecationWarning, stacklevel=3)
        return (self.landscape, self)

    def __iter__(self):
        return iter(self._legacy_pair())

    def __getitem__(self, index):
        return self._legacy_pair()[index]

    def __len__(self) -> int:
        return 2

    def __repr__(self) -> str:  # pragma: no cover - debug convenience
        return (f"SolverResult({self.stop_reason.value}, "
                f"iterations={self.iterations}, residual={self.residual:.3e})")
