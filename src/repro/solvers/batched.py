"""Blocked multi-RHS Jacobi: K steady states per sweep, one product each.

The paper's motivating workload (Section I) is *many* steady-state
solves — a parameter sweep or a queue of near-identical requests — and
each plain solve spends its time in memory-bound SpMV sweeps.  Batching
K iterates into the columns of an ``(n, K)`` block turns K SpMVs into
one SpMM per sweep: the matrix is streamed from memory once per sweep
instead of K times, which is exactly how multi-RHS GPU kernels amortize
bandwidth.  On the CPU reference the same restructuring amortizes the
per-product traversal and loop overhead.

Two batching modes:

*shared* (the constructor)
    One generator, K right-hand iterates — e.g. coalesced service
    requests on the same condition with different tolerances or warm
    starts.  The sweep is a true SpMM ``A @ X``.

*stacked* (:meth:`BatchedJacobiSolver.stacked`)
    K same-shaped generators (a sweep's rate conditions over one state
    space), mounted on the block diagonal of one large CSR; the sweep
    is a single SpMV on the stacked system.  When a column retires the
    stack is rebuilt without it (at most K rebuilds per solve).

Columns run in lockstep but stop independently: each has its own
:class:`~repro.solvers.stopping.StoppingCriterion` (and optionally its
own tolerance), and a column that converges, stagnates or diverges is
*retired* — its result is recorded and the block is compacted so later
sweeps do no work for it.  The arithmetic per column is identical to
:class:`~repro.solvers.jacobi.JacobiSolver`'s fast backend, so a batched
solve reproduces the serial answers.

Note: the batched loop is fail-fast (no guardrail rollbacks) — a
non-finite column simply retires as DIVERGED.
"""

from __future__ import annotations

import time

import numpy as np
import scipy.sparse as sp

from repro import backends
from repro.errors import (
    CheckpointError,
    IterateSizeError,
    SingularSystemError,
    ValidationError,
)
from repro.solvers.base import matrix_derived
from repro.solvers.normalization import renormalize, uniform_probability
from repro.solvers.result import SolverResult, StopReason
from repro.solvers.stopping import StoppingCriterion
from repro.sparse.base import SparseFormat, as_csr
from repro.telemetry import tracing


def _to_csr(matrix):
    if isinstance(matrix, SparseFormat) or hasattr(matrix, "to_scipy"):
        return as_csr(matrix.to_scipy())
    return as_csr(matrix)


def _check_system(A) -> dict:
    """Derived quantities plus the singularity checks Jacobi needs."""
    derived = matrix_derived(A)
    if derived["zero_rows"].size:
        rows = derived["zero_rows"][:5].tolist()
        raise SingularSystemError(
            f"generator has all-zero row(s) {rows}: isolated states make "
            f"the steady state non-unique", rows=rows)
    zero_diag = np.flatnonzero(derived["diagonal"] == 0.0)
    if zero_diag.size:
        raise SingularSystemError(
            "Jacobi iteration needs a nonzero diagonal "
            f"(zero at rows {zero_diag[:5].tolist()})",
            rows=zero_diag[:5].tolist())
    return derived


class BatchedJacobiSolver:
    """Lockstep Jacobi over the columns of one ``(n, K)`` block.

    Parameters mirror :class:`~repro.solvers.jacobi.JacobiSolver` (fast
    backend only); ``tol`` is the default per-column tolerance, which
    :meth:`solve_many` can override per column.
    """

    span_name = "jacobi.batched"

    def __init__(self, matrix, *, tol: float = 1e-8,
                 max_iterations: int = 1_000_000,
                 check_interval: int = 100,
                 normalize_interval: int = 10,
                 stagnation_tol: float | None = 1e-6,
                 damping: float = 1.0,
                 backend=None):
        self._init_params(tol=tol, max_iterations=max_iterations,
                          check_interval=check_interval,
                          normalize_interval=normalize_interval,
                          stagnation_tol=stagnation_tol, damping=damping,
                          backend=backend)
        A = _to_csr(matrix)
        if A.shape[0] != A.shape[1]:
            raise ValidationError("steady-state solve needs a square matrix")
        derived = _check_system(A)
        self.mode = "shared"
        self.A = A
        self.n = A.shape[0]
        self._systems = None
        self._diagonal = derived["diagonal"]
        self._inf_norms = None
        self.matrix_inf_norm = derived["inf_norm"]

    @classmethod
    def stacked(cls, matrices, **kwargs) -> "BatchedJacobiSolver":
        """K same-shaped generators on one block diagonal (see module doc)."""
        systems = [_to_csr(m) for m in matrices]
        if not systems:
            raise ValidationError("stacked batch needs at least one matrix")
        shape = systems[0].shape
        if shape[0] != shape[1]:
            raise ValidationError("steady-state solve needs a square matrix")
        for A in systems[1:]:
            if A.shape != shape:
                raise ValidationError(
                    f"stacked systems must share one shape; got {A.shape} "
                    f"vs {shape} (sweep a single state space)")
        self = cls.__new__(cls)
        self._init_params(**{**dict(tol=1e-8, max_iterations=1_000_000,
                                    check_interval=100, normalize_interval=10,
                                    stagnation_tol=1e-6, damping=1.0,
                                    backend=None),
                             **kwargs})
        derived = [_check_system(A) for A in systems]
        self.mode = "stacked"
        self.A = None
        self.n = shape[0]
        self._systems = systems
        self._diagonal = np.stack([d["diagonal"] for d in derived], axis=1)
        self._inf_norms = [d["inf_norm"] for d in derived]
        self.matrix_inf_norm = max(self._inf_norms)
        return self

    def _init_params(self, *, tol, max_iterations, check_interval,
                     normalize_interval, stagnation_tol, damping,
                     backend=None) -> None:
        if check_interval <= 0 or (normalize_interval is not None
                                   and normalize_interval <= 0):
            raise ValidationError("intervals must be positive")
        if not (0.0 < damping <= 1.0):
            raise ValidationError(f"damping must be in (0, 1], got {damping}")
        self.backend = backend
        if backend is not None:
            backends.resolve(backend)   # fail fast on unknown names
        self.tol = float(tol)
        self.max_iterations = int(max_iterations)
        self.check_interval = int(check_interval)
        self.normalize_interval = (None if normalize_interval is None
                                   else int(normalize_interval))
        self.stagnation_tol = stagnation_tol
        self.damping = float(damping)
        #: Multi-RHS products performed by the last :meth:`solve_many`
        #: (one per sweep plus one per residual check batch, minus the
        #: checks whose product seeded the following sweep).
        self.products = 0
        self.sweeps = 0

    # -- the blocked product -------------------------------------------------

    def _stack_for(self, active: list[int]) -> sp.csr_matrix:
        return sp.csr_matrix(sp.block_diag(
            [self._systems[j] for j in active], format="csr"))

    def _product(self, X: np.ndarray, stack) -> np.ndarray:
        """The fused product in the mode's native block layout.

        Shared mode holds the block column-per-iterate (``(n, k)``, the
        SpMM orientation scipy's ``csr_matvecs`` wants); stacked mode
        holds it iterate-per-row (``(k, n)``), so raveling the block IS
        the stacked vector and both the product and its reshape are
        copy-free views.
        """
        self.products += 1
        if self.mode == "shared":
            return self.A @ X
        return (stack @ X.ravel()).reshape(X.shape)

    # -- solve ---------------------------------------------------------------

    def _initial_block(self, x0s, k: int | None):
        if x0s is None:
            if k is None:
                raise ValidationError(
                    "solve_many needs x0s or an explicit column count k")
            cols = [None] * int(k)
        else:
            cols = list(x0s)
            if k is not None and k != len(cols):
                raise ValidationError(
                    f"k={k} disagrees with len(x0s)={len(cols)}")
        if self.mode == "stacked" and len(cols) != len(self._systems):
            raise ValidationError(
                f"stacked batch has {len(self._systems)} systems but "
                f"{len(cols)} columns were requested")
        X = np.empty((self.n, len(cols)), dtype=np.float64)
        warm = np.zeros(len(cols), dtype=bool)
        for j, col in enumerate(cols):
            if col is None:
                X[:, j] = uniform_probability(self.n)
                continue
            x = np.asarray(col, dtype=np.float64)
            if x.shape != (self.n,):
                raise IterateSizeError(self.n, x.shape, name=f"x0s[{j}]")
            if not np.all(np.isfinite(x)):
                raise ValidationError(f"x0s[{j}] contains non-finite entries")
            if np.any(x < 0.0):
                raise ValidationError(f"x0s[{j}] contains negative entries")
            X[:, j] = renormalize(x)
            warm[j] = True
        return X, warm

    def solve_many(self, x0s=None, *, k: int | None = None,
                   tols=None,
                   time_budget_s: float | None = None,
                   checkpointer=None) -> list[SolverResult]:
        """Solve all K columns; returns results in input order.

        Parameters
        ----------
        x0s:
            Optional initial iterates, one per column (``None`` entries
            start uniform).  A warm column already within its tolerance
            retires immediately with ``iterations=0``.
        k:
            Column count when ``x0s`` is omitted (shared mode only;
            stacked mode infers K from its systems).
        tols:
            Optional per-column tolerances overriding the constructor's
            ``tol`` — the one loop parameter that may vary per column.
        time_budget_s:
            Wall-clock budget for the whole batch; on expiry every
            still-active column returns ``TIMED_OUT``.
        checkpointer:
            Optional :class:`~repro.durability.Checkpointer` writing
            durable snapshots (kind ``"batched"``) at residual-check
            boundaries: the whole block — retired columns' final
            answers plus the live iterates — with per-column histories,
            criterion states and retirement records, so a resumed batch
            continues with the same retirements and iterates.
        """
        if x0s is None and k is None and self.mode == "stacked":
            k = len(self._systems)
        X, warm = self._initial_block(x0s, k)
        total = X.shape[1]
        if tols is not None and len(tols) != total:
            raise ValidationError(
                f"tols must have one entry per column ({total}), "
                f"got {len(tols)}")
        if time_budget_s is not None and time_budget_s <= 0:
            raise ValidationError(
                f"time_budget_s must be positive, got {time_budget_s}")
        self.products = 0
        self.sweeps = 0
        results: list[SolverResult | None] = [None] * total
        if total == 0:
            return []

        def inf_norm(j: int) -> float:
            return (self.matrix_inf_norm if self._inf_norms is None
                    else self._inf_norms[j])

        # Kernel backend for the fused sweep (resolved once per solve so
        # ambient use()/REPRO_BACKEND selections are honored).  The
        # reference keeps the historical in-place ufunc chain; a JIT
        # backend folds product + update + damping into one kernel call
        # with bitwise-identical iterates.
        be = backends.serving("", "jacobi_sweep", self.backend)
        fused = not be.is_reference
        # Optional backend capability: one fused kernel call sweeping
        # every stacked system at once when they share a sparsity
        # pattern.  Discovered by name and confirmed up front via the
        # backend's ``can_stack`` probe, because the fused kernels want
        # the system-interleaved block layout chosen below — deciding
        # here keeps the layout fixed for the whole solve.
        sweep_many = getattr(be, "jacobi_sweep_many", None) if fused else None
        if sweep_many is not None and self.mode == "stacked":
            probe = getattr(be, "can_stack", None)
            if probe is None or not probe(self._systems):
                sweep_many = None
        else:
            sweep_many = None

        criteria = [StoppingCriterion(
            inf_norm(j),
            tol=float(self.tol if tols is None else tols[j]),
            max_iterations=self.max_iterations,
            stagnation_tol=self.stagnation_tol,
            backend=be if fused else None) for j in range(total)]
        histories: list[list[tuple[int, float]]] = [[] for _ in range(total)]
        active = list(range(total))
        shared = self.mode == "shared"
        # The block's native layout (see _product): shared keeps
        # iterates as columns of an (n, k) block; stacked without a
        # fused kernel holds them as rows of a (k, n) block so every
        # per-iterate view is contiguous and the scipy stacked product
        # needs no transpose copies.  When the backend's fused stacked
        # kernels serve the sweeps, the block instead stays (n, k)
        # SYSTEM-INTERLEAVED — element i of all k systems adjacent —
        # which is the layout those kernels vectorize across.
        # ``col``/``take`` abstract the orientation; the arithmetic is
        # identical in all three.
        interleaved = sweep_many is not None
        if shared or interleaved:
            D = (self._diagonal[:, None] if shared
                 else np.ascontiguousarray(self._diagonal))
            col = lambda M, c: M[:, c]              # noqa: E731
            take = lambda M, idx: M[:, idx]         # noqa: E731
            reduce_axis = 0
        else:
            X = np.ascontiguousarray(X.T)
            D = np.ascontiguousarray(self._diagonal.T)
            col = lambda M, c: M[c]                 # noqa: E731
            take = lambda M, idx: M[idx]            # noqa: E731
            reduce_axis = 1
        # The block-diagonal stack is only needed by the scipy product;
        # when the backend's fused stacked product serves instead, the
        # (possibly large) block_diag build is skipped entirely.  A
        # ``None`` stack means "rebuild before the next scipy product".
        stack = None
        spmv_many = (getattr(be, "spmv_many", None)
                     if interleaved else None)

        def block_product(Xb):
            nonlocal stack, spmv_many
            if spmv_many is not None:
                Yb = spmv_many([self._systems[j] for j in active], Xb)
                if Yb is not None:
                    self.products += 1
                    return Yb
                spmv_many = None
            if stack is None and self.mode == "stacked":
                stack = self._stack_for(active)
            if interleaved:
                # Defensive path only: the fused product bailed, but
                # the block is already interleaved — run the scipy
                # stacked product on a transposed copy.  The returned
                # transpose view keeps per-system columns contiguous.
                self.products += 1
                flat = stack @ np.ascontiguousarray(Xb.T).ravel()
                return flat.reshape(len(active), self.n).T
            return self._product(Xb, stack)
        t0 = time.perf_counter()
        iteration = 0

        def retire(j: int, column: np.ndarray, reason: StopReason,
                   residual: float, iters: int) -> None:
            x = (column if reason is StopReason.DIVERGED
                 else renormalize(column))
            results[j] = SolverResult(
                x=x, iterations=iters, residual=residual,
                stop_reason=reason, residual_history=histories[j],
                runtime_s=time.perf_counter() - t0)

        def durable_save() -> None:
            """Snapshot the whole block (kind ``"batched"``).

            Taken at the residual-check boundary, after retirement and
            compaction — the same state the loop itself carries into
            the next batch, so a resume recomputing the seeding product
            from the saved block replays the sweeps bitwise.
            """
            if checkpointer is None:
                return
            X_all = np.zeros((self.n, total), dtype=np.float64)
            retired: dict[str, dict] = {}
            for j, r in enumerate(results):
                if r is None:
                    continue
                X_all[:, j] = r.x
                retired[str(j)] = {
                    "iterations": int(r.iterations),
                    "residual": (None if not np.isfinite(r.residual)
                                 else float(r.residual)),
                    "stop_reason": r.stop_reason.value,
                    "runtime_s": float(r.runtime_s),
                }
            for c, j in enumerate(active):
                X_all[:, j] = col(X, c)
            meta = {
                "iteration": int(iteration),
                "active": [int(j) for j in active],
                "histories": [[[int(i), float(r)] for i, r in h]
                              for h in histories],
                "criteria": [criteria[j].state_dict() for j in active],
                "retired": retired,
            }
            checkpointer.maybe_save(iteration, {"X": X_all}, meta,
                                    kind="batched")

        span = tracing.span(f"{self.span_name}.solve_many", n=self.n,
                            k=total, mode=self.mode)
        span.set_attribute("backend", be.name)
        resumed = (checkpointer.load_latest(kind="batched")
                   if checkpointer is not None and checkpointer.resume
                   else None)
        with span:
            if resumed is not None:
                meta = resumed.meta
                X_all = resumed.arrays.get("X")
                if X_all is None or X_all.shape != (self.n, total):
                    shape = None if X_all is None else X_all.shape
                    raise CheckpointError(
                        f"batched checkpoint block has shape {shape}, "
                        f"expected {(self.n, total)}")
                iteration = int(meta["iteration"])
                span.set_attribute("resumed_iteration", iteration)
                histories = [[(int(i), float(r)) for i, r in h]
                             for h in meta.get("histories", [])]
                while len(histories) < total:
                    histories.append([])
                for key, info in meta.get("retired", {}).items():
                    j = int(key)
                    res = info.get("residual")
                    results[j] = SolverResult(
                        x=X_all[:, j].copy(),
                        iterations=int(info["iterations"]),
                        residual=(float("inf") if res is None
                                  else float(res)),
                        stop_reason=StopReason(info["stop_reason"]),
                        residual_history=histories[j],
                        runtime_s=float(info.get("runtime_s", 0.0)))
                active = [int(j) for j in meta.get("active", [])]
                for j, state in zip(active, meta.get("criteria", [])):
                    criteria[j].load_state(state)
                if active:
                    X = (np.ascontiguousarray(X_all[:, active])
                         if shared or interleaved
                         else np.ascontiguousarray(X_all[:, active].T))
                    if self.mode == "stacked":
                        D = take(D, active)
                        stack = None
                # The seeding product is recomputed from the restored
                # block on the first sweep — same bits the uninterrupted
                # loop carried as pending_Y.
                pending_Y = None
            else:
                # The initial product doubles as the warm-start residual
                # test and the seed of the first sweep (product reuse).
                Y = block_product(X)
                for j in list(active):
                    if not warm[j]:
                        continue
                    res = criteria[j].normalized_residual(col(Y, j),
                                                          col(X, j))
                    histories[j].append((0, res))
                    if res <= criteria[j].tol:
                        retire(j, col(X, j).copy(), StopReason.CONVERGED,
                               res, 0)
                        active.remove(j)
                if len(active) < total and active:
                    mask = [j in active for j in range(total)]
                    X = take(X, mask)
                    Y = take(Y, mask)
                    if self.mode == "stacked":
                        D = take(D, mask)
                        stack = None
                pending_Y = Y if active else None
            norm_every = self.normalize_interval
            while active:
                budget = min(self.check_interval,
                             self.max_iterations - iteration)
                # Scratch for the fused step: the sweep below writes
                # every update in place, so the hot loop allocates
                # nothing but the product.  ``(D*X - Y)/D`` is the
                # serial backend's ``-(Y - D*X)/D`` with the negation
                # folded into the subtraction — bitwise identical
                # (IEEE rounding is symmetric under sign flip), but one
                # temporary instead of four.
                S = np.empty_like(X)
                B = np.empty_like(X) if self.damping != 1.0 else None
                if fused and not shared:
                    live = [self._systems[j] for j in active]
                    if not interleaved:
                        # Materialize the row views once per batch: the
                        # native backend caches ctypes pointers by
                        # array identity, so handing it the *same* view
                        # objects every sweep keeps the per-system call
                        # overhead flat instead of re-deriving pointers
                        # each time.
                        X_rows, S_rows = list(X), list(S)
                        D_rows = list(D)
                for _ in range(budget):
                    if pending_Y is None and fused:
                        # Fused backend sweep: the product never
                        # materializes in Python, but it happened —
                        # count it so the amortization accounting
                        # (products per sweep) stays truthful.
                        self.products += 1
                        if shared:
                            be.jacobi_sweep(self.A, self._diagonal, X,
                                            damping=self.damping, out=S)
                        elif interleaved:
                            swept = sweep_many(live, D, X,
                                               damping=self.damping,
                                               out=S)
                            if swept is None:
                                # Unreachable after the construction-
                                # time probe; stay correct regardless
                                # via contiguous per-system copies.
                                for c, j in enumerate(active):
                                    xc = np.ascontiguousarray(X[:, c])
                                    dc = np.ascontiguousarray(D[:, c])
                                    sc = np.empty_like(xc)
                                    be.jacobi_sweep(self._systems[j],
                                                    dc, xc,
                                                    damping=self.damping,
                                                    out=sc)
                                    S[:, c] = sc
                        else:
                            for c, j in enumerate(active):
                                be.jacobi_sweep(self._systems[j],
                                                D_rows[c], X_rows[c],
                                                damping=self.damping,
                                                out=S_rows[c])
                    else:
                        if pending_Y is not None:
                            Y, pending_Y = pending_Y, None
                        else:
                            Y = block_product(X)
                        np.multiply(D, X, out=S)
                        np.subtract(S, Y, out=S)
                        np.divide(S, D, out=S)
                        if B is not None:
                            np.multiply(X, 1.0 - self.damping, out=B)
                            np.multiply(S, self.damping, out=S)
                            np.add(B, S, out=S)
                    X, S = S, X
                    if fused and not shared and not interleaved:
                        X_rows, S_rows = S_rows, X_rows
                    iteration += 1
                    self.sweeps += 1
                    if norm_every is not None and iteration % norm_every == 0:
                        if shared or interleaved:
                            # renormalize's own validation (isfinite
                            # scan, positive clipped total) is exactly
                            # the gate the row path computes, so the
                            # per-column try replaces three full-block
                            # gate passes.  The contiguous copy is
                            # bitwise-neutral: a strided column and its
                            # copy reduce in the same pairwise order.
                            for c in range(X.shape[1]):
                                try:
                                    X[:, c] = renormalize(
                                        np.ascontiguousarray(X[:, c]))
                                except ValidationError:
                                    pass  # same as a failed gate: skip
                        else:
                            clipped = np.maximum(X, 0.0)
                            sums = clipped.sum(axis=reduce_axis)
                            ok = (np.isfinite(X).all(axis=reduce_axis)
                                  & (sums > 0.0))
                            # Rows are contiguous, so the axis-1 sum is
                            # the same pairwise reduction renormalize
                            # would run per row — one vectorized divide
                            # replaces per-row renormalize calls with
                            # bit-identical results.
                            if ok.all():
                                # Common case: divide in place, skipping
                                # the fancy-index gather/scatter copies.
                                np.divide(clipped, sums[:, None], out=X)
                            else:
                                rows = np.flatnonzero(ok)
                                X[rows] = clipped[rows] / sums[rows, None]
                # Batch-end: renormalize the live columns, then one
                # product serves every column's residual check and (for
                # survivors) seeds the next batch's first sweep.
                col_ok = np.ones(len(active), dtype=bool)
                for c in range(len(active)):
                    try:
                        if shared or interleaved:
                            X[:, c] = renormalize(
                                np.ascontiguousarray(X[:, c]))
                        else:
                            X[c] = renormalize(X[c])
                    except ValidationError:
                        col_ok[c] = False
                Y = block_product(X)
                expired = (time_budget_s is not None
                           and time.perf_counter() - t0 >= time_budget_s)
                retired_cols: list[int] = []
                for c, j in enumerate(active):
                    if not col_ok[c]:
                        histories[j].append((iteration, float("inf")))
                        retire(j, col(X, c).copy(), StopReason.DIVERGED,
                               float("inf"), iteration)
                        retired_cols.append(c)
                        continue
                    stop, res = criteria[j].check(iteration, col(Y, c),
                                                  col(X, c))
                    histories[j].append((iteration, res))
                    if stop is None and expired:
                        stop = StopReason.TIMED_OUT
                    if stop is None and iteration >= self.max_iterations:
                        stop = StopReason.MAX_ITERATIONS
                    if stop is not None:
                        retire(j, col(X, c).copy(), stop, res, iteration)
                        retired_cols.append(c)
                if retired_cols:
                    keep = [c for c in range(len(active))
                            if c not in retired_cols]
                    active = [active[c] for c in keep]
                    if not active:
                        break
                    X = take(X, keep)
                    Y = take(Y, keep)
                    if self.mode == "stacked":
                        D = take(D, keep)
                        stack = None
                pending_Y = Y
                durable_save()
            span.set_attribute("iterations", iteration)
            span.set_attribute("products", self.products)
        return results  # type: ignore[return-value]
