"""The paper's stopping criterion (Section IV).

Since the right-hand side is zero, the residual is normalized by the
matrix and solution norms::

    ||A x||_inf / (||A||_inf * ||x||_inf)  <=  epsilon

A practical criterion also caps the iteration count and detects
*stagnation* — the residual no longer decreasing (or decreasing too
slowly) between consecutive checks::

    (||r_{k+1}||_inf - ||r_k||_inf) / ||r_k||_inf  >=  -stagnation_tol

Because the residual evaluation costs about as much as an iteration,
the solver invokes this object only every ``check_interval`` steps.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ValidationError
from repro.solvers.result import StopReason


class StoppingCriterion:
    """Stateful convergence test for zero-RHS iterations.

    Parameters
    ----------
    matrix_inf_norm:
        ``||A||_inf`` (precomputed once).
    tol:
        The paper's ``epsilon`` (1e-8 in Section VII-D).
    max_iterations:
        Hard cap (1e6 in Section VII-D).
    stagnation_tol:
        Minimum relative residual decrease per check to keep going;
        ``None`` disables the stagnation test.
    min_checks_before_stagnation:
        Grace period — early checks often plateau before the dominant
        eigen-gap kicks in.
    stagnation_patience:
        Consecutive stagnant checks required before stopping; guards
        against the oscillating residuals of operators with complex
        subdominant eigenvalues (the Brusselator's rotating dynamics).
    backend:
        Optional :class:`~repro.backends.protocol.KernelBackend` whose
        ``residual`` primitive computes the two inf-norms (``None``
        keeps the inline NumPy reductions).  Both produce the exact
        same floats — ``|.|`` and ``max`` involve no rounding.
    """

    def __init__(self, matrix_inf_norm: float, *, tol: float = 1e-8,
                 max_iterations: int = 1_000_000,
                 stagnation_tol: float | None = 1e-6,
                 min_checks_before_stagnation: int = 5,
                 stagnation_patience: int = 3,
                 backend=None):
        if matrix_inf_norm < 0:
            raise ValidationError("matrix norm must be non-negative")
        if tol <= 0:
            raise ValidationError("tol must be positive")
        if max_iterations <= 0:
            raise ValidationError("max_iterations must be positive")
        self.matrix_inf_norm = float(matrix_inf_norm)
        self.tol = float(tol)
        self.max_iterations = int(max_iterations)
        self.stagnation_tol = stagnation_tol
        self.min_checks = int(min_checks_before_stagnation)
        self.stagnation_patience = max(1, int(stagnation_patience))
        self._backend = backend
        self._best_residual: float | None = None
        self._checks = 0
        self._stagnant_streak = 0

    def normalized_residual(self, residual_vec: np.ndarray,
                            x: np.ndarray) -> float:
        """``||r||_inf / (||A||_inf ||x||_inf)`` (0 when degenerate)."""
        if self._backend is not None:
            y_norm, x_norm = self._backend.residual(residual_vec, x)
        else:
            x_norm = float(np.abs(x).max()) if x.size else 0.0
            y_norm = None
        denom = self.matrix_inf_norm * x_norm
        if denom == 0.0:
            return 0.0
        if y_norm is None:
            y_norm = float(np.abs(residual_vec).max())
        return y_norm / denom

    def check(self, iteration: int, residual_vec: np.ndarray,
              x: np.ndarray) -> tuple[StopReason | None, float]:
        """Evaluate the criterion; returns ``(reason or None, residual)``."""
        if not np.all(np.isfinite(x)):
            return StopReason.DIVERGED, float("inf")
        res = self.normalized_residual(residual_vec, x)
        self._checks += 1
        if res <= self.tol:
            return StopReason.CONVERGED, res
        # Stagnation against the best residual seen so far: residuals of
        # operators with complex subdominant eigenvalues *oscillate*
        # while their envelope decreases, so a previous-check comparison
        # would fire spuriously mid-swing.
        if self._best_residual is None or not np.isfinite(self._best_residual):
            self._best_residual = res
        elif (self.stagnation_tol is not None
              and self._checks > self.min_checks
              and self._best_residual > 0):
            improvement = (self._best_residual - res) / self._best_residual
            if improvement < self.stagnation_tol:
                self._stagnant_streak += 1
                if self._stagnant_streak >= self.stagnation_patience:
                    return StopReason.STAGNATED, res
            else:
                self._stagnant_streak = 0
        self._best_residual = min(self._best_residual, res)
        if iteration >= self.max_iterations:
            return StopReason.MAX_ITERATIONS, res
        return None, res

    def reset(self) -> None:
        """Clear the stagnation state for a fresh solve."""
        self._best_residual = None
        self._checks = 0
        self._stagnant_streak = 0

    def state_dict(self) -> dict:
        """The mutable criterion state, JSON-serializable.

        Captured into durable checkpoints so a resumed solve makes the
        *same* stagnation decisions the uninterrupted one would — the
        test compares against the best residual seen so far, which
        would otherwise restart empty.
        """
        return {"best_residual": self._best_residual,
                "checks": self._checks,
                "stagnant_streak": self._stagnant_streak}

    def load_state(self, state: dict) -> None:
        """Restore :meth:`state_dict` output (checkpoint resume)."""
        best = state.get("best_residual")
        self._best_residual = None if best is None else float(best)
        self._checks = int(state.get("checks", 0))
        self._stagnant_streak = int(state.get("stagnant_streak", 0))
