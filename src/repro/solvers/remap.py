"""Warm-start remapping across changing state-space projections.

The adaptive FSP loop (:mod:`repro.fsp`) re-solves the steady state on
a *different* projection every round: states are appended at the
frontier, pruned from the tail, and — because projections are just
state arrays — possibly permuted.  A converged iterate on the old
projection is an excellent warm start on the new one, but only if each
probability entry follows *its state* through the re-indexing.

:func:`remap_iterate` is that permutation-safe transfer: entries are
matched by state (via the mixed-radix key index of
:class:`~repro.cme.statespace.StateSpace`), states new to the target
projection receive ``fill``, and the result is renormalized onto the
probability simplex so pruned mass is redistributed proportionally
rather than silently lost.
"""

from __future__ import annotations

import numpy as np

from repro.errors import IterateSizeError, ValidationError
from repro.solvers.normalization import renormalize, uniform_probability


def remap_iterate(x, old_space, new_space, *, fill: float = 0.0) -> np.ndarray:
    """Transfer a probability iterate from *old_space* to *new_space*.

    Parameters
    ----------
    x:
        Probability vector over ``old_space`` (length ``old_space.size``).
    old_space, new_space:
        :class:`~repro.cme.statespace.StateSpace` instances over the
        same species layout (same count, same buffer caps — the mixed
        radix key encoding must agree for state identity to be sound).
    fill:
        Value seeded into states present only in ``new_space``
        (default ``0.0``: new frontier states start empty and are
        filled by the iteration's inflow).

    Returns
    -------
    np.ndarray
        A probability vector over ``new_space``:

        * a pure permutation transfers every entry exactly (mass is
          preserved bitwise up to the final renormalization by
          ``sum(x)``, which is 1 for a probability input);
        * growth keeps every surviving entry's *relative* mass;
        * pruned states' mass is redistributed proportionally by the
          renormalization, so the result always sums to 1.

    Raises
    ------
    IterateSizeError
        When ``len(x) != old_space.size`` — the typed failure that
        surfaces FSP remap bugs at the boundary instead of deep inside
        a solver.
    ValidationError
        When the two spaces disagree on species layout, or *x* is not
        a valid (finite, non-negative) mass vector.
    """
    x = np.asarray(x, dtype=np.float64)
    if x.shape != (old_space.size,):
        raise IterateSizeError(old_space.size, x.shape, name="iterate")
    if not np.all(np.isfinite(x)):
        raise ValidationError("iterate contains non-finite entries")
    if np.any(x < 0.0):
        raise ValidationError("iterate contains negative entries")
    if old_space.states.shape[1] != new_space.states.shape[1] or not \
            np.array_equal(old_space.network.max_counts,
                           new_space.network.max_counts):
        raise ValidationError(
            "state spaces disagree on species layout; an iterate cannot "
            "be remapped between different models")
    if not float(fill) >= 0.0:
        raise ValidationError(f"fill must be non-negative, got {fill}")

    idx = old_space.lookup(new_space.states)
    found = idx >= 0
    out = np.full(new_space.size, float(fill), dtype=np.float64)
    out[found] = x[idx[found]]
    total = float(out.sum())
    if total <= 0.0:
        # Every carried state was pruned to zero mass (or the spaces are
        # disjoint): restart from uniform rather than divide by zero.
        return uniform_probability(new_space.size)
    return renormalize(out)
