"""Device specifications for the GPU performance model.

:data:`GTX580` mirrors the paper's experimental platform (Section III /
VII-A): 16 SMs x 32 CUDA cores, 192.4 GB/s GDDR5, 768 KB L2, a 64 KB
on-chip memory split 16/48 between L1 and shared memory, 1536 resident
threads (48 warps) and at most 8 blocks per SM, and a double-precision
peak of ~197 GFLOPS (capped at a quarter of the chip's potential on the
gaming part).

Calibration constants (all documented below, fitted once against the
paper's measured GFLOPS — see DESIGN.md §7):

``dram_efficiency``
    Fraction of the theoretical DRAM bandwidth a well-tuned streaming
    kernel achieves at full occupancy (~0.88 on Fermi).
``l2_bandwidth_ratio``
    L2-to-DRAM bandwidth ratio (Fermi's L2 serves roughly twice DRAM).
``latency_hiding_exponent``
    How effective bandwidth degrades with occupancy:
    ``factor = occupancy ** exponent`` — at 1/6 occupancy (the
    slice-equals-warp pathology of Section VI) roughly 40% of bandwidth
    remains.
``reuse_window_factor``
    Multiplier on the instantaneous per-warp line demand when estimating
    the L1 working set (< 1 because co-scheduled warps progress in near
    lockstep and share most of their current lines).
``capacity_sharpness``
    Exponent of the capacity hit curve
    ``h = c^s / (c^s + ws^s)``: with ``s = 2`` a working set well inside
    the cache hits ~95%+ and one a few times larger misses ~90%+,
    matching the step-like behavior of real caches better than the
    ``s = 1`` curve.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.errors import DeviceModelError


@dataclass(frozen=True)
class DeviceSpec:
    """A GPU for the performance model (see module docstring)."""

    name: str
    num_sms: int
    warp_size: int
    max_threads_per_sm: int
    max_blocks_per_sm: int
    max_warps_per_sm: int
    dram_bandwidth_gbs: float
    dp_peak_gflops: float
    l1_kb: float
    l2_kb: float
    cache_line_bytes: int = 128
    # -- calibration constants, fitted once against the paper's measured
    # GFLOPS tables (DESIGN.md §7) --
    dram_efficiency: float = 0.85
    l2_bandwidth_ratio: float = 1.5
    latency_hiding_exponent: float = 0.5
    reuse_window_factor: float = 0.4
    block_turnover_penalty: float = 0.03
    capacity_sharpness: float = 3.0

    def __post_init__(self) -> None:
        if self.warp_size <= 0 or self.num_sms <= 0:
            raise DeviceModelError("warp_size and num_sms must be positive")
        if self.max_warps_per_sm * self.warp_size != self.max_threads_per_sm:
            raise DeviceModelError(
                f"{self.name}: max_warps_per_sm * warp_size must equal "
                f"max_threads_per_sm")
        if not (0 < self.dram_efficiency <= 1):
            raise DeviceModelError("dram_efficiency must be in (0, 1]")
        if self.l2_bandwidth_ratio < 1:
            raise DeviceModelError("l2_bandwidth_ratio must be >= 1")
        if self.cache_line_bytes <= 0:
            raise DeviceModelError("cache_line_bytes must be positive")

    # -- derived quantities --------------------------------------------------

    @property
    def effective_dram_gbs(self) -> float:
        """Achievable DRAM bandwidth at full occupancy."""
        return self.dram_bandwidth_gbs * self.dram_efficiency

    @property
    def l2_bandwidth_gbs(self) -> float:
        """Achievable L2 bandwidth."""
        return self.effective_dram_gbs * self.l2_bandwidth_ratio

    @property
    def doubles_per_line(self) -> int:
        """Double-precision values per cache line (16 on Fermi)."""
        return self.cache_line_bytes // 8

    def with_l1(self, l1_kb: float) -> "DeviceSpec":
        """The same device with the on-chip split reconfigured.

        Fermi's 64 KB local memory can serve as 16 KB or 48 KB of L1
        (Section III); the paper measures ~6% average SpMV gain from the
        48 KB setting.
        """
        if l1_kb not in (16.0, 48.0, 16, 48):
            raise DeviceModelError(
                f"Fermi supports an L1 of 16 or 48 KB, got {l1_kb}")
        return replace(self, l1_kb=float(l1_kb),
                       name=f"{self.name.split(' [')[0]} [L1={int(l1_kb)}KB]")

    def nocache_spmv_peak_gflops(self, value_bytes: int = 8,
                                 index_bytes: int = 4) -> float:
        """Section V's analytic ELL SpMV peak with no caching.

        One FMA (2 flops) needs a value, a column index and an ``x``
        operand: ``2 / (8 + 4 + 8)`` flops per byte x raw bandwidth
        = 20.6 GFLOPS on the GTX580.
        """
        bytes_per_fma = value_bytes + index_bytes + 8
        return 2.0 / bytes_per_fma * self.dram_bandwidth_gbs

    def perfect_cache_spmv_peak_gflops(self, value_bytes: int = 8,
                                       index_bytes: int = 4) -> float:
        """Section V's analytic peak with a perfect ``x`` cache (34.4)."""
        bytes_per_fma = value_bytes + index_bytes
        return 2.0 / bytes_per_fma * self.dram_bandwidth_gbs


#: The paper's experimental GPU (Section VII-A), 48 KB L1 configuration.
GTX580 = DeviceSpec(
    name="GTX580",
    num_sms=16,
    warp_size=32,
    max_threads_per_sm=1536,
    max_blocks_per_sm=8,
    max_warps_per_sm=48,
    dram_bandwidth_gbs=192.4,
    dp_peak_gflops=197.6,
    l1_kb=48.0,
    l2_kb=768.0,
)

#: A Kepler-generation part (Section VII-D's outlook): more bandwidth,
#: far more DP flops, 16 blocks/SMX and a larger resident-thread pool.
KEPLER_K20X = DeviceSpec(
    name="Kepler K20X",
    num_sms=14,
    warp_size=32,
    max_threads_per_sm=2048,
    max_blocks_per_sm=16,
    max_warps_per_sm=64,
    dram_bandwidth_gbs=250.0,
    dp_peak_gflops=1310.0,
    l1_kb=48.0,
    l2_kb=1536.0,
)
