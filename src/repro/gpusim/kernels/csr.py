"""Traffic models of the CSR SpMV kernels.

Two classic GPU CSR kernels (Bell & Garland):

* **scalar** — one thread per row.  Because CSR stores rows
  contiguously, the 32 threads of a warp read values/indices at
  *unrelated* offsets (``indptr[r] + c``), so even the format arrays are
  gathered rather than streamed — the reason CSR underperforms on GPUs
  for short-row matrices and the paper's motivation for ELL.
* **vector** — one warp per row; value/index loads are coalesced within
  the row, but rows shorter than a warp leave most lanes idle and the
  per-row reduction costs extra steps.

Both are members of the clSpMV-analog ensemble.
"""

from __future__ import annotations

import numpy as np

from repro.gpusim.coalescing import GatherStats, warp_gather_stats
from repro.gpusim.kernels.base import Precision, TrafficReport
from repro.sparse.csr import CSRMatrix
from repro.utils.arrays import round_up

INDEX_BYTES = 4
LINE_BYTES = 128


def _dense_plan(matrix: CSRMatrix) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Dense ``(rows, k_max)`` access plans of the scalar kernel.

    Returns ``(flat_positions, x_cols, active)`` padded to warp-multiple
    rows: at step ``c`` thread ``r`` touches CSR slot ``indptr[r] + c``
    and gathers ``x[col]`` of that slot.
    """
    n = matrix.shape[0]
    lengths = np.diff(matrix.indptr)
    k_max = int(lengths.max()) if n else 0
    n_pad = round_up(n, 32) if n else 0
    flat = np.full((n_pad, k_max), -1, dtype=np.int64)
    xcol = np.full((n_pad, k_max), -1, dtype=np.int64)
    if matrix.nnz:
        rows = np.repeat(np.arange(n), lengths)
        pos = np.arange(matrix.nnz) - np.repeat(matrix.indptr[:-1], lengths)
        flat[rows, pos] = np.arange(matrix.nnz)
        xcol[rows, pos] = matrix.col_indices
    active = flat >= 0
    return flat, xcol, active


def csr_scalar_spmv_traffic(matrix: CSRMatrix, *,
                            precision: Precision = Precision.DOUBLE,
                            block_size: int = 256) -> TrafficReport:
    """Traffic of the scalar (thread-per-row) CSR kernel."""
    vb = precision.value_bytes
    n = matrix.shape[0]
    flat, xcol, active = _dense_plan(matrix)

    epl_x = precision.x_elements_per_line(LINE_BYTES)
    epl_val = LINE_BYTES // vb
    epl_idx = LINE_BYTES // INDEX_BYTES

    x_gather = warp_gather_stats(xcol, active, elements_per_line=epl_x)
    val_gather = warp_gather_stats(flat, active, elements_per_line=epl_val)
    idx_gather = warp_gather_stats(flat, active, elements_per_line=epl_idx)
    gather = x_gather.merge(val_gather).merge(idx_gather)

    indptr_bytes = float((n + 1) * INDEX_BYTES)
    y_bytes = float(n * vb)
    return TrafficReport(
        kernel_name="csr-scalar",
        streamed_bytes=indptr_bytes + y_bytes,
        gather=gather,
        x_bytes=float(matrix.shape[1] * vb),
        flops=2.0 * matrix.nnz,
        block_size=block_size,
        precision=precision,
        breakdown={"indptr": indptr_bytes, "y": y_bytes},
    )


def csr_vector_spmv_traffic(matrix: CSRMatrix, *,
                            precision: Precision = Precision.DOUBLE,
                            block_size: int = 256) -> TrafficReport:
    """Traffic of the vector (warp-per-row) CSR kernel.

    Within a row, value/index loads are contiguous: a row of length
    ``L`` costs ``ceil(L / epl)`` transactions per array and the same
    for its ``x`` lines (counted exactly from the sorted indices).
    """
    vb = precision.value_bytes
    n = matrix.shape[0]
    lengths = np.diff(matrix.indptr).astype(np.int64)
    epl_x = precision.x_elements_per_line(LINE_BYTES)
    epl_val = LINE_BYTES // vb
    epl_idx = LINE_BYTES // INDEX_BYTES

    val_tx = int(np.ceil(lengths / epl_val).sum())
    idx_tx = int(np.ceil(lengths / epl_idx).sum())

    # Exact x-line transactions: distinct lines among each row's columns.
    if matrix.nnz:
        row_of = np.repeat(np.arange(n), lengths)
        lines = matrix.col_indices.astype(np.int64) // epl_x
        # Column indices are sorted within rows, hence lines are too:
        # a new transaction whenever (row, line) changes.
        new_tx = np.ones(matrix.nnz, dtype=bool)
        same_row = row_of[1:] == row_of[:-1]
        same_line = lines[1:] == lines[:-1]
        new_tx[1:] = ~(same_row & same_line)
        x_tx = int(new_tx.sum())
        x_unique = int(np.unique(lines).size)
    else:
        x_tx = x_unique = 0

    transactions = val_tx + idx_tx + x_tx
    unique = x_unique + val_tx + idx_tx     # format arrays touched once
    n_blocks = max(1, -(-n // 256))
    active_steps = int(np.ceil(lengths / 32).sum())
    block_tx = np.full(n_blocks, transactions / n_blocks)
    block_uq = np.full(n_blocks, unique / n_blocks)
    gather = GatherStats(
        transactions=transactions,
        unique_lines=unique,
        active_steps=active_steps,
        thread_loads=3 * matrix.nnz,
        block_transactions=block_tx,
        block_unique=block_uq,
        # x reuse happens across rows at long distance: far, not near.
        block_near=np.zeros(n_blocks),
        block_steps=np.full(n_blocks, max(1.0, active_steps / n_blocks)),
    )
    indptr_bytes = float(n * 2 * INDEX_BYTES)
    y_bytes = float(n * vb)
    # Warp-level reduction: log2(32) shuffle steps per row, minor flops.
    flops = 2.0 * matrix.nnz + 5.0 * n
    return TrafficReport(
        kernel_name="csr-vector",
        streamed_bytes=indptr_bytes + y_bytes,
        gather=gather,
        x_bytes=float(matrix.shape[1] * vb),
        flops=flops,
        block_size=block_size,
        precision=precision,
        breakdown={"indptr": indptr_bytes, "y": y_bytes},
    )
