"""Traffic models of the sliced-ELL family kernels (Section VI).

The sliced kernel iterates only its slice's local ``k_i`` steps, so the
value stream shrinks from ``n' x k_max`` to the actual stored slots
(``slice_ptr[-1]``) — that is the whole point of the format.  Column
transactions still follow the per-warp longest row (Listing 1's guard),
and the ``x`` gather is counted on the *stored* layout, i.e. after any
row rearrangement, which is exactly how reordering affects locality.

Launch configuration is where the original and warp-grained variants
diverge:

* original sliced ELL couples ``block = slice`` — the caller passes the
  slice size as the block size, and a warp-sized slice would collapse
  occupancy to 8 warps/SM;
* the warp-grained variant decouples them (slice = 32, block = 256), so
  full occupancy survives the finest padding granularity.
"""

from __future__ import annotations

import numpy as np

from repro.gpusim.coalescing import warp_gather_stats
from repro.gpusim.kernels.base import (
    Precision,
    TrafficReport,
    per_warp_active_steps,
    sliced_dense_arrays,
)
from repro.sparse.sell_c_sigma import SellCSigmaMatrix
from repro.sparse.sliced_ell import SlicedELLMatrix
from repro.sparse.warped_ell import WarpedELLMatrix

INDEX_BYTES = 4
LINE_BYTES = 128


def _sliced_traffic(matrix: SlicedELLMatrix, *, kernel_name: str,
                    precision: Precision, block_size: int,
                    extra_streamed: float = 0.0,
                    extra_breakdown: dict | None = None) -> TrafficReport:
    vb = precision.value_bytes
    n = matrix.shape[0]
    stored_slots = int(matrix.slice_ptr[-1])

    value_bytes = float(stored_slots * vb)
    cols, active = sliced_dense_arrays(matrix)
    col_steps = per_warp_active_steps(active)
    col_bytes = float(col_steps.sum()) * 32 * INDEX_BYTES
    # Per-slice metadata (k_i and start offset), read once per warp.
    meta_bytes = float(matrix.n_slices * 2 * INDEX_BYTES)
    y_bytes = float(n * vb)

    gather = warp_gather_stats(
        cols, active,
        elements_per_line=precision.x_elements_per_line(LINE_BYTES))
    breakdown = {"values": value_bytes, "cols": col_bytes,
                 "slice_meta": meta_bytes, "y": y_bytes}
    if extra_breakdown:
        breakdown.update(extra_breakdown)
    return TrafficReport(
        kernel_name=kernel_name,
        streamed_bytes=value_bytes + col_bytes + meta_bytes + y_bytes
        + extra_streamed,
        gather=gather,
        x_bytes=float(matrix.shape[1] * vb),
        flops=2.0 * matrix.nnz,
        block_size=block_size,
        precision=precision,
        breakdown=breakdown,
    )


def sliced_ell_spmv_traffic(matrix: SlicedELLMatrix, *,
                            precision: Precision = Precision.DOUBLE,
                            block_size: int | None = None) -> TrafficReport:
    """Traffic of the original sliced-ELL SpMV (block = slice size)."""
    if block_size is None:
        block_size = matrix.slice_size
    return _sliced_traffic(matrix, kernel_name="sell",
                           precision=precision, block_size=block_size)


def warped_ell_spmv_traffic(matrix: WarpedELLMatrix, *,
                            precision: Precision = Precision.DOUBLE,
                            block_size: int = 256) -> TrafficReport:
    """Traffic of the warp-grained sliced-ELL SpMV (block decoupled).

    With ``separate_diagonal`` the kernel additionally streams the dense
    diagonal vector and gathers ``x[row_ids]`` for the diagonal FMA, and
    scatters ``y`` through ``row_ids`` (a coalesced write for the local
    rearrangement, since rows stay within their block).
    """
    extra_streamed = 0.0
    extra_breakdown: dict = {}
    if matrix.reorder != "none":
        # row_ids read once per thread, streamed (stored in storage order).
        extra_streamed += float(matrix.shape[0] * INDEX_BYTES)
        extra_breakdown["row_ids"] = float(matrix.shape[0] * INDEX_BYTES)
    flops_extra = 0.0
    report = _sliced_traffic(matrix, kernel_name="warped-ell",
                             precision=precision, block_size=block_size,
                             extra_streamed=extra_streamed,
                             extra_breakdown=extra_breakdown)
    if matrix.diagonal_values is not None:
        vb = precision.value_bytes
        n = matrix.shape[0]
        n_pad32 = -(-n // 32) * 32
        diag_cols = np.full((n_pad32, 1), -1, dtype=np.int64)
        diag_cols[:n, 0] = matrix.row_ids
        diag_gather = warp_gather_stats(
            diag_cols, diag_cols >= 0,
            elements_per_line=precision.x_elements_per_line(LINE_BYTES))
        diag_report = TrafficReport(
            kernel_name="diag",
            streamed_bytes=float(n * vb),
            gather=diag_gather,
            x_bytes=float(matrix.shape[1] * vb),
            flops=2.0 * n + flops_extra,
            block_size=block_size,
            precision=precision,
            breakdown={"diag_values": float(n * vb)},
        )
        report = report.combined(diag_report, name="warped-ell+diag")
    return report


def sell_c_sigma_spmv_traffic(matrix: SellCSigmaMatrix, *,
                              precision: Precision = Precision.DOUBLE,
                              block_size: int = 256) -> TrafficReport:
    """Traffic of a SELL-C-sigma SpMV (block decoupled from the chunk).

    Like the warp-grained kernel: the chunked value/column streams plus
    the sorted-order x gather, and — when sorting is enabled — a
    streamed row-id read for the scatter of y.
    """
    extra_streamed = 0.0
    extra_breakdown: dict = {}
    if matrix.sigma > 1:
        extra_streamed = float(matrix.shape[0] * INDEX_BYTES)
        extra_breakdown["row_ids"] = extra_streamed
    return _sliced_traffic(matrix, kernel_name="sell-c-sigma",
                           precision=precision, block_size=block_size,
                           extra_streamed=extra_streamed,
                           extra_breakdown=extra_breakdown)
