"""Traffic model of the fused Jacobi-iteration kernels (Sections IV-V).

One Jacobi step for ``A x = 0`` is an off-diagonal SpMV followed by a
division by the diagonal: ``x'_i = -(1/a_ii) * sum_{j != i} a_ij x_j``.
The DIA-combined formats keep ``a_ii`` as a dense vector, so the fused
kernel streams it directly (no search inside the sparse structure).

Beyond the per-iteration kernel, the solver's periodic work is amortized
into the report:

* the stopping criterion costs roughly one extra SpMV every
  ``check_interval`` iterations (the paper notes the residual is about
  as expensive as the iteration itself — Section IV);
* the probability-vector renormalization costs two streamed sweeps of
  ``x`` every ``normalize_interval`` iterations.
"""

from __future__ import annotations

from repro.errors import FormatError
from repro.gpusim.kernels.base import Precision, TrafficReport
from repro.gpusim.kernels.ell import ell_dia_spmv_traffic
from repro.gpusim.kernels.sliced import _sliced_traffic
from repro.sparse.ell_dia import ELLDIAMatrix
from repro.sparse.warped_ell import WarpedELLMatrix

INDEX_BYTES = 4


def _warped_jacobi_traffic(matrix: WarpedELLMatrix, *,
                           precision: Precision,
                           block_size: int) -> TrafficReport:
    if matrix.diagonal_values is None:
        raise FormatError("Jacobi needs separate_diagonal=True on warped ELL")
    vb = precision.value_bytes
    n = matrix.shape[0]
    extra_streamed = float(n * vb)          # dense diagonal, storage order
    extra = {"diag_values": float(n * vb)}
    if matrix.reorder != "none":
        extra_streamed += float(n * INDEX_BYTES)
        extra["row_ids"] = float(n * INDEX_BYTES)
    report = _sliced_traffic(matrix, kernel_name="jacobi[warped-ell+dia]",
                             precision=precision, block_size=block_size,
                             extra_streamed=extra_streamed,
                             extra_breakdown=extra)
    # One division per row on top of the off-diagonal FMAs.
    return TrafficReport(
        kernel_name=report.kernel_name,
        streamed_bytes=report.streamed_bytes,
        gather=report.gather,
        x_bytes=report.x_bytes,
        flops=report.flops + float(n),
        block_size=report.block_size,
        precision=precision,
        breakdown=report.breakdown,
    )


def _ell_dia_jacobi_traffic(matrix: ELLDIAMatrix, *,
                            precision: Precision,
                            block_size: int) -> TrafficReport:
    spmv = ell_dia_spmv_traffic(matrix, precision=precision,
                                block_size=block_size)
    n = matrix.shape[0]
    return TrafficReport(
        kernel_name="jacobi[ell+dia]",
        streamed_bytes=spmv.streamed_bytes,
        gather=spmv.gather,
        x_bytes=spmv.x_bytes,
        flops=spmv.flops + float(n),
        block_size=block_size,
        precision=precision,
        breakdown=spmv.breakdown,
    )


def jacobi_traffic(matrix, *, precision: Precision = Precision.DOUBLE,
                   block_size: int = 256,
                   check_interval: int = 0,
                   normalize_interval: int = 0) -> TrafficReport:
    """Per-iteration traffic of the fused Jacobi kernel on *matrix*.

    ``check_interval`` / ``normalize_interval`` (0 = never) amortize the
    solver's periodic residual evaluation and renormalization into the
    per-iteration cost.
    """
    if isinstance(matrix, WarpedELLMatrix):
        base = _warped_jacobi_traffic(matrix, precision=precision,
                                      block_size=block_size)
    elif isinstance(matrix, ELLDIAMatrix):
        base = _ell_dia_jacobi_traffic(matrix, precision=precision,
                                       block_size=block_size)
    else:
        raise FormatError(
            f"no fused Jacobi kernel for {type(matrix).__name__}; use "
            f"WarpedELLMatrix(separate_diagonal=True) or ELLDIAMatrix")

    n = matrix.shape[0]
    vb = precision.value_bytes
    overhead_bytes = 0.0
    overhead_flops = 0.0
    scale = 1.0
    if check_interval > 0:
        # Residual: one more SpMV-equivalent pass plus two reductions.
        scale += 1.0 / check_interval
        overhead_bytes += (2.0 * n * vb) / check_interval
        overhead_flops += (2.0 * n) / check_interval
    if normalize_interval > 0:
        # Reduce ||x||_1 then scale x in place: read+read+write.
        overhead_bytes += (3.0 * n * vb) / normalize_interval
        overhead_flops += (2.0 * n) / normalize_interval

    del overhead_flops  # executed but not *useful* work, see below
    gather = base.gather.scaled(scale)
    return TrafficReport(
        kernel_name=base.kernel_name,
        streamed_bytes=base.streamed_bytes * scale + overhead_bytes,
        gather=gather,
        x_bytes=base.x_bytes,
        # GFLOPS normalizes by the *useful* work (the iteration's FMAs
        # and divisions); the residual/normalization overhead inflates
        # the traffic and therefore the time, exactly like on hardware,
        # but contributes no useful flops.
        flops=base.flops,
        block_size=block_size,
        precision=precision,
        breakdown=base.breakdown,
    )
