"""Per-format GPU kernel models.

Each kernel module derives a :class:`~repro.gpusim.kernels.base.TrafficReport`
from the actual sparse structure: the streamed (perfectly coalesced)
bytes, the ``x``-gather transaction statistics, and the flop count — the
inputs of :func:`repro.gpusim.perfmodel.estimate_performance`.
"""

from repro.gpusim.kernels.base import Precision, TrafficReport
from repro.gpusim.kernels.ell import ell_dia_spmv_traffic, ell_spmv_traffic
from repro.gpusim.kernels.sliced import (
    sliced_ell_spmv_traffic,
    warped_ell_spmv_traffic,
)
from repro.gpusim.kernels.csr import (
    csr_scalar_spmv_traffic,
    csr_vector_spmv_traffic,
)
from repro.gpusim.kernels.misc import coo_spmv_traffic, dia_spmv_traffic
from repro.gpusim.kernels.jacobi import jacobi_traffic

__all__ = [
    "Precision",
    "TrafficReport",
    "ell_spmv_traffic",
    "ell_dia_spmv_traffic",
    "sliced_ell_spmv_traffic",
    "warped_ell_spmv_traffic",
    "csr_scalar_spmv_traffic",
    "csr_vector_spmv_traffic",
    "dia_spmv_traffic",
    "coo_spmv_traffic",
    "jacobi_traffic",
]
