"""Traffic models of the DIA and COO SpMV kernels (ensemble members)."""

from __future__ import annotations

import numpy as np

from repro.gpusim.coalescing import GatherStats, warp_gather_stats
from repro.gpusim.kernels.base import Precision, TrafficReport
from repro.gpusim.kernels.ell import dia_access_plan
from repro.sparse.coo import COOMatrix
from repro.sparse.dia import DIAMatrix
from repro.utils.arrays import round_up

INDEX_BYTES = 4
LINE_BYTES = 128


def dia_spmv_traffic(matrix: DIAMatrix, *,
                     precision: Precision = Precision.DOUBLE,
                     block_size: int = 256) -> TrafficReport:
    """Traffic of a standalone DIA SpMV.

    Streams ``d`` dense diagonal arrays (values only, no indices) and
    the ``y`` write; the ``x`` accesses are the implicit shifted sweeps
    of :func:`repro.gpusim.kernels.ell.dia_access_plan`.
    """
    vb = precision.value_bytes
    n = matrix.shape[0]
    n_padded = round_up(n, 32) if n else 0
    d = int(matrix.offsets.size)
    value_bytes = float(d * n * vb)
    y_bytes = float(n * vb)
    cols, active = dia_access_plan(matrix, n_padded)
    gather = warp_gather_stats(
        cols, active,
        elements_per_line=precision.x_elements_per_line(LINE_BYTES))
    return TrafficReport(
        kernel_name="dia",
        streamed_bytes=value_bytes + y_bytes,
        gather=gather,
        x_bytes=float(matrix.shape[1] * vb),
        flops=2.0 * matrix.nnz,
        block_size=block_size,
        precision=precision,
        breakdown={"dia_values": value_bytes, "y": y_bytes},
    )


def coo_spmv_traffic(matrix: COOMatrix, *,
                     precision: Precision = Precision.DOUBLE,
                     block_size: int = 256) -> TrafficReport:
    """Traffic of the segmented-reduction COO kernel (Bell & Garland).

    One thread per nonzero: values, row and column indices stream
    perfectly; the ``x`` gather groups 32 *consecutive nonzeros* per
    warp-step (row-major sorted COO keeps those columns correlated).
    The segmented reduction adds a carry pass over the row boundaries,
    modeled as one extra streamed sweep of partial sums.
    """
    vb = precision.value_bytes
    nnz = matrix.nnz
    n = matrix.shape[0]
    stream = float(nnz * (vb + 2 * INDEX_BYTES))
    y_bytes = float(n * vb)
    # Partial-sum carry pass of the segmented reduction.
    n_warps = -(-nnz // 32) if nnz else 0
    carry_bytes = float(2 * n_warps * vb)

    if nnz:
        padded = round_up(nnz, 32)
        plan = np.full((padded, 1), -1, dtype=np.int64)
        plan[:nnz, 0] = matrix.cols
        gather = warp_gather_stats(
            plan, plan >= 0,
            elements_per_line=precision.x_elements_per_line(LINE_BYTES))
    else:
        gather = GatherStats.empty()

    return TrafficReport(
        kernel_name="coo",
        streamed_bytes=stream + y_bytes + carry_bytes,
        gather=gather,
        x_bytes=float(matrix.shape[1] * vb),
        flops=2.0 * nnz + 2.0 * n_warps,
        block_size=block_size,
        precision=precision,
        breakdown={"triples": stream, "y": y_bytes, "carry": carry_bytes},
    )
