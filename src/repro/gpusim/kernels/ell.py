"""Traffic models of the ELL and ELL+DIA SpMV kernels (Section V).

The ELL kernel (Listing 1 of the paper) assigns one thread per row and
iterates the global ``k`` steps:

* **values**: loaded at *every* step, padding included — the dense
  ``n' x k`` array streams in full (this is exactly the bandwidth the
  efficiency metric ``e = nnz / (n'k)`` measures);
* **column indices**: loaded only when the value is nonzero, so a warp
  issues the 128-byte index transaction for as many steps as its longest
  row;
* **x gather**: one coalesced transaction set per warp-step, counted
  exactly from the column structure;
* **y**: one streamed write.

The ELL+DIA kernel streams ``d`` dense diagonal arrays (no column
indices — that is the 4-bytes-per-nonzero saving) and shrinks the ELL
remainder.  Its ``x`` accesses are modeled as one fused access plan —
the ``d`` implicit band columns plus the remainder's explicit columns —
so band/remainder line sharing is counted once, exactly.
"""

from __future__ import annotations

import numpy as np

from repro.gpusim.coalescing import warp_gather_stats
from repro.gpusim.kernels.base import (
    Precision,
    TrafficReport,
    per_warp_active_steps,
)
from repro.sparse.dia import DIAMatrix
from repro.sparse.ell import PAD_COL, ELLMatrix
from repro.sparse.ellr import ELLRMatrix
from repro.sparse.ell_dia import ELLDIAMatrix
from repro.utils.arrays import round_up

INDEX_BYTES = 4
LINE_BYTES = 128


def ell_spmv_traffic(matrix: ELLMatrix, *,
                     precision: Precision = Precision.DOUBLE,
                     block_size: int = 256,
                     write_output: bool = True) -> TrafficReport:
    """Traffic of one ELL SpMV launch on *matrix*."""
    vb = precision.value_bytes
    n, n_padded, k = matrix.shape[0], matrix.n_padded, matrix.k
    active = matrix.active_mask()

    value_bytes = float(n_padded * k * vb)
    col_steps = per_warp_active_steps(active)
    col_bytes = float(col_steps.sum()) * 32 * INDEX_BYTES
    y_bytes = float(n * vb) if write_output else 0.0

    gather = warp_gather_stats(
        matrix.cols, active,
        elements_per_line=precision.x_elements_per_line(LINE_BYTES))
    flops = 2.0 * matrix.nnz

    return TrafficReport(
        kernel_name="ell",
        streamed_bytes=value_bytes + col_bytes + y_bytes,
        gather=gather,
        x_bytes=float(matrix.shape[1] * vb),
        flops=flops,
        block_size=block_size,
        precision=precision,
        breakdown={"values": value_bytes, "cols": col_bytes, "y": y_bytes},
    )


def dia_access_plan(dia: DIAMatrix, n_padded: int) \
        -> tuple[np.ndarray, np.ndarray]:
    """The DIA kernel's implicit ``x`` access plan.

    Thread ``i`` reads ``x[i + offset]`` for every stored diagonal at
    every in-bounds row — unconditionally, since DIA has no occupancy
    test (stored zeros are multiplied like any other value).  Returns
    ``(cols, active)`` of shape ``(n_padded, d)``.
    """
    n, m = dia.shape
    d = int(dia.offsets.size)
    rows = np.arange(n_padded, dtype=np.int64)
    cols = np.full((n_padded, d), PAD_COL, dtype=np.int64)
    active = np.zeros((n_padded, d), dtype=bool)
    for j, off in enumerate(dia.offsets):
        target = rows + int(off)
        ok = (rows < n) & (target >= 0) & (target < m)
        cols[ok, j] = target[ok]
        active[:, j] = ok
    return cols, active


def ell_dia_spmv_traffic(matrix: ELLDIAMatrix, *,
                         precision: Precision = Precision.DOUBLE,
                         block_size: int = 256) -> TrafficReport:
    """Traffic of the fused ELL+DIA SpMV launch.

    Streams: the ``d`` dense diagonal arrays (values only — the 4-byte
    column indices of band nonzeros are exactly what the format saves),
    the ELL remainder's value/column arrays, and one ``y`` write.  The
    ``x`` gather is one fused plan over band and remainder columns.
    """
    vb = precision.value_bytes
    n = matrix.shape[0]
    ell = matrix.ell
    dia = matrix.dia
    n_padded = max(ell.n_padded, round_up(n, 32) if n else 0)

    # Streamed components.
    dia_value_bytes = float(dia.offsets.size * n * vb)
    ell_value_bytes = float(ell.n_padded * ell.k * vb)
    col_steps = per_warp_active_steps(ell.active_mask())
    col_bytes = float(col_steps.sum()) * 32 * INDEX_BYTES
    y_bytes = float(n * vb)

    # Fused x access plan: d implicit band columns + remainder columns.
    dia_cols, dia_active = dia_access_plan(dia, n_padded)
    ell_cols = np.full((n_padded, ell.k), PAD_COL, dtype=np.int64)
    ell_cols[: ell.n_padded] = ell.cols
    ell_active = np.zeros((n_padded, ell.k), dtype=bool)
    ell_active[: ell.n_padded] = ell.active_mask()
    cols = np.hstack([dia_cols, ell_cols])
    active = np.hstack([dia_active, ell_active])
    gather = warp_gather_stats(
        cols, active,
        elements_per_line=precision.x_elements_per_line(LINE_BYTES))

    # Useful flops (the paper's GFLOPS normalizes by matrix nonzeros);
    # the dense-band zero-slot FMAs are wasted work, not throughput.
    flops = 2.0 * matrix.nnz
    return TrafficReport(
        kernel_name="ell+dia",
        streamed_bytes=(dia_value_bytes + ell_value_bytes
                        + col_bytes + y_bytes),
        gather=gather,
        x_bytes=float(matrix.shape[1] * vb),
        flops=flops,
        block_size=block_size,
        precision=precision,
        breakdown={"dia_values": dia_value_bytes,
                   "values": ell_value_bytes,
                   "cols": col_bytes, "y": y_bytes},
    )


def ellr_spmv_traffic(matrix: ELLRMatrix, *,
                      precision: Precision = Precision.DOUBLE,
                      block_size: int = 256) -> TrafficReport:
    """Traffic of the ELLR-T kernel: padding costs no value bandwidth.

    The row-length array bounds each lane's loop, so value transactions
    follow the per-warp longest row exactly like the column-index
    stream; the extra cost is the streamed ``rl`` array itself.
    """
    vb = precision.value_bytes
    n, n_padded = matrix.shape[0], matrix.n_padded
    active = matrix.active_mask()

    warp_steps = per_warp_active_steps(active)
    # One 128-byte transaction per warp-step for each of values/cols
    # (values are vb-wide: a 32-lane step spans 32 * vb bytes).
    value_bytes = float(warp_steps.sum()) * 32 * vb
    col_bytes = float(warp_steps.sum()) * 32 * INDEX_BYTES
    rl_bytes = float(n_padded * INDEX_BYTES)
    y_bytes = float(n * vb)

    gather = warp_gather_stats(
        matrix.cols, active,
        elements_per_line=precision.x_elements_per_line(LINE_BYTES))
    return TrafficReport(
        kernel_name="ellr",
        streamed_bytes=value_bytes + col_bytes + rl_bytes + y_bytes,
        gather=gather,
        x_bytes=float(matrix.shape[1] * vb),
        flops=2.0 * matrix.nnz,
        block_size=block_size,
        precision=precision,
        breakdown={"values": value_bytes, "cols": col_bytes,
                   "row_lengths": rl_bytes, "y": y_bytes},
    )
