"""Common kernel-model machinery: precision, traffic reports, expansions.

A :class:`TrafficReport` is the complete memory/compute characterization
of one kernel launch:

* ``streamed_bytes`` — perfectly coalesced sequential traffic (format
  arrays, result write, dense diagonals).  These lines are touched once,
  so they cross both the L2 and DRAM interfaces in full.
* ``gather`` — the irregular ``x`` accesses as coalesced transaction
  statistics; the cache model decides how much of them reach each level.
* ``x_bytes`` — gathered-vector size (L2 capacity competitor).
* ``flops`` — floating-point work (FMA = 2).
* ``block_size`` — the kernel's natural launch configuration (drives
  occupancy; the original sliced ELL couples it to the slice size).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

import numpy as np

from repro.errors import ValidationError
from repro.gpusim.coalescing import GatherStats
from repro.sparse.ell import PAD_COL
from repro.sparse.sliced_ell import SlicedELLMatrix


class Precision(enum.Enum):
    """Arithmetic precision of a kernel (affects bytes per element)."""

    DOUBLE = "double"
    SINGLE = "single"

    @property
    def value_bytes(self) -> int:
        return 8 if self is Precision.DOUBLE else 4

    def x_elements_per_line(self, line_bytes: int = 128) -> int:
        """Gathered-vector elements per cache line (16 dp / 32 sp)."""
        return line_bytes // self.value_bytes


@dataclass(frozen=True)
class TrafficReport:
    """Memory and compute characterization of one kernel launch."""

    kernel_name: str
    streamed_bytes: float
    gather: GatherStats
    x_bytes: float
    flops: float
    block_size: int = 256
    precision: Precision = Precision.DOUBLE
    #: Per-component byte breakdown for reporting/ablation.
    breakdown: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.streamed_bytes < 0 or self.flops < 0 or self.x_bytes < 0:
            raise ValidationError("traffic quantities must be non-negative")

    def combined(self, other: "TrafficReport", *, name: str | None = None,
                 shared_unique: int | None = None) -> "TrafficReport":
        """Fuse two reports of one launch (e.g. DIA band + ELL remainder)."""
        if self.precision is not other.precision:
            raise ValidationError("cannot combine mixed-precision reports")
        breakdown = dict(self.breakdown)
        for key, val in other.breakdown.items():
            breakdown[key] = breakdown.get(key, 0.0) + val
        return TrafficReport(
            kernel_name=name or f"{self.kernel_name}+{other.kernel_name}",
            streamed_bytes=self.streamed_bytes + other.streamed_bytes,
            gather=self.gather.merge(other.gather, shared_unique=shared_unique),
            x_bytes=max(self.x_bytes, other.x_bytes),
            flops=self.flops + other.flops,
            block_size=self.block_size,
            precision=self.precision,
            breakdown=breakdown,
        )


def per_warp_active_steps(active: np.ndarray, warp_size: int = 32) -> np.ndarray:
    """Steps in which each warp issues column-index loads.

    With the ``if (value != 0)`` guard of Listing 1, a warp-step loads
    column indices only when at least one lane is active; the count per
    warp equals the longest row in the warp.
    """
    active = np.asarray(active, dtype=bool)
    n, k = active.shape
    if n % warp_size != 0:
        raise ValidationError(
            f"row count {n} is not a multiple of the warp size {warp_size}")
    if n == 0 or k == 0:
        return np.zeros(n // warp_size if warp_size else 0, dtype=np.int64)
    grouped = active.reshape(n // warp_size, warp_size, k)
    return grouped.any(axis=1).sum(axis=1, dtype=np.int64)


def sliced_dense_arrays(matrix: SlicedELLMatrix) \
        -> tuple[np.ndarray, np.ndarray]:
    """Expand a sliced-ELL structure to global dense ``(cols, active)``.

    Returns ``(n_padded, k_max)`` arrays where steps beyond a slice's
    local ``k_i`` are marked inactive — those steps simply do not exist
    in the sliced kernel (no value loads either), which the value-byte
    accounting handles separately via ``slice_ptr``.
    """
    s = matrix.slice_size
    k_max = int(matrix.slice_k.max()) if matrix.n_slices else 0
    cols = np.full((matrix.n_padded, k_max), PAD_COL, dtype=np.int32)
    for i in range(matrix.n_slices):
        _, block_cols = matrix.slice_block(i)
        cols[i * s:(i + 1) * s, : block_cols.shape[1]] = block_cols
    active = cols != PAD_COL
    return cols, active
