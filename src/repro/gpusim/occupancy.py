"""The CUDA occupancy calculator (Section III).

Occupancy is the ratio of resident warps to the SM's capacity.  It is
limited by three hardware caps — resident threads, resident blocks and
resident warps per SM — so the *block size* choice matters:

* too small (e.g. 32): the 8-blocks-per-SM cap bites first — 8 warps,
  1/6 occupancy, poor latency hiding;
* too large (1024): only one block fits, 2/3 occupancy;
* 512: full occupancy, but the SM must drain all 16 warps of a block
  before replacing it ("block turnover");
* 256: full occupancy with better turnover — the paper's empirically
  best choice, which this model reproduces in the block-size sweep bench.

The occupancy feeds the performance model through a latency-hiding
factor: with few resident warps the memory pipeline cannot stay full, so
the effective bandwidth scales as ``occupancy ** latency_hiding_exponent``
(times a mild turnover penalty for blocks above 256 threads).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import DeviceModelError
from repro.gpusim.device import DeviceSpec


@dataclass(frozen=True)
class Occupancy:
    """Resolved occupancy of a kernel launch configuration."""

    device: DeviceSpec
    block_size: int
    blocks_per_sm: int
    resident_threads: int
    resident_warps: int

    @property
    def ratio(self) -> float:
        """Resident warps over the SM's warp capacity (0..1]."""
        return self.resident_warps / self.device.max_warps_per_sm

    @property
    def turnover_penalty(self) -> float:
        """Throughput penalty of coarse block granularity (1.0 = none).

        An SM frees a block's resources only when *all* its warps finish,
        so larger blocks refill the SM in coarser, burstier steps.  The
        penalty grows with the warps-per-block count beyond the 256-thread
        sweet spot.
        """
        warps_per_block = self.block_size / self.device.warp_size
        excess = max(0.0, warps_per_block / 8.0 - 1.0)  # 8 warps = 256 thr
        return 1.0 / (1.0 + self.device.block_turnover_penalty * excess)

    @property
    def throughput_factor(self) -> float:
        """Effective-bandwidth multiplier from latency hiding + turnover."""
        return (self.ratio ** self.device.latency_hiding_exponent
                * self.turnover_penalty)


def calculate_occupancy(device: DeviceSpec, block_size: int) -> Occupancy:
    """Occupancy of launching *block_size*-thread blocks on *device*.

    Partial trailing warps are rounded up (a 48-thread block still costs
    two warp slots); block sizes that do not fit an SM at all raise.
    """
    if block_size <= 0:
        raise DeviceModelError(f"block size must be positive, got {block_size}")
    if block_size > device.max_threads_per_sm:
        raise DeviceModelError(
            f"block size {block_size} exceeds the SM thread capacity "
            f"{device.max_threads_per_sm}")
    warps_per_block = -(-block_size // device.warp_size)
    blocks = min(
        device.max_blocks_per_sm,
        device.max_threads_per_sm // block_size,
        device.max_warps_per_sm // warps_per_block,
    )
    if blocks == 0:
        raise DeviceModelError(
            f"block size {block_size} cannot be scheduled on {device.name}")
    return Occupancy(
        device=device,
        block_size=block_size,
        blocks_per_sm=blocks,
        resident_threads=blocks * block_size,
        resident_warps=blocks * warps_per_block,
    )
