"""Kernel dispatch: run a format functionally and estimate it on a device.

``run_spmv`` executes the format-faithful NumPy kernel (real numbers);
``spmv_performance`` / ``jacobi_performance`` build the matching traffic
report and resolve it against a device — the pairing that replaces "run
it on the GTX580 and time it" in this reproduction.
"""

from __future__ import annotations

import numpy as np

from repro import backends
from repro.errors import FormatError
from repro.gpusim.device import DeviceSpec, GTX580


def _launch_guard(kernel: str) -> None:
    """Fail this (simulated) launch if a fault plan schedules it.

    The lazy import keeps the dispatch hot path free of any resilience
    machinery when no injector is installed.
    """
    from repro.resilience.faults import active_injector
    injector = active_injector()
    if injector is not None and injector.active_for("gpusim.launch"):
        injector.maybe_fail("gpusim.launch", detail=kernel)
from repro.gpusim.kernels.base import Precision, TrafficReport
from repro.gpusim.kernels.csr import (
    csr_scalar_spmv_traffic,
    csr_vector_spmv_traffic,
)
from repro.gpusim.kernels.ell import (
    ell_dia_spmv_traffic,
    ell_spmv_traffic,
    ellr_spmv_traffic,
)
from repro.gpusim.kernels.jacobi import jacobi_traffic
from repro.gpusim.kernels.misc import coo_spmv_traffic, dia_spmv_traffic
from repro.gpusim.memo import memoized_traffic
from repro.gpusim.kernels.sliced import (
    sell_c_sigma_spmv_traffic,
    sliced_ell_spmv_traffic,
    warped_ell_spmv_traffic,
)
from repro.gpusim.perfmodel import PerfEstimate, estimate_performance
from repro.sparse.base import SparseFormat
from repro.telemetry import tracing
from repro.sparse.coo import COOMatrix
from repro.sparse.csr import CSRMatrix
from repro.sparse.dia import DIAMatrix
from repro.sparse.ell import ELLMatrix
from repro.sparse.ellr import ELLRMatrix
from repro.sparse.ell_dia import ELLDIAMatrix
from repro.sparse.sell_c_sigma import SellCSigmaMatrix
from repro.sparse.sliced_ell import SlicedELLMatrix
from repro.sparse.warped_ell import WarpedELLMatrix


def spmv_traffic(matrix: SparseFormat, *,
                 precision: Precision = Precision.DOUBLE,
                 block_size: int | None = None,
                 csr_kernel: str = "vector",
                 memoize: bool = True) -> TrafficReport:
    """The SpMV traffic report of any supported format.

    ``block_size`` defaults to each kernel's natural configuration (256;
    the original sliced ELL couples it to the slice size).  ``csr_kernel``
    selects the scalar or vector CSR variant.

    Traffic depends only on the structure, so by default the report is
    memoized under the structural fingerprint (see
    :mod:`repro.gpusim.memo`): repeat analyses of an
    already-fingerprinted matrix are O(1).  Pass ``memoize=False`` to
    force the full structure walk.
    """
    if memoize and isinstance(matrix, SparseFormat):
        return memoized_traffic(
            matrix,
            lambda: _spmv_traffic_impl(matrix, precision=precision,
                                       block_size=block_size,
                                       csr_kernel=csr_kernel),
            kind="spmv", precision=precision, block_size=block_size,
            csr_kernel=csr_kernel)
    return _spmv_traffic_impl(matrix, precision=precision,
                              block_size=block_size, csr_kernel=csr_kernel)


def _spmv_traffic_impl(matrix: SparseFormat, *,
                       precision: Precision,
                       block_size: int | None,
                       csr_kernel: str) -> TrafficReport:
    kwargs = {"precision": precision}
    if isinstance(matrix, WarpedELLMatrix):
        return warped_ell_spmv_traffic(matrix, block_size=block_size or 256,
                                       **kwargs)
    if isinstance(matrix, SellCSigmaMatrix):
        return sell_c_sigma_spmv_traffic(matrix,
                                         block_size=block_size or 256,
                                         **kwargs)
    if isinstance(matrix, SlicedELLMatrix):
        return sliced_ell_spmv_traffic(matrix, block_size=block_size,
                                       **kwargs)
    if isinstance(matrix, ELLDIAMatrix):
        return ell_dia_spmv_traffic(matrix, block_size=block_size or 256,
                                    **kwargs)
    if isinstance(matrix, ELLRMatrix):
        return ellr_spmv_traffic(matrix, block_size=block_size or 256,
                                 **kwargs)
    if isinstance(matrix, ELLMatrix):
        return ell_spmv_traffic(matrix, block_size=block_size or 256,
                                **kwargs)
    if isinstance(matrix, CSRMatrix):
        fn = (csr_vector_spmv_traffic if csr_kernel == "vector"
              else csr_scalar_spmv_traffic)
        return fn(matrix, block_size=block_size or 256, **kwargs)
    if isinstance(matrix, DIAMatrix):
        return dia_spmv_traffic(matrix, block_size=block_size or 256,
                                **kwargs)
    if isinstance(matrix, COOMatrix):
        return coo_spmv_traffic(matrix, block_size=block_size or 256,
                                **kwargs)
    raise FormatError(
        f"no GPU kernel model for format {type(matrix).__name__}")


def spmv_performance(matrix: SparseFormat, device: DeviceSpec = GTX580, *,
                     precision: Precision = Precision.DOUBLE,
                     block_size: int | None = None,
                     csr_kernel: str = "vector",
                     x_scale: float = 1.0,
                     memoize: bool = True) -> PerfEstimate:
    """Modeled SpMV performance of *matrix* on *device*.

    ``x_scale`` is the problem-size normalization of
    :func:`repro.gpusim.perfmodel.estimate_performance` (pass
    ``paper_n / n`` when the matrix is a scaled-down stand-in).

    When a :mod:`repro.telemetry` recorder is installed, each call
    emits a ``gpusim.spmv`` span carrying the kernel name, coalesced
    transaction count, modeled kernel time, occupancy and the
    limiting pipeline.
    """
    with tracing.span("gpusim.spmv", format=type(matrix).__name__,
                      device=device.name) as sp:
        _launch_guard("spmv")
        sp.set_attribute("exec_backend", _exec_backend_name(matrix))
        report = spmv_traffic(matrix, precision=precision,
                              block_size=block_size, csr_kernel=csr_kernel,
                              memoize=memoize)
        perf = estimate_performance(report, device, x_scale=x_scale)
        _annotate_span(sp, report, perf)
        return perf


def _exec_backend_name(matrix) -> str:
    """Name of the kernel backend the host-side product dispatches to.

    The traffic model describes the *modeled* GPU; this attribute
    records which CPU backend actually executes the functional kernel
    (``run_spmv`` / parity checks), honoring the ambient selection and
    the reference fallback for unsupported formats.
    """
    fmt = getattr(matrix, "format_name", "")
    be = backends.resolve(None)
    if not be.is_reference and not be.supports(fmt, "spmv"):
        return "numpy"
    return be.name


def _annotate_span(sp, report: TrafficReport, perf: PerfEstimate) -> None:
    """Attach the kernel model's headline numbers to a tracing span."""
    sp.set_attribute("kernel", report.kernel_name)
    sp.set_attribute("block_size", report.block_size)
    sp.set_attribute("transactions", report.gather.transactions)
    sp.set_attribute("streamed_bytes", report.streamed_bytes)
    sp.set_attribute("modeled_time_us", perf.time_s * 1e6)
    sp.set_attribute("gflops", perf.gflops)
    sp.set_attribute("occupancy", perf.occupancy.ratio)
    sp.set_attribute("limiting", perf.limiting_resource)


def jacobi_performance(matrix, device: DeviceSpec = GTX580, *,
                       precision: Precision = Precision.DOUBLE,
                       block_size: int = 256,
                       check_interval: int = 0,
                       normalize_interval: int = 0,
                       x_scale: float = 1.0,
                       memoize: bool = True) -> PerfEstimate:
    """Modeled per-iteration Jacobi performance on *device*.

    Emits a ``gpusim.jacobi`` span (kernel, transactions, modeled
    time, occupancy) when a telemetry recorder is installed.  Like
    :func:`spmv_traffic`, the underlying traffic report is memoized by
    structural fingerprint unless ``memoize=False``.
    """
    with tracing.span("gpusim.jacobi", format=type(matrix).__name__,
                      device=device.name) as sp:
        _launch_guard("jacobi")
        sp.set_attribute("exec_backend", _exec_backend_name(matrix))

        def _build():
            return jacobi_traffic(matrix, precision=precision,
                                  block_size=block_size,
                                  check_interval=check_interval,
                                  normalize_interval=normalize_interval)

        if memoize and isinstance(matrix, SparseFormat):
            report = memoized_traffic(
                matrix, _build, kind="jacobi", precision=precision,
                block_size=block_size, check_interval=check_interval,
                normalize_interval=normalize_interval)
        else:
            report = _build()
        perf = estimate_performance(report, device, x_scale=x_scale)
        _annotate_span(sp, report, perf)
        return perf


def run_spmv(matrix: SparseFormat, x: np.ndarray) -> np.ndarray:
    """Execute the format-faithful SpMV (the functional half)."""
    _launch_guard("run_spmv")
    return matrix.spmv(x)
