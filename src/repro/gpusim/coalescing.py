"""Coalescing: per-warp-step reduction of thread addresses to transactions.

On Fermi, the 32 loads a warp issues in one step are converted into
requests for 128-byte cache lines; performance is governed by how many
*distinct* lines each warp-step touches (Section III).  This module
counts those transactions exactly from the sparse structure:

* the ``x``-vector gather of an ELL-family kernel at step ``c`` touches,
  for warp ``w``, the lines ``{ col[r, c] // 16 : r in warp w, active }``;
* a fully coalesced (streamed) access touches ``ceil(bytes / 128)`` lines
  by construction and needs no counting.

Statistics are kept at *block* granularity (256 rows — the CUDA block,
whose warps are co-resident on one SM and share its L1), because that is
the granularity at which the cache model can reason about reuse:

``block_transactions``
    coalesced transactions issued by the block's warps;
``block_unique``
    the block's line *footprint* — what must enter the SM at least once,
    and what its L1 must hold for the block's re-references to hit;
``block_near``
    transactions whose line was requested by the same warp in the
    immediately preceding step (within-row band locality: a row's
    consecutive nonzeros sit in neighboring columns) — the prime L1-hit
    candidates.

Everything is computed vectorized over all warp-steps at once.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ValidationError

#: Sentinel line id for inactive lanes (sorts before all real lines).
_SENTINEL = np.int64(-1)

#: Rows per CUDA block for footprint grouping.
DEFAULT_BLOCK_ROWS = 256


@dataclass(frozen=True)
class GatherStats:
    """Transaction statistics of one kernel's gather stream.

    Scalar attributes summarize the whole stream; the per-block arrays
    (all the same length) let the cache model absorb re-references
    against each block's measured footprint.
    """

    #: Total 128-byte transactions after intra-warp-step coalescing.
    transactions: int
    #: Distinct lines touched over the whole kernel (compulsory misses).
    unique_lines: int
    #: Warp-steps that issued at least one request.
    active_steps: int
    #: Raw per-thread loads before coalescing (= active lanes).
    thread_loads: int
    #: Per-block transactions.
    block_transactions: np.ndarray = field(repr=False)
    #: Per-block line footprints.
    block_unique: np.ndarray = field(repr=False)
    #: Per-block near (previous-step-same-warp) re-references.
    block_near: np.ndarray = field(repr=False)
    #: Per-block active warp-steps.
    block_steps: np.ndarray = field(repr=False)

    def __post_init__(self) -> None:
        bt = np.asarray(self.block_transactions, dtype=np.float64)
        bu = np.asarray(self.block_unique, dtype=np.float64)
        bn = np.asarray(self.block_near, dtype=np.float64)
        bs = np.asarray(self.block_steps, dtype=np.float64)
        if not (bt.shape == bu.shape == bn.shape == bs.shape) or bt.ndim != 1:
            raise ValidationError("per-block arrays must be equal-length 1-D")
        if np.any(bu + bn > bt + 1e-9):
            raise ValidationError(
                "block unique + near cannot exceed block transactions")
        object.__setattr__(self, "block_transactions", bt)
        object.__setattr__(self, "block_unique", bu)
        object.__setattr__(self, "block_near", bn)
        object.__setattr__(self, "block_steps", bs)

    # -- derived -------------------------------------------------------------

    @property
    def rereferences(self) -> int:
        """Transactions that re-request an already-touched line."""
        return self.transactions - self.unique_lines

    @property
    def block_far(self) -> np.ndarray:
        """Per-block re-references that are not near (long reuse distance)."""
        return (self.block_transactions - self.block_unique
                - self.block_near)

    @property
    def cross_block_rereferences(self) -> float:
        """Lines in several blocks' footprints (inter-block reuse)."""
        return float(self.block_unique.sum()) - self.unique_lines

    @property
    def lines_per_step(self) -> float:
        """Average distinct lines per active warp-step (1 = perfect)."""
        return self.transactions / self.active_steps if self.active_steps else 0.0

    @property
    def coalescing_ratio(self) -> float:
        """Thread loads served per transaction (32 = perfect, 1 = scattered)."""
        return self.thread_loads / self.transactions if self.transactions else 0.0

    @property
    def block_lines_per_step(self) -> np.ndarray:
        """Per-block average distinct lines per warp-step."""
        steps = np.maximum(self.block_steps, 1.0)
        return self.block_transactions / steps

    @staticmethod
    def empty() -> "GatherStats":
        z = np.zeros(0)
        return GatherStats(0, 0, 0, 0, z, z, z, z)

    def merge(self, other: "GatherStats",
              shared_unique: int | None = None) -> "GatherStats":
        """Combine two gather streams of the same kernel.

        ``shared_unique``, when given, is the true distinct-line count of
        the union (the overlap becomes cross-block reuse); the per-block
        arrays are concatenated — each component keeps its own footprint.
        """
        naive = self.unique_lines + other.unique_lines
        unique = naive if shared_unique is None else min(shared_unique, naive)
        return GatherStats(
            self.transactions + other.transactions,
            unique,
            self.active_steps + other.active_steps,
            self.thread_loads + other.thread_loads,
            np.concatenate([self.block_transactions, other.block_transactions]),
            np.concatenate([self.block_unique, other.block_unique]),
            np.concatenate([self.block_near, other.block_near]),
            np.concatenate([self.block_steps, other.block_steps]),
        )

    def scaled(self, factor: float) -> "GatherStats":
        """The same stream repeated ``factor`` times (compulsories once)."""
        if factor < 1.0:
            raise ValidationError("scale factor must be >= 1")
        return GatherStats(
            int(round(self.transactions * factor)),
            self.unique_lines,
            int(round(self.active_steps * factor)),
            int(round(self.thread_loads * factor)),
            self.block_transactions * factor,
            self.block_unique,
            # Extra sweeps re-touch resident lines: near re-references.
            self.block_near * factor
            + (self.block_transactions - self.block_near) * (factor - 1.0),
            self.block_steps * factor,
        )


def _grouped_line_counts(lines: np.ndarray) -> tuple[np.ndarray, int]:
    """Distinct non-sentinel values per (group, step).

    ``lines`` has shape ``(G, warp_size, K)`` with :data:`_SENTINEL`
    marking inactive lanes.  Returns ``(counts, total_active_lanes)``
    where ``counts[g, c]`` is the transaction count of that warp-step.
    """
    if lines.ndim != 3:
        raise ValidationError("lines must be (groups, warp, steps)")
    active_lanes = int((lines != _SENTINEL).sum())
    if lines.size == 0:
        return np.zeros(lines.shape[::2], dtype=np.int64), 0
    s = np.sort(lines, axis=1)
    changes = (s[:, 1:, :] != s[:, :-1, :]) & (s[:, 1:, :] != _SENTINEL)
    counts = changes.sum(axis=1, dtype=np.int64)
    counts += (s[:, 0, :] != _SENTINEL)
    return counts, active_lanes


def _near_per_warp(lines: np.ndarray) -> np.ndarray:
    """Near re-references per warp: distinct lines of step ``c`` already
    requested by the same warp at step ``c-1``.

    ``lines`` is ``(G, warp, K)`` with sentinels; returns a ``(G,)``
    count array.
    """
    g, t, k = lines.shape
    out = np.zeros(g, dtype=np.int64)
    if k < 2 or g == 0:
        return out
    s = np.sort(lines, axis=1)
    distinct = np.ones_like(s, dtype=bool)
    distinct[:, 1:, :] = s[:, 1:, :] != s[:, :-1, :]
    distinct &= s != _SENTINEL
    # Chunk over groups to bound the (g, t, t, k-1) broadcast memory.
    chunk = max(1, (1 << 24) // max(1, t * t * (k - 1)))
    for lo in range(0, g, chunk):
        cur = s[lo:lo + chunk, :, 1:]
        prev = s[lo:lo + chunk, :, :-1]
        dmask = distinct[lo:lo + chunk, :, 1:]
        eq = cur[:, :, None, :] == prev[:, None, :, :]
        in_prev = eq.any(axis=2)
        out[lo:lo + chunk] = (dmask & in_prev).sum(axis=(1, 2))
    return out


def _unique_per_block(lines: np.ndarray, active: np.ndarray,
                      rows_per_block: int) -> np.ndarray:
    """Distinct active lines per block of ``rows_per_block`` rows.

    ``lines``/``active`` are the flat ``(rows, K)`` arrays.
    """
    n_rows = lines.shape[0]
    n_blocks = -(-n_rows // rows_per_block)
    out = np.zeros(n_blocks, dtype=np.int64)
    if not active.any():
        return out
    rows_idx, _ = np.nonzero(active)
    block_of = rows_idx // rows_per_block
    vals = lines[active]
    order = np.lexsort((vals, block_of))
    b = block_of[order]
    v = vals[order]
    new = np.ones(v.shape[0], dtype=bool)
    new[1:] = (b[1:] != b[:-1]) | (v[1:] != v[:-1])
    np.add.at(out, b[new], 1)
    return out


def warp_gather_stats(cols: np.ndarray, active: np.ndarray,
                      *, warp_size: int = 32,
                      elements_per_line: int = 16,
                      block_rows: int = DEFAULT_BLOCK_ROWS) -> GatherStats:
    """Gather statistics for an ELL-style ``(rows, steps)`` access plan.

    ``cols[r, c]`` is the ``x`` index thread ``r`` gathers at step ``c``
    (only where ``active``); warp ``w`` covers rows
    ``[w * warp_size, (w+1) * warp_size)``, so the row count must be a
    multiple of the warp size (the formats pad to warp granularity).

    ``elements_per_line`` converts indices to line ids — 16 for
    double-precision ``x`` on 128-byte lines, 32 for single precision;
    ``block_rows`` sets the footprint-grouping granularity (the CUDA
    block).
    """
    cols = np.asarray(cols)
    active = np.asarray(active, dtype=bool)
    if cols.shape != active.shape or cols.ndim != 2:
        raise ValidationError("cols and active must be equal-shape 2-D arrays")
    n_rows, k = cols.shape
    if n_rows % warp_size != 0:
        raise ValidationError(
            f"row count {n_rows} is not a multiple of warp size {warp_size}")
    if elements_per_line <= 0 or block_rows % warp_size != 0:
        raise ValidationError(
            "elements_per_line must be positive and block_rows a warp multiple")
    if n_rows == 0 or k == 0:
        return GatherStats.empty()

    lines = np.where(active, cols.astype(np.int64) // elements_per_line,
                     _SENTINEL)
    grouped = lines.reshape(n_rows // warp_size, warp_size, k)
    counts, lanes = _grouped_line_counts(grouped)
    near_w = _near_per_warp(grouped)
    unique = int(np.unique(lines[active]).size) if active.any() else 0

    warps_per_block = block_rows // warp_size
    n_blocks = -(-grouped.shape[0] // warps_per_block)
    warp_tx = counts.sum(axis=1)
    pad = n_blocks * warps_per_block - warp_tx.shape[0]
    if pad:
        warp_tx = np.concatenate([warp_tx, np.zeros(pad, dtype=np.int64)])
        near_w = np.concatenate([near_w, np.zeros(pad, dtype=np.int64)])
    warp_steps = (counts > 0).sum(axis=1)
    if pad:
        warp_steps = np.concatenate([warp_steps,
                                     np.zeros(pad, dtype=np.int64)])
    block_tx = warp_tx.reshape(n_blocks, warps_per_block).sum(axis=1)
    block_near = near_w.reshape(n_blocks, warps_per_block).sum(axis=1)
    block_steps = warp_steps.reshape(n_blocks, warps_per_block).sum(axis=1)
    block_unique = _unique_per_block(lines, active, block_rows)
    # Numerical guard: near is bounded by tx - unique per block.
    block_near = np.minimum(block_near,
                            np.maximum(block_tx - block_unique, 0))
    return GatherStats(
        transactions=int(counts.sum()),
        unique_lines=unique,
        active_steps=int((counts > 0).sum()),
        thread_loads=lanes,
        block_transactions=block_tx.astype(np.float64),
        block_unique=block_unique.astype(np.float64),
        block_near=block_near.astype(np.float64),
        block_steps=block_steps.astype(np.float64),
    )


def streamed_transactions(total_bytes: int, *, line_bytes: int = 128) -> int:
    """Transactions of a perfectly coalesced sequential access."""
    if total_bytes < 0:
        raise ValidationError("total_bytes must be non-negative")
    return -(-total_bytes // line_bytes)


def contiguous_gather_stats(n: int, offset: int, *,
                            elements_per_line: int = 16,
                            warp_size: int = 32,
                            block_rows: int = DEFAULT_BLOCK_ROWS) -> GatherStats:
    """Gather statistics of a DIA diagonal's ``x[i + offset]`` stream.

    Contiguous but possibly misaligned: each warp reads ``warp_size``
    consecutive elements starting at ``lo + offset``; a non-multiple-of-
    line offset adds one straddling transaction per warp-step (Section V
    notes alignment only happens for offsets that are multiples of 16).
    The straddling line is shared with the neighboring warp — a near
    re-reference.
    """
    if n <= 0:
        return GatherStats.empty()
    lo = max(0, -offset)
    span = n - lo
    if span <= 0:
        return GatherStats.empty()
    n_warps = -(-span // warp_size)
    aligned = offset % elements_per_line == 0
    lines_per_warp = warp_size // elements_per_line + (0 if aligned else 1)
    unique = min(-(-span // elements_per_line) + (0 if aligned else 1),
                 n_warps * lines_per_warp)
    transactions = n_warps * lines_per_warp

    n_blocks = -(-span // block_rows)
    block_tx = np.full(n_blocks, transactions / n_blocks)
    block_uq = np.full(n_blocks, unique / n_blocks)
    block_near = np.maximum(block_tx - block_uq, 0.0)
    block_steps = np.full(n_blocks, n_warps / n_blocks)
    return GatherStats(
        transactions=transactions,
        unique_lines=unique,
        active_steps=n_warps,
        thread_loads=span,
        block_transactions=block_tx,
        block_unique=block_uq,
        block_near=block_near,
        block_steps=block_steps,
    )
