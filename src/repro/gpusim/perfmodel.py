"""The roofline performance model: traffic report -> time and GFLOPS.

A kernel's duration is the maximum of three pipeline times:

* DRAM: all compulsory traffic plus the cache-missed gathers, over the
  effective DRAM bandwidth;
* L2: everything that crosses the SM-to-L2 interface (streamed bytes and
  all L1 misses), over the L2 bandwidth;
* compute: flops over the precision's peak.

All bandwidths are scaled by the launch's occupancy throughput factor
(latency hiding + block turnover — Section III's discussion of block
size choice).  SpMV on CME matrices sits firmly on the DRAM leg; the L2
leg takes over only for scattered access patterns (random reordering),
and the compute leg never binds in double precision on Fermi.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.gpusim.cache import GatherTraffic, gather_traffic
from repro.gpusim.device import DeviceSpec
from repro.gpusim.kernels.base import Precision, TrafficReport
from repro.gpusim.occupancy import Occupancy, calculate_occupancy


@dataclass(frozen=True)
class PerfEstimate:
    """Modeled execution of one kernel launch."""

    report: TrafficReport
    occupancy: Occupancy
    gather: GatherTraffic
    dram_bytes: float
    l2_bytes: float
    t_dram: float
    t_l2: float
    t_flops: float

    @property
    def time_s(self) -> float:
        """Modeled kernel time in seconds."""
        return max(self.t_dram, self.t_l2, self.t_flops)

    @property
    def gflops(self) -> float:
        """Modeled throughput in GFLOP/s."""
        t = self.time_s
        return self.report.flops / t / 1e9 if t > 0 else 0.0

    @property
    def limiting_resource(self) -> str:
        """Which pipeline bounds the kernel: 'dram', 'l2' or 'flops'."""
        times = {"dram": self.t_dram, "l2": self.t_l2, "flops": self.t_flops}
        return max(times, key=times.get)

    @property
    def effective_bandwidth_gbs(self) -> float:
        """Achieved DRAM bandwidth implied by the model."""
        t = self.time_s
        return self.dram_bytes / t / 1e9 if t > 0 else 0.0


def estimate_performance(report: TrafficReport,
                         device: DeviceSpec, *,
                         x_scale: float = 1.0) -> PerfEstimate:
    """Resolve a traffic report against a device.

    ``x_scale`` inflates the gathered-vector size used for the
    *far-reuse* L2 capacity competition.  The reproduction's matrices
    are much smaller than the paper's; passing ``paper_n / n`` keeps the
    long-distance-reuse regime faithful (at paper scale ``x`` is 2.5-80
    MB against a 768 KB L2, so far reuse essentially always misses)
    while leaving the size-independent per-block working sets untouched.
    """
    if x_scale < 1.0:
        raise ValueError(f"x_scale must be >= 1, got {x_scale}")
    occ = calculate_occupancy(device, report.block_size)
    gt = gather_traffic(report.gather, device, occ,
                        x_bytes=report.x_bytes * x_scale)

    dram_bytes = report.streamed_bytes + gt.dram_bytes
    l2_bytes = report.streamed_bytes + gt.l2_bytes
    factor = occ.throughput_factor

    t_dram = dram_bytes / (device.effective_dram_gbs * 1e9 * factor)
    t_l2 = l2_bytes / (device.l2_bandwidth_gbs * 1e9 * factor)
    peak = (device.dp_peak_gflops if report.precision is Precision.DOUBLE
            else device.dp_peak_gflops * 4.0)
    t_flops = report.flops / (peak * 1e9)

    return PerfEstimate(
        report=report,
        occupancy=occ,
        gather=gt,
        dram_bytes=dram_bytes,
        l2_bytes=l2_bytes,
        t_dram=t_dram,
        t_l2=t_l2,
        t_flops=t_flops,
    )
