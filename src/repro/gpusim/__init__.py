"""A functional + analytic performance simulator of Fermi-class GPUs.

No GPU is available in this reproduction environment, so the paper's
hardware is replaced by a simulator with two halves (see DESIGN.md §2):

* **Functional half** — every kernel computes its result numerically
  (vectorized NumPy, bit-checked against SciPy in the tests), so the
  Jacobi solver and all examples produce real steady-state landscapes.

* **Performance half** — the simulator derives, from the *actual* sparse
  structure, exactly the memory traffic the corresponding CUDA kernel
  would generate: per-warp-step coalescing of thread addresses into
  128-byte transactions, compulsory/re-reference decomposition of the
  ``x``-vector gathers, an L1/L2 capacity model, an occupancy calculator
  (1536 threads / 48 warps / 8 blocks per SM on Fermi), and a roofline
  combination ``t = max(t_dram, t_L2, t_flops)``.

SpMV on these matrices is bandwidth-bound (the paper's Section V puts the
no-cache ELL peak at 20.6 GFLOPS on a 192 GB/s GTX580), so counting bytes
faithfully reproduces the *relative* performance of the formats; a small
set of calibration constants in :mod:`repro.gpusim.device` anchors the
absolute scale to the paper's GTX580 measurements.
"""

from repro.gpusim.device import (
    GTX580,
    KEPLER_K20X,
    DeviceSpec,
)
from repro.gpusim.occupancy import Occupancy, calculate_occupancy
from repro.gpusim.perfmodel import PerfEstimate, estimate_performance
from repro.gpusim.executor import (
    jacobi_performance,
    spmv_performance,
    spmv_traffic,
    run_spmv,
)
from repro.gpusim.memo import (
    clear_memo,
    memo_stats,
    structure_fingerprint,
)

__all__ = [
    "DeviceSpec",
    "GTX580",
    "KEPLER_K20X",
    "Occupancy",
    "calculate_occupancy",
    "PerfEstimate",
    "estimate_performance",
    "spmv_performance",
    "spmv_traffic",
    "jacobi_performance",
    "run_spmv",
    "structure_fingerprint",
    "memo_stats",
    "clear_memo",
]
