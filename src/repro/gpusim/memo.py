"""Structure-keyed memoization of gpusim traffic analysis.

Building a :class:`~repro.gpusim.kernels.base.TrafficReport` walks every
warp-step of a format's layout — O(nnz) NumPy work — yet the result
depends only on the matrix *structure* (which column each lane reads,
how slices are cut, whether a dense diagonal is peeled), never on the
stored values.  Sweeps, the serving layer and repeated profiling runs
analyse the same structures over and over, so the executor memoizes:

* **Fingerprint** — a SHA-256 digest of the format's structural arrays
  (per-format: CSR ``indptr``/``col_indices``, ELL ``cols``, sliced
  ``slice_ptr``/``slice_k``/``cols`` plus permutations, DIA ``offsets``
  …) together with the format name and shape.  The digest is cached on
  the matrix instance itself (formats are immutable after
  construction), so every analysis after the first costs one dict
  probe — not a re-hash of O(nnz) data.
* **Key** — ``(fingerprint, kernel kind, sorted kernel parameters)``;
  two matrices with identical structure but different values share an
  entry, the same matrix at a different precision or block size does
  not.
* **Cache** — a bounded LRU (:data:`MEMO_CAPACITY` entries) guarded by
  one lock.  Hits return the *same* ``TrafficReport`` object (it is a
  frozen dataclass; treat the ``breakdown`` dict as read-only).

Hit/miss totals flow into the process-wide telemetry registry as
``gpusim_memo_hits_total`` / ``gpusim_memo_misses_total``; local
counters back :func:`memo_stats` so tests and benchmarks can diff
without touching global telemetry state.
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict

import numpy as np

from repro.sparse.base import SparseFormat, as_csr
from repro.sparse.coo import COOMatrix
from repro.sparse.csr import CSRMatrix
from repro.sparse.dia import DIAMatrix
from repro.sparse.ell import ELLMatrix
from repro.sparse.ell_dia import ELLDIAMatrix
from repro.sparse.ellr import ELLRMatrix
from repro.sparse.sell_c_sigma import SellCSigmaMatrix
from repro.sparse.sliced_ell import SlicedELLMatrix
from repro.sparse.warped_ell import WarpedELLMatrix
from repro.telemetry.metrics import get_registry

#: Retained TrafficReports; enough for every format of a handful of
#: systems at a couple of precisions without unbounded growth.
MEMO_CAPACITY = 128

#: Attribute under which a matrix instance caches its own fingerprint.
_FP_ATTR = "_gpusim_structure_fp"

_lock = threading.Lock()
_cache: OrderedDict[tuple, object] = OrderedDict()
_hits = 0
_misses = 0


def _sliced_parts(matrix: SlicedELLMatrix) -> list[tuple[str, object]]:
    return [("slice_size", matrix.slice_size),
            ("slice_k", matrix.slice_k),
            ("slice_ptr", matrix.slice_ptr),
            ("cols", matrix.cols)]


def _structural_parts(matrix: SparseFormat) -> list[tuple[str, object]]:
    """The (label, array-or-scalar) pairs that determine kernel traffic.

    Most-derived formats first: the warped and SELL-C-sigma classes
    subclass :class:`SlicedELLMatrix` and must add their permutations
    and configuration on top of the sliced layout.
    """
    if isinstance(matrix, WarpedELLMatrix):
        return (_sliced_parts(matrix)
                + [("row_ids", matrix.row_ids),
                   ("reorder", matrix.reorder),
                   ("separate_diagonal", matrix.separate_diagonal)])
    if isinstance(matrix, SellCSigmaMatrix):
        return (_sliced_parts(matrix)
                + [("row_ids", matrix.row_ids),
                   ("chunk", matrix.chunk),
                   ("sigma", matrix.sigma)])
    if isinstance(matrix, SlicedELLMatrix):
        return _sliced_parts(matrix)
    if isinstance(matrix, ELLDIAMatrix):
        return ([("offsets", matrix.dia.offsets)]
                + [("ell_" + label, value)
                   for label, value in _structural_parts(matrix.ell)])
    if isinstance(matrix, ELLRMatrix):
        return [("n_padded", matrix.n_padded), ("cols", matrix.cols),
                ("rl", matrix.rl)]
    if isinstance(matrix, ELLMatrix):
        return [("n_padded", matrix.n_padded), ("cols", matrix.cols)]
    if isinstance(matrix, CSRMatrix):
        return [("indptr", matrix.indptr),
                ("col_indices", matrix.col_indices)]
    if isinstance(matrix, DIAMatrix):
        return [("offsets", matrix.offsets)]
    if isinstance(matrix, COOMatrix):
        return [("rows", matrix.rows), ("cols", matrix.cols)]
    # Unknown SparseFormat subclasses fall back to canonical CSR
    # structure — correct for any format whose traffic is a function of
    # the sparsity pattern.
    csr = as_csr(matrix.to_scipy())
    return [("indptr", csr.indptr), ("indices", csr.indices)]


def _feed(h, label: str, value) -> None:
    h.update(label.encode())
    h.update(b"\x00")
    if isinstance(value, np.ndarray):
        arr = np.ascontiguousarray(value)
        h.update(str(arr.dtype).encode())
        h.update(str(arr.shape).encode())
        h.update(arr.tobytes())
    else:
        h.update(repr(value).encode())
    h.update(b"\x01")


def structure_fingerprint(matrix: SparseFormat) -> str:
    """SHA-256 digest of *matrix*'s structure, cached on the instance.

    Formats are immutable after construction, so the first call hashes
    the layout arrays and pins the digest to the object; every later
    call is an attribute read.
    """
    cached = getattr(matrix, _FP_ATTR, None)
    if cached is not None:
        return cached
    h = hashlib.sha256()
    _feed(h, "format", type(matrix).__name__)
    _feed(h, "shape", tuple(matrix.shape))
    for label, value in _structural_parts(matrix):
        _feed(h, label, value)
    fp = h.hexdigest()
    try:
        setattr(matrix, _FP_ATTR, fp)
    except (AttributeError, TypeError):  # e.g. __slots__ somewhere
        pass
    return fp


def memoized_traffic(matrix: SparseFormat, build, *, kind: str, **params):
    """``build()``'s TrafficReport, memoized under the structure key.

    *kind* names the analysis family (``"spmv"``, ``"jacobi"``);
    *params* are the kernel parameters that shape the report
    (precision, block size, CSR variant, amortization intervals).
    """
    global _hits, _misses
    key = (structure_fingerprint(matrix), kind,
           tuple(sorted(params.items())))
    with _lock:
        report = _cache.get(key)
        if report is not None:
            _cache.move_to_end(key)
            _hits += 1
    if report is not None:
        get_registry().counter(
            "gpusim_memo_hits_total",
            "Traffic analyses answered from the structure memo").inc()
        return report
    report = build()
    with _lock:
        _misses += 1
        _cache[key] = report
        _cache.move_to_end(key)
        while len(_cache) > MEMO_CAPACITY:
            _cache.popitem(last=False)
    get_registry().counter(
        "gpusim_memo_misses_total",
        "Traffic analyses that had to run the full structure walk").inc()
    return report


def memo_stats() -> dict:
    """Local hit/miss/size counters (independent of global telemetry)."""
    with _lock:
        return {"hits": _hits, "misses": _misses,
                "size": len(_cache), "capacity": MEMO_CAPACITY}


def clear_memo() -> None:
    """Drop every cached report and zero the local counters."""
    global _hits, _misses
    with _lock:
        _cache.clear()
        _hits = 0
        _misses = 0
