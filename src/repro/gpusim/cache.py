"""Capacity model of the Fermi L1/L2 hierarchy for gather traffic.

The gather stream of an SpMV kernel decomposes, per CUDA block, into:

* the block's line **footprint** (``block_unique``) — bytes that must
  enter the SM at least once while the block runs;
* **near** re-references (a warp revisiting a line it touched one step
  earlier — within-row band locality).  These hit L1 with the capacity
  probability ``l1 / (l1 + resident_footprint)``, where the resident
  footprint is the *measured* union footprint of the blocks co-resident
  on the SM — co-resident warps of one block share most of their lines,
  which is why the local rearrangement of Section VI barely hurts
  locality while a random row order (footprint ≈ one line per row)
  blows the L1 and collapses performance, exactly as in Section VII-C.
  L1 misses get a second chance in L2 against the chip-wide resident
  footprint.  This short-distance path is also what the 16 KB -> 48 KB
  L1 reconfiguration (Section III) improves by ~6%.
* **far** re-references — revisits at long reuse distance, within a
  block (``block_far``) or across blocks (lines appearing in several
  blocks' footprints).  Only L2 capacity over the whole gathered vector
  can catch those; at paper-scale vector sizes it essentially never
  does.

Every L1 miss — compulsory or not — crosses the SM-to-L2 interconnect,
and every L2 miss reaches DRAM; the performance model charges each level
its own bandwidth.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import DeviceModelError
from repro.gpusim.coalescing import GatherStats
from repro.gpusim.device import DeviceSpec
from repro.gpusim.occupancy import Occupancy


@dataclass(frozen=True)
class GatherTraffic:
    """Byte traffic of a gather stream at each memory level."""

    #: Bytes crossing the L1-to-L2 interface (all L1 misses).
    l2_bytes: float
    #: Bytes crossing the L2-to-DRAM interface (all L2 misses).
    dram_bytes: float
    #: Transaction-weighted mean L1 hit rate on near re-references.
    l1_hit_rate: float
    #: Mean L2 hit rate on L1-missed near re-references.
    l2_near_hit_rate: float
    #: L2 hit rate on far re-references.
    l2_far_hit_rate: float


def capacity_hit_rate(cache_bytes, working_set_bytes, sharpness: float = 2.0):
    """The capacity curve ``c^s / (c^s + ws^s)`` in [0, 1).

    ``s = 1`` is the classical smooth curve; larger ``s`` makes the
    transition steeper — a working set well inside the cache hits almost
    always, one several times larger almost never, which matches real
    LRU caches better.  Accepts scalars or arrays (vectorized over
    blocks).
    """
    cache_bytes = np.asarray(cache_bytes, dtype=np.float64)
    ws = np.asarray(working_set_bytes, dtype=np.float64)
    if np.any(cache_bytes < 0) or np.any(ws < 0):
        raise DeviceModelError("cache/working-set sizes must be non-negative")
    if sharpness <= 0:
        raise DeviceModelError("sharpness must be positive")
    c = cache_bytes ** sharpness
    w = ws ** sharpness
    denom = c + w
    with np.errstate(invalid="ignore", divide="ignore"):
        out = np.where(denom > 0, c / np.where(denom > 0, denom, 1.0), 0.0)
    return out if out.ndim else float(out)


def gather_traffic(stats: GatherStats, device: DeviceSpec,
                   occupancy: Occupancy, *, x_bytes: float) -> GatherTraffic:
    """Resolve a gather stream against the device's cache hierarchy.

    Parameters
    ----------
    stats:
        Per-block transaction statistics from
        :func:`repro.gpusim.coalescing.warp_gather_stats`.
    device, occupancy:
        The device and resolved launch occupancy (resident blocks per SM
        scale the L1 working set).
    x_bytes:
        Size of the gathered vector (competes for L2 capacity on the
        far-reuse path).
    """
    line = device.cache_line_bytes
    if stats.transactions == 0:
        return GatherTraffic(0.0, 0.0, 0.0, 0.0, 0.0)

    s = device.capacity_sharpness
    # L1: instantaneous demand of the SM's resident warps — each warp
    # needs its current step's distinct lines live at once.
    ws_l1 = (stats.block_lines_per_step * line
             * occupancy.resident_warps * device.reuse_window_factor)
    h1 = capacity_hit_rate(device.l1_kb * 1024.0, ws_l1, s)
    # L2 backstop for within-block reuse: the resident blocks' measured
    # footprints across all SMs.
    fp = stats.block_unique * line
    h2_block = capacity_hit_rate(device.l2_kb * 1024.0,
                                 fp * device.num_sms, s)
    # Cross-block (long-distance) reuse competes with the whole vector.
    h2_far = capacity_hit_rate(device.l2_kb * 1024.0, x_bytes, s)

    within = stats.block_near + stats.block_far   # within-block reuse
    cross_block = stats.cross_block_rereferences
    compulsory = stats.unique_lines

    within_l1_miss = within * (1.0 - h1)
    l1_miss_tx = compulsory + cross_block + float(within_l1_miss.sum())
    l2_miss_tx = (compulsory
                  + float((within_l1_miss * (1.0 - h2_block)).sum())
                  + cross_block * (1.0 - h2_far))

    within_total = float(within.sum())
    mean_h1 = (float((within * h1).sum()) / within_total) if within_total else 0.0
    mean_h2n = (float((within * h2_block).sum()) / within_total) if within_total else 0.0
    return GatherTraffic(
        l2_bytes=l1_miss_tx * line,
        dram_bytes=l2_miss_tx * line,
        l1_hit_rate=mean_h1,
        l2_near_hit_rate=mean_h2n,
        l2_far_hit_rate=float(h2_far),
    )
