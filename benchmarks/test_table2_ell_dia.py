"""Table II benchmark: ELL vs ELL+DIA.

Times the Table II regeneration plus the two formats' functional SpMV,
and checks the paper's shape: peeling the dense DFS band helps on every
benchmark, most on the fully-banded Brusselator/Schnakenberg.
"""

import numpy as np
from conftest import run_experiment

from repro.cme.models import load_benchmark_matrix
from repro.experiments import table2
from repro.sparse import ELLDIAMatrix, ELLMatrix


def test_table2_regeneration(benchmark, bench_scale, report_sink):
    result = run_experiment(benchmark, lambda: table2.run(bench_scale))
    report_sink.append(result.render())

    # ELL+DIA must not lose on any benchmark.
    for row in result.rows[:-1]:
        assert row[2] >= row[1] * 0.999, (
            f"{row[0]}: ELL+DIA ({row[2]}) should not lose to ELL ({row[1]})")

    # Average speedup in the paper's range.
    model = result.summary["avg_speedup_model"]
    assert 1.0 <= model <= 1.25, model

    # The fully-banded models gain the most (paper: +12-15%).
    by_name = {row[0]: row[3] for row in result.rows[:-1]}
    banded_gain = (by_name["brusselator"] + by_name["schnakenberg"]) / 2
    lambda_gain = (by_name["phage-lambda-1"] + by_name["phage-lambda-3"]) / 2
    assert banded_gain >= lambda_gain, (
        "fully-banded models should benefit most from DIA peeling")


def test_bench_spmv_ell(benchmark, bench_scale):
    fmt = ELLMatrix(load_benchmark_matrix("schnakenberg", bench_scale))
    x = np.random.default_rng(0).random(fmt.shape[1])
    benchmark(fmt.spmv, x)


def test_bench_spmv_ell_dia(benchmark, bench_scale):
    fmt = ELLDIAMatrix(load_benchmark_matrix("schnakenberg", bench_scale))
    x = np.random.default_rng(0).random(fmt.shape[1])
    benchmark(fmt.spmv, x)
