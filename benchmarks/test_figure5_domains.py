"""Figure 5 benchmark: sliced vs warp-grained ELL across UF domains."""

from conftest import run_experiment

from repro.experiments import figure5
from repro.matrixgen import generate_domain
from repro.sparse import WarpedELLMatrix


def test_figure5_regeneration(benchmark, report_sink):
    result = run_experiment(benchmark, lambda: figure5.run(n=8000, seed=1))
    report_sink.append(result.render())

    # Positive average improvement (paper: +12.6%).
    avg = result.summary["avg_improvement_model"]
    assert avg > 5.0, f"avg improvement {avg}%"

    # Quantum chemistry among the top gainers (paper's maximum, +48.1%).
    gains = {row[0]: row[3] for row in result.rows[:-1]}
    qchem = gains["quantum-chemistry"]
    assert qchem >= 0.8 * max(gains.values()), gains
    assert qchem > 25.0, f"qchem gain {qchem}%"

    # Regular stencil domains gain the least.
    assert gains["cfd"] < 10.0
    assert gains["structural-fem"] < 15.0


def test_bench_domain_generation_and_format(benchmark):
    def build():
        A = generate_domain("quantum-chemistry", n=4000, seed=2)
        return WarpedELLMatrix(A, reorder="local")
    fmt = benchmark.pedantic(build, rounds=2, iterations=1)
    assert fmt.nnz > 0
